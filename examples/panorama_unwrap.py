#!/usr/bin/env python3
"""Panoramic unwrapping: cylindrical and equirectangular outputs.

A perspective view can never show the full 180 degrees a fisheye
captures; panoramic projections can.  This example unwraps one fisheye
frame into a cylindrical strip (vertical lines stay vertical — the
mode surveillance UIs use) and an equirectangular map, and prints each
geometry's measured vertical source span, FPGA line-buffer verdict and
modelled throughput side by side — the three outputs stress the
streaming hardware differently (the equirect output has 4x the pixels,
halving the pipeline's frame rate at the same clock).

Run:  python examples/panorama_unwrap.py [output_dir]
"""

import os
import sys

import numpy as np

from repro import EquidistantLens, FisheyeIntrinsics, RemapLUT
from repro.core.mapping import cylindrical_map, equirectangular_map
from repro.accel import Workload, fpga_midrange
from repro.bench.harness import standard_field
from repro.video import FisheyeRenderer, checkerboard, scene_camera_for_sensor, write_pgm

SIZE = 512


def main(out_dir: str = "panorama_output") -> int:
    os.makedirs(out_dir, exist_ok=True)
    circle = SIZE / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SIZE, SIZE, focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)

    scene_cam = scene_camera_for_sensor(sensor, lens, SIZE, SIZE)
    frame = FisheyeRenderer(scene_cam, lens, sensor).render(
        checkerboard(SIZE, SIZE, square=36))
    write_pgm(os.path.join(out_dir, "fisheye.pgm"), frame)

    fields = {
        "perspective": standard_field(SIZE, SIZE),
        "cylindrical": cylindrical_map(sensor, lens, 2 * SIZE, SIZE // 2,
                                       hfov=np.deg2rad(170.0),
                                       vfov=np.deg2rad(70.0)),
        "equirect": equirectangular_map(sensor, lens, 2 * SIZE, SIZE,
                                        hfov=np.deg2rad(170.0),
                                        vfov=np.deg2rad(170.0)),
    }

    fpga = fpga_midrange()
    print(f"{'output':>12} {'size':>10} {'coverage':>9} {'max row span':>13} "
          f"{'FPGA mode':>14} {'fps':>8}")
    for name, field in fields.items():
        lut = RemapLUT(field, method="bilinear")
        out = lut.apply(frame)
        write_pgm(os.path.join(out_dir, f"{name}.pgm"), out)
        workload = Workload.from_field(field)
        rep = fpga.estimate_frame(workload)
        h, w = field.shape
        print(f"{name:>12} {w:>5}x{h:<4} {field.coverage():>8.1%} "
              f"{field.row_span().max():>10.1f} px "
              f"{rep.notes['mode']:>14} {rep.fps:>8.1f}")
    print(f"\nwrote unwrapped frames to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
