#!/usr/bin/env python3
"""Video wall: quad-view mosaic with full radiometric correction.

The complete production chain for one monitor of a surveillance wall:

1. a synthetic street scene is rendered through the fisheye lens,
2. sensor noise and lens vignetting are applied (the realistic input),
3. a single composed coordinate field carves four virtual views
   (overview + three PTZ close-ups) out of the stream — one LUT, one
   kernel pass for the whole mosaic,
4. the vignetting is undone with gains evaluated per *output* pixel
   (fused with the geometric correction),
5. the mosaic streams at measured host throughput,
6. finally the *service* phase: four such cameras share one
   calibration and stream concurrently through a single persistent
   worker fleet (repro.serve), each delivered strictly in order.

Run:  python examples/video_wall.py [output_dir]
"""

import os
import sys
import time

import numpy as np

from repro import (
    EquidistantLens,
    FisheyeIntrinsics,
    RemapLUT,
    VignetteModel,
    correct_vignette,
    quad_view,
)
from repro.video import (
    FisheyeRenderer,
    SensorNoise,
    panning_crops,
    scene_camera_for_sensor,
    urban,
    write_pgm,
)

SENSOR = 512
FRAMES = 10
SERVICE_FRAMES = 4  # per camera in the multi-stream service phase


def main(out_dir: str = "videowall_output") -> int:
    os.makedirs(out_dir, exist_ok=True)

    circle = SENSOR / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SENSOR, SENSOR,
                                        focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)

    # realistic input chain: scene -> lens geometry -> vignetting -> noise
    scene_cam = scene_camera_for_sensor(sensor, lens, SENSOR, SENSOR)
    renderer = FisheyeRenderer(scene_cam, lens, sensor)
    vignette = VignetteModel(lens, sensor, alpha=3.0)
    noise = SensorNoise(full_well=3000.0, read_noise=6.0, seed=17)
    world = urban(SENSOR * 2, SENSOR * 2, buildings=90, seed=4)

    # one coordinate field for the whole quad mosaic
    field = quad_view(sensor, lens, 512, 384, overview_zoom=0.5,
                      detail_zoom=1.6, detail_pitch=np.deg2rad(30.0))
    lut = RemapLUT(field, method="bilinear")
    gains = vignette.gain_for_field(field, max_gain=5.0)
    print(f"quad mosaic 512x384, coverage {field.coverage():.1%}, "
          f"LUT {lut.nbytes / 1e6:.1f} MB, "
          f"peak devignetting gain {gains.max():.2f}x")

    total = 0.0
    last = None
    for k, crop in enumerate(panning_crops(world, SENSOR, SENSOR, FRAMES, step=10)):
        captured = noise.apply(vignette.apply(renderer.render(crop)),
                               frame_index=k)
        t0 = time.perf_counter()
        mosaic = correct_vignette(lut.apply(captured), gains)
        total += time.perf_counter() - t0
        last = (captured, mosaic)

    captured, mosaic = last
    write_pgm(os.path.join(out_dir, "captured.pgm"), captured)
    write_pgm(os.path.join(out_dir, "mosaic.pgm"), mosaic)
    fps = FRAMES / total
    print(f"host throughput: {fps:.1f} mosaic fps "
          f"({fps * 512 * 384 / 1e6:.1f} Mpx/s, remap + devignette)")
    print(f"wrote captured.pgm and mosaic.pgm to {out_dir}/")

    # --- service phase: a wall of four cameras, one shared fleet ----
    # Every camera uses the same sensor/lens/mosaic calibration, so the
    # broker builds ONE LUT and publishes ONE shared table set for the
    # whole wall; sessions multiplex onto two persistent workers with
    # strict in-order delivery per camera.
    from repro.serve import MultiStreamCorrector

    def camera(cam: int, frames: int = SERVICE_FRAMES):
        crops = panning_crops(world, SENSOR, SENSOR, frames,
                              step=8 + 5 * cam)
        for k, crop in enumerate(crops):
            yield noise.apply(vignette.apply(renderer.render(crop)),
                              frame_index=cam * frames + k)

    t0 = time.perf_counter()
    delivered: dict[str, int] = {}
    with MultiStreamCorrector(workers=2, slot_budget=8) as svc:
        sessions = [svc.open_stream(camera(i), field, name=f"cam{i}",
                                    depth=2)
                    for i in range(4)]
        for cam_name, frame in svc.merged(sessions):
            delivered[cam_name] = delivered.get(cam_name, 0) + 1
    wall_s = time.perf_counter() - t0
    n = sum(delivered.values())
    print(f"service phase: {len(delivered)} cameras x "
          f"{SERVICE_FRAMES} frames through one 2-worker fleet, "
          f"{n / wall_s:.1f} fps aggregate "
          f"({', '.join(f'{k}:{v}' for k, v in sorted(delivered.items()))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
