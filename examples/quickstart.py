#!/usr/bin/env python3
"""Quickstart: correct one synthetic fisheye frame and inspect quality.

Builds a 180-degree equidistant fisheye camera, renders a checkerboard
scene through it (so there is ground truth), corrects the distorted
frame back to a perspective view, and reports coverage + quality.

Run:  python examples/quickstart.py [output_dir]
"""

import os
import sys

import numpy as np

from repro import (
    EquidistantLens,
    FisheyeCorrector,
    FisheyeIntrinsics,
    psnr,
    ssim,
)
from repro.video import checkerboard, render_fisheye, scene_camera_for_sensor, write_pgm

SIZE = 512


def main(out_dir: str = "quickstart_output") -> int:
    os.makedirs(out_dir, exist_ok=True)

    # 1. The camera: a 512x512 sensor whose 180-degree image circle is
    #    inscribed in the frame (equidistant mapping, r = f * theta).
    circle_radius = SIZE / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SIZE, SIZE,
                                        focal=circle_radius / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)
    print(f"sensor: {SIZE}x{SIZE}, focal {sensor.focal:.1f} px "
          f"(r0 = {sensor.r0:.1f} px at 45 deg)")

    # 2. A ground-truth scene and its fisheye rendering.
    scene_cam = scene_camera_for_sensor(sensor, lens, SIZE, SIZE)
    scene = checkerboard(SIZE, SIZE, square=40)
    fisheye_frame = render_fisheye(scene, scene_cam, lens, sensor)
    write_pgm(os.path.join(out_dir, "scene.pgm"), scene)
    write_pgm(os.path.join(out_dir, "fisheye.pgm"), fisheye_frame)

    # 3. Correction: zoom 0.5 trades central resolution for a wide
    #    recovered field of view (the paper's balanced setting).
    corrector = FisheyeCorrector.for_sensor(sensor, lens, SIZE, SIZE,
                                            zoom=0.5, method="bilinear")
    corrected = corrector.correct(fisheye_frame)
    write_pgm(os.path.join(out_dir, "corrected.pgm"), corrected)
    print(f"coverage: {corrector.coverage():.1%} of output pixels in FOV")

    # 4. Quality against the analytically-resampled scene.
    from repro.core.intrinsics import CameraIntrinsics
    from repro.core.interpolation import sample
    from repro.core.quality import perspective_reference_coords

    focal_out = float(lens.magnification(1e-4)) * 0.5
    out_cam = CameraIntrinsics(fx=focal_out, fy=focal_out,
                               cx=(SIZE - 1) / 2.0, cy=(SIZE - 1) / 2.0,
                               width=SIZE, height=SIZE)
    exp_x, exp_y = perspective_reference_coords(out_cam, scene_cam)
    inside = ((exp_x >= 0) & (exp_x <= SIZE - 1)
              & (exp_y >= 0) & (exp_y <= SIZE - 1))
    reference = sample(scene, exp_x, exp_y, method="bilinear")
    q_psnr = psnr(reference.astype(float), corrected.astype(float),
                  peak=255.0, mask=inside)
    q_ssim = ssim(np.where(inside, reference, 0).astype(float),
                  np.where(inside, corrected, 0).astype(float), peak=255.0)
    print(f"quality vs ground truth: PSNR {q_psnr:.1f} dB, SSIM {q_ssim:.3f}")
    print(f"wrote scene/fisheye/corrected PGMs to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
