#!/usr/bin/env python3
"""Run any (or every) experiment from the evaluation, by id.

The registry in ``repro.bench.experiments`` implements each table and
figure (T1, T2, F1..F12).  This script is the command-line front end
the benchmarks and EXPERIMENTS.md are generated from.

Run:  python examples/platform_comparison.py          # quick subset
      python examples/platform_comparison.py F4 F7    # specific ids
      python examples/platform_comparison.py all      # everything
"""

import sys
import time

from repro.bench import EXPERIMENTS, run_experiment

QUICK = ["T1", "F4", "F7"]


def main(argv) -> int:
    if not argv:
        ids = QUICK
    elif argv == ["all"]:
        ids = sorted(EXPERIMENTS, key=lambda k: ({"T": 0, "F": 1, "A": 2}[k[0]],
                                                 int(k[1:])))
    else:
        ids = [a.upper() for a in argv]

    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; known: {sorted(EXPERIMENTS)}")
        return 2

    for exp_id in ids:
        t0 = time.perf_counter()
        table = run_experiment(exp_id)
        elapsed = time.perf_counter() - t0
        print(table)
        print(f"  [{exp_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
