#!/usr/bin/env python3
"""Security-camera scenario: streaming correction with virtual PTZ.

The motivating application of the target paper: a ceiling-mounted
180-degree camera replaces several narrow ones, and software carves
*virtual pan/tilt/zoom views* out of the fisheye stream in real time.

This example builds a synthetic street scene, streams distorted frames
through three simultaneous virtual views (wide overview, tilted-down
entrance view, zoomed detail view), measures per-view throughput on
the host, and prints what the platform models predict for the same
workload on the paper's machine park.

Run:  python examples/security_camera.py [output_dir]
"""

import os
import sys

import numpy as np

from repro import EquidistantLens, FisheyeCorrector, FisheyeIntrinsics, StreamStats
from repro.accel import Workload, cell_ps3, gtx280, sequential_reference, xeon_2010
from repro.video import FisheyeRenderer, SyntheticStream, scene_camera_for_sensor, urban, write_pgm

SENSOR = 640
FRAMES = 12


def main(out_dir: str = "security_output") -> int:
    os.makedirs(out_dir, exist_ok=True)

    circle = SENSOR / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SENSOR, SENSOR,
                                        focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)

    # A deterministic "street" world, panned under the camera.
    scene_cam = scene_camera_for_sensor(sensor, lens, SENSOR, SENSOR)
    renderer = FisheyeRenderer(scene_cam, lens, sensor)
    world = urban(SENSOR * 2, SENSOR * 2, buildings=120, seed=42)
    stream = SyntheticStream(renderer, world, frames=FRAMES, fps=30.0, step=12)

    # Three virtual views sharing the one physical camera.
    views = {
        "overview": dict(out_width=640, out_height=480, zoom=0.5),
        "entrance": dict(out_width=480, out_height=360, zoom=0.8,
                         pitch=np.deg2rad(35.0), yaw=np.deg2rad(-20.0)),
        "detail": dict(out_width=320, out_height=240, zoom=2.0,
                       yaw=np.deg2rad(30.0)),
    }
    correctors = {
        name: FisheyeCorrector.for_sensor(sensor, lens, method="bilinear", **spec)
        for name, spec in views.items()
    }
    for name, c in correctors.items():
        print(f"view {name:>9}: {c.out_shape[1]}x{c.out_shape[0]}, "
              f"coverage {c.coverage():.1%}")

    # Stream all frames through all views, reusing buffers per view.
    stats = {name: StreamStats() for name in views}
    frames = list(stream)  # materialize so each view sees the same input
    for name, corrector in correctors.items():
        last = None
        for out in corrector.correct_stream(frames, stats=stats[name]):
            last = out
        write_pgm(os.path.join(out_dir, f"{name}_last.pgm"), last.data)

    print("\nhost throughput (numpy kernels, this machine):")
    for name, s in stats.items():
        print(f"  {name:>9}: {s.fps:7.1f} fps  ({s.mpixels_per_s:6.1f} Mpx/s)")

    # ROI patrol: motion-triggered 160x120 patches of the overview
    # view.  Composing crop ∘ undistort into one table per ROI gathers
    # only the patch's bytes per frame, instead of correcting the full
    # view and cropping the result.
    from repro.bench.harness import capture_metrics
    from repro.core.compose import composed_lut, crop_field
    from repro.core.remap import RemapLUT

    field = correctors["overview"].field
    fh, fw = field.shape
    roi_w, roi_h = 160, 120
    rois = [(40, 60), (fw - roi_w - 40, 80), (240, fh - roi_h - 30)]
    full_lut = RemapLUT(field, method="bilinear")
    roi_luts = [
        composed_lut(crop_field(roi_w, roi_h, float(x0), float(y0), fw, fh),
                     field)
        for x0, y0 in rois
    ]
    src = frames[-1].data
    full_out = np.empty(full_lut.out_shape, dtype=src.dtype)

    def two_pass():
        full_lut.apply_into(src, full_out)  # full-view correction...
        return [full_out[y0:y0 + roi_h, x0:x0 + roi_w].copy()
                for x0, y0 in rois]        # ...then crop each ROI

    def fused():
        return [lut.apply(src) for lut in roi_luts]

    patches_two, snap_two = capture_metrics(two_pass)
    patches_fused, snap_fused = capture_metrics(fused)
    two_bytes = snap_two["counters"]["remap.bytes_gathered"]
    fused_bytes = snap_fused["counters"]["remap.bytes_gathered"]
    print(f"\nROI patrol ({len(rois)} patches of {roi_w}x{roi_h}, "
          "composed crop ∘ undistort):")
    print(f"  correct-then-crop gathers {two_bytes / 1e6:6.2f} MB/frame")
    print(f"  composed ROI tables gather {fused_bytes / 1e6:5.2f} MB/frame "
          f"({two_bytes / fused_bytes:.1f}x fewer bytes)")
    for (x0, y0), patch in zip(rois, patches_fused):
        write_pgm(os.path.join(out_dir, f"roi_{x0}x{y0}.pgm"), patch)

    # What would the paper's platforms do with the overview workload?
    print("\nmodelled per-platform throughput for the overview view:")
    workload = Workload.from_field(correctors["overview"].field, mode="otf")
    for platform in (sequential_reference(), xeon_2010(), cell_ps3(), gtx280()):
        rep = (platform.simulate(workload) if hasattr(platform, "simulate")
               else platform.estimate_frame(workload))
        rt = "real-time" if rep.fps >= 30.0 else "below 30 fps"
        print(f"  {rep.platform:>16}: {rep.fps:8.1f} fps  "
              f"[{rep.bottleneck}-bound, {rt}]")
    print(f"\nwrote final frames per view to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
