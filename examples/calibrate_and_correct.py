#!/usr/bin/env python3
"""Full lab workflow: calibrate an unknown lens, then correct with it.

Simulates receiving footage from a camera whose mapping function and
focal length are *unknown*: a circle-grid calibration target of known
geometry is imaged through the (hidden) lens, markers are detected,
the mapping family + focal + distortion centre are recovered, and the
recovered model drives the corrector.  Ground truth lets the script
grade its own answer.

Run:  python examples/calibrate_and_correct.py
"""

import sys

import numpy as np

from repro import FisheyeCorrector, FisheyeIntrinsics, make_lens
from repro.core.calibration import calibrate, detect_blobs
from repro.video import FisheyeRenderer, circle_grid, scene_camera_for_sensor

SIZE = 512


def main() -> int:
    rng = np.random.default_rng(2026)

    # --- the hidden ground truth (pretend we do not know this) ---------
    true_family = "equisolid"
    circle = SIZE / 2.0 - 1.0
    unit = float(make_lens(true_family, 1.0).angle_to_radius(np.pi / 2.0))
    true_focal = circle / unit
    true_center = (SIZE / 2.0 - 0.5 + rng.uniform(-2, 2),
                   SIZE / 2.0 - 0.5 + rng.uniform(-2, 2))
    hidden_lens = make_lens(true_family, true_focal)
    hidden_sensor = FisheyeIntrinsics(width=SIZE, height=SIZE,
                                      cx=true_center[0], cy=true_center[1],
                                      focal=true_focal)
    print(f"[hidden] family={true_family} focal={true_focal:.2f} "
          f"centre=({true_center[0]:.2f}, {true_center[1]:.2f})")

    # --- 1. image a calibration target through the unknown lens --------
    scene_cam = scene_camera_for_sensor(hidden_sensor, hidden_lens, SIZE, SIZE,
                                        scene_hfov=np.deg2rad(140.0))
    target, scene_points = circle_grid(SIZE, SIZE, rings=5, spokes=12,
                                       dot_radius=4, margin=0.85)
    captured = FisheyeRenderer(scene_cam, hidden_lens, hidden_sensor).render(target)

    # --- 2. detect markers in the captured frame -----------------------
    blobs = detect_blobs(captured.astype(float), min_area=3)
    print(f"[detect] {len(blobs)} markers found "
          f"(target has {len(scene_points)})")

    # --- 3. associate detections to target geometry by radial order ----
    xn, yn = scene_cam.normalize(scene_points[:, 0], scene_points[:, 1])
    true_thetas = np.arctan(np.hypot(xn, yn))
    blob_pts = np.array([[b.x, b.y] for b in blobs])
    guess = blob_pts.mean(axis=0)
    blob_r = np.hypot(blob_pts[:, 0] - guess[0], blob_pts[:, 1] - guess[1])
    pts = blob_pts[np.argsort(blob_r)][1:]       # drop the centre dot
    thetas = np.sort(true_thetas)[1:]

    # --- 4. solve for family + focal + centre --------------------------
    result = calibrate(pts, thetas, center_guess=tuple(guess))
    print(f"[solve ] family={result.model} focal={result.focal:.2f} "
          f"centre=({result.cx:.2f}, {result.cy:.2f}) "
          f"rms={result.rms_residual:.4f} px")
    print("[solve ] family ranking:",
          ", ".join(f"{f.model}:{f.rms_residual:.3f}px" for f in result.fits))

    focal_err = abs(result.focal - true_focal) / true_focal
    centre_err = float(np.hypot(result.cx - true_center[0],
                                result.cy - true_center[1]))
    print(f"[grade ] family {'OK' if result.model == true_family else 'WRONG'}, "
          f"focal error {focal_err:.2%}, centre error {centre_err:.2f} px")

    # --- 5. correct with the recovered model ----------------------------
    recovered_sensor = FisheyeIntrinsics(width=SIZE, height=SIZE,
                                         cx=result.cx, cy=result.cy,
                                         focal=result.focal)
    corrector = FisheyeCorrector.for_sensor(recovered_sensor, result.lens(),
                                            SIZE, SIZE, zoom=0.6)
    corrected = corrector.correct(captured)
    print(f"[apply ] corrected frame {corrected.shape[1]}x{corrected.shape[0]}, "
          f"coverage {corrector.coverage():.1%}")
    return 0 if result.model == true_family and focal_err < 0.02 else 1


if __name__ == "__main__":
    sys.exit(main())
