"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch everything library-specific with a single ``except``
clause while still being able to discriminate finer-grained failure
modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "LensModelError",
    "CalibrationError",
    "ImageFormatError",
    "MappingError",
    "InterpolationError",
    "KernelTierError",
    "PartitionError",
    "ScheduleError",
    "StreamError",
    "AdmissionError",
    "SimulationError",
    "PlatformError",
    "CapacityError",
    "BenchmarkError",
    "TelemetryError",
    "MetricsBindError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError, ValueError):
    """Invalid geometric argument (negative radius, empty grid, ...)."""


class LensModelError(ReproError, ValueError):
    """Invalid lens-model parameter or out-of-domain evaluation."""


class CalibrationError(ReproError, RuntimeError):
    """Calibration failed (too few observations, degenerate fit, ...)."""


class ImageFormatError(ReproError, ValueError):
    """Unsupported image dtype/shape/colour layout."""


class MappingError(ReproError, ValueError):
    """Invalid remap-LUT construction request."""


class InterpolationError(ReproError, ValueError):
    """Unknown interpolation kind or invalid sampling request."""


class KernelTierError(ReproError, ValueError):
    """Unknown or unusable kernel-tier request (see
    :mod:`repro.core.kernel_tiers`)."""


class PartitionError(ReproError, ValueError):
    """Invalid domain decomposition request."""


class ScheduleError(ReproError, ValueError):
    """Invalid scheduling request (zero workers, bad chunk size, ...)."""


class StreamError(ReproError, RuntimeError):
    """A streaming engine failed mid-stream (e.g. a worker process
    died); the engine releases its shared resources before raising.

    ``flight_dump`` carries the path of the crash flight-recorder dump
    (see :mod:`repro.obs.flightrec`) when one was written — the last N
    spans/events preceding the failure — or ``None``.
    """

    def __init__(self, message: str, flight_dump: str | None = None):
        super().__init__(message)
        self.flight_dump = flight_dump


class AdmissionError(StreamError):
    """The multi-stream broker refused a new session: admitting it would
    exceed the configured slot budget (see :mod:`repro.serve`)."""


class SimulationError(ReproError, RuntimeError):
    """Discrete-event simulation reached an inconsistent state."""


class PlatformError(ReproError, ValueError):
    """Invalid hardware-platform configuration."""


class CapacityError(PlatformError):
    """A working set does not fit the platform's constrained memory.

    Raised e.g. when a Cell-BE tile (output tile + source bounding box +
    LUT slice) exceeds the SPE local store, or an FPGA line buffer cannot
    hold the vertical span of the remap.
    """


class BenchmarkError(ReproError, RuntimeError):
    """A benchmark harness precondition failed."""


class TelemetryError(ReproError, ValueError):
    """Invalid telemetry request (bad buckets, mismatched merge, ...)."""


class MetricsBindError(TelemetryError):
    """The metrics HTTP endpoint could not bind its address (typically
    the port is already in use)."""
