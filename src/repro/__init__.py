"""repro — fisheye lens distortion correction on multicore and
hardware accelerator platforms.

A from-scratch reproduction of the IPPS/IPDPS 2010 parallelization
study: the correction kernel itself (:mod:`repro.core`), domain
decomposition and scheduling (:mod:`repro.parallel`), deterministic
platform models for multicore SMP / Cell BE / SIMT GPU / FPGA
(:mod:`repro.accel` on top of :mod:`repro.sim`), synthetic fisheye
video workloads (:mod:`repro.video`) and the benchmark harness that
regenerates every table and figure (:mod:`repro.bench`).

Quickstart
----------
>>> import numpy as np
>>> from repro import EquidistantLens, FisheyeIntrinsics, FisheyeCorrector
>>> sensor = FisheyeIntrinsics.centered(512, 512, focal=162.0)
>>> lens = EquidistantLens(sensor.focal)
>>> corrector = FisheyeCorrector.for_sensor(sensor, lens, 512, 512, zoom=0.5)
>>> frame = np.zeros((512, 512), dtype=np.uint8)
>>> corrected = corrector.correct(frame)
>>> corrected.shape
(512, 512)
"""

from ._version import __version__
from .core import *  # noqa: F401,F403 — curated re-export, see core.__all__
from .core import __all__ as _core_all
from .errors import ReproError

__all__ = ["__version__", "ReproError", *_core_all]
