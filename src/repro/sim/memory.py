"""Bandwidth/latency models for memories and interconnects.

Two abstractions cover every platform model's needs:

:class:`Link`
    A point-to-point channel with setup latency and sustained
    bandwidth; ``transfer_time`` is the closed-form cost of moving
    ``n`` bytes.

:class:`SharedBus`
    A bandwidth pool serializing overlapping transfers (the SMP memory
    controller, the Cell EIB, the GPU DRAM interface).  It keeps a
    simple reservation timeline: each request is granted the earliest
    slot after its release time, modelling FCFS contention without
    per-beat simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

__all__ = ["Link", "SharedBus"]

NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class Link:
    """A fixed-latency, fixed-bandwidth channel.

    Attributes
    ----------
    name:
        Display name ("DMA", "PCIe", ...).
    bandwidth_gbps:
        Sustained bandwidth in **gigabytes** per second.
    setup_ns:
        Per-transfer setup latency in nanoseconds (descriptor
        programming, tag management, bus arbitration).
    """

    name: str
    bandwidth_gbps: float
    setup_ns: int = 0

    def __post_init__(self):
        if self.bandwidth_gbps <= 0:
            raise SimulationError(f"{self.name}: bandwidth must be positive")
        if self.setup_ns < 0:
            raise SimulationError(f"{self.name}: setup latency must be >= 0")

    def transfer_ns(self, nbytes: int) -> int:
        """Time (ns) to move ``nbytes`` including setup; 0 bytes is free."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0
        return self.setup_ns + int(round(nbytes / self.bandwidth_gbps / 1e9 * NS_PER_S))

    def effective_gbps(self, nbytes: int) -> float:
        """Achieved bandwidth for one transfer of ``nbytes`` (setup included)."""
        t = self.transfer_ns(nbytes)
        return (nbytes / (t / NS_PER_S)) / 1e9 if t > 0 else float("inf")


class SharedBus:
    """FCFS bandwidth pool with a reservation timeline.

    Transfers requested at (or after) ``release`` time are granted the
    earliest slot once the bus frees up; total occupancy equals
    ``bytes / bandwidth``.  This is the standard queueing abstraction
    for a memory controller when per-beat interleaving detail is not
    needed: aggregate throughput and serialization delays are exact.
    """

    def __init__(self, name: str, bandwidth_gbps: float, setup_ns: int = 0):
        if bandwidth_gbps <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if setup_ns < 0:
            raise SimulationError(f"{name}: setup latency must be >= 0")
        self.name = name
        self.bandwidth_gbps = bandwidth_gbps
        self.setup_ns = setup_ns
        self._free_at = 0  # timeline head (ns)
        self.busy_ns = 0
        self.transfers = 0
        self.bytes_moved = 0

    def occupancy_ns(self, nbytes: int) -> int:
        """Bus occupancy (ns) of an ``nbytes`` transfer, setup included."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0
        return self.setup_ns + int(round(nbytes / self.bandwidth_gbps / 1e9 * NS_PER_S))

    def request(self, release_ns: int, nbytes: int) -> tuple[int, int]:
        """Reserve the bus for a transfer ready at ``release_ns``.

        Returns ``(start_ns, end_ns)``.  Requests must be issued in
        non-decreasing release order (FCFS); the model raises otherwise
        because out-of-order issue would silently corrupt the timeline.
        """
        if release_ns < 0:
            raise SimulationError(f"negative release time {release_ns}")
        dur = self.occupancy_ns(nbytes)
        start = max(release_ns, self._free_at)
        end = start + dur
        self._free_at = end
        self.busy_ns += dur
        self.transfers += 1
        self.bytes_moved += nbytes
        return start, end

    def utilization(self, horizon_ns: int) -> float:
        """Fraction of ``horizon_ns`` the bus spent busy."""
        if horizon_ns <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon_ns}")
        return min(1.0, self.busy_ns / horizon_ns)

    def reset(self):
        """Clear the timeline and counters."""
        self._free_at = 0
        self.busy_ns = 0
        self.transfers = 0
        self.bytes_moved = 0
