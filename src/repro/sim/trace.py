"""Address-trace extraction from remap tables.

Bridges the kernel's actual data to the memory-system models: the
source addresses a correction pass touches are exactly the LUT's
gather indices, in output order.  These traces feed
:class:`repro.sim.cache.CacheSim` (SMP locality) and the GPU
coalescing analysis.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..core.remap import RemapLUT
from ..parallel.partition import Tile

__all__ = ["gather_trace", "tile_gather_trace", "output_trace"]


def gather_trace(lut: RemapLUT, pixel_bytes: int = 1, base: int = 0) -> np.ndarray:
    """Byte addresses of every source fetch, in output-pixel order.

    For a ``taps``-tap LUT the trace has ``pixels * taps`` entries:
    all taps of output pixel 0, then pixel 1, ...  Masked-out pixels
    contribute their (index 0) placeholder taps — harmless for
    locality studies and faithful to a branch-free kernel that fetches
    unconditionally.
    """
    if pixel_bytes <= 0:
        raise SimulationError(f"pixel_bytes must be positive, got {pixel_bytes}")
    return (lut.indices.astype(np.int64).ravel() * pixel_bytes + base)


def tile_gather_trace(lut: RemapLUT, tile: Tile, pixel_bytes: int = 1,
                      base: int = 0) -> np.ndarray:
    """Gather trace restricted to one output tile (row-major within it)."""
    if pixel_bytes <= 0:
        raise SimulationError(f"pixel_bytes must be positive, got {pixel_bytes}")
    h, w = lut.out_shape
    if tile.row1 > h or tile.col1 > w:
        raise SimulationError(f"tile {tile} exceeds output {lut.out_shape}")
    rows = np.arange(tile.row0, tile.row1)
    cols = np.arange(tile.col0, tile.col1)
    flat = (rows[:, None] * w + cols[None, :]).ravel()
    return (lut.indices[flat].astype(np.int64).ravel() * pixel_bytes + base)


def output_trace(height: int, width: int, pixel_bytes: int = 1,
                 base: int = 0) -> np.ndarray:
    """Byte addresses of the output writes (perfectly sequential)."""
    if height <= 0 or width <= 0 or pixel_bytes <= 0:
        raise SimulationError(
            f"dimensions must be positive: {height}x{width}, {pixel_bytes} B/px")
    return np.arange(height * width, dtype=np.int64) * pixel_bytes + base
