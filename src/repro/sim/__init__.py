"""Deterministic simulation substrate for the platform models.

- :mod:`~repro.sim.event` — integer-nanosecond discrete-event engine,
- :mod:`~repro.sim.memory` — links and shared-bus contention,
- :mod:`~repro.sim.cache` — set-associative LRU cache replay,
- :mod:`~repro.sim.trace` — address traces extracted from remap LUTs,
- :mod:`~repro.sim.stats` — counters and phase breakdowns.
"""

from .cache import CacheConfig, CacheSim, CacheStats
from .event import Event, EventQueue, ms, ns, ns_to_seconds, seconds_to_ns, us
from .memory import Link, SharedBus
from .prefetch import PrefetchConfig, PrefetchingCache, PrefetchStats
from .stats import Breakdown, Counters
from .trace import gather_trace, output_trace, tile_gather_trace

__all__ = [
    "EventQueue",
    "Event",
    "ns",
    "us",
    "ms",
    "seconds_to_ns",
    "ns_to_seconds",
    "Link",
    "SharedBus",
    "CacheConfig",
    "CacheSim",
    "CacheStats",
    "Breakdown",
    "Counters",
    "gather_trace",
    "tile_gather_trace",
    "output_trace",
    "PrefetchConfig",
    "PrefetchingCache",
    "PrefetchStats",
]
