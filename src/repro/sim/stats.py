"""Lightweight counters and time-breakdown accounting for simulations."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["Counters", "Breakdown"]


class Counters:
    """A named-counter bag with dict-like reading."""

    def __init__(self):
        self._values = defaultdict(int)

    def add(self, name: str, amount: int = 1):
        if amount < 0:
            raise SimulationError(f"counter increments must be >= 0, got {amount}")
        self._values[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> dict:
        return dict(self._values)

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"


@dataclass
class Breakdown:
    """Time spent per named phase (ns), with percentage reporting."""

    phases: dict = field(default_factory=dict)

    def add(self, phase: str, duration_ns: int):
        if duration_ns < 0:
            raise SimulationError(f"phase duration must be >= 0, got {duration_ns}")
        self.phases[phase] = self.phases.get(phase, 0) + int(duration_ns)

    @property
    def total_ns(self) -> int:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        total = self.total_ns
        return self.phases.get(phase, 0) / total if total else 0.0

    def as_dict(self) -> dict:
        return dict(self.phases)

    def merged(self, other: "Breakdown") -> "Breakdown":
        out = Breakdown(dict(self.phases))
        for k, v in other.phases.items():
            out.add(k, v)
        return out
