"""A minimal deterministic discrete-event engine.

The platform models mostly use closed-form timelines, but the pieces
that genuinely interleave — DMA double-buffering on the Cell model,
dynamic work queues with contention — are driven by this engine.
Determinism rules:

- time is integer **nanoseconds** (no float accumulation drift),
- ties break by (priority, insertion sequence), never by object id,
- no wall clock anywhere.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError

__all__ = ["Event", "EventQueue", "ns", "us", "ms", "seconds_to_ns", "ns_to_seconds"]

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns(t: float) -> int:
    """Round a nanosecond quantity to the integer grid."""
    return int(round(t))


def us(t: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return int(round(t * NS_PER_US))


def ms(t: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return int(round(t * NS_PER_MS))


def seconds_to_ns(t: float) -> int:
    """Seconds -> integer nanoseconds."""
    return int(round(t * NS_PER_S))


def ns_to_seconds(t: int) -> float:
    """Integer nanoseconds -> float seconds."""
    return t / NS_PER_S


@dataclass(order=True)
class Event:
    """A scheduled callback (orderable by time, priority, sequence)."""

    time: int
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Deterministic event loop with integer-nanosecond time."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0
        self._processed = 0

    @property
    def now(self) -> int:
        """Current simulation time (ns)."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: int, action: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``action`` to run ``delay`` ns from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(self._now + int(delay), priority, self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: int, action: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``action`` at an absolute time (must not precede now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time {self._now}")
        return self.schedule(time - self._now, action, priority)

    @staticmethod
    def cancel(event: Event):
        """Mark an event cancelled; it will be skipped when popped."""
        event.cancelled = True

    def step(self) -> bool:
        """Run the next pending event.  Returns False when idle."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            ev.action()
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the final simulation time (ns).

        ``max_events`` guards against runaway self-rescheduling models.
        """
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(f"event budget exceeded ({max_events} events)")
        return self._now

    def run_until(self, time: int) -> int:
        """Run events with timestamps <= ``time``; advance now to ``time``."""
        if time < self._now:
            raise SimulationError(f"run_until({time}) precedes current time {self._now}")
        while self._heap:
            ev = self._heap[0]
            if ev.time > time:
                break
            self.step()
        self._now = time
        return self._now
