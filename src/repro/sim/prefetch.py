"""Hardware stream-prefetcher model layered on the cache simulator.

The F6 study shows the row-major gather traversal needs a much larger
cache than the blocked one.  Real cores partially compensate with
next-line/stream prefetchers — the A3 ablation asks how much.  The
model is the classic tagged sequential prefetcher:

- a small table tracks the last ``streams`` distinct miss lines;
- a miss to line ``L`` that follows a tracked miss to ``L - 1``
  (or ``L + 1`` for descending streams) confirms a stream and issues
  prefetches for the next ``depth`` lines in that direction;
- prefetched lines are installed in the cache (polluting it like real
  prefetches do) and hits on them are counted separately.

Determinism: pure function of the trace, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .cache import CacheConfig, CacheSim

__all__ = ["PrefetchConfig", "PrefetchStats", "PrefetchingCache"]


@dataclass(frozen=True)
class PrefetchConfig:
    """Stream prefetcher parameters."""

    streams: int = 8
    depth: int = 2

    def __post_init__(self):
        if self.streams < 1 or self.depth < 1:
            raise SimulationError("streams and depth must be >= 1")


@dataclass
class PrefetchStats:
    """Counters for one replay."""

    accesses: int = 0
    hits: int = 0
    prefetch_hits: int = 0      # hits on lines brought in by the prefetcher
    prefetches_issued: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were eventually used."""
        return (self.prefetch_hits / self.prefetches_issued
                if self.prefetches_issued else 0.0)

    def traffic_bytes(self, line_bytes: int) -> int:
        """DRAM lines moved: demand misses plus all prefetches."""
        return (self.misses + self.prefetches_issued) * line_bytes


class PrefetchingCache:
    """A :class:`~repro.sim.cache.CacheSim` with a tagged stream prefetcher.

    The replay loop mirrors ``CacheSim.access`` but consults/updates the
    stream table on every demand miss and tracks which resident lines
    were prefetched (for the accuracy counter).
    """

    def __init__(self, cache_config: CacheConfig,
                 prefetch: PrefetchConfig = PrefetchConfig()):
        self.cache = CacheSim(cache_config)
        self.config = prefetch
        self._stream_lines: list[int] = []   # recent miss lines (FIFO)
        self._prefetched: set[int] = set()   # lines resident via prefetch
        self.stats = PrefetchStats()

    def reset(self):
        self.cache.reset()
        self._stream_lines = []
        self._prefetched = set()
        self.stats = PrefetchStats()

    # ------------------------------------------------------------------
    def _touch_line(self, line: int) -> bool:
        """Access one line through the underlying cache; True on hit."""
        before = self.cache.stats.hits
        self.cache.access(np.array([line * self.cache.config.line_bytes]))
        return self.cache.stats.hits > before

    def _record_miss(self, line: int):
        self._stream_lines.append(line)
        if len(self._stream_lines) > self.config.streams:
            self._stream_lines.pop(0)

    def _maybe_prefetch(self, line: int):
        direction = 0
        if line - 1 in self._stream_lines:
            direction = 1
        elif line + 1 in self._stream_lines:
            direction = -1
        if direction == 0:
            return
        for k in range(1, self.config.depth + 1):
            target = line + direction * k
            if target < 0:
                break
            hit = self._touch_line(target)
            # cancel the demand-access accounting the touch performed:
            # prefetches are not demand accesses
            self.cache.stats.accesses -= 1
            if hit:
                self.cache.stats.hits -= 1
                continue  # already resident: nothing moved
            self.stats.prefetches_issued += 1
            self._prefetched.add(target)

    # ------------------------------------------------------------------
    def access(self, addresses) -> PrefetchStats:
        """Replay byte addresses in order; returns cumulative stats."""
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        if addresses.size and addresses.min() < 0:
            raise SimulationError("negative addresses in trace")
        line_bytes = self.cache.config.line_bytes
        for addr in addresses:
            line = int(addr) // line_bytes
            hit = self._touch_line(line)
            self.stats.accesses += 1
            if hit:
                self.stats.hits += 1
                if line in self._prefetched:
                    self.stats.prefetch_hits += 1
                    self._prefetched.discard(line)
            else:
                self._record_miss(line)
                self._maybe_prefetch(line)
        return self.stats

    def replay(self, addresses) -> PrefetchStats:
        """Reset, replay one trace, return its stats."""
        self.reset()
        return self.access(addresses)
