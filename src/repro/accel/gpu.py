"""SIMT GPU platform model (CUDA-class, circa GTX 200 and later).

The GPU version of the kernel assigns one output pixel per thread.
Three effects dominate, and all three are modelled from first
principles (and from the *actual* remap table when available):

occupancy
    Threads-per-block, register and shared-memory budgets limit how
    many warps an SM can keep in flight; below the latency-hiding
    threshold, achievable throughput scales with occupancy.  The F3
    benchmark sweeps block size exactly as a CUDA tuning session would.

memory coalescing
    Output writes are perfectly coalesced; LUT reads are streamed; but
    the *source gathers are data-dependent*.  A warp's 32 reads touch
    ``k`` distinct 128-byte segments and cost ``k`` transactions —
    ``k`` is measured per warp from the coordinate field
    (:meth:`repro.core.mapping.RemapField.gather_lines`).

host transfers
    Frames cross PCIe twice (in and out) unless streamed/overlapped;
    for 2010-era parts this regularly beats the kernel itself — the
    classic "GPU wins on kernel time, loses end-to-end" crossover the
    paper's end-to-end numbers show.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError
from ..obs.telemetry import emit_phase_spans, get_telemetry
from ..sim.memory import Link
from ..sim.stats import Breakdown
from .platform import PerfReport, PlatformModel, Workload

__all__ = ["GPUModel", "Occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Occupancy calculation result for one launch configuration."""

    block_size: int
    blocks_per_sm: int
    active_warps: int
    max_warps: int
    limiter: str

    @property
    def value(self) -> float:
        return self.active_warps / self.max_warps if self.max_warps else 0.0


@dataclass
class GPUModel(PlatformModel):
    """A streaming-multiprocessor GPU with explicit host transfers.

    Defaults approximate a GTX 280-class device (the 2010 study's
    hardware generation): 30 SMs x 8 lanes at 1.3 GHz, 141 GB/s DRAM,
    PCIe 1.1 x16 host link.
    """

    sms: int = 30
    lanes_per_sm: int = 8
    clock_ghz: float = 1.3
    dram_bw_gbps: float = 141.0
    warp_size: int = 32
    max_warps_per_sm: int = 32
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 512
    registers_per_sm: int = 16384
    shared_per_sm: int = 16384
    line_bytes: int = 128
    launch_ns: int = 8_000
    pcie: Link = None
    latency_hiding_occupancy: float = 0.5
    name: str = "gpu"

    def __post_init__(self):
        if self.pcie is None:
            self.pcie = Link("pcie", bandwidth_gbps=5.0, setup_ns=10_000)
        for label, v in (("sms", self.sms), ("lanes_per_sm", self.lanes_per_sm),
                         ("warp_size", self.warp_size),
                         ("max_warps_per_sm", self.max_warps_per_sm)):
            if v < 1:
                raise PlatformError(f"{label} must be >= 1, got {v}")
        if self.clock_ghz <= 0 or self.dram_bw_gbps <= 0:
            raise PlatformError("clock and bandwidth must be positive")
        if not 0 < self.latency_hiding_occupancy <= 1:
            raise PlatformError("latency_hiding_occupancy must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def peak_gflops(self) -> float:
        # one FMA per lane per clock
        return self.sms * self.lanes_per_sm * self.clock_ghz * 2.0

    @property
    def mem_bw_gbps(self) -> float:
        return self.dram_bw_gbps

    def describe(self) -> dict:
        d = super().describe()
        d.update(cores=self.sms * self.lanes_per_sm, clock_ghz=self.clock_ghz,
                 simd=f"simt{self.warp_size}",
                 pcie_gbps=self.pcie.bandwidth_gbps)
        return d

    # ------------------------------------------------------------------
    def occupancy(self, block_size: int, registers_per_thread: int = 16,
                  shared_per_block: int = 2048) -> Occupancy:
        """CUDA-style occupancy from the launch configuration."""
        if not 1 <= block_size <= self.max_threads_per_block:
            raise PlatformError(
                f"block_size must be in [1, {self.max_threads_per_block}], got {block_size}")
        if registers_per_thread < 1 or shared_per_block < 0:
            raise PlatformError("invalid per-thread resource request")
        warps_per_block = -(-block_size // self.warp_size)
        limits = {
            "warps": self.max_warps_per_sm // warps_per_block,
            "blocks": self.max_blocks_per_sm,
            "registers": self.registers_per_sm // (registers_per_thread * block_size),
            "shared": (self.shared_per_sm // shared_per_block
                       if shared_per_block > 0 else self.max_blocks_per_sm),
        }
        limiter = min(limits, key=limits.get)
        blocks = max(0, limits[limiter])
        return Occupancy(
            block_size=block_size,
            blocks_per_sm=blocks,
            active_warps=min(self.max_warps_per_sm, blocks * warps_per_block),
            max_warps=self.max_warps_per_sm,
            limiter=limiter,
        )

    # ------------------------------------------------------------------
    def kernel_time_ns(self, workload: Workload, occupancy_value: float) -> dict:
        """Compute and memory phase times for the device kernel alone."""
        spec = workload.spec
        flops = workload.frame_flops()
        eff = min(1.0, occupancy_value / self.latency_hiding_occupancy)
        if eff <= 0:
            raise PlatformError("zero occupancy: kernel cannot launch")
        compute_ns = flops / (self.peak_gflops * eff)  # GFLOP/s == flops/ns
        # Low occupancy also starves the memory system: with too few
        # warps in flight there are not enough outstanding transactions
        # to cover DRAM latency, so achievable bandwidth scales the same
        # way (Little's law).
        achievable_bw = self.dram_bw_gbps * eff

        # Memory transactions: coalesced writes + streamed LUT + measured
        # scatter factor on the source gathers.
        out_bytes = workload.frame_out_bytes()
        lut_bytes = workload.frame_lut_bytes()
        warps = workload.pixels / self.warp_size
        lines_per_warp = workload.gather_lines_per_warp
        # each tap of each warp costs ~lines_per_warp transactions; taps of
        # one pixel are adjacent, so extra taps mostly hit the same lines —
        # charge the footprint ratio of extra rows for multi-tap kernels.
        tap_rows = 1 if spec.taps == 1 else (2 if spec.taps == 4 else 4)
        src_bytes = warps * lines_per_warp * tap_rows * self.line_bytes
        memory_ns = (out_bytes + lut_bytes + src_bytes) / achievable_bw
        return {
            "compute_ns": compute_ns,
            "memory_ns": memory_ns,
            "src_transaction_bytes": src_bytes,
        }

    def estimate_frame(self, workload: Workload, block_size: int = 256,
                       registers_per_thread: int = 16,
                       shared_per_block: int = 2048,
                       overlap_transfers: bool = False) -> PerfReport:
        """End-to-end frame time: H2D + kernel + D2H (+ launch).

        ``overlap_transfers`` models stream-pipelined execution where
        transfers of frame ``k+1`` hide under the kernel of frame
        ``k`` (steady-state cost = max of the three phases).
        """
        occ = self.occupancy(block_size, registers_per_thread, shared_per_block)
        if occ.blocks_per_sm == 0:
            raise PlatformError(
                f"launch config infeasible: block_size={block_size}, "
                f"regs={registers_per_thread}, shared={shared_per_block}")
        phases = self.kernel_time_ns(workload, occ.value)
        kernel_ns = self.launch_ns + max(phases["compute_ns"], phases["memory_ns"])

        src_frame_bytes = (workload.src_width * workload.src_height
                           * workload.spec.out_bytes)
        h2d_ns = self.pcie.transfer_ns(int(src_frame_bytes))
        d2h_ns = self.pcie.transfer_ns(int(workload.frame_out_bytes()))

        if overlap_transfers:
            frame_ns = max(kernel_ns, h2d_ns, d2h_ns) + self.launch_ns
        else:
            frame_ns = h2d_ns + kernel_ns + d2h_ns

        breakdown = Breakdown()
        breakdown.add("h2d", int(h2d_ns))
        breakdown.add("kernel_compute", int(round(phases["compute_ns"])))
        breakdown.add("kernel_memory_exposed",
                      int(round(max(0.0, phases["memory_ns"] - phases["compute_ns"]))))
        breakdown.add("launch", self.launch_ns)
        breakdown.add("d2h", int(d2h_ns))

        kernel_bound = ("memory" if phases["memory_ns"] > phases["compute_ns"]
                        else "compute")
        transfers = h2d_ns + d2h_ns
        bottleneck = "pcie" if (not overlap_transfers and transfers > kernel_ns) else kernel_bound

        tel = get_telemetry()
        if tel.enabled:
            # modeled frame timeline next to the measured kernels
            tel.counter("model.gpu.frames").inc()
            emit_phase_spans(tel, f"gpu.b{block_size}", breakdown.as_dict(),
                             track="model:gpu")

        return PerfReport(
            platform=f"{self.name}[b{block_size}{'+ovl' if overlap_transfers else ''}]",
            workload=workload,
            frame_ns=int(round(frame_ns)),
            breakdown=breakdown,
            bottleneck=bottleneck,
            notes={
                "block_size": block_size,
                "occupancy": round(occ.value, 3),
                "occupancy_limiter": occ.limiter,
                "kernel_ns": int(round(kernel_ns)),
                "h2d_ns": int(h2d_ns),
                "d2h_ns": int(d2h_ns),
                "lines_per_warp": round(workload.gather_lines_per_warp, 2),
                "overlap_transfers": overlap_transfers,
            },
        )

    def block_size_sweep(self, workload: Workload, block_sizes=(32, 64, 128, 192, 256, 384, 512),
                         **kwargs):
        """F3 sweep: one report per launch configuration."""
        return [self.estimate_frame(workload, block_size=b, **kwargs)
                for b in block_sizes]
