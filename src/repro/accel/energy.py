"""Energy accounting: joules per corrected frame, frames per joule.

The 2010 accelerator literature reports energy efficiency alongside raw
throughput — it is the metric where the Cell and FPGA entries justify
themselves against the GPU.  The model is the standard two-term one:

    E_frame = P_active * t_busy + P_idle * t_exposed

where the busy/exposed split comes from the platform's
:class:`~repro.sim.stats.Breakdown` (a platform waiting on DMA or PCIe
burns idle power, not active power).  Power envelopes are late-2000s
datasheet values for the modelled parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError
from .platform import PerfReport

__all__ = ["PowerSpec", "POWER_SPECS", "EnergyReport", "energy_report"]


@dataclass(frozen=True)
class PowerSpec:
    """Active/idle power envelope of one platform (watts)."""

    name: str
    active_w: float
    idle_w: float

    def __post_init__(self):
        if self.active_w <= 0 or self.idle_w < 0:
            raise PlatformError(f"{self.name}: invalid power envelope")
        if self.idle_w > self.active_w:
            raise PlatformError(f"{self.name}: idle power exceeds active power")


#: late-2000s datasheet envelopes for the modelled parts (board-level
#: for the accelerators, socket-level for the CPUs)
POWER_SPECS = {
    "sequential": PowerSpec("sequential", active_w=65.0, idle_w=25.0),
    "xeon4": PowerSpec("xeon4", active_w=120.0, idle_w=40.0),
    "xeon16": PowerSpec("xeon16", active_w=150.0, idle_w=45.0),
    "cell": PowerSpec("cell", active_w=95.0, idle_w=30.0),
    "gtx280": PowerSpec("gtx280", active_w=236.0, idle_w=50.0),
    "fpga": PowerSpec("fpga", active_w=12.0, idle_w=3.0),
}

#: breakdown phases during which the platform is stalled, not computing
_IDLE_PHASES = ("dma_exposed", "memory_exposed", "kernel_memory_exposed",
                "h2d", "d2h", "ddr_exposed", "sync", "serial")


@dataclass(frozen=True)
class EnergyReport:
    """Energy profile of one workload on one platform."""

    platform: str
    joules_per_frame: float
    watts_average: float
    mpixels_per_joule: float
    fps: float

    @property
    def frames_per_joule(self) -> float:
        return 1.0 / self.joules_per_frame if self.joules_per_frame > 0 else float("inf")


def energy_report(perf: PerfReport, spec: PowerSpec | None = None) -> EnergyReport:
    """Price a :class:`~repro.accel.platform.PerfReport` in joules.

    ``spec`` defaults to the :data:`POWER_SPECS` entry matching the
    report's platform name prefix.
    """
    if spec is None:
        base = perf.platform.split("[", 1)[0]
        try:
            spec = POWER_SPECS[base]
        except KeyError:
            raise PlatformError(
                f"no power spec for platform {base!r}; known: {sorted(POWER_SPECS)}"
            ) from None
    frame_s = perf.frame_ns / 1e9
    if frame_s <= 0:
        raise PlatformError("cannot price a zero-duration frame")

    idle_ns = sum(perf.breakdown.phases.get(p, 0) for p in _IDLE_PHASES)
    idle_s = min(frame_s, idle_ns / 1e9)
    active_s = frame_s - idle_s
    joules = spec.active_w * active_s + spec.idle_w * idle_s
    mpix = perf.workload.pixels / 1e6
    return EnergyReport(
        platform=perf.platform,
        joules_per_frame=joules,
        watts_average=joules / frame_s,
        mpixels_per_joule=mpix / joules if joules > 0 else float("inf"),
        fps=perf.fps,
    )
