"""Compiled fixed-point remap kernels (Numba, optional dependency).

This module is the ``compiled`` rung of the kernel-tier ladder
(:mod:`repro.core.kernel_tiers`): a Numba ``njit(parallel=True)``
gather-multiply-accumulate over the compact LUT tables — ``int32`` tap
offsets plus Q-format ``int16`` quantized weights — that finally
leaves numpy's per-ufunc dispatch overhead behind.  The arithmetic is
the :class:`~repro.core.fixedpoint.FixedPointLUT` model made fast:
wide-integer accumulate, ``+half`` then a single arithmetic shift,
clip, store.

Numba is strictly optional (the ``repro[speed]`` extra).  Nothing here
imports it at module import time; :func:`numba_available` probes once
and kernel compilation happens lazily on first use, so environments
without numba pay nothing and fall back to the numpy tiers.

Dataflow notes (why the loop looks the way it does):

- **Tile-blocked gather ordering** — the output block is walked in
  ``TILE_H x TILE_W`` tiles rather than raster order, the paper's F6
  tile study applied to the host kernel: a backward map is locally
  smooth, so one output tile gathers from a compact source bounding
  box that stays resident in L1/L2 across the tile's taps instead of
  being evicted between distant rows.  Tiles are independent, which is
  exactly what ``prange`` wants.
- The quantized weight table arrives transposed ``(taps, N)`` so that
  for a fixed tap ``k`` consecutive pixels read consecutive weights —
  four (or sixteen) forward streams instead of one strided walk.
- Accumulation is ``int64`` scalar: wide enough for 16 bicubic taps of
  ``uint16`` pixels at Q14 with headroom, and free on 64-bit hosts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "numba_available",
    "numba_version",
    "compiled_apply_block",
    "TILE_H",
    "TILE_W",
]

#: output-tile geometry for the blocked gather walk.  64x64 output
#: pixels pull (for a typical 0.5-zoom correction map) a source bbox of
#: a few hundred cache lines — comfortably L2-resident per tile.
TILE_H = 64
TILE_W = 64

# one-shot probe state: None = not yet probed, else (module | False)
_NUMBA = None
_KERNEL = None


def _probe():
    global _NUMBA
    if _NUMBA is None:
        try:
            import numba  # noqa: F401 - availability probe
            _NUMBA = numba
        except Exception:  # pragma: no cover - import error path
            _NUMBA = False
    return _NUMBA


def numba_available() -> bool:
    """True when the optional numba dependency imports cleanly."""
    return bool(_probe())


def numba_version():
    """The installed numba version string, or ``None``."""
    mod = _probe()
    return getattr(mod, "__version__", None) if mod else None


def _build_kernel():
    """Compile the generic Q-format gather kernel (first use only).

    One jitted function covers nearest/bilinear/bicubic (1/4/16 taps),
    any integer frame dtype and any channel count; numba specializes
    per dtype signature on first call.
    """
    global _KERNEL
    if _KERNEL is not None:
        return _KERNEL
    from numba import njit, prange

    @njit(parallel=True, nogil=True, fastmath=False)
    def _apply_q(flat, idx, qw, mask, has_mask, fill, shift, lo, hi,
                 out, width, tile_h, tile_w):
        n = idx.shape[0]
        taps = idx.shape[1]
        channels = flat.shape[1]
        rows = n // width
        tiles_x = (width + tile_w - 1) // tile_w
        tiles_y = (rows + tile_h - 1) // tile_h
        half = np.int64(1) << (shift - 1)
        for t in prange(tiles_y * tiles_x):
            ty = t // tiles_x
            tx = t - ty * tiles_x
            y_end = min((ty + 1) * tile_h, rows)
            x_end = min((tx + 1) * tile_w, width)
            for y in range(ty * tile_h, y_end):
                base = y * width
                for x in range(tx * tile_w, x_end):
                    i = base + x
                    if has_mask and not mask[i]:
                        for c in range(channels):
                            out[i, c] = fill
                        continue
                    for c in range(channels):
                        acc = np.int64(0)
                        for k in range(taps):
                            acc += (np.int64(flat[idx[i, k], c])
                                    * np.int64(qw[k, i]))
                        v = (acc + half) >> shift
                        if v < lo:
                            v = lo
                        elif v > hi:
                            v = hi
                        out[i, c] = v
        return out

    _KERNEL = _apply_q
    return _KERNEL


def compiled_apply_block(flat, idx, qw_t, mask, fill, frac_bits, lo, hi,
                         out_flat, width):
    """Run the compiled Q-format kernel over one output block.

    Parameters
    ----------
    flat:
        Source frame flattened to ``(H*W, channels)``, integer dtype,
        C-contiguous (gathered raw — no float or wide-int conversion
        pass over the source).
    idx:
        ``(n, taps)`` int32 flat tap offsets for the block.
    qw_t:
        ``(taps, n)`` int16 quantized weights (Q ``frac_bits``).
    mask:
        ``(n,)`` bool validity mask or ``None``.
    fill:
        Integer fill value for masked-out pixels.
    frac_bits:
        Fractional bits of the Q format (the final shift).
    lo, hi:
        Output dtype clip range.
    out_flat:
        ``(n, channels)`` destination, same dtype as the frame.
    width:
        Output width in pixels (``n`` must be a whole number of rows;
        the tile walk needs the 2-D geometry back).

    Raises
    ------
    RuntimeError
        If numba is unavailable — callers are expected to have checked
        :func:`numba_available` (tier resolution does).
    """
    if not numba_available():  # pragma: no cover - guarded by tier resolution
        raise RuntimeError("compiled kernel tier requested but numba is not importable")
    kernel = _build_kernel()
    if mask is None:
        mask_arr = np.empty(1, dtype=np.bool_)
        has_mask = False
    else:
        mask_arr = mask
        has_mask = True
    kernel(flat, idx, qw_t, mask_arr, has_mask,
           np.int64(fill), np.int64(frac_bits), np.int64(lo), np.int64(hi),
           out_flat, np.int64(width), np.int64(TILE_H), np.int64(TILE_W))
    return out_flat
