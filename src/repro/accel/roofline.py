"""Roofline placement of the correction kernel (F9).

``attainable = min(peak_flops, bandwidth * arithmetic_intensity)`` —
the standard visual argument for *why* each platform lands where it
does: the LUT kernel's intensity is far below every ridge point, so
every platform is bandwidth-bound on it, while the on-the-fly kernel
(heavy trigonometry, no table traffic) climbs toward compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError
from .kernels import KernelSpec
from .platform import PlatformModel

__all__ = ["RooflinePoint", "attainable_gflops", "ridge_point", "place"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on one platform's roofline."""

    platform: str
    kernel: str
    intensity: float          # flops / DRAM byte
    attainable_gflops: float
    peak_gflops: float
    bound: str                # "memory" | "compute"

    @property
    def efficiency(self) -> float:
        """Attainable as a fraction of peak."""
        return self.attainable_gflops / self.peak_gflops if self.peak_gflops else 0.0


def attainable_gflops(peak_gflops: float, bw_gbps: float, intensity: float) -> float:
    """The roofline min() itself."""
    if peak_gflops <= 0 or bw_gbps <= 0:
        raise PlatformError("peak and bandwidth must be positive")
    if intensity < 0:
        raise PlatformError(f"intensity must be >= 0, got {intensity}")
    return min(peak_gflops, bw_gbps * intensity)


def ridge_point(peak_gflops: float, bw_gbps: float) -> float:
    """Intensity (flops/byte) where the platform turns compute-bound."""
    if bw_gbps <= 0:
        raise PlatformError("bandwidth must be positive")
    return peak_gflops / bw_gbps


def place(platform: PlatformModel, spec: KernelSpec) -> RooflinePoint:
    """Place one kernel configuration on one platform's roofline."""
    intensity = spec.arithmetic_intensity
    att = attainable_gflops(platform.peak_gflops, platform.mem_bw_gbps, intensity)
    return RooflinePoint(
        platform=platform.name,
        kernel=f"{spec.method}/{spec.mode}",
        intensity=intensity,
        attainable_gflops=att,
        peak_gflops=platform.peak_gflops,
        bound="compute" if intensity >= ridge_point(platform.peak_gflops,
                                                    platform.mem_bw_gbps) else "memory",
    )
