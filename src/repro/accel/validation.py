"""Model-vs-host validation: do the model's *shape* claims hold on
real hardware?

Absolute times from the platform models describe 2010 hardware and
cannot be checked here; but several of the model's **ratios** are
host-independent claims about the kernel itself, and those can be
validated against wall-clock measurements on whatever machine runs the
suite:

- on-the-fly vs LUT cost (the trigonometry premium),
- bicubic vs bilinear vs nearest (the interpolation ladder),

Each :class:`ValidationCase` pairs the sequential model's predicted
ratio with the measured one; ``agreement`` is the factor between them.
Python/numpy constant factors differ from compiled kernels, so the
bar is directional agreement and same order of magnitude — the H2
bench asserts exactly that, no more.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BenchmarkError
from ..core.remap import RemapLUT, remap
from .platform import Workload
from .presets import sequential_reference

__all__ = ["ValidationCase", "validate_kernel_ratios"]


@dataclass(frozen=True)
class ValidationCase:
    """One predicted-vs-measured ratio."""

    name: str
    predicted: float
    measured: float

    @property
    def agreement(self) -> float:
        """max(p/m, m/p) — 1.0 is perfect, 2.0 is within a factor of 2."""
        if self.predicted <= 0 or self.measured <= 0:
            return float("inf")
        r = self.predicted / self.measured
        return max(r, 1.0 / r)

    @property
    def same_direction(self) -> bool:
        """Do model and host agree on *which side is faster*?"""
        return (self.predicted >= 1.0) == (self.measured >= 1.0)


def _median_time(thunk, repeats: int = 5) -> float:
    from ..bench.stats import repeat_timing

    return float(np.median(repeat_timing(thunk, repeats=repeats, warmup=1)))


def validate_kernel_ratios(field, frame, repeats: int = 5):
    """Measure kernel-cost ratios on this host and compare to the model.

    Parameters
    ----------
    field:
        A :class:`~repro.core.mapping.RemapField` (the workload).
    frame:
        A matching uint8 source frame.
    repeats:
        Timing repetitions (median taken).

    Returns
    -------
    list of :class:`ValidationCase`
    """
    frame = np.asarray(frame)
    if frame.shape[:2] != (field.src_height, field.src_width):
        raise BenchmarkError(
            f"frame {frame.shape[:2]} does not match field source "
            f"{(field.src_height, field.src_width)}")

    model = sequential_reference()

    def predict(method, mode):
        w = Workload.from_field(field, method=method, mode=mode)
        return model.estimate_frame(w, threads=1).frame_ns

    luts = {m: RemapLUT(field, method=m)
            for m in ("nearest", "bilinear", "bicubic")}
    measured = {
        ("bilinear", "lut"): _median_time(lambda: luts["bilinear"].apply(frame),
                                          repeats),
        ("bilinear", "otf"): _median_time(
            lambda: remap(frame, field, method="bilinear"), repeats),
        ("nearest", "lut"): _median_time(lambda: luts["nearest"].apply(frame),
                                         repeats),
        ("bicubic", "lut"): _median_time(lambda: luts["bicubic"].apply(frame),
                                         repeats),
    }

    cases = [
        ValidationCase(
            "otf_vs_lut(bilinear)",
            predicted=predict("bilinear", "otf") / predict("bilinear", "lut"),
            measured=measured[("bilinear", "otf")] / measured[("bilinear", "lut")],
        ),
        ValidationCase(
            "bicubic_vs_bilinear(lut)",
            predicted=predict("bicubic", "lut") / predict("bilinear", "lut"),
            measured=measured[("bicubic", "lut")] / measured[("bilinear", "lut")],
        ),
        ValidationCase(
            "bilinear_vs_nearest(lut)",
            predicted=predict("bilinear", "lut") / predict("nearest", "lut"),
            measured=measured[("bilinear", "lut")] / measured[("nearest", "lut")],
        ),
    ]
    return cases
