"""Platform presets: the evaluation's machine park (T1).

Numbers are the published characteristics of the 2010-era hardware
class the study spans (and one modern SMP reference point).  They are
model *parameters*, not measurements — EXPERIMENTS.md records how the
resulting shapes compare to the paper's.
"""

from __future__ import annotations

from ..parallel.simd import AVX2, SSE2
from .cellbe import CellModel
from .fpga import FPGAModel
from .gpu import GPUModel
from .multicore import SMPModel

__all__ = [
    "sequential_reference",
    "xeon_2010",
    "xeon_modern",
    "cell_ps3",
    "gtx280",
    "fpga_midrange",
    "all_platforms",
]


def sequential_reference() -> SMPModel:
    """Single-core scalar baseline (the study's reference point)."""
    return SMPModel(cores=1, clock_ghz=3.0, flops_per_cycle=2.0, isa=None,
                    mem_bw_gbps=6.0, serial_ns=50_000, sync_ns=0,
                    name="sequential")


def xeon_2010() -> SMPModel:
    """Quad-core Harpertown-class Xeon with SSE (the paper's SMP)."""
    return SMPModel(cores=4, clock_ghz=3.0, flops_per_cycle=2.0, isa=SSE2,
                    mem_bw_gbps=10.0, serial_ns=50_000, sync_ns=5_000,
                    name="xeon4")


def xeon_modern() -> SMPModel:
    """16-core AVX2 server — the 'what about today' reference point."""
    return SMPModel(cores=16, clock_ghz=2.6, flops_per_cycle=2.0, isa=AVX2,
                    mem_bw_gbps=80.0, serial_ns=30_000, sync_ns=3_000,
                    name="xeon16")


def cell_ps3() -> CellModel:
    """PS3-class Cell BE: 6 usable SPEs, 256 KB local stores."""
    return CellModel(spes=6, clock_ghz=3.2, flops_per_cycle=8.0,
                     local_store_bytes=256 * 1024, eib_bw_gbps=25.6,
                     dma_setup_ns=500, ppe_serial_ns=80_000, name="cell")


def gtx280() -> GPUModel:
    """GTX 280-class CUDA device with PCIe 1.1 x16 host link."""
    return GPUModel(sms=30, lanes_per_sm=8, clock_ghz=1.3, dram_bw_gbps=141.0,
                    name="gtx280")


def fpga_midrange() -> FPGAModel:
    """Mid-size FPGA streaming pipeline at 150 MHz, II = 1."""
    return FPGAModel(clock_mhz=150.0, initiation_interval=1,
                     line_buffer_bytes=192 * 1024, ddr_bw_gbps=3.2,
                     name="fpga")


def all_platforms():
    """The full machine park, reference first."""
    return [
        sequential_reference(),
        xeon_2010(),
        xeon_modern(),
        cell_ps3(),
        gtx280(),
        fpga_midrange(),
    ]
