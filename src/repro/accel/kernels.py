"""Operation/byte cost descriptors for the correction kernel variants.

Every platform model prices the same work; this module is the single
place where "what does one output pixel cost?" is defined, so the
cross-platform comparison (F4) is apples-to-apples.

Costs follow the kernel structure:

on-the-fly (``otf``) mode
    per pixel: normalize coordinates, ``atan2``-family trigonometry for
    the lens model, sin/cos for the azimuth, plus interpolation
    arithmetic; reads only the source taps.

look-up-table (``lut``) mode
    per pixel: stream one LUT entry (precomputed taps + weights) and
    run only the interpolation arithmetic.

Transcendental functions are priced in flop *equivalents*
(``TRANSCENDENTAL_FLOPS`` each) — the convention used when placing a
kernel on a roofline built from peak FMA throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError
from ..core.interpolation import METHODS, footprint

__all__ = ["KernelSpec", "kernel_spec", "TRANSCENDENTAL_FLOPS", "MODES"]

#: flop-equivalents charged per transcendental evaluation (atan, sin, ...)
TRANSCENDENTAL_FLOPS = 20.0

#: execution modes
MODES = ("otf", "lut")

# Interpolation arithmetic per pixel (multiply+add counted separately).
_INTERP_FLOPS = {
    "nearest": 1.0,        # the rounding/select
    "bilinear": 11.0,      # 3 lerps (2 flops each) + fraction setup
    "bicubic": 68.0,       # 16 MACs (32) + two 4-tap weight evaluations (36)
}

# Tap/weight computation done on the fly (already included in LUT mode's
# table): floor/frac extraction per axis, weight products.
_TAP_SETUP_FLOPS = {
    "nearest": 2.0,
    "bilinear": 8.0,
    "bicubic": 12.0,
}

# Map evaluation on the fly: normalize (4), hypot (3), lens-model inverse
# trig (1 transcendental), azimuth sin+cos (2 transcendentals), scale and
# centre add (6).
_MAP_FLOPS = 13.0 + 3.0 * TRANSCENDENTAL_FLOPS


@dataclass(frozen=True)
class KernelSpec:
    """Per-output-pixel cost of one kernel configuration.

    Attributes
    ----------
    method, mode:
        Interpolation kind and execution mode.
    flops:
        Arithmetic per output pixel (flop equivalents).
    taps:
        Scattered source reads per output pixel.
    src_bytes:
        Bytes fetched from the source frame per output pixel assuming
        no reuse (``taps * pixel_bytes``); platform models scale this
        by their measured/estimated locality.
    lut_bytes:
        Streamed LUT bytes per output pixel (0 in ``otf`` mode).
    out_bytes:
        Bytes written per output pixel.
    """

    method: str
    mode: str
    flops: float
    taps: int
    src_bytes: float
    lut_bytes: float
    out_bytes: float

    @property
    def bytes_total(self) -> float:
        """All DRAM-visible bytes per output pixel (no-reuse bound)."""
        return self.src_bytes + self.lut_bytes + self.out_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte (no-reuse bound) — the roofline x-axis."""
        return self.flops / self.bytes_total if self.bytes_total > 0 else float("inf")


def kernel_spec(method: str = "bilinear", mode: str = "lut",
                pixel_bytes: int = 1, lut_entry_bytes: float | None = None) -> KernelSpec:
    """Build the cost descriptor for one kernel configuration.

    Parameters
    ----------
    method:
        ``nearest`` / ``bilinear`` / ``bicubic``.
    mode:
        ``otf`` (recompute map per frame) or ``lut`` (precomputed
        table).
    pixel_bytes:
        Bytes per pixel per plane (1 for 8-bit gray/planar YUV,
        3 for packed RGB).
    lut_entry_bytes:
        Table bytes per output pixel; defaults to the *deployed*
        compact layout (int32 base offset + quantized per-axis
        fractions: 4 B nearest, 8 B bilinear, 12 B bicubic), from
        which tap weights are derived in-register.  Pass
        ``RemapLUT(...).entry_bytes()`` or
        ``FixedPointLUT(...).entry_bytes()`` to price the explicit
        tap/weight layouts this library materializes in host memory.
    """
    if method not in METHODS:
        raise PlatformError(f"unknown method {method!r}; known: {METHODS}")
    if mode not in MODES:
        raise PlatformError(f"unknown mode {mode!r}; known: {MODES}")
    if pixel_bytes <= 0:
        raise PlatformError(f"pixel_bytes must be positive, got {pixel_bytes}")
    taps = footprint(method)
    if mode == "otf":
        flops = _MAP_FLOPS + _TAP_SETUP_FLOPS[method] + _INTERP_FLOPS[method]
        lut_bytes = 0.0
    else:
        flops = _INTERP_FLOPS[method]
        if lut_entry_bytes is None:
            # int32 base offset (+ per-axis quantized fractions for the
            # interpolating kernels; weights rebuilt in-register).
            lut_entry_bytes = {"nearest": 4, "bilinear": 8, "bicubic": 12}[method]
        lut_bytes = float(lut_entry_bytes)
    if lut_entry_bytes is not None and lut_entry_bytes < 0:
        raise PlatformError(f"lut_entry_bytes must be >= 0, got {lut_entry_bytes}")
    return KernelSpec(
        method=method,
        mode=mode,
        flops=flops,
        taps=taps,
        src_bytes=float(taps * pixel_bytes),
        lut_bytes=lut_bytes if mode == "lut" else 0.0,
        out_bytes=float(pixel_bytes),
    )
