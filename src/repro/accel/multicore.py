"""Shared-memory multicore (SMP) platform model.

Prices the tiled remap kernel on a cache-coherent multicore the way
the paper's pthreads/OpenMP versions behave:

- arithmetic scales with threads (SIMD factor from
  :mod:`repro.parallel.simd` applied per core),
- DRAM traffic does **not** scale — the shared memory controller is a
  single :class:`~repro.sim.memory.SharedBus`-style capacity, so the
  frame time is ``serial + max(compute/threads, traffic/bandwidth)``
  plus synchronization, and the speedup curve bends exactly where the
  kernel crosses from compute- to bandwidth-bound,
- load imbalance is measured, not assumed: when the workload carries a
  real coordinate field, tile costs (out-of-FOV tiles are nearly free)
  are replayed through the requested loop schedule and the resulting
  makespan inflation is applied to the compute term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError
from ..parallel.partition import row_bands, tile_weights
from ..parallel.schedule import Assignment, simulate
from ..parallel.simd import VectorISA, simd_speedup
from ..sim.stats import Breakdown
from .platform import PerfReport, PlatformModel, Workload

__all__ = ["SMPModel"]


@dataclass
class SMPModel(PlatformModel):
    """A symmetric multicore with shared memory bandwidth.

    Attributes
    ----------
    cores:
        Physical cores.
    clock_ghz:
        Core clock.
    flops_per_cycle:
        Scalar arithmetic issue width (flop equivalents per cycle).
    isa:
        Optional SIMD ISA; ``None`` prices the scalar kernel.
    mem_bw_gbps:
        Sustained shared memory bandwidth.
    serial_ns:
        Per-frame serial section (frame acquisition, dispatch).
    sync_ns:
        Cost of one barrier/join involving all participating threads.
    schedule:
        Loop schedule replayed for the imbalance factor
        (``static``/``dynamic``/``guided``).
    tiles_per_thread:
        Work units per thread used for the imbalance replay.
    tap_cycles:
        Average core cycles per scattered source load (cache-hierarchy
        latency seen by the in-order address stream; 1 would mean every
        gather hits L1).
    """

    cores: int = 4
    clock_ghz: float = 3.0
    flops_per_cycle: float = 2.0
    isa: VectorISA | None = None
    mem_bw_gbps: float = 10.0
    serial_ns: int = 50_000
    sync_ns: int = 5_000
    schedule: str = "dynamic"
    tiles_per_thread: int = 8
    tap_cycles: float = 4.0
    name: str = "smp"

    def __post_init__(self):
        if self.cores < 1:
            raise PlatformError(f"cores must be >= 1, got {self.cores}")
        if self.clock_ghz <= 0 or self.flops_per_cycle <= 0 or self.mem_bw_gbps <= 0:
            raise PlatformError("clock, issue width and bandwidth must be positive")
        if self.serial_ns < 0 or self.sync_ns < 0:
            raise PlatformError("overheads must be >= 0")

    # ------------------------------------------------------------------
    @property
    def peak_gflops(self) -> float:
        lanes = self.isa.lanes if self.isa else 1
        return self.cores * self.clock_ghz * self.flops_per_cycle * lanes

    def describe(self) -> dict:
        d = super().describe()
        d.update(cores=self.cores, clock_ghz=self.clock_ghz,
                 simd=self.isa.name if self.isa else "scalar")
        return d

    # ------------------------------------------------------------------
    def _per_pixel_cycles(self, workload: Workload) -> float:
        """Cycles per *valid* output pixel on one core."""
        spec = workload.spec
        cycles = spec.flops / self.flops_per_cycle + spec.taps * self.tap_cycles
        if self.isa is not None:
            cycles /= simd_speedup(self.isa, spec.flops, spec.taps)
        return cycles

    def imbalance_factor(self, workload: Workload, threads: int) -> tuple[float, Assignment | None]:
        """Makespan inflation of the configured schedule on real tiles."""
        if workload.field is None or threads == 1:
            return 1.0, None
        n_tiles = min(workload.out_height, threads * self.tiles_per_thread)
        tiles = row_bands(workload.out_height, workload.out_width, n_tiles)
        weights = tile_weights(workload.field.valid_mask(), tiles)
        assignment = simulate(weights, threads, schedule=self.schedule)
        ideal = weights.sum() / threads
        factor = assignment.makespan / ideal if ideal > 0 else 1.0
        return max(1.0, factor), assignment

    def estimate_frame(self, workload: Workload, threads: int | None = None) -> PerfReport:
        """Price one frame with ``threads`` workers (default: all cores)."""
        threads = self.cores if threads is None else threads
        if not 1 <= threads <= self.cores:
            raise PlatformError(f"threads must be in [1, {self.cores}], got {threads}")

        cycles = workload.pixels * workload.coverage * self._per_pixel_cycles(workload)
        cycles += workload.pixels * (1.0 - workload.coverage) * 1.0  # fill stores
        compute_ns = cycles / (self.clock_ghz * threads)

        imb, assignment = self.imbalance_factor(workload, threads)
        compute_ns *= imb

        traffic = (workload.frame_out_bytes() + workload.frame_lut_bytes()
                   + workload.frame_src_bytes(reuse=True))
        memory_ns = traffic / self.mem_bw_gbps  # GB/s == bytes/ns

        parallel_ns = max(compute_ns, memory_ns)
        sync_total = self.sync_ns * (1 if threads > 1 else 0)
        frame_ns = int(round(self.serial_ns + parallel_ns + sync_total))

        breakdown = Breakdown()
        breakdown.add("serial", self.serial_ns)
        breakdown.add("compute", int(round(compute_ns)))
        breakdown.add("memory_exposed", int(round(max(0.0, memory_ns - compute_ns))))
        breakdown.add("sync", sync_total)

        report = PerfReport(
            platform=f"{self.name}[{threads}t]",
            workload=workload,
            frame_ns=frame_ns,
            breakdown=breakdown,
            bottleneck="memory" if memory_ns > compute_ns else "compute",
            notes={
                "threads": threads,
                "imbalance": round(imb, 4),
                "traffic_bytes": int(traffic),
                "compute_ns": int(round(compute_ns)),
                "memory_ns": int(round(memory_ns)),
            },
        )
        if assignment is not None:
            report.notes["dispatches"] = assignment.dispatches
        return report

    def scaling(self, workload: Workload, thread_counts=None):
        """Speedup sweep: list of reports for increasing thread counts."""
        if thread_counts is None:
            thread_counts = [t for t in (1, 2, 4, 8, 16, 32) if t <= self.cores]
        reports = [self.estimate_frame(workload, threads=t) for t in thread_counts]
        return reports
