"""Cell Broadband Engine platform model (PPE + SPEs + EIB DMA).

The Cell port in the 2010 study is the interesting one: SPEs have no
cache — every byte of source, LUT and output must be staged through
the 256 KB local store by explicit DMA, and performance hinges on

1. **tile sizing** — an output band's working set (output rows + the
   source bounding box they sample + the LUT slice) must fit the local
   store, and the source bounding box is *map-dependent* (it balloons
   near the frame edges where the distortion stretches);
2. **double buffering** — overlapping tile ``k``'s compute with tile
   ``k+1``'s inbound DMA hides the smaller of the two times, at the
   price of halving the usable local store;
3. **EIB contention** — all SPEs share the element-interconnect
   bandwidth, so DMA serializes as SPE count grows.

This model simulates all three with the discrete-event engine: SPE
state machines issue DMA requests against a shared
:class:`~repro.sim.memory.SharedBus`, and tile working sets are taken
from the *actual* coordinate field when available.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import CapacityError, PlatformError
from ..obs.telemetry import emit_phase_spans, get_telemetry
from ..parallel.partition import Tile
from ..sim.event import EventQueue
from ..sim.memory import SharedBus
from ..sim.stats import Breakdown
from .platform import PerfReport, PlatformModel, Workload

__all__ = ["CellModel", "TileJob"]


@dataclass(frozen=True)
class TileJob:
    """One SPE work unit: byte volumes and compute time for a tile.

    ``dma_in_bytes`` is the inbound total; ``dma_src_bytes`` /
    ``dma_lut_bytes`` break it down into source-pixel and LUT-entry
    traffic so the entry-size accounting (the axis the compact int32
    table layout optimizes) is visible per tile.
    """

    tile: Tile
    dma_in_bytes: int
    dma_out_bytes: int
    compute_ns: int
    dma_src_bytes: int = 0
    dma_lut_bytes: int = 0

    @property
    def working_set(self) -> int:
        return self.dma_in_bytes + self.dma_out_bytes


@dataclass
class CellModel(PlatformModel):
    """Cell-BE-class accelerator: PPE control + SPE workers + EIB.

    Defaults approximate a PS3-class part: 6 usable SPEs at 3.2 GHz,
    4-lane single-precision FMA pipelines, 256 KB local store, 25.6
    GB/s element interconnect.
    """

    spes: int = 6
    clock_ghz: float = 3.2
    flops_per_cycle: float = 8.0
    local_store_bytes: int = 256 * 1024
    code_bytes: int = 48 * 1024
    eib_bw_gbps: float = 25.6
    dma_setup_ns: int = 500
    ppe_serial_ns: int = 80_000
    name: str = "cell"

    def __post_init__(self):
        if self.spes < 1:
            raise PlatformError(f"spes must be >= 1, got {self.spes}")
        if self.clock_ghz <= 0 or self.flops_per_cycle <= 0 or self.eib_bw_gbps <= 0:
            raise PlatformError("clock, issue width and bandwidth must be positive")
        if self.code_bytes >= self.local_store_bytes:
            raise PlatformError("code does not fit the local store")
        # memoized feasible tilings: (field id, lut_bytes, out_bytes, db)
        # -> (rows, cols).  Fields are immutable; id() is safe while the
        # caller keeps the field alive (workloads hold a reference).
        self._tile_shape_cache = {}

    # ------------------------------------------------------------------
    @property
    def peak_gflops(self) -> float:
        return self.spes * self.clock_ghz * self.flops_per_cycle

    @property
    def mem_bw_gbps(self) -> float:
        return self.eib_bw_gbps

    def describe(self) -> dict:
        d = super().describe()
        d.update(cores=self.spes, clock_ghz=self.clock_ghz,
                 simd="spu", local_store_kb=self.local_store_bytes // 1024)
        return d

    # ------------------------------------------------------------------
    # Tile costing
    # ------------------------------------------------------------------
    def _jobs(self, workload: Workload, tile_rows: int, tile_cols: int | None = None):
        """Build per-tile jobs (DMA volumes from the real map if present)."""
        spec = workload.spec
        pixel_bytes = spec.out_bytes
        if tile_cols is None:
            tile_cols = workload.out_width
        tiles = []
        for r in range(0, workload.out_height, tile_rows):
            for c in range(0, workload.out_width, tile_cols):
                tiles.append(Tile(r, min(r + tile_rows, workload.out_height),
                                  c, min(c + tile_cols, workload.out_width)))
        cycles_valid = spec.flops / self.flops_per_cycle
        mask = workload.field.valid_mask() if workload.field is not None else None

        jobs = []
        for t in tiles:
            out_bytes = int(t.pixels * pixel_bytes)
            lut_bytes = int(t.pixels * spec.lut_bytes)
            if workload.field is not None:
                bbox = workload.field.source_bbox(t.row0, t.row1, t.col0, t.col1)
                if bbox is None:
                    src_bytes = 0
                    valid_px = 0
                else:
                    sy0, sy1, sx0, sx1 = bbox
                    src_bytes = int((sy1 - sy0) * (sx1 - sx0) * pixel_bytes)
                    valid_px = int(mask[t.row0:t.row1, t.col0:t.col1].sum())
            else:
                # Conservative estimate: tile's share of the sampled source
                # with a 1.5x bounding-box inflation.
                share = t.pixels / workload.pixels
                src_bytes = int(workload.src_width * workload.src_height
                                * pixel_bytes * workload.source_footprint * share * 1.5)
                valid_px = t.pixels
            compute_ns = int(round(valid_px * cycles_valid / self.clock_ghz
                                   + (t.pixels - valid_px) * 1.0 / self.clock_ghz))
            jobs.append(TileJob(t, src_bytes + lut_bytes, out_bytes, compute_ns,
                                dma_src_bytes=src_bytes, dma_lut_bytes=lut_bytes))
        return jobs

    def dma_profile(self, workload: Workload, tile_rows: int | None = None,
                    tile_cols: int | None = None,
                    double_buffering: bool = True) -> dict:
        """Per-frame DMA ledger for one tiling: the entry-size accounting.

        Breaks the frame's DMA traffic into source, LUT and output
        bytes — the LUT share scales linearly with the table's
        ``entry_bytes`` (e.g. halving the bilinear entry from the
        int64 layout's 49 B to the compact int32 layout's 25 B removes
        that fraction of EIB traffic).  Returns totals plus per-pixel
        figures.
        """
        if tile_rows is None:
            auto_rows, auto_cols = self.max_tile_shape(workload, double_buffering)
            tile_rows = auto_rows
            if tile_cols is None:
                tile_cols = auto_cols
        jobs = self._jobs(workload, tile_rows, tile_cols)
        src = sum(j.dma_src_bytes for j in jobs)
        lut = sum(j.dma_lut_bytes for j in jobs)
        out = sum(j.dma_out_bytes for j in jobs)
        total = src + lut + out
        self._emit_ledger(jobs, src, lut, out)
        return {
            "tiles": len(jobs),
            "tile_rows": tile_rows,
            "tile_cols": tile_cols if tile_cols is not None else workload.out_width,
            "src_bytes": src,
            "lut_bytes": lut,
            "out_bytes": out,
            "total_bytes": total,
            "lut_entry_bytes": workload.spec.lut_bytes,
            "bytes_per_output_px": total / workload.pixels,
            "dma_setup_ns_total": len(jobs) * 2 * self.dma_setup_ns,
        }

    def planar_dma_profile(self, plane_workloads: dict,
                           tile_rows: int | None = None,
                           tile_cols: int | None = None,
                           double_buffering: bool = True) -> dict:
        """DMA ledger for one planar (e.g. YUV 4:2:0) frame.

        ``plane_workloads`` maps plane names to single-channel
        :class:`~repro.accel.platform.Workload`\\ s — for 4:2:0 a
        full-resolution luma plane plus two half-resolution chroma
        planes sharing one derived map.  Each plane is profiled with
        its own feasible tiling (``tile_rows`` applies to the luma
        plane; chroma planes use ``tile_rows // 2`` so the band count
        matches) and the ledgers are summed, giving the modeled
        bytes/frame that the measured planar hot path is reconciled
        against in ``benchmarks/check_regression.py``.
        """
        planes = {}
        src = lut = out = tiles = setup = 0
        total_px = 0
        luma_h = max(w.out_height for w in plane_workloads.values())
        for name, workload in plane_workloads.items():
            rows = tile_rows
            if rows is not None and workload.out_height < luma_h:
                rows = max(1, rows // 2)
            prof = self.dma_profile(workload, tile_rows=rows,
                                    tile_cols=tile_cols,
                                    double_buffering=double_buffering)
            planes[name] = prof
            src += prof["src_bytes"]
            lut += prof["lut_bytes"]
            out += prof["out_bytes"]
            tiles += prof["tiles"]
            setup += prof["dma_setup_ns_total"]
            total_px += workload.pixels
        total = src + lut + out
        return {
            "planes": planes,
            "tiles": tiles,
            "src_bytes": src,
            "lut_bytes": lut,
            "out_bytes": out,
            "total_bytes": total,
            "bytes_per_output_px": total / total_px,
            "dma_setup_ns_total": setup,
        }

    def fused_dma_profile(self, fused_workload: Workload,
                          staged_workloads: dict,
                          tile_rows: int | None = None,
                          tile_cols: int | None = None,
                          double_buffering: bool = True) -> dict:
        """DMA ledger of a fused composed-map pass vs its staged twin.

        ``fused_workload`` models the single correct+downscale gather
        at the *delivered* resolution (one composed table); each entry
        of ``staged_workloads`` (e.g. ``{"correct": ..., "downscale":
        ...}``) models one pass of the naive pipeline, which also pays
        the intermediate frame's store and re-load through the EIB.
        Both sides are profiled with their own feasible tilings and
        the ledgers compared: ``savings_ratio`` is staged/fused total
        bytes — the modeled counterpart of the measured
        ``bytes_gathered`` ratio gated by ``check_fused`` in
        ``benchmarks/check_regression.py``.
        """
        fused = self.dma_profile(fused_workload, tile_rows=tile_rows,
                                 tile_cols=tile_cols,
                                 double_buffering=double_buffering)
        stages = {}
        staged_total = staged_setup = staged_tiles = 0
        for name, workload in staged_workloads.items():
            prof = self.dma_profile(workload, tile_cols=tile_cols,
                                    double_buffering=double_buffering)
            stages[name] = prof
            staged_total += prof["total_bytes"]
            staged_setup += prof["dma_setup_ns_total"]
            staged_tiles += prof["tiles"]
        return {
            "fused": fused,
            "stages": stages,
            "staged_total_bytes": staged_total,
            "staged_tiles": staged_tiles,
            "staged_dma_setup_ns_total": staged_setup,
            "savings_ratio": (staged_total / fused["total_bytes"]
                              if fused["total_bytes"] else float("inf")),
            "bytes_saved": staged_total - fused["total_bytes"],
        }

    #: Tiles replayed into the trace per ledger; a 1080p frame can tile
    #: into hundreds of jobs, far past what a timeline view needs.
    _TRACE_TILE_CAP = 64

    def _emit_ledger(self, jobs, src_bytes, lut_bytes, out_bytes) -> None:
        """Re-emit a DMA ledger through the telemetry registry.

        Counters carry the byte totals; the per-tile ledger is replayed
        as *modeled* spans (DMA-in, compute, DMA-out laid end to end on
        a synthetic SPE track), so the analytic timeline renders next
        to the measured kernels in one Chrome trace.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.counter("model.cell.ledgers").inc()
        tel.counter("model.cell.dma_src_bytes").inc(src_bytes)
        tel.counter("model.cell.dma_lut_bytes").inc(lut_bytes)
        tel.counter("model.cell.dma_out_bytes").inc(out_bytes)
        t = time.time()
        for i, job in enumerate(jobs[: self._TRACE_TILE_CAP]):
            # EIB at B GB/s moves 1 byte in 1/B ns
            t = emit_phase_spans(tel, f"cell.tile{i}", {
                "dma_in": 2 * self.dma_setup_ns + job.dma_in_bytes / self.eib_bw_gbps,
                "compute": job.compute_ns,
                "dma_out": job.dma_out_bytes / self.eib_bw_gbps,
            }, track="model:cell-spe", start=t)
        if len(jobs) > self._TRACE_TILE_CAP:
            tel.counter("model.cell.trace_tiles_dropped").inc(
                len(jobs) - self._TRACE_TILE_CAP)

    def usable_local_store(self, double_buffering: bool) -> int:
        """Bytes available for tile buffers (halved by double buffering)."""
        usable = self.local_store_bytes - self.code_bytes
        return usable // 2 if double_buffering else usable

    def max_tile_rows(self, workload: Workload, double_buffering: bool = True,
                      tile_cols: int | None = None) -> int:
        """Largest band height whose working set fits the local store.

        Raises :class:`~repro.errors.CapacityError` when even a single
        row (at the given column split) does not fit.
        """
        budget = self.usable_local_store(double_buffering)

        def fits(rows: int) -> bool:
            jobs = self._jobs(workload, rows, tile_cols)
            return max(j.working_set for j in jobs) <= budget

        if not fits(1):
            raise CapacityError(
                f"no feasible tile: a single output row's working set exceeds the "
                f"{budget}-byte local-store budget (tile_cols={tile_cols})")
        # Exponential probe then binary search (feasibility is monotone in
        # practice: taller bands only widen their source bounding boxes).
        hi = 1
        while hi < workload.out_height and fits(min(hi * 2, workload.out_height)):
            hi = min(hi * 2, workload.out_height)
        lo = hi  # largest known-feasible
        upper = min(hi * 2, workload.out_height)
        while lo + 1 < upper:
            mid = (lo + upper) // 2
            if fits(mid):
                lo = mid
            else:
                upper = mid
        return lo

    def max_tile_shape(self, workload: Workload, double_buffering: bool = True):
        """Feasible ``(tile_rows, tile_cols)`` maximizing tile pixels.

        Tries progressively finer column splits (full width, halves,
        quarters, ...) and picks the feasible configuration with the
        largest tile area — fewer tiles means fewer DMA setups.
        """
        key = (id(workload.field), workload.spec.lut_bytes,
               workload.spec.out_bytes, workload.out_width, workload.out_height,
               double_buffering)
        cached = self._tile_shape_cache.get(key)
        if cached is not None:
            return cached
        budget = self.usable_local_store(double_buffering)
        per_px = workload.spec.out_bytes + workload.spec.lut_bytes
        best = None
        cols = workload.out_width
        while cols >= 16:
            # Cheap lower bound: one output row of this width already
            # needs cols * (out + lut) bytes before any source data.
            if cols * per_px > budget:
                cols //= 2
                continue
            try:
                rows = self.max_tile_rows(workload, double_buffering, tile_cols=cols)
            except CapacityError:
                rows = None
            if rows is not None:
                area = rows * cols
                if best is None or area > best[0]:
                    best = (area, rows, cols)
            cols //= 2
        if best is None:
            raise CapacityError(
                "no feasible tiling: even a 16-column single row exceeds the "
                "local-store budget")
        self._tile_shape_cache[key] = (best[1], best[2])
        return best[1], best[2]

    # ------------------------------------------------------------------
    # Event-driven execution
    # ------------------------------------------------------------------
    def simulate(self, workload: Workload, spes: int | None = None,
                 double_buffering: bool = True,
                 tile_rows: int | None = None,
                 tile_cols: int | None = None) -> PerfReport:
        """Run the SPE/DMA timeline for one frame.

        Parameters
        ----------
        spes:
            SPE count (default: all configured SPEs).
        double_buffering:
            Overlap inbound DMA of the next tile with compute.
        tile_rows, tile_cols:
            Tile shape; defaults to the largest feasible configuration
            (full-width bands when they fit, column-split tiles
            otherwise).  A request that does not fit the local store
            raises :class:`~repro.errors.CapacityError`.
        """
        spes = self.spes if spes is None else spes
        if not 1 <= spes <= self.spes:
            raise PlatformError(f"spes must be in [1, {self.spes}], got {spes}")
        if tile_rows is None:
            # Auto-tune the band height the way the real port does (profile
            # a few candidates): the trade-off is parallel balance (more
            # tiles) vs DMA-setup amortization (fewer, bigger tiles), and
            # the winner depends on frame size and kernel weight.
            max_rows, auto_cols = self.max_tile_shape(workload, double_buffering)
            if tile_cols is None:
                tile_cols = auto_cols
            h = workload.out_height
            candidates = sorted({
                min(max_rows, max(1, -(-h // (k * spes)))) for k in (1, 2, 4)
            } | {max_rows})
            best = None
            for rows in candidates:
                rep = self.simulate(workload, spes=spes,
                                    double_buffering=double_buffering,
                                    tile_rows=rows, tile_cols=tile_cols)
                if best is None or rep.frame_ns < best.frame_ns:
                    best = rep
            return best
        jobs = self._jobs(workload, tile_rows, tile_cols)
        budget = self.usable_local_store(double_buffering)
        worst = max(j.working_set for j in jobs)
        if worst > budget:
            raise CapacityError(
                f"tile working set {worst} B exceeds local-store budget {budget} B "
                f"(tile_rows={tile_rows}, double_buffering={double_buffering})")

        queue = EventQueue()
        bus = SharedBus("eib", self.eib_bw_gbps, setup_ns=self.dma_setup_ns)
        finish = [0] * spes
        compute_busy = [0] * spes

        class SpeState:
            """Per-SPE double-buffered fetch/compute/writeback machine."""

            def __init__(self, sid, work, model):
                self.sid = sid
                self.work = work           # list of TileJob
                self.model = model
                self.fetch_next = 0        # next job index to DMA in
                self.ready = []            # fetched jobs awaiting compute
                self.compute_done = 0      # jobs fully computed
                self.computing = False
                self.buffers = 2 if double_buffering else 1
                self.in_flight = 0

            def start(self):
                self.try_fetch()

            def try_fetch(self):
                while (self.fetch_next < len(self.work)
                       and self.in_flight + len(self.ready) + (1 if self.computing else 0)
                       < self.buffers):
                    job = self.work[self.fetch_next]
                    self.fetch_next += 1
                    self.in_flight += 1
                    _, end = bus.request(queue.now, job.dma_in_bytes)
                    queue.schedule_at(end, lambda j=job: self.on_fetched(j))

            def on_fetched(self, job):
                self.in_flight -= 1
                self.ready.append(job)
                self.try_compute()

            def try_compute(self):
                if self.computing or not self.ready:
                    return
                job = self.ready.pop(0)
                self.computing = True
                compute_busy[self.sid] += job.compute_ns
                queue.schedule(job.compute_ns, lambda j=job: self.on_computed(j))

            def on_computed(self, job):
                self.computing = False
                _, end = bus.request(queue.now, job.dma_out_bytes)
                self.compute_done += 1
                if self.compute_done == len(self.work):
                    queue.schedule_at(end, lambda: self.on_done(end))
                else:
                    # Writeback completion frees the buffer for the next fetch.
                    queue.schedule_at(end, self.after_writeback)
                    self.try_compute()

            def after_writeback(self):
                self.try_fetch()
                self.try_compute()

            def on_done(self, end):
                finish[self.sid] = max(finish[self.sid], end)

        # Greedy load-balanced assignment (the PPE dispatcher hands tiles
        # to the least-loaded SPE), preserving per-SPE execution order.
        work_lists = [[] for _ in range(spes)]
        load = [0] * spes
        for job in jobs:
            s = min(range(spes), key=lambda k: (load[k], k))
            work_lists[s].append(job)
            load[s] += job.compute_ns + bus.occupancy_ns(job.dma_in_bytes + job.dma_out_bytes)
        machines = [SpeState(s, work_lists[s], self) for s in range(spes)]
        for m in machines:
            if m.work:
                m.start()
        queue.run()

        frame_parallel_ns = max(finish) if any(finish) else 0
        frame_ns = self.ppe_serial_ns + frame_parallel_ns

        total_compute = sum(compute_busy)
        breakdown = Breakdown()
        breakdown.add("serial", self.ppe_serial_ns)
        breakdown.add("compute", total_compute // max(1, spes))
        breakdown.add("dma_exposed",
                      max(0, frame_parallel_ns - total_compute // max(1, spes)))

        dma_bytes = sum(j.dma_in_bytes + j.dma_out_bytes for j in jobs)
        return PerfReport(
            platform=f"{self.name}[{spes}spe{'+db' if double_buffering else ''}]",
            workload=workload,
            frame_ns=int(frame_ns),
            breakdown=breakdown,
            bottleneck="dma" if bus.busy_ns > total_compute / max(1, spes) else "compute",
            notes={
                "spes": spes,
                "double_buffering": double_buffering,
                "tile_rows": tile_rows,
                "tile_cols": tile_cols if tile_cols is not None else workload.out_width,
                "tiles": len(jobs),
                "dma_bytes": dma_bytes,
                "bus_busy_ns": bus.busy_ns,
                "bus_utilization": round(bus.busy_ns / frame_parallel_ns, 4)
                if frame_parallel_ns else 0.0,
                "compute_ns_per_spe": total_compute // max(1, spes),
            },
        )

    def estimate_frame(self, workload: Workload) -> PerfReport:
        """Default estimate: all SPEs, double buffering, best tile size."""
        return self.simulate(workload)

    def scaling(self, workload: Workload, spe_counts=None, double_buffering=True):
        """Speedup sweep over SPE counts."""
        if spe_counts is None:
            spe_counts = [s for s in (1, 2, 4, 6, 8) if s <= self.spes]
        return [self.simulate(workload, spes=s, double_buffering=double_buffering)
                for s in spe_counts]
