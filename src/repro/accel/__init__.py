"""Hardware platform models: multicore SMP, Cell BE, SIMT GPU, FPGA.

Each model prices the same :class:`~repro.accel.platform.Workload`
(built from a real remap field when available) and returns a
:class:`~repro.accel.platform.PerfReport` with a phase breakdown.  The
presets in :mod:`~repro.accel.presets` form the evaluation's machine
park.
"""

from .cellbe import CellModel, TileJob
from .energy import POWER_SPECS, EnergyReport, PowerSpec, energy_report
from .fpga import FPGAModel
from .gpu import GPUModel, Occupancy
from .hetero import PipelineModel, Stage, gpu_application_pipeline
from .kernels import MODES, TRANSCENDENTAL_FLOPS, KernelSpec, kernel_spec
from .multicore import SMPModel
from .platform import STANDARD_RESOLUTIONS, PerfReport, PlatformModel, Workload
from .presets import (
    all_platforms,
    cell_ps3,
    fpga_midrange,
    gtx280,
    sequential_reference,
    xeon_2010,
    xeon_modern,
)
from .roofline import RooflinePoint, attainable_gflops, place, ridge_point
from .validation import ValidationCase, validate_kernel_ratios

__all__ = [
    "KernelSpec",
    "kernel_spec",
    "MODES",
    "TRANSCENDENTAL_FLOPS",
    "Workload",
    "PerfReport",
    "PlatformModel",
    "STANDARD_RESOLUTIONS",
    "SMPModel",
    "CellModel",
    "TileJob",
    "GPUModel",
    "Occupancy",
    "FPGAModel",
    "RooflinePoint",
    "attainable_gflops",
    "ridge_point",
    "place",
    "PowerSpec",
    "POWER_SPECS",
    "EnergyReport",
    "energy_report",
    "Stage",
    "PipelineModel",
    "gpu_application_pipeline",
    "ValidationCase",
    "validate_kernel_ratios",
    "sequential_reference",
    "xeon_2010",
    "xeon_modern",
    "cell_ps3",
    "gtx280",
    "fpga_midrange",
    "all_platforms",
]
