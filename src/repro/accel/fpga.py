"""FPGA streaming-pipeline platform model.

A hardware implementation of the corrector is a deep pixel pipeline:
output pixels stream out one per ``II`` clock cycles, while the source
frame streams in through on-chip **line buffers**.  The feasibility
condition is the interesting part: the pipeline can only produce
output row ``i`` once every source row it samples is resident, so the
line-buffer RAM must hold the largest *vertical span* the remap needs
(plus the interpolation margin).  Fisheye maps have small spans near
the centre and large ones near the frame's top/bottom edges, so the
span is measured from the real coordinate field.

When the span fits, throughput is simply ``clock / II`` pixels/s —
independent of the map.  When it does not fit, the design must fall
back to random access into external DDR, and the model prices that
mode with the measured gather traffic instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CapacityError, PlatformError
from ..sim.stats import Breakdown
from .platform import PerfReport, PlatformModel, Workload

__all__ = ["FPGAModel"]


@dataclass
class FPGAModel(PlatformModel):
    """A streaming correction pipeline on an FPGA-class device.

    Defaults approximate a mid-size 2010 part: 150 MHz pixel clock,
    II = 1, ~1.5 Mb of block RAM usable for line buffers, 3.2 GB/s
    external DDR.
    """

    clock_mhz: float = 150.0
    initiation_interval: int = 1
    pixels_per_cycle: int = 1
    line_buffer_bytes: int = 192 * 1024
    ddr_bw_gbps: float = 3.2
    frame_sync_ns: int = 20_000
    interp_margin_rows: int = 4
    name: str = "fpga"

    def __post_init__(self):
        if self.clock_mhz <= 0 or self.ddr_bw_gbps <= 0:
            raise PlatformError("clock and bandwidth must be positive")
        if self.initiation_interval < 1 or self.pixels_per_cycle < 1:
            raise PlatformError("II and pixels_per_cycle must be >= 1")
        if self.line_buffer_bytes <= 0:
            raise PlatformError("line buffer capacity must be positive")

    # ------------------------------------------------------------------
    @property
    def peak_gflops(self) -> float:
        # A fully unrolled pipeline commits one pixel's whole arithmetic
        # per initiation interval; report the bilinear-LUT equivalent.
        return (self.clock_mhz * 1e6 * self.pixels_per_cycle
                / self.initiation_interval) * 11.0 / 1e9

    @property
    def mem_bw_gbps(self) -> float:
        return self.ddr_bw_gbps

    def describe(self) -> dict:
        d = super().describe()
        d.update(clock_ghz=self.clock_mhz / 1000.0, simd="pipeline",
                 line_buffer_kb=self.line_buffer_bytes // 1024)
        return d

    # ------------------------------------------------------------------
    def required_line_buffer_rows(self, workload: Workload) -> int:
        """Rows of source the streaming mode must keep resident."""
        if workload.field is not None:
            span = float(workload.field.row_span().max())
        else:
            # Conservative default: a fisheye map can fold ~1/4 of the
            # source height into one output row near the edges.
            span = workload.src_height / 4.0
        return int(np.ceil(span)) + self.interp_margin_rows

    def streaming_feasible(self, workload: Workload) -> bool:
        """Does the required window fit the on-chip line buffers?"""
        rows = self.required_line_buffer_rows(workload)
        need = rows * workload.src_width * workload.spec.out_bytes
        return need <= self.line_buffer_bytes

    def estimate_frame(self, workload: Workload) -> PerfReport:
        rows = self.required_line_buffer_rows(workload)
        window_bytes = int(rows * workload.src_width * workload.spec.out_bytes)
        breakdown = Breakdown()
        breakdown.add("sync", self.frame_sync_ns)

        if window_bytes <= self.line_buffer_bytes:
            cycles = workload.pixels * self.initiation_interval / self.pixels_per_cycle
            pipe_ns = cycles / (self.clock_mhz / 1000.0)  # MHz -> cycles/ns
            # the source must still stream in from DDR once
            src_bytes = workload.src_width * workload.src_height * workload.spec.out_bytes
            stream_ns = src_bytes / self.ddr_bw_gbps
            frame_ns = self.frame_sync_ns + max(pipe_ns, stream_ns)
            breakdown.add("pipeline", int(round(pipe_ns)))
            breakdown.add("ddr_exposed", int(round(max(0.0, stream_ns - pipe_ns))))
            mode = "streaming"
            bottleneck = "ddr" if stream_ns > pipe_ns else "pipeline"
        else:
            # Random-access fallback: every tap is an external read burst.
            taps = workload.pixels * workload.coverage * workload.spec.taps
            burst = 32  # DDR burst granularity per scattered access
            traffic = taps * burst + workload.frame_out_bytes() + workload.frame_lut_bytes()
            frame_ns = self.frame_sync_ns + traffic / self.ddr_bw_gbps
            breakdown.add("ddr_random", int(round(traffic / self.ddr_bw_gbps)))
            mode = "random_access"
            bottleneck = "ddr"

        return PerfReport(
            platform=f"{self.name}[{mode}]",
            workload=workload,
            frame_ns=int(round(frame_ns)),
            breakdown=breakdown,
            bottleneck=bottleneck,
            notes={
                "mode": mode,
                "line_buffer_rows_required": rows,
                "line_buffer_bytes_required": window_bytes,
                "line_buffer_bytes_available": self.line_buffer_bytes,
            },
        )

    def require_streaming(self, workload: Workload):
        """Raise :class:`~repro.errors.CapacityError` if streaming won't fit."""
        if not self.streaming_feasible(workload):
            rows = self.required_line_buffer_rows(workload)
            need = rows * workload.src_width * workload.spec.out_bytes
            raise CapacityError(
                f"line buffer needs {need} B ({rows} rows) but only "
                f"{self.line_buffer_bytes} B are available")
