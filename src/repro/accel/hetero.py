"""End-to-end application pipeline model (host + accelerator).

Kernel speedup is not application speedup: the paper's real-time
system is *capture -> host pre-process -> transfer -> correct ->
transfer -> encode*, and once the kernel is accelerated the pipeline
bottleneck moves to transfers or the host stages.  This module models
a steady-state software pipeline:

- each :class:`Stage` consumes a named resource for a fixed time per
  frame;
- stages bound to the *same* resource serialize (e.g. h2d and d2h on a
  half-duplex PCIe link, or decode and encode on the same host core);
- with enough frames in flight, sustained throughput is set by the
  busiest resource, and per-frame latency by the stage-time sum.

This is exact for the fixed-time, in-order case (a direct consequence
of utilization bounds), so no event simulation is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlatformError
from .gpu import GPUModel
from .platform import Workload

__all__ = ["Stage", "PipelineModel", "gpu_application_pipeline"]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: ``time_ns`` per frame on ``resource``."""

    name: str
    time_ns: int
    resource: str

    def __post_init__(self):
        if self.time_ns < 0:
            raise PlatformError(f"stage {self.name}: negative time")
        if not self.resource:
            raise PlatformError(f"stage {self.name}: empty resource name")


@dataclass
class PipelineModel:
    """A linear frame pipeline with per-resource serialization."""

    stages: list = field(default_factory=list)

    def __post_init__(self):
        if not self.stages:
            raise PlatformError("pipeline needs at least one stage")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate stage names: {names}")

    # ------------------------------------------------------------------
    def resource_busy_ns(self) -> dict:
        """Per-frame busy time of each resource."""
        busy: dict = {}
        for s in self.stages:
            busy[s.resource] = busy.get(s.resource, 0) + s.time_ns
        return busy

    @property
    def bottleneck(self) -> str:
        """The resource that caps steady-state throughput."""
        busy = self.resource_busy_ns()
        return max(busy, key=lambda r: (busy[r], r))

    @property
    def interval_ns(self) -> int:
        """Steady-state frame interval (1 / throughput)."""
        return max(self.resource_busy_ns().values())

    @property
    def fps(self) -> float:
        return 1e9 / self.interval_ns if self.interval_ns > 0 else float("inf")

    @property
    def latency_ns(self) -> int:
        """Capture-to-output latency of one frame (stage-time sum)."""
        return sum(s.time_ns for s in self.stages)

    @property
    def frames_in_flight(self) -> int:
        """Frames concurrently in the pipe at steady state (ceil)."""
        if self.interval_ns == 0:
            return 1
        return -(-self.latency_ns // self.interval_ns)

    def utilization(self) -> dict:
        """Per-resource utilization at steady state."""
        interval = self.interval_ns
        return {r: b / interval for r, b in self.resource_busy_ns().items()}

    def describe(self) -> str:
        lines = [f"{'stage':>12} {'ms/frame':>9} {'resource':>10}"]
        for s in self.stages:
            lines.append(f"{s.name:>12} {s.time_ns / 1e6:>9.3f} {s.resource:>10}")
        lines.append(f"steady state: {self.fps:.1f} fps "
                     f"(bottleneck {self.bottleneck}), latency "
                     f"{self.latency_ns / 1e6:.2f} ms, "
                     f"{self.frames_in_flight} frames in flight")
        return "\n".join(lines)


def gpu_application_pipeline(gpu: GPUModel, workload: Workload,
                             decode_ns: int, encode_ns: int,
                             block_size: int = 256,
                             full_duplex_pcie: bool = False) -> PipelineModel:
    """The paper's end-to-end GPU application as a pipeline model.

    Stages: host decode -> h2d -> device kernel -> d2h -> host encode.
    ``full_duplex_pcie`` gives h2d and d2h independent link resources
    (PCIe is full duplex; 2010 drivers often serialized anyway).
    """
    if decode_ns < 0 or encode_ns < 0:
        raise PlatformError("codec stage times must be >= 0")
    rep = gpu.estimate_frame(workload, block_size=block_size)
    h2d = rep.notes["h2d_ns"]
    d2h = rep.notes["d2h_ns"]
    kernel = rep.notes["kernel_ns"]
    up = "pcie_up" if full_duplex_pcie else "pcie"
    down = "pcie_down" if full_duplex_pcie else "pcie"
    return PipelineModel([
        Stage("decode", decode_ns, "host"),
        Stage("h2d", h2d, up),
        Stage("kernel", kernel, "device"),
        Stage("d2h", d2h, down),
        Stage("encode", encode_ns, "host"),
    ])
