"""Workload description and the platform-model interface.

A :class:`Workload` is "correct frames of this geometry with this
kernel"; it optionally carries the *actual* remap field, from which
map-dependent quantities (coverage, source footprint, coalescing,
per-tile bounding boxes) are measured rather than assumed.  Every
platform model implements :class:`PlatformModel.estimate_frame`,
returning a :class:`PerfReport` with a per-phase time breakdown — the
unit all benchmark tables are printed from.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

import numpy as np

from ..errors import PlatformError
from ..sim.stats import Breakdown
from ..core.mapping import RemapField
from .kernels import KernelSpec, kernel_spec

__all__ = ["Workload", "PerfReport", "PlatformModel", "STANDARD_RESOLUTIONS"]

#: the resolution sweep used across the evaluation (name -> (width, height))
STANDARD_RESOLUTIONS = {
    "VGA": (640, 480),
    "SVGA": (800, 600),
    "720p": (1280, 720),
    "1080p": (1920, 1080),
    "4Mpx": (2048, 2048),
}


@dataclass
class Workload:
    """One correction task: output geometry + kernel configuration.

    Attributes
    ----------
    out_width, out_height:
        Output frame size.
    src_width, src_height:
        Source (fisheye) frame size.
    spec:
        The kernel cost descriptor (see
        :func:`repro.accel.kernels.kernel_spec`).
    field:
        Optional real coordinate field for measured statistics; when
        absent, conservative defaults are used (full coverage, 60 %
        source footprint, moderately scattered gathers).
    frames:
        Frames per measurement (streaming amortizes per-stream setup).
    """

    out_width: int
    out_height: int
    src_width: int
    src_height: int
    spec: KernelSpec
    field: Optional[RemapField] = None
    frames: int = 1

    def __post_init__(self):
        for label, v in (("out_width", self.out_width), ("out_height", self.out_height),
                         ("src_width", self.src_width), ("src_height", self.src_height),
                         ("frames", self.frames)):
            if v <= 0:
                raise PlatformError(f"{label} must be positive, got {v}")
        if self.field is not None:
            if self.field.shape != (self.out_height, self.out_width):
                raise PlatformError(
                    f"field shape {self.field.shape} does not match output "
                    f"{self.out_height}x{self.out_width}")
            if (self.field.src_width, self.field.src_height) != (self.src_width, self.src_height):
                raise PlatformError("field source size does not match workload source size")

    # ------------------------------------------------------------------
    @classmethod
    def from_field(cls, field: RemapField, method: str = "bilinear",
                   mode: str = "lut", pixel_bytes: int = 1, frames: int = 1,
                   lut_entry_bytes: float | None = None) -> "Workload":
        """Build a workload around a real coordinate field."""
        spec = kernel_spec(method, mode, pixel_bytes, lut_entry_bytes)
        h, w = field.shape
        return cls(out_width=w, out_height=h, src_width=field.src_width,
                   src_height=field.src_height, spec=spec, field=field, frames=frames)

    @property
    def pixels(self) -> int:
        """Output pixels per frame."""
        return self.out_width * self.out_height

    @cached_property
    def coverage(self) -> float:
        """Fraction of output pixels inside the FOV (measured if possible)."""
        if self.field is not None:
            return self.field.coverage()
        return 1.0

    @cached_property
    def source_footprint(self) -> float:
        """Fraction of the source frame actually sampled.

        Measured as the share of distinct source pixels among the
        nearest-tap targets.  This bounds the compulsory source
        traffic of a well-blocked implementation: each needed source
        byte is loaded once.
        """
        if self.field is None:
            return 0.6
        mask = self.field.valid_mask()
        if not mask.any():
            return 0.0
        xs = np.rint(self.field.map_x[mask]).astype(np.int64)
        ys = np.rint(self.field.map_y[mask]).astype(np.int64)
        uniq = np.unique(ys * self.field.src_width + xs).size
        return float(uniq) / (self.src_width * self.src_height)

    @cached_property
    def gather_lines_per_warp(self) -> float:
        """Mean distinct 128-byte lines per 32 consecutive gathers."""
        if self.field is None:
            return 6.0
        counts = self.field.gather_lines(group=32, line_bytes=128,
                                         pixel_bytes=max(1, int(self.spec.out_bytes)))
        return float(counts.mean()) if counts.size else 0.0

    # ------------------------------------------------------------------
    def frame_flops(self) -> float:
        """Arithmetic per frame (out-of-FOV pixels still pay the fill)."""
        active = self.coverage
        return self.pixels * (self.spec.flops * active + 1.0 * (1.0 - active))

    def frame_out_bytes(self) -> float:
        return self.pixels * self.spec.out_bytes

    def frame_lut_bytes(self) -> float:
        return self.pixels * self.spec.lut_bytes

    def frame_src_bytes(self, reuse: bool = True) -> float:
        """Source traffic per frame.

        ``reuse=True`` gives the compulsory-traffic bound (each needed
        source byte once); ``False`` the no-cache bound (every tap goes
        to memory).
        """
        per_px = self.spec.src_bytes / self.spec.taps  # bytes per tap
        if reuse:
            return self.src_width * self.src_height * per_px * self.source_footprint
        return self.pixels * self.spec.src_bytes * self.coverage


@dataclass
class PerfReport:
    """Estimated execution profile of one workload on one platform."""

    platform: str
    workload: Workload
    frame_ns: int
    breakdown: Breakdown = field(default_factory=Breakdown)
    bottleneck: str = ""
    notes: dict = field(default_factory=dict)

    @property
    def fps(self) -> float:
        return 1e9 / self.frame_ns if self.frame_ns > 0 else float("inf")

    @property
    def mpixels_per_s(self) -> float:
        return self.workload.pixels * self.fps / 1e6

    def speedup_over(self, other: "PerfReport") -> float:
        """How many times faster this report is than ``other``."""
        if self.frame_ns <= 0:
            return float("inf")
        return other.frame_ns / self.frame_ns


class PlatformModel(ABC):
    """A hardware platform that can estimate the correction kernel."""

    #: display name, set by subclasses
    name: str = "abstract"

    @abstractmethod
    def estimate_frame(self, workload: Workload) -> PerfReport:
        """Estimate one frame's execution (deterministic)."""

    @property
    @abstractmethod
    def peak_gflops(self) -> float:
        """Peak single-precision arithmetic throughput."""

    @property
    @abstractmethod
    def mem_bw_gbps(self) -> float:
        """Peak sustained memory bandwidth (GB/s)."""

    def describe(self) -> dict:
        """Characteristics row for the T1 platform table."""
        return {
            "platform": self.name,
            "peak_gflops": round(self.peak_gflops, 1),
            "mem_bw_gbps": round(self.mem_bw_gbps, 1),
        }
