"""Frame streams: the input side of the streaming-video pipeline.

:class:`SyntheticStream` produces a deterministic moving scene (a
panning crop of a larger world image) rendered through the fisheye
model frame by frame — the closest laptop-scale stand-in for a live
camera feed, exercising exactly the per-frame code path (the remap)
while the per-stream work (map/LUT construction) is amortized, as in
the paper's real-time scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ImageFormatError
from ..core.image import GRAY8, Frame
from .distort import FisheyeRenderer

__all__ = ["SyntheticStream", "panning_crops"]


def panning_crops(world: np.ndarray, width: int, height: int, frames: int,
                  step: int = 4) -> Iterator[np.ndarray]:
    """Yield ``frames`` crops sliding across a larger world image.

    The pan wraps with reflection at the borders so any frame count is
    valid.
    """
    world = np.asarray(world)
    if world.ndim != 2:
        raise ImageFormatError(f"world image must be 2-D, got shape {world.shape}")
    wh, ww = world.shape
    if height > wh or width > ww:
        raise ImageFormatError(
            f"crop {width}x{height} larger than world {ww}x{wh}")
    if frames < 1 or step < 0:
        raise ImageFormatError("frames must be >= 1 and step >= 0")
    max_x = ww - width
    max_y = wh - height
    for k in range(frames):
        # triangle-wave pan across both axes
        tx = (k * step) % (2 * max_x) if max_x else 0
        ty = (k * step // 2) % (2 * max_y) if max_y else 0
        x0 = tx if tx <= max_x else 2 * max_x - tx
        y0 = ty if ty <= max_y else 2 * max_y - ty
        yield world[y0:y0 + height, x0:x0 + width]


@dataclass
class SyntheticStream:
    """A deterministic fisheye video source.

    Attributes
    ----------
    renderer:
        The scene->fisheye renderer (fixes lens, sensor, scene camera).
    world:
        A world image at least as large as the renderer's scene size.
    frames:
        Stream length.
    fps:
        Nominal frame rate (sets frame timestamps).
    step:
        Pan speed in world pixels per frame.
    """

    renderer: FisheyeRenderer
    world: np.ndarray
    frames: int = 30
    fps: float = 30.0
    step: int = 4

    def __post_init__(self):
        self.world = np.asarray(self.world)
        if self.fps <= 0:
            raise ImageFormatError(f"fps must be positive, got {self.fps}")
        if self.frames < 1:
            raise ImageFormatError(f"frames must be >= 1, got {self.frames}")

    def __len__(self) -> int:
        return self.frames

    def __iter__(self) -> Iterator[Frame]:
        scene = self.renderer.scene
        crops = panning_crops(self.world, scene.width, scene.height,
                              self.frames, self.step)
        for k, crop in enumerate(crops):
            data = self.renderer.render(crop)
            yield Frame(data.astype(np.uint8, copy=False), GRAY8,
                        index=k, timestamp=k / self.fps)
