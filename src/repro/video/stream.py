"""Frame streams: the input/output sides of the streaming-video pipeline.

:class:`SyntheticStream` produces a deterministic moving scene (a
panning crop of a larger world image) rendered through the fisheye
model frame by frame — the closest laptop-scale stand-in for a live
camera feed, exercising exactly the per-frame code path (the remap)
while the per-stream work (map/LUT construction) is amortized, as in
the paper's real-time scenario.

:func:`corrected_stream` is the matching output side: it freezes the
remap table once (optionally through a
:class:`~repro.core.lutcache.LUTCache`, so stream *restarts* skip the
build entirely) and then drives every frame through the fused
:meth:`~repro.core.remap.RemapLUT.apply_into` kernel with one reused
output buffer — the steady state performs zero per-frame allocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

from ..errors import ImageFormatError, ScheduleError
from ..obs.telemetry import get_telemetry
from ..core.image import GRAY8, Frame
from ..core.kernel_tiers import resolve_tier
from ..core.mapping import RemapField
from ..core.remap import RemapLUT
from .distort import FisheyeRenderer

__all__ = ["SyntheticStream", "panning_crops", "corrected_stream"]


def panning_crops(world: np.ndarray, width: int, height: int, frames: int,
                  step: int = 4) -> Iterator[np.ndarray]:
    """Yield ``frames`` crops sliding across a larger world image.

    The pan wraps with reflection at the borders so any frame count is
    valid.
    """
    world = np.asarray(world)
    if world.ndim != 2:
        raise ImageFormatError(f"world image must be 2-D, got shape {world.shape}")
    wh, ww = world.shape
    if height > wh or width > ww:
        raise ImageFormatError(
            f"crop {width}x{height} larger than world {ww}x{wh}")
    if frames < 1 or step < 0:
        raise ImageFormatError("frames must be >= 1 and step >= 0")
    max_x = ww - width
    max_y = wh - height
    for k in range(frames):
        # triangle-wave pan across both axes
        tx = (k * step) % (2 * max_x) if max_x else 0
        ty = (k * step // 2) % (2 * max_y) if max_y else 0
        x0 = tx if tx <= max_x else 2 * max_x - tx
        y0 = ty if ty <= max_y else 2 * max_y - ty
        yield world[y0:y0 + height, x0:x0 + width]


def _stream_telemetry(inner: Iterator, label: str | None = None,
                      fused: bool = False) -> Iterator:
    """Wrap a delegated engine with the standard stream metric surface.

    ``label`` additionally emits the per-stream labelled series
    (``stream.frames{stream="..."}`` etc., see
    :func:`repro.obs.export.labeled`) next to the aggregate ones;
    planar :class:`~repro.video.yuv.YUV420Frame` /
    :class:`~repro.video.yuv.NV12Frame` items additionally tick the
    per-plane ``stream.frames{plane=...}`` counters (``y``/``u``/``v``
    or ``y``/``uv``), and ``fused=True`` (a correct+downscale composed
    table on the path) ticks ``stream.frames{fused="true"}``.
    Closing the wrapper (consumer ``break`` / ``GeneratorExit``)
    explicitly closes ``inner`` so a delegated engine tears down even
    when the generator chain is kept alive by a reference cycle.
    """
    tel = get_telemetry()
    it = iter(inner)
    try:
        if not tel.enabled:
            yield from it
            return
        from ..obs.export import labeled
        from .yuv import NV12_PLANE_NAMES, NV12Frame, PLANE_NAMES, YUV420Frame
        frames_name = labeled("stream.frames", stream=label) if label \
            else "stream.frames"
        fps_name = labeled("stream.fps", stream=label) if label \
            else "stream.fps"
        fused_name = labeled("stream.frames", fused="true") if fused else None
        plane_names = [labeled("stream.frames", plane=p) for p in PLANE_NAMES]
        nv12_plane_names = [labeled("stream.frames", plane=p)
                            for p in NV12_PLANE_NAMES]
        stream_t0 = time.perf_counter()
        frames_done = 0
        while True:
            t0 = time.perf_counter()
            try:
                item = next(it)
            except StopIteration:
                return
            now = time.perf_counter()
            frames_done += 1
            tel.counter("stream.frames").inc()
            if label:
                tel.counter(frames_name).inc()
            if fused_name:
                tel.counter(fused_name).inc()
            if isinstance(item, NV12Frame):
                for name in nv12_plane_names:
                    tel.counter(name).inc()
            elif isinstance(item, YUV420Frame):
                for name in plane_names:
                    tel.counter(name).inc()
            tel.histogram("stream.frame_seconds").observe(now - t0)
            if now > stream_t0:
                fps = frames_done / (now - stream_t0)
                tel.gauge("stream.fps").set(fps)
                if label:
                    tel.gauge(fps_name).set(fps)
            yield item
    finally:
        close = getattr(it, "close", None)
        if close is not None:
            close()


def corrected_stream(frames: Iterable, field: RemapField,
                     method: str = "bilinear", border: str = "constant",
                     fill: float = 0.0, lut_cache=None,
                     copy: bool = False, engine: str = "sync",
                     kernel: str = "numpy", serve_metrics=None,
                     stream_label: str | None = None,
                     pixfmt: str = "rgb",
                     out_size: tuple | None = None,
                     **engine_kwargs) -> Iterator:
    """Correct a frame stream through the fused zero-allocation kernel.

    Parameters
    ----------
    frames:
        Iterable of ndarrays or :class:`~repro.core.image.Frame`
        (``pixfmt="rgb"``), or of
        :class:`~repro.video.yuv.YUV420Frame` (``pixfmt="yuv420"``).
    field:
        Backward coordinate field shared by every frame.
    method, border, fill:
        LUT build parameters.
    lut_cache:
        Optional :class:`~repro.core.lutcache.LUTCache`; when given the
        table is fetched from it (memory or mmap'd disk tier) instead
        of rebuilt, which is what makes stream restarts cheap.
    copy:
        When false (default) every yielded frame aliases one reused
        output buffer — consume or copy it before advancing, like any
        zero-copy decoder API.  When true each frame owns its data.
    kernel:
        Kernel-tier request (``auto``/``numpy``/``fixed``/``compiled``,
        see :mod:`repro.core.kernel_tiers`); resolved once up front and
        applied with :meth:`~repro.core.remap.RemapLUT.with_tier`.  The
        ring engine inherits the tier: workers re-select it from the
        shared-table metadata, so every band runs the same arithmetic.
    engine:
        ``"sync"`` (default) runs the fused kernel inline;
        ``"ring"`` routes the stream through a
        :class:`~repro.parallel.ring.RingEngine` of persistent worker
        processes (``engine_kwargs``: ``workers``, ``depth``,
        ``schedule``, ``chunk``, ``context``), keeping decode, remap
        and delivery overlapped across in-flight frames.  Both engines
        report the same ``stream.*`` metric surface.
    serve_metrics:
        Live scrape surface for the duration of the stream.  An ``int``
        port starts a :class:`~repro.obs.live.MetricsServer` bound to
        ``127.0.0.1`` (``0`` picks an ephemeral port) and stops it when
        the stream finishes; a pre-built :class:`MetricsServer` is
        started if needed but left running (caller owns its lifetime —
        and can read its ephemeral :attr:`port`).  ``None`` (default)
        serves nothing.
    stream_label:
        Optional stream name; when set, the per-stream labelled metric
        series (``stream.frames{stream="..."}``,
        ``stream.fps{stream="..."}`` — see
        :func:`repro.obs.export.labeled`) are emitted next to the
        aggregate ones, matching what :mod:`repro.serve` reports for
        each multiplexed session.
    pixfmt:
        ``"rgb"`` (default) treats every item as a packed 2-D/3-D
        array remapped channel-interleaved.  ``"yuv420"`` takes the
        planar zero-copy fast path: items must be
        :class:`~repro.video.yuv.YUV420Frame`, ``field`` describes the
        full-resolution luma geometry, and the half-resolution chroma
        field/LUT is derived from it
        (:func:`~repro.core.mapping.chroma_half_field`) — no RGB
        round-trip ever happens, so a 1080p frame touches ~half the
        bytes of the packed path.  ``"nv12"`` is the same planar
        pipeline over :class:`~repro.video.yuv.NV12Frame` items: the
        interleaved UV plane is corrected by one 2-channel apply of
        the same chroma table.  Both engines support all three; the
        ring engine schedules per-plane bands.
    out_size:
        Optional ``(width, height)`` to deliver at, through one
        **fused** correct+downscale composed table (per plane on
        planar formats) — the per-frame gather traffic then scales
        with the delivered size, not the correction's intermediate.
        Emits the ``stream.frames{fused="true"}`` series.

    Yields
    ------
    Corrected frames, same kind as the input items.
    """
    if pixfmt not in ("rgb", "yuv420", "nv12"):
        raise ImageFormatError(
            f"unknown pixfmt {pixfmt!r}; known: rgb, yuv420, nv12")
    tel = get_telemetry()
    server = None
    own_server = False
    if serve_metrics is not None:
        from ..obs.live import MetricsServer
        if isinstance(serve_metrics, MetricsServer):
            server = serve_metrics.start()
        else:
            # pin the active registry: HTTP request threads do not
            # inherit an obs.scoped() context
            server = MetricsServer(telemetry=tel if tel.enabled else None,
                                   port=int(serve_metrics)).start()
            own_server = True
    try:
        yield from _corrected_stream(frames, field, method, border, fill,
                                     lut_cache, copy, engine, kernel, tel,
                                     stream_label, pixfmt, out_size,
                                     **engine_kwargs)
    finally:
        if own_server:
            server.close()


def _fused_lut(field, out_size, method, border, fill, lut_cache):
    """The fused correct+downscale table of the streaming hot path.

    Always the plain 4-tap composed table (``prefilter=False`` —
    exact 2x2 box at the headline 2:1 ratio), so it shares the remap
    kernel, the shared-memory publication format and the LUT cache's
    content-hash keying with plain tables.
    """
    from ..core.compose import composed_lut, downscale_field
    fh, fw = field.shape
    outer = downscale_field(int(out_size[0]), int(out_size[1]), fw, fh,
                            prefilter=False)
    return composed_lut(outer, field, method=method, border=border,
                        fill=fill, cache=lut_cache)


def _corrected_stream(frames, field, method, border, fill, lut_cache, copy,
                      engine, kernel, tel, stream_label=None, pixfmt="rgb",
                      out_size=None, **engine_kwargs):
    if pixfmt in ("yuv420", "nv12"):
        yield from _planar_stream(frames, field, method, border, fill,
                                  lut_cache, copy, engine, kernel,
                                  stream_label, pixfmt, out_size,
                                  **engine_kwargs)
        return
    fused = out_size is not None
    if fused:
        lut = _fused_lut(field, out_size, method, border, fill, lut_cache)
    elif lut_cache is not None:
        lut = lut_cache.get(field, method=method, border=border, fill=fill)
    else:
        lut = RemapLUT(field, method=method, border=border, fill=fill)
    tier = resolve_tier(kernel)
    if tier != "numpy":
        lut = lut.with_tier(tier)  # non-mutating clone; cache stays neutral
    if engine == "ring":
        # lazy import: keeps repro.video free of the parallel layer
        # unless the ring engine is actually requested
        from ..parallel.ring import ring_stream
        yield from _stream_telemetry(
            ring_stream(lut, frames, copy=copy, **engine_kwargs),
            label=stream_label, fused=fused)
        return
    if engine != "sync":
        raise ScheduleError(
            f"unknown stream engine {engine!r}; known: sync, ring")
    if engine_kwargs:
        raise ScheduleError(
            f"engine 'sync' takes no options, got {sorted(engine_kwargs)}")
    buffer: Optional[np.ndarray] = None
    stream_t0 = time.perf_counter() if tel.enabled else 0.0
    frames_done = 0
    frames_name = fps_name = fused_name = None
    if tel.enabled:
        from ..obs.export import labeled
        if stream_label:
            frames_name = labeled("stream.frames", stream=stream_label)
            fps_name = labeled("stream.fps", stream=stream_label)
        if fused:
            fused_name = labeled("stream.frames", fused="true")
    for item in frames:
        t0 = time.perf_counter() if tel.enabled else 0.0
        data = item.data if isinstance(item, Frame) else np.asarray(item)
        shape = lut.out_shape + data.shape[2:]
        if buffer is None or buffer.shape != shape or buffer.dtype != data.dtype:
            buffer = np.empty(shape, dtype=data.dtype)
        lut.apply_into(data, buffer)
        result = buffer.copy() if copy else buffer
        if tel.enabled:
            now = time.perf_counter()
            frames_done += 1
            tel.counter("stream.frames").inc()
            if frames_name:
                tel.counter(frames_name).inc()
            if fused_name:
                tel.counter(fused_name).inc()
            tel.histogram("stream.frame_seconds").observe(now - t0)
            # end-to-end rate including the producer's time between frames
            if now > stream_t0:
                fps = frames_done / (now - stream_t0)
                tel.gauge("stream.fps").set(fps)
                if fps_name:
                    tel.gauge(fps_name).set(fps)
        if isinstance(item, Frame):
            yield item.with_data(result)
        else:
            yield result


def _planar_luts(field, method, border, fill, lut_cache, kernel, out_size):
    """Per-plane (luma, chroma) LUTs of a planar stream.

    With ``out_size`` both tables are fused correct+downscale
    compositions built at the delivered geometry (the chroma outer map
    is the half-resolution twin of the luma one).
    """
    if out_size is None:
        from .yuv import YUVCorrector
        corr = YUVCorrector.from_field(field, method=method, border=border,
                                       fill=fill, lut_cache=lut_cache,
                                       kernel=kernel)
        return corr.luma_lut, corr.chroma_lut
    from ..core.compose import composed_lut, downscale_field
    from ..core.mapping import chroma_half_field
    ow, oh = int(out_size[0]), int(out_size[1])
    if ow % 2 or oh % 2:
        raise ImageFormatError(
            f"planar out_size must be even, got {ow}x{oh}")
    fh, fw = field.shape
    outer = downscale_field(ow, oh, fw, fh, prefilter=False)
    outer_c = downscale_field(ow // 2, oh // 2, fw // 2, fh // 2,
                              prefilter=False)
    luma = composed_lut(outer, field, method=method, border=border,
                        fill=fill, cache=lut_cache)
    chroma = composed_lut(outer_c, chroma_half_field(field),
                          method="bilinear", border=border, fill=128.0,
                          cache=lut_cache)
    tier = resolve_tier(kernel)
    if tier != "numpy":
        luma = luma.with_tier(tier)
        chroma = chroma.with_tier(tier)
    return luma, chroma


def _planar_stream(frames, field, method, border, fill, lut_cache, copy,
                   engine, kernel, stream_label, pixfmt="yuv420",
                   out_size=None, **engine_kwargs):
    """``pixfmt="yuv420"``/``"nv12"`` body: per-plane remap, no RGB leg."""
    from .yuv import NV12Frame, YUV420Frame
    fused = out_size is not None
    luma_lut, chroma_lut = _planar_luts(field, method, border, fill,
                                        lut_cache, kernel, out_size)
    if engine == "ring":
        from ..parallel.ring import ring_stream
        yield from _stream_telemetry(
            ring_stream(luma_lut, frames, copy=copy,
                        chroma_lut=chroma_lut, pixfmt=pixfmt,
                        **engine_kwargs),
            label=stream_label, fused=fused)
        return
    if engine != "sync":
        raise ScheduleError(
            f"unknown stream engine {engine!r}; known: sync, ring")
    if engine_kwargs:
        raise ScheduleError(
            f"engine 'sync' takes no options, got {sorted(engine_kwargs)}")
    frame_cls = NV12Frame if pixfmt == "nv12" else YUV420Frame

    def inline():
        pool = None
        for item in frames:
            if not isinstance(item, frame_cls):
                raise ImageFormatError(
                    f"pixfmt={pixfmt!r} streams expect "
                    f"{frame_cls.__name__} items, got {type(item).__name__}")
            if pool is None:
                oh, ow = luma_lut.out_shape
                pool = tuple(np.empty(s, dtype=item.y.dtype)
                             for s in frame_cls.plane_shapes(oh, ow))
            luma_lut.apply_into(item.y, pool[0])
            if pixfmt == "nv12":
                chroma_lut.apply_into(item.uv, pool[1])
            else:
                chroma_lut.apply_into(item.u, pool[1])
                chroma_lut.apply_into(item.v, pool[2])
            result = frame_cls(*pool)
            yield result.copy() if copy else result

    yield from _stream_telemetry(inline(), label=stream_label, fused=fused)


@dataclass
class SyntheticStream:
    """A deterministic fisheye video source.

    Attributes
    ----------
    renderer:
        The scene->fisheye renderer (fixes lens, sensor, scene camera).
    world:
        A world image at least as large as the renderer's scene size.
    frames:
        Stream length.
    fps:
        Nominal frame rate (sets frame timestamps).
    step:
        Pan speed in world pixels per frame.
    """

    renderer: FisheyeRenderer
    world: np.ndarray
    frames: int = 30
    fps: float = 30.0
    step: int = 4

    def __post_init__(self):
        self.world = np.asarray(self.world)
        if self.fps <= 0:
            raise ImageFormatError(f"fps must be positive, got {self.fps}")
        if self.frames < 1:
            raise ImageFormatError(f"frames must be >= 1, got {self.frames}")

    def __len__(self) -> int:
        return self.frames

    def __iter__(self) -> Iterator[Frame]:
        scene = self.renderer.scene
        crops = panning_crops(self.world, scene.width, scene.height,
                              self.frames, self.step)
        for k, crop in enumerate(crops):
            data = self.renderer.render(crop)
            yield Frame(data.astype(np.uint8, copy=False), GRAY8,
                        index=k, timestamp=k / self.fps)
