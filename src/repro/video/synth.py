"""Synthetic scene generators — the ground-truth imagery.

The paper corrects footage from real fisheye cameras; with no camera
here, workloads are *rendered*: a perspective scene is generated, then
pushed through the forward fisheye map
(:mod:`repro.video.distort`).  Scenes are chosen to make distortion
visible and quality measurable:

- :func:`checkerboard` — straight edges everywhere (line-straightness
  metric),
- :func:`circle_grid` — calibration target with *known marker angles*
  (returned alongside the image, so calibration can be verified),
- :func:`radial_circles` — the concentric-circles test chart from the
  mismatched paper's Fig. 7 family, useful for eyeballing,
- :func:`urban` — seeded random rectangles/edges approximating the
  structure statistics of the surveillance scenes the application
  targets,
- :func:`gradient` — smooth ramp (interpolation-accuracy tests).

All generators take an explicit seed where randomness is involved and
return ``uint8`` arrays (or float64 where noted).
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageFormatError

__all__ = ["checkerboard", "circle_grid", "radial_circles", "urban", "gradient", "noise"]


def _check_size(width: int, height: int):
    if width <= 0 or height <= 0:
        raise ImageFormatError(f"image size must be positive: {width}x{height}")


def checkerboard(width: int, height: int, square: int = 32,
                 low: int = 30, high: int = 220) -> np.ndarray:
    """A checkerboard with ``square``-pixel cells (uint8)."""
    _check_size(width, height)
    if square <= 0:
        raise ImageFormatError(f"square size must be positive, got {square}")
    ys, xs = np.indices((height, width))
    board = ((xs // square + ys // square) % 2).astype(np.uint8)
    return np.where(board == 1, np.uint8(high), np.uint8(low))


def circle_grid(width: int, height: int, rings: int = 4, spokes: int = 8,
                dot_radius: int = 5, margin: float = 0.9):
    """A polar dot grid plus the dots' positions.

    Dots are placed on ``rings`` concentric circles (equal radial
    steps out to ``margin`` of the half-diagonal-inscribed circle) at
    ``spokes`` azimuths, plus one centre dot.

    Returns
    -------
    (image, points)
        ``image`` is uint8; ``points`` is ``(N, 2)`` float64 of dot
        centres ``(x, y)``, centre dot first, then ring by ring.
    """
    _check_size(width, height)
    if rings < 1 or spokes < 3:
        raise ImageFormatError(f"need rings >= 1 and spokes >= 3, got {rings}/{spokes}")
    if not 0 < margin <= 1:
        raise ImageFormatError(f"margin must be in (0, 1], got {margin}")
    image = np.zeros((height, width), dtype=np.uint8)
    cx, cy = (width - 1) / 2.0, (height - 1) / 2.0
    max_r = margin * min(cx, cy)
    points = [(cx, cy)]
    for ring in range(1, rings + 1):
        r = max_r * ring / rings
        for k in range(spokes):
            phi = 2.0 * np.pi * k / spokes
            points.append((cx + r * np.cos(phi), cy + r * np.sin(phi)))
    ys, xs = np.indices((height, width))
    for (px, py) in points:
        mask = (xs - px) ** 2 + (ys - py) ** 2 <= dot_radius ** 2
        image[mask] = 255
    return image, np.asarray(points, dtype=np.float64)


def radial_circles(width: int, height: int, rings: int = 8,
                   thickness: float = 3.0) -> np.ndarray:
    """Concentric bright circles on black (uint8)."""
    _check_size(width, height)
    if rings < 1 or thickness <= 0:
        raise ImageFormatError(f"need rings >= 1 and positive thickness")
    cx, cy = (width - 1) / 2.0, (height - 1) / 2.0
    ys, xs = np.indices((height, width))
    r = np.hypot(xs - cx, ys - cy)
    max_r = min(cx, cy)
    image = np.zeros((height, width), dtype=np.uint8)
    for ring in range(1, rings + 1):
        target = max_r * ring / rings
        image[np.abs(r - target) <= thickness / 2.0] = 255
    return image


def urban(width: int, height: int, buildings: int = 60, seed: int = 7) -> np.ndarray:
    """Seeded random axis-aligned rectangles over a sky gradient (uint8).

    Approximates the edge statistics of the street/surveillance scenes
    wide-angle cameras watch: many long straight vertical/horizontal
    contours at varied contrast.
    """
    _check_size(width, height)
    if buildings < 1:
        raise ImageFormatError(f"buildings must be >= 1, got {buildings}")
    rng = np.random.default_rng(seed)
    sky = np.linspace(180, 120, height, dtype=np.float64)[:, None]
    image = np.broadcast_to(sky, (height, width)).copy()
    for _ in range(buildings):
        w = int(rng.integers(width // 20 + 1, max(width // 4, width // 20 + 2)))
        h = int(rng.integers(height // 10 + 1, max(height // 2, height // 10 + 2)))
        x0 = int(rng.integers(0, max(1, width - w)))
        y0 = int(rng.integers(height // 4, max(height // 4 + 1, height - h)))
        shade = float(rng.integers(40, 160))
        image[y0:y0 + h, x0:x0 + w] = shade
        # window rows give high-frequency texture
        if h > 8 and w > 8:
            image[y0 + 2:y0 + h:6, x0 + 2:x0 + w:5] = min(255.0, shade + 60)
    return np.clip(image, 0, 255).astype(np.uint8)


def gradient(width: int, height: int, horizontal: bool = True) -> np.ndarray:
    """A smooth 0..255 ramp (uint8), for interpolation-accuracy tests."""
    _check_size(width, height)
    if horizontal:
        ramp = np.linspace(0, 255, width)[None, :]
    else:
        ramp = np.linspace(0, 255, height)[:, None]
    return np.broadcast_to(ramp, (height, width)).astype(np.uint8)


def noise(width: int, height: int, seed: int = 0) -> np.ndarray:
    """Uniform random uint8 noise (worst case for gather locality)."""
    _check_size(width, height)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(height, width), dtype=np.uint8)
