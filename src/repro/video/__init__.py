"""Synthetic fisheye video workloads: scenes, rendering, streams, I/O."""

from .distort import FisheyeRenderer, render_fisheye, scene_camera_for_sensor
from .io import read_npy, read_pgm, read_ppm, write_npy, write_pgm, write_ppm
from .sensor import SensorNoise
from .stream import SyntheticStream, corrected_stream, panning_crops
from .synth import checkerboard, circle_grid, gradient, noise, radial_circles, urban
from .yuv import PLANE_NAMES, YUV420Frame, YUVCorrector, to_yuv420_stream

__all__ = [
    "FisheyeRenderer",
    "render_fisheye",
    "scene_camera_for_sensor",
    "SyntheticStream",
    "panning_crops",
    "checkerboard",
    "circle_grid",
    "radial_circles",
    "urban",
    "gradient",
    "noise",
    "write_pgm",
    "read_pgm",
    "write_ppm",
    "read_ppm",
    "write_npy",
    "read_npy",
    "YUV420Frame",
    "YUVCorrector",
    "PLANE_NAMES",
    "to_yuv420_stream",
    "corrected_stream",
    "SensorNoise",
]
