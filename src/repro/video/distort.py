"""Forward fisheye rendering: make distorted inputs from ideal scenes.

The substitution for a physical camera: an ideal perspective *scene*
image is resampled through the inverse lens model so that the result
looks exactly like a fisheye capture of that scene.  Correcting the
rendered frame should then recover (a window of) the original scene —
giving every quality metric a ground truth.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from ..core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from ..core.lens import LensModel
from ..core.mapping import RemapField, fisheye_forward_map
from ..core.remap import remap

__all__ = ["FisheyeRenderer", "render_fisheye", "scene_camera_for_sensor"]


def scene_camera_for_sensor(sensor: FisheyeIntrinsics, lens: LensModel,
                            scene_width: int, scene_height: int,
                            scene_hfov: float = np.deg2rad(150.0)) -> CameraIntrinsics:
    """A perspective scene camera wide enough to feed the fisheye.

    The scene must cover the angular range the fisheye sees (capped
    below 180 degrees, where a planar scene cannot reach).  A larger
    ``scene_hfov`` covers more of the fisheye's FOV but spends scene
    pixels on extreme perspective stretch.
    """
    if not 0 < scene_hfov < np.pi:
        raise GeometryError(f"scene_hfov must be in (0, pi), got {scene_hfov}")
    return CameraIntrinsics.from_fov(scene_width, scene_height, scene_hfov)


class FisheyeRenderer:
    """Reusable scene -> fisheye renderer (one map, many frames).

    Parameters
    ----------
    scene:
        Intrinsics of the ideal perspective scene images.
    lens:
        The lens model to emulate.
    sensor:
        Geometry of the fisheye frames to produce.
    method:
        Interpolation used during rendering (bicubic by default: the
        renderer is ground truth, make it the highest quality).
    """

    def __init__(self, scene: CameraIntrinsics, lens: LensModel,
                 sensor: FisheyeIntrinsics, method: str = "bicubic"):
        self.scene = scene
        self.lens = lens
        self.sensor = sensor
        self.method = method
        self.field: RemapField = fisheye_forward_map(scene, lens, sensor)

    def render(self, scene_image: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Render one fisheye frame from one scene image."""
        scene_image = np.asarray(scene_image)
        if scene_image.shape[:2] != (self.scene.height, self.scene.width):
            raise GeometryError(
                f"scene image {scene_image.shape[:2]} does not match scene intrinsics "
                f"{(self.scene.height, self.scene.width)}")
        return remap(scene_image, self.field, method=self.method, fill=fill)

    def coverage(self) -> float:
        """Fraction of fisheye pixels that see the scene plane."""
        return self.field.coverage()


def render_fisheye(scene_image: np.ndarray, scene: CameraIntrinsics,
                   lens: LensModel, sensor: FisheyeIntrinsics,
                   method: str = "bicubic", fill: float = 0.0) -> np.ndarray:
    """One-shot convenience wrapper around :class:`FisheyeRenderer`."""
    return FisheyeRenderer(scene, lens, sensor, method=method).render(scene_image, fill=fill)
