"""Planar YUV 4:2:0 correction pipeline.

Real camera streams arrive as planar YUV420 (full-resolution luma, two
quarter-resolution chroma planes), and production correctors remap the
planes separately: the luma through the full map, the chroma through a
half-scale map of the *same* view.  This halves the work relative to
converting to RGB first — the configuration the paper's end-to-end
frame rates assume.

:class:`YUV420Frame` is the plane container; :class:`YUVCorrector`
builds the two coordinate fields once and streams frames through both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ImageFormatError, MappingError
from ..core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from ..core.lens import LensModel, make_lens
from ..core.mapping import perspective_map
from ..core.remap import RemapLUT

__all__ = ["YUV420Frame", "YUVCorrector"]


@dataclass
class YUV420Frame:
    """One planar 4:2:0 frame: ``y`` at full size, ``u``/``v`` at half."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self):
        self.y = np.asarray(self.y)
        self.u = np.asarray(self.u)
        self.v = np.asarray(self.v)
        if self.y.ndim != 2 or self.u.ndim != 2 or self.v.ndim != 2:
            raise ImageFormatError("YUV420 planes must be 2-D")
        h, w = self.y.shape
        if h % 2 or w % 2:
            raise ImageFormatError(f"luma size must be even, got {w}x{h}")
        if self.u.shape != (h // 2, w // 2) or self.v.shape != (h // 2, w // 2):
            raise ImageFormatError(
                f"chroma planes must be {w // 2}x{h // 2}, got "
                f"{self.u.shape}/{self.v.shape}")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def nbytes(self) -> int:
        return self.y.nbytes + self.u.nbytes + self.v.nbytes

    @classmethod
    def from_rgb(cls, rgb: np.ndarray) -> "YUV420Frame":
        """Pack an RGB image into planar 4:2:0 (BT.601, box-filtered)."""
        from ..core.color import rgb_to_yuv, subsample_420

        yuv = rgb_to_yuv(rgb)
        y = np.clip(np.rint(yuv[..., 0]), 0, 255).astype(np.uint8)
        # chroma stored offset-binary around 128, as in every codec
        u = np.clip(np.rint(subsample_420(yuv[..., 1]) + 128.0), 0, 255).astype(np.uint8)
        v = np.clip(np.rint(subsample_420(yuv[..., 2]) + 128.0), 0, 255).astype(np.uint8)
        return cls(y, u, v)

    def to_rgb(self) -> np.ndarray:
        """Unpack to uint8 RGB (nearest-neighbour chroma upsampling)."""
        from ..core.color import upsample_420, yuv_to_rgb

        yuv = np.stack([
            self.y.astype(np.float64),
            upsample_420(self.u.astype(np.float64) - 128.0),
            upsample_420(self.v.astype(np.float64) - 128.0),
        ], axis=-1)
        return yuv_to_rgb(yuv, dtype=np.uint8)


class YUVCorrector:
    """Distortion correction for planar YUV420 streams.

    Builds two remap LUTs for the same virtual view — full resolution
    for luma, half resolution for chroma (with the intrinsics scaled by
    exactly 0.5, so both planes describe the *same* scene geometry) —
    and applies them per frame.

    Parameters
    ----------
    sensor, lens:
        The fisheye source geometry (sensor size must be even).
    out_width, out_height:
        Output luma size (must be even).
    zoom, yaw, pitch, roll:
        View parameters, as for
        :meth:`repro.core.pipeline.FisheyeCorrector.for_sensor`.
    method:
        Interpolation for the luma plane; chroma always uses bilinear
        (its resolution is already halved — bicubic buys nothing).
    chroma_fill:
        Fill value for out-of-FOV chroma (128 = neutral).
    """

    def __init__(self, sensor: FisheyeIntrinsics, lens: LensModel,
                 out_width: int, out_height: int, zoom: float = 1.0,
                 yaw: float = 0.0, pitch: float = 0.0, roll: float = 0.0,
                 method: str = "bilinear", fill: int = 0, chroma_fill: int = 128):
        if out_width % 2 or out_height % 2:
            raise MappingError(f"output size must be even, got {out_width}x{out_height}")
        if sensor.width % 2 or sensor.height % 2:
            raise MappingError(
                f"sensor size must be even for 4:2:0, got {sensor.width}x{sensor.height}")
        if zoom <= 0:
            raise MappingError(f"zoom must be positive, got {zoom}")

        focal_out = float(lens.magnification(1e-4)) * zoom
        out_full = CameraIntrinsics(
            fx=focal_out, fy=focal_out,
            cx=(out_width - 1) / 2.0, cy=(out_height - 1) / 2.0,
            width=out_width, height=out_height)
        self.luma_field = perspective_map(sensor, lens, out_full,
                                          yaw=yaw, pitch=pitch, roll=roll)

        # Half-resolution twin: all pixel-valued intrinsics scale by 1/2.
        # Chroma pixel (i, j) covers luma pixels (2i..2i+1, 2j..2j+1), so
        # its centre sits at luma (2i + 0.5): c' = (c - 0.5) / 2.
        sensor_half = FisheyeIntrinsics(
            width=sensor.width // 2, height=sensor.height // 2,
            cx=(sensor.cx - 0.5) / 2.0, cy=(sensor.cy - 0.5) / 2.0,
            focal=sensor.focal / 2.0)
        lens_half = make_lens(lens.name, lens.focal / 2.0)
        out_half = CameraIntrinsics(
            fx=focal_out / 2.0, fy=focal_out / 2.0,
            cx=(out_full.cx - 0.5) / 2.0, cy=(out_full.cy - 0.5) / 2.0,
            width=out_width // 2, height=out_height // 2)
        self.chroma_field = perspective_map(sensor_half, lens_half, out_half,
                                            yaw=yaw, pitch=pitch, roll=roll)

        self._luma_lut = RemapLUT(self.luma_field, method=method, fill=fill)
        self._chroma_lut = RemapLUT(self.chroma_field, method="bilinear",
                                    fill=chroma_fill)
        self.out_shape = (out_height, out_width)

    # ------------------------------------------------------------------
    def correct(self, frame: YUV420Frame) -> YUV420Frame:
        """Correct one planar frame (all three planes, one geometry)."""
        if (frame.height, frame.width) != (self.luma_field.src_height,
                                           self.luma_field.src_width):
            raise MappingError(
                f"frame {frame.width}x{frame.height} does not match corrector "
                f"source {self.luma_field.src_width}x{self.luma_field.src_height}")
        return YUV420Frame(
            y=self._luma_lut.apply(frame.y),
            u=self._chroma_lut.apply(frame.u),
            v=self._chroma_lut.apply(frame.v),
        )

    def work_pixels(self) -> int:
        """Output pixels remapped per frame (luma + both chroma planes).

        4:2:0 planes cost 1.5x the luma pixel count — versus 3x for an
        RGB-converted pipeline; this ratio is the bench-visible saving.
        """
        h, w = self.out_shape
        return h * w + 2 * (h // 2) * (w // 2)
