"""Planar YUV 4:2:0 correction pipeline.

Real camera streams arrive as planar YUV420 (full-resolution luma, two
quarter-resolution chroma planes), and production correctors remap the
planes separately: the luma through the full map, the chroma through a
half-scale map of the *same* view.  This halves the work relative to
converting to RGB first — the configuration the paper's end-to-end
frame rates assume.

:class:`YUV420Frame` is the plane container; :class:`YUVCorrector`
builds the two coordinate fields once and streams frames through both
with pooled output planes (zero per-frame allocations, like
:func:`~repro.video.stream.corrected_stream`).  The chroma map is
*derived* from the luma map with
:func:`~repro.core.mapping.chroma_half_field`, so every consumer of a
calibration — this corrector, ``corrected_stream(pixfmt="yuv420")``
and :meth:`repro.serve.StreamBroker.open` — resolves to the same two
:class:`~repro.core.lutcache.LUTCache` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ImageFormatError, MappingError
from ..core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from ..core.kernel_tiers import resolve_tier
from ..core.lens import LensModel
from ..core.mapping import RemapField, chroma_half_field, perspective_map
from ..core.remap import RemapLUT

__all__ = ["YUV420Frame", "NV12Frame", "YUVCorrector", "PLANE_NAMES",
           "NV12_PLANE_NAMES", "plane_names_for", "to_yuv420_stream",
           "to_nv12_stream"]

#: canonical plane order/naming used by the planar engines and the
#: ``plane=`` labelled telemetry series.
PLANE_NAMES = ("y", "u", "v")

#: NV12 keeps full-resolution luma but interleaves both chroma planes
#: into one — two planes total, one chroma band per frame.
NV12_PLANE_NAMES = ("y", "uv")


def plane_names_for(pixfmt: str) -> tuple:
    """Plane order/labels of a planar pixel format."""
    if pixfmt == "yuv420":
        return PLANE_NAMES
    if pixfmt == "nv12":
        return NV12_PLANE_NAMES
    raise ImageFormatError(f"not a planar pixel format: {pixfmt!r}")


@dataclass
class YUV420Frame:
    """One planar 4:2:0 frame: ``y`` at full size, ``u``/``v`` at half."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self):
        self.y = np.asarray(self.y)
        self.u = np.asarray(self.u)
        self.v = np.asarray(self.v)
        if self.y.ndim != 2 or self.u.ndim != 2 or self.v.ndim != 2:
            raise ImageFormatError("YUV420 planes must be 2-D")
        h, w = self.y.shape
        if h % 2 or w % 2:
            raise ImageFormatError(f"luma size must be even, got {w}x{h}")
        if self.u.shape != (h // 2, w // 2) or self.v.shape != (h // 2, w // 2):
            raise ImageFormatError(
                f"chroma planes must be {w // 2}x{h // 2}, got "
                f"{self.u.shape}/{self.v.shape}")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def planes(self) -> tuple:
        """``(y, u, v)`` in :data:`PLANE_NAMES` order."""
        return (self.y, self.u, self.v)

    @property
    def nbytes(self) -> int:
        return self.y.nbytes + self.u.nbytes + self.v.nbytes

    @staticmethod
    def plane_shapes(height: int, width: int) -> tuple:
        """Plane shapes of a ``width x height`` 4:2:0 frame."""
        if height % 2 or width % 2:
            raise ImageFormatError(
                f"luma size must be even, got {width}x{height}")
        half = (height // 2, width // 2)
        return ((height, width), half, half)

    def copy(self) -> "YUV420Frame":
        return YUV420Frame(self.y.copy(), self.u.copy(), self.v.copy())

    @classmethod
    def from_rgb(cls, rgb: np.ndarray) -> "YUV420Frame":
        """Pack an RGB image into planar 4:2:0 (BT.601, box-filtered).

        Vectorized: one fused float32 matrix conversion plus a reshape
        box filter (see :func:`repro.core.color.rgb_to_yuv420`) — no
        per-plane passes, no float64 temporaries.
        """
        from ..core.color import rgb_to_yuv420

        return cls(*rgb_to_yuv420(rgb))

    def to_rgb(self) -> np.ndarray:
        """Unpack to uint8 RGB (nearest-neighbour chroma upsampling)."""
        from ..core.color import yuv420_to_rgb

        return yuv420_to_rgb(self.y, self.u, self.v)


@dataclass
class NV12Frame:
    """One NV12 frame: full-size ``y`` plus one interleaved ``uv`` plane.

    NV12 is what hardware decoders actually emit: the chroma samples
    are not split into U and V planes but interleaved row-wise
    (``U0 V0 U1 V1 ...``).  The canonical in-memory form here is the
    **strided 2-channel view** ``(h/2, w/2, 2)`` — ``uv[..., 0]`` is U
    and ``uv[..., 1]`` is V — which is byte-identical to the decoder's
    packed ``(h/2, w)`` row layout, so :meth:`from_packed` /
    :attr:`packed_uv` reshape without copying.  Correction runs the
    half-resolution chroma LUT *once* over the 2-channel view (the
    gather kernel vectorizes over trailing channels), against two
    applies for I420.
    """

    y: np.ndarray
    uv: np.ndarray

    def __post_init__(self):
        self.y = np.asarray(self.y)
        self.uv = np.asarray(self.uv)
        if self.y.ndim != 2:
            raise ImageFormatError("NV12 luma plane must be 2-D")
        h, w = self.y.shape
        if h % 2 or w % 2:
            raise ImageFormatError(f"luma size must be even, got {w}x{h}")
        if self.uv.shape != (h // 2, w // 2, 2):
            raise ImageFormatError(
                f"uv plane must be ({h // 2}, {w // 2}, 2), got {self.uv.shape}")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def planes(self) -> tuple:
        """``(y, uv)`` in :data:`NV12_PLANE_NAMES` order."""
        return (self.y, self.uv)

    @property
    def nbytes(self) -> int:
        return self.y.nbytes + self.uv.nbytes

    @property
    def packed_uv(self) -> np.ndarray:
        """The decoder's row-packed ``(h/2, w)`` view (zero copy)."""
        return self.uv.reshape(self.uv.shape[0], -1)

    @staticmethod
    def plane_shapes(height: int, width: int) -> tuple:
        """Plane shapes of a ``width x height`` NV12 frame."""
        if height % 2 or width % 2:
            raise ImageFormatError(
                f"luma size must be even, got {width}x{height}")
        return ((height, width), (height // 2, width // 2, 2))

    def copy(self) -> "NV12Frame":
        return NV12Frame(self.y.copy(), self.uv.copy())

    @classmethod
    def from_packed(cls, y: np.ndarray, uv_rows: np.ndarray) -> "NV12Frame":
        """Wrap decoder output: ``uv_rows`` is the packed ``(h/2, w)``
        chroma plane; the reshape to 2-channel is zero-copy."""
        uv_rows = np.asarray(uv_rows)
        if uv_rows.ndim != 2 or uv_rows.shape[1] % 2:
            raise ImageFormatError(
                f"packed uv plane must be 2-D with even width, got "
                f"{uv_rows.shape}")
        return cls(y, uv_rows.reshape(uv_rows.shape[0],
                                      uv_rows.shape[1] // 2, 2))

    @classmethod
    def from_yuv420(cls, frame: YUV420Frame) -> "NV12Frame":
        """Interleave an I420 frame's chroma planes."""
        return cls(frame.y, np.stack((frame.u, frame.v), axis=-1))

    def to_yuv420(self) -> YUV420Frame:
        """De-interleave into planar I420 (copies the chroma planes)."""
        return YUV420Frame(self.y, np.ascontiguousarray(self.uv[..., 0]),
                           np.ascontiguousarray(self.uv[..., 1]))

    @classmethod
    def from_rgb(cls, rgb: np.ndarray) -> "NV12Frame":
        return cls.from_yuv420(YUV420Frame.from_rgb(rgb))

    def to_rgb(self) -> np.ndarray:
        return self.to_yuv420().to_rgb()


class YUVCorrector:
    """Distortion correction for planar YUV420 streams.

    Builds two remap LUTs for the same virtual view — full resolution
    for luma, with the half-resolution chroma twin *derived* from the
    luma field (:func:`~repro.core.mapping.chroma_half_field`, so both
    planes describe the same scene geometry and the chroma table is
    cacheable under its own key) — and applies them per frame into
    pooled output planes.

    Parameters
    ----------
    sensor, lens:
        The fisheye source geometry (sensor size must be even).
    out_width, out_height:
        Output luma size (must be even).
    zoom, yaw, pitch, roll:
        View parameters, as for
        :meth:`repro.core.pipeline.FisheyeCorrector.for_sensor`.
    method:
        Interpolation for the luma plane; chroma always uses bilinear
        (its resolution is already halved — bicubic buys nothing).
    chroma_fill:
        Fill value for out-of-FOV chroma (128 = neutral).
    lut_cache:
        Optional :class:`~repro.core.lutcache.LUTCache`: both plane
        LUTs are fetched through it (distinct content-hash keys — the
        derived chroma field fingerprints differently from the luma
        field), so a restart or a second corrector on the same
        calibration skips both builds.
    kernel:
        Kernel-tier request (``auto``/``numpy``/``fixed``/``compiled``)
        applied to both plane LUTs with
        :meth:`~repro.core.remap.RemapLUT.with_tier`.
    """

    def __init__(self, sensor: FisheyeIntrinsics, lens: LensModel,
                 out_width: int, out_height: int, zoom: float = 1.0,
                 yaw: float = 0.0, pitch: float = 0.0, roll: float = 0.0,
                 method: str = "bilinear", fill: int = 0, chroma_fill: int = 128,
                 lut_cache=None, kernel: str = "numpy"):
        if out_width % 2 or out_height % 2:
            raise MappingError(f"output size must be even, got {out_width}x{out_height}")
        if sensor.width % 2 or sensor.height % 2:
            raise MappingError(
                f"sensor size must be even for 4:2:0, got {sensor.width}x{sensor.height}")
        if zoom <= 0:
            raise MappingError(f"zoom must be positive, got {zoom}")

        focal_out = float(lens.magnification(1e-4)) * zoom
        out_full = CameraIntrinsics(
            fx=focal_out, fy=focal_out,
            cx=(out_width - 1) / 2.0, cy=(out_height - 1) / 2.0,
            width=out_width, height=out_height)
        luma_field = perspective_map(sensor, lens, out_full,
                                     yaw=yaw, pitch=pitch, roll=roll)
        self._bind(luma_field, method=method, fill=fill,
                   chroma_fill=chroma_fill, lut_cache=lut_cache, kernel=kernel)

    # ------------------------------------------------------------------
    @classmethod
    def from_field(cls, field: RemapField, method: str = "bilinear",
                   border: str = "constant", fill: int = 0,
                   chroma_fill: int = 128, lut_cache=None,
                   kernel: str = "numpy") -> "YUVCorrector":
        """Build a corrector around an existing luma coordinate field.

        The chroma field is derived from it; this is the constructor
        the streaming paths use, so any field (perspective,
        cylindrical, composed) can drive a planar pipeline.
        """
        self = cls.__new__(cls)
        self._bind(field, method=method, border=border, fill=fill,
                   chroma_fill=chroma_fill, lut_cache=lut_cache, kernel=kernel)
        return self

    def _bind(self, luma_field: RemapField, *, method, fill, chroma_fill,
              lut_cache, kernel, border="constant") -> None:
        self.luma_field = luma_field
        self.chroma_field = chroma_half_field(luma_field)
        if lut_cache is not None:
            luma_lut = lut_cache.get(luma_field, method=method, border=border,
                                     fill=fill)
            chroma_lut = lut_cache.get(self.chroma_field, method="bilinear",
                                       border=border, fill=chroma_fill)
        else:
            luma_lut = RemapLUT(luma_field, method=method, border=border,
                                fill=fill)
            chroma_lut = RemapLUT(self.chroma_field, method="bilinear",
                                  border=border, fill=chroma_fill)
        tier = resolve_tier(kernel)
        if tier != "numpy":
            luma_lut = luma_lut.with_tier(tier)
            chroma_lut = chroma_lut.with_tier(tier)
        self._luma_lut = luma_lut
        self._chroma_lut = chroma_lut
        self.out_shape = luma_field.shape
        self._pool = None  # pooled output planes, sized on first frame

    # ------------------------------------------------------------------
    @property
    def luma_lut(self) -> RemapLUT:
        return self._luma_lut

    @property
    def chroma_lut(self) -> RemapLUT:
        return self._chroma_lut

    @property
    def plane_luts(self) -> tuple:
        """Per-plane LUTs in :data:`PLANE_NAMES` order (u and v share)."""
        return (self._luma_lut, self._chroma_lut, self._chroma_lut)

    @property
    def nv12_plane_luts(self) -> tuple:
        """Per-plane LUTs in :data:`NV12_PLANE_NAMES` order.

        The single chroma LUT serves the interleaved UV plane as one
        2-channel apply — same tables as the I420 path, one fewer
        kernel launch per frame.
        """
        return (self._luma_lut, self._chroma_lut)

    # ------------------------------------------------------------------
    def correct(self, frame: YUV420Frame, copy: bool = False) -> YUV420Frame:
        """Correct one planar frame (all three planes, one geometry).

        The three output planes are pooled and written with
        :meth:`~repro.core.remap.RemapLUT.apply_into` — the steady
        state performs zero per-frame allocations.  With the default
        ``copy=False`` the returned frame aliases the pool (consume or
        copy before the next ``correct``, like any zero-copy decoder
        API); ``copy=True`` returns an owning frame.
        """
        if (frame.height, frame.width) != (self.luma_field.src_height,
                                           self.luma_field.src_width):
            raise MappingError(
                f"frame {frame.width}x{frame.height} does not match corrector "
                f"source {self.luma_field.src_width}x{self.luma_field.src_height}")
        pool = self._pool
        if pool is None or pool[0].dtype != frame.y.dtype:
            h, w = self.out_shape
            shapes = YUV420Frame.plane_shapes(h, w)
            pool = self._pool = tuple(
                np.empty(s, dtype=frame.y.dtype) for s in shapes)
        self._luma_lut.apply_into(frame.y, pool[0])
        self._chroma_lut.apply_into(frame.u, pool[1])
        self._chroma_lut.apply_into(frame.v, pool[2])
        if copy:
            return YUV420Frame(pool[0].copy(), pool[1].copy(), pool[2].copy())
        return YUV420Frame(*pool)

    def correct_nv12(self, frame: NV12Frame, copy: bool = False) -> NV12Frame:
        """Correct one NV12 frame: two applies, not three.

        Luma runs exactly as in :meth:`correct`; the interleaved UV
        plane goes through the half-resolution chroma LUT *once* as a
        strided 2-channel view — the gather kernel fans out over the
        trailing channel axis, producing output bit-identical to
        correcting the de-interleaved U and V planes separately.
        Pooled like :meth:`correct`: ``copy=False`` aliases the pool.
        """
        if (frame.height, frame.width) != (self.luma_field.src_height,
                                           self.luma_field.src_width):
            raise MappingError(
                f"frame {frame.width}x{frame.height} does not match corrector "
                f"source {self.luma_field.src_width}x{self.luma_field.src_height}")
        pool = self._nv12_pool = getattr(self, "_nv12_pool", None)
        if pool is None or pool[0].dtype != frame.y.dtype:
            h, w = self.out_shape
            shapes = NV12Frame.plane_shapes(h, w)
            pool = self._nv12_pool = tuple(
                np.empty(s, dtype=frame.y.dtype) for s in shapes)
        self._luma_lut.apply_into(frame.y, pool[0])
        self._chroma_lut.apply_into(frame.uv, pool[1])
        if copy:
            return NV12Frame(pool[0].copy(), pool[1].copy())
        return NV12Frame(*pool)

    def work_pixels(self) -> int:
        """Output pixels remapped per frame (luma + both chroma planes).

        4:2:0 planes cost 1.5x the luma pixel count — versus 3x for an
        RGB-converted pipeline; this ratio is the bench-visible saving.
        """
        h, w = self.out_shape
        return h * w + 2 * (h // 2) * (w // 2)

    def traffic_per_frame(self) -> dict:
        """Summed per-frame host byte ledger over all three planes.

        Gather + LUT-entry + output bytes per plane (see
        :meth:`~repro.core.remap.RemapLUT.traffic_per_frame`), the
        measured-side counterpart of the Cell model's
        :func:`~repro.accel.cellbe.planar_dma_profile`.
        """
        ledgers = {
            "y": self._luma_lut.traffic_per_frame(),
            "u": self._chroma_lut.traffic_per_frame(),
            "v": self._chroma_lut.traffic_per_frame(),
        }
        total = {key: sum(l[key] for l in ledgers.values())
                 for key in ("pixels", "gather_bytes", "lut_bytes",
                             "out_bytes", "total_bytes")}
        total["planes"] = ledgers
        return total


def to_yuv420_stream(frames):
    """Adapt a grayscale frame stream into :class:`YUV420Frame` items.

    Each 2-D source frame becomes the luma plane; the chroma planes
    carry a deterministic offset-binary gradient (horizontal for U,
    vertical for V) so the planar path moves real, checkable chroma
    data without needing a colour source.  Used by ``repro stream
    --pixfmt yuv420`` to drive the zero-copy planar pipeline from the
    synthetic renderer.
    """
    chroma = None
    for item in frames:
        data = getattr(item, "data", item)
        data = np.asarray(data)
        if data.ndim != 2:
            raise ImageFormatError(
                f"to_yuv420_stream expects 2-D gray frames, got {data.shape}")
        if chroma is None or chroma[0].shape[0] * 2 != data.shape[0] \
                or chroma[0].shape[1] * 2 != data.shape[1]:
            hh, hw = data.shape[0] // 2, data.shape[1] // 2
            xs = np.linspace(96, 160, hw, dtype=np.float64)
            ys = np.linspace(96, 160, hh, dtype=np.float64)
            u = np.broadcast_to(np.rint(xs).astype(data.dtype), (hh, hw)).copy()
            v = np.broadcast_to(np.rint(ys).astype(data.dtype)[:, None],
                                (hh, hw)).copy()
            chroma = (u, v)
        yield YUV420Frame(data, chroma[0], chroma[1])


def to_nv12_stream(frames):
    """Adapt a grayscale frame stream into :class:`NV12Frame` items.

    Same deterministic chroma gradients as :func:`to_yuv420_stream`,
    interleaved into the single NV12 UV plane — what ``repro stream
    --pixfmt nv12`` feeds the zero-copy planar pipeline.
    """
    for frame in to_yuv420_stream(frames):
        yield NV12Frame.from_yuv420(frame)
