"""Minimal image file I/O: PGM/PPM (binary) and ``.npy``.

No imaging library is assumed; the netpbm formats are simple enough to
implement exactly and are what the examples write so results can be
inspected with any viewer.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ImageFormatError

__all__ = ["write_pgm", "read_pgm", "write_ppm", "read_ppm", "write_npy", "read_npy"]


def write_pgm(path: str | os.PathLike, image: np.ndarray):
    """Write a 2-D uint8 array as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ImageFormatError(f"PGM requires a 2-D image, got shape {image.shape}")
    if image.dtype != np.uint8:
        raise ImageFormatError(f"PGM writer requires uint8, got {image.dtype}")
    h, w = image.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{w} {h}\n255\n".encode("ascii"))
        fh.write(np.ascontiguousarray(image).tobytes())


def _read_pnm_header(fh, magic: bytes):
    if fh.read(2) != magic:
        raise ImageFormatError(f"not a {magic.decode()} file")
    fields = []
    while len(fields) < 3:
        line = fh.readline()
        if not line:
            raise ImageFormatError("truncated PNM header")
        body = line.split(b"#", 1)[0]
        fields.extend(body.split())
    w, h, maxval = (int(f) for f in fields[:3])
    if maxval != 255:
        raise ImageFormatError(f"only maxval 255 supported, got {maxval}")
    return w, h


def read_pgm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PGM (P5) into a 2-D uint8 array."""
    with open(path, "rb") as fh:
        w, h = _read_pnm_header(fh, b"P5")
        data = np.frombuffer(fh.read(w * h), dtype=np.uint8)
    if data.size != w * h:
        raise ImageFormatError(f"truncated PGM payload: got {data.size}, want {w * h}")
    return data.reshape(h, w).copy()


def write_ppm(path: str | os.PathLike, image: np.ndarray):
    """Write an ``(H, W, 3)`` uint8 array as binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ImageFormatError(f"PPM requires (H, W, 3), got shape {image.shape}")
    if image.dtype != np.uint8:
        raise ImageFormatError(f"PPM writer requires uint8, got {image.dtype}")
    h, w = image.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(np.ascontiguousarray(image).tobytes())


def read_ppm(path: str | os.PathLike) -> np.ndarray:
    """Read a binary PPM (P6) into an ``(H, W, 3)`` uint8 array."""
    with open(path, "rb") as fh:
        w, h = _read_pnm_header(fh, b"P6")
        data = np.frombuffer(fh.read(w * h * 3), dtype=np.uint8)
    if data.size != w * h * 3:
        raise ImageFormatError(f"truncated PPM payload: got {data.size}, want {w * h * 3}")
    return data.reshape(h, w, 3).copy()


def write_npy(path: str | os.PathLike, array: np.ndarray):
    """Save any array as ``.npy`` (thin wrapper kept for API symmetry)."""
    np.save(path, np.asarray(array))


def read_npy(path: str | os.PathLike) -> np.ndarray:
    """Load an ``.npy`` file (no pickling allowed)."""
    return np.load(path, allow_pickle=False)
