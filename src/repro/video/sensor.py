"""Image-sensor noise model for robustness studies.

Calibration and quality pipelines should survive realistic sensor
noise; this module adds it to synthetic frames in the standard order:

1. photon shot noise (Poisson in electrons, scaled by ``full_well``),
2. Gaussian read noise (electrons RMS),
3. quantization back to the integer pixel grid,
4. optional salt-and-pepper defects (dead/hot pixels).

Deterministic under an explicit seed, like every generator in
:mod:`repro.video`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ImageFormatError

__all__ = ["SensorNoise"]


@dataclass(frozen=True)
class SensorNoise:
    """Parametric sensor-noise source.

    Attributes
    ----------
    full_well:
        Electrons at full scale; lower = shot-noisier (2000-5000 is a
        small security sensor, 20000+ a good machine-vision one).
    read_noise:
        Read noise in electrons RMS.
    defect_rate:
        Fraction of pixels that are dead (0) or hot (full scale).
    seed:
        Base RNG seed; pass a different ``frame_index`` per frame for
        temporally-varying noise with reproducibility.
    """

    full_well: float = 4000.0
    read_noise: float = 6.0
    defect_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.full_well <= 0:
            raise ImageFormatError(f"full_well must be positive, got {self.full_well}")
        if self.read_noise < 0:
            raise ImageFormatError(f"read_noise must be >= 0, got {self.read_noise}")
        if not 0 <= self.defect_rate < 1:
            raise ImageFormatError(f"defect_rate must be in [0, 1), got {self.defect_rate}")

    def apply(self, image, frame_index: int = 0) -> np.ndarray:
        """Return a noisy copy of an integer image (dtype preserved)."""
        image = np.asarray(image)
        if not np.issubdtype(image.dtype, np.integer):
            raise ImageFormatError("sensor noise operates on integer frames")
        info = np.iinfo(image.dtype)
        peak = float(info.max)
        rng = np.random.default_rng((self.seed, frame_index))

        electrons = image.astype(np.float64) / peak * self.full_well
        shot = rng.poisson(np.maximum(electrons, 0.0)).astype(np.float64)
        read = rng.normal(0.0, self.read_noise, size=image.shape)
        signal = (shot + read) / self.full_well * peak
        noisy = np.clip(np.rint(signal), info.min, info.max).astype(image.dtype)

        if self.defect_rate > 0:
            defects = rng.random(image.shape[:2]) < self.defect_rate
            hot = rng.random(image.shape[:2]) < 0.5
            if image.ndim == 3:
                noisy[defects & hot] = info.max
                noisy[defects & ~hot] = 0
            else:
                noisy = np.where(defects & hot, info.max, noisy)
                noisy = np.where(defects & ~hot, 0, noisy).astype(image.dtype)
        return noisy

    def snr_db(self, level: float) -> float:
        """Theoretical SNR at a relative signal ``level`` in (0, 1]."""
        if not 0 < level <= 1:
            raise ImageFormatError(f"level must be in (0, 1], got {level}")
        electrons = level * self.full_well
        noise = np.sqrt(electrons + self.read_noise ** 2)
        return 20.0 * np.log10(electrons / noise)
