"""Live observability plane: a zero-dependency threaded scrape server.

The PR-2 telemetry layer is *passive* — snapshots are written when a
run exits.  Real-time correction pipelines are judged while they run
(sustained frame deadlines, ring occupancy, stall counters), so this
module puts the same registry behind a tiny HTTP surface that any
Prometheus scraper, load balancer or ``curl`` can hit mid-stream:

``/metrics``
    Prometheus text exposition (the PR-2 exporter, rendered from a
    live snapshot on every request).
``/health``
    JSON liveness: uptime, pid, ring depth / in-flight occupancy,
    frames delivered, stall and deadline-miss counters.  ``status``
    degrades from ``"ok"`` to ``"stalled"`` once the stream watchdog
    has fired.
``/snapshot``
    The full JSON snapshot (counters + gauges + histograms + spans),
    i.e. what ``--metrics`` would write at exit — scrapeable live and
    diffable with ``repro stats --diff``.

Implementation is stdlib-only (``http.server.ThreadingHTTPServer`` on
a daemon thread); one server costs nothing on the frame path — every
render happens in the scraper's request thread against a lock-guarded
snapshot.

Wired in as ``repro stream --serve-metrics PORT`` and
``corrected_stream(serve_metrics=...)``; the multi-stream service and
the sharded scale-out roadmap items scrape this same surface.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import MetricsBindError, TelemetryError
from .export import prometheus_text
from .logsetup import get_logger
from .telemetry import get_telemetry

__all__ = ["MetricsServer", "health_summary"]

log = get_logger(__name__)


def health_summary(snap: dict, uptime_s: float | None = None) -> dict:
    """Condense a telemetry snapshot into the ``/health`` JSON body.

    Pure function of the snapshot so tests and non-HTTP callers (the
    CLI's end-of-run SLO line, future multi-stream admission control)
    can reuse exactly what the endpoint serves.
    """
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    stalls = counters.get("stream.stalls", 0)
    body = {
        "status": "stalled" if stalls else "ok",
        "pid": snap.get("meta", {}).get("pid", os.getpid()),
        "frames": counters.get("stream.frames",
                               counters.get("ring.frames", 0)),
        "stalls": stalls,
        "deadline_misses": counters.get("stream.deadline_miss", 0),
        "ring": {
            "depth": gauges.get("ring.depth"),
            "in_flight": gauges.get("ring.in_flight"),
        },
    }
    if uptime_s is not None:
        body["uptime_s"] = round(float(uptime_s), 3)
    return body


class MetricsServer:
    """Threaded HTTP server exposing the active telemetry registry.

    Parameters
    ----------
    telemetry:
        The registry to serve.  ``None`` (default) resolves
        :func:`~repro.obs.telemetry.get_telemetry` *per request*, so a
        server started before ``obs.enable()`` picks up the registry
        once it exists.  Pass an explicit registry to pin a scoped one
        (request threads do not inherit ``obs.scoped`` context).
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port; read it
        back from :attr:`port` after :meth:`start`.

    Use as a context manager or call :meth:`start` / :meth:`close`.
    """

    def __init__(self, telemetry=None, host: str = "127.0.0.1", port: int = 0):
        if not 0 <= int(port) <= 65535:
            raise TelemetryError(f"port must be in [0, 65535], got {port}")
        self.host = host
        self._telemetry = telemetry
        self._requested_port = int(port)
        self._httpd = None
        self._thread = None
        self._t0 = None

    # ------------------------------------------------------------------
    def _registry(self):
        return self._telemetry if self._telemetry is not None else get_telemetry()

    def _snapshot(self) -> dict:
        return self._registry().snapshot()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._httpd is not None

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        """Bind and serve on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            # one server instance; requests must never kill the stream
            def log_message(self, fmt, *args):  # noqa: N802
                log.debug("metrics-server %s", fmt % args)

            def _reply(self, code: int, content_type: str, body: bytes):
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802
                try:
                    path = self.path.split("?", 1)[0]
                    if path == "/metrics":
                        text = prometheus_text(server._snapshot())
                        self._reply(200, "text/plain; version=0.0.4",
                                    text.encode())
                    elif path == "/health":
                        uptime = (time.monotonic() - server._t0
                                  if server._t0 is not None else None)
                        body = health_summary(server._snapshot(), uptime)
                        self._reply(200, "application/json",
                                    (json.dumps(body) + "\n").encode())
                    elif path == "/snapshot":
                        body = json.dumps(server._snapshot(), sort_keys=True)
                        self._reply(200, "application/json",
                                    (body + "\n").encode())
                    else:
                        self._reply(404, "text/plain",
                                    b"not found; try /metrics /health /snapshot\n")
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass
                except Exception as exc:  # pragma: no cover - render bug
                    try:
                        self._reply(500, "text/plain", f"{exc}\n".encode())
                    except Exception:
                        pass

        try:
            self._httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                              Handler)
        except OSError as exc:
            # Typed error so callers (CLI, serve) can fail with a clean
            # message instead of an EADDRINUSE traceback.
            raise MetricsBindError(
                f"cannot serve metrics on {self.host}:{self._requested_port}: "
                f"{exc.strerror or exc}") from exc
        self._httpd.daemon_threads = True
        self._t0 = time.monotonic()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-metrics-server",
                                        kwargs={"poll_interval": 0.2},
                                        daemon=True)
        self._thread.start()
        log.info("metrics server listening on %s", self.url)
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._httpd is None:
            return
        httpd, thread = self._httpd, self._thread
        self._httpd = None
        self._thread = None
        httpd.shutdown()
        httpd.server_close()
        if thread is not None:
            thread.join(timeout=2.0)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.close()
        return False
