"""Exporters: JSON snapshots, Prometheus text, Chrome ``trace_event``.

All three render the same :meth:`~repro.obs.telemetry.Telemetry
.snapshot` payload, so a snapshot written by a worker, merged in a
parent, or loaded back from disk exports identically:

- :func:`metrics_json` / :func:`write_metrics` — the canonical
  machine-readable dump (what ``repro --metrics out.json`` writes and
  ``repro stats`` pretty-prints);
- :func:`prometheus_text` — `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ with
  cumulative histogram buckets, for scrape endpoints;
- :func:`chrome_trace` — a ``trace_event`` JSON array loadable in
  ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_,
  containing both measured spans and the platform models' injected
  timelines.
"""

from __future__ import annotations

import json
import re

from ..errors import TelemetryError
from .telemetry import histogram_quantile

__all__ = [
    "metrics_json",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "format_snapshot",
    "diff_snapshots",
    "slo_summary",
    "escape_label_value",
    "labeled",
    "split_labeled",
    "parse_prometheus_text",
]

#: the per-frame end-to-end latency histogram the SLO summary reads
#: (decode start -> in-order delivery, observed by the ring engine).
E2E_LATENCY_METRIC = "frame.e2e_latency_seconds"

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _snap(tel_or_snap) -> dict:
    if isinstance(tel_or_snap, dict):
        return tel_or_snap
    return tel_or_snap.snapshot()


def metrics_json(tel_or_snap) -> dict:
    """The JSON-able snapshot (passes dicts through unchanged)."""
    return _snap(tel_or_snap)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str = "repro_") -> str:
    return prefix + _PROM_BAD.sub("_", name.replace(".", "_"))


def _fmt(v) -> str:
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double-quote and newline must be backslash-escaped inside the
    quoted label string."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


_LABEL_KEY = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def labeled(name: str, **labels) -> str:
    """Attach Prometheus-style labels to a dotted metric name.

    ``labeled("stream.frames", stream="cam0")`` returns
    ``'stream.frames{stream="cam0"}'`` — a plain registry name that the
    telemetry layer treats as opaque, while :func:`prometheus_text`
    renders it as a labelled series of the base metric (one ``# TYPE``
    line per base, labels merged into histogram bucket lines).  Label
    keys must match ``[a-zA-Z_][a-zA-Z0-9_]*``; values are escaped with
    :func:`escape_label_value`.  With no labels the name is returned
    unchanged.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        if not _LABEL_KEY.match(key):
            raise TelemetryError(f"invalid metric label key {key!r}")
        parts.append(f'{key}="{escape_label_value(labels[key])}"')
    return name + "{" + ",".join(parts) + "}"


def split_labeled(name: str) -> tuple:
    """Split a registry name into ``(base, labels)`` where ``labels`` is
    the verbatim ``{...}`` suffix produced by :func:`labeled` (or ``""``
    for an unlabelled name)."""
    base, brace, rest = name.partition("{")
    return (base, brace + rest) if brace else (base, "")


def _label_groups(entries: dict) -> list:
    """Group ``{name: value}`` by base metric: sorted
    ``[(base, [(labels, value), ...]), ...]`` with the unlabelled series
    (empty-string labels) sorting first within each base."""
    groups: dict = {}
    for name, value in entries.items():
        base, labels = split_labeled(name)
        groups.setdefault(base, []).append((labels, value))
    return [(base, sorted(groups[base])) for base in sorted(groups)]


def prometheus_text(tel_or_snap, prefix: str = "repro_") -> str:
    """Render the snapshot in Prometheus text exposition format.

    Dotted metric names flatten to underscores under ``prefix``;
    histogram buckets are emitted cumulatively with the closing
    ``+Inf`` bucket, ``_sum`` and ``_count`` series.  Gauges that were
    registered but never set render as *absent* (no series), so a
    scraper can tell "never reported" from an explicit 0.

    Names carrying a :func:`labeled` suffix render as labelled series of
    their base metric — all series of one base share a single ``# TYPE``
    line, and histogram series merge their labels into the ``le=``
    bucket labels — so per-stream metrics from :mod:`repro.serve`
    coexist with the aggregate unlabelled series.
    """
    snap = _snap(tel_or_snap)
    lines = []
    for base, series in _label_groups(snap.get("counters", {})):
        pname = _prom_name(base, prefix)
        lines.append(f"# TYPE {pname} counter")
        for labels, value in series:
            lines.append(f"{pname}{labels} {_fmt(value)}")
    for base, series in _label_groups(
            {n: v for n, v in snap.get("gauges", {}).items()
             if v is not None}):  # unset gauge: absent, not 0
        pname = _prom_name(base, prefix)
        lines.append(f"# TYPE {pname} gauge")
        for labels, value in series:
            lines.append(f"{pname}{labels} {_fmt(value)}")
    for base, series in _label_groups(snap.get("histograms", {})):
        pname = _prom_name(base, prefix)
        lines.append(f"# TYPE {pname} histogram")
        for labels, h in series:
            inner = labels[1:-1] + "," if labels else ""
            cum = 0
            for bound, count in zip(h["bounds"], h["counts"]):
                cum += count
                lines.append(f'{pname}_bucket{{{inner}le="'
                             f'{escape_label_value(_fmt(float(bound)))}"}} {cum}')
            cum += h["counts"][-1]
            lines.append(f'{pname}_bucket{{{inner}le="+Inf"}} {cum}')
            lines.append(f"{pname}_sum{labels} {_fmt(float(h['sum']))}")
            lines.append(f"{pname}_count{labels} {h['count']}")
    return "\n".join(lines) + "\n"


# a metric line: name, optional {labels}, one value
_PROM_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r' (?P<value>[^ ]+)$')
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict:
    """Minimal line-format checker for the text exposition format.

    Validates every non-comment line against the ``name{labels} value``
    grammar (values must parse as floats; ``+Inf``/``NaN`` allowed) and
    that each ``# TYPE`` comment names a type Prometheus knows.
    Returns ``{metric_name: [(labels_dict, value), ...]}``; raises
    :class:`~repro.errors.TelemetryError` on the first malformed line.

    This is a *checker*, not a scraper — it exists so tests and CI can
    assert the ``/metrics`` endpoint stays parseable.
    """
    series: dict = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"):
                    raise TelemetryError(
                        f"line {lineno}: malformed TYPE comment: {line!r}")
            continue
        m = _PROM_LINE.match(line)
        if not m:
            raise TelemetryError(f"line {lineno}: malformed metric: {line!r}")
        raw = m.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise TelemetryError(
                f"line {lineno}: non-numeric value {raw!r}") from None
        labels = dict(_PROM_LABEL.findall(m.group("labels") or ""))
        series.setdefault(m.group("name"), []).append((labels, value))
    return series


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(tel_or_snap) -> list:
    """Render spans as a ``trace_event`` JSON array of ``X`` events.

    Timestamps are rebased so the earliest span starts at 0 µs.
    String track ids (the models' synthetic timelines) are mapped to
    stable integer ``tid``s with ``thread_name`` metadata events so
    Perfetto labels the tracks.  Spans that carry a ``tier`` arg (the
    kernel spans) render as ``name [tier]`` so a trace shows at a
    glance which rung of the kernel ladder each band executed on.
    """
    snap = _snap(tel_or_snap)
    spans = snap.get("spans", [])
    events = []
    origin = min((s["ts"] for s in spans), default=0.0)
    tid_map: dict[str, int] = {}
    for s in sorted(spans, key=lambda s: (s["ts"], -s["dur"])):
        tid = s.get("tid", 0)
        if isinstance(tid, str):
            if tid not in tid_map:
                tid_map[tid] = 1000 + len(tid_map)
                events.append({"ph": "M", "name": "thread_name",
                               "pid": s.get("pid", 0), "tid": tid_map[tid],
                               "args": {"name": tid}})
            tid = tid_map[tid]
        args = s.get("args") or {}
        name = s["name"]
        if "tier" in args:
            name = f"{name} [{args['tier']}]"
        ev = {
            "name": name,
            "cat": s.get("cat") or "repro",
            "ph": "X",
            "ts": round((s["ts"] - origin) * 1e6, 3),
            "dur": round(s["dur"] * 1e6, 3),
            "pid": s.get("pid", 0),
            "tid": tid,
        }
        if args:
            ev["args"] = args
        events.append(ev)
    return events


# ----------------------------------------------------------------------
# file writers + pretty printer
# ----------------------------------------------------------------------
def write_metrics(tel_or_snap, path: str) -> dict:
    """Write the JSON snapshot to ``path``; returns the snapshot."""
    snap = _snap(tel_or_snap)
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return snap


def write_trace(tel_or_snap, path: str) -> list:
    """Write the Chrome ``trace_event`` array to ``path``; returns it."""
    events = chrome_trace(tel_or_snap)
    with open(path, "w") as fh:
        json.dump(events, fh)
        fh.write("\n")
    return events


def slo_summary(tel_or_snap) -> dict | None:
    """Frame-latency SLO digest: p50/p95/p99, miss rate, stall count.

    Reads the ``frame.e2e_latency_seconds`` histogram plus the
    ``stream.deadline_miss`` / ``stream.stalls`` counters the stall
    watchdog maintains.  Returns ``None`` when no end-to-end latency
    was recorded (telemetry off, or a non-streaming run).
    """
    snap = _snap(tel_or_snap)
    h = snap.get("histograms", {}).get(E2E_LATENCY_METRIC)
    if not h or not h.get("count"):
        return None
    counters = snap.get("counters", {})
    misses = counters.get("stream.deadline_miss", 0)
    return {
        "frames": h["count"],
        "p50_s": histogram_quantile(h, 0.5),
        "p95_s": histogram_quantile(h, 0.95),
        "p99_s": histogram_quantile(h, 0.99),
        "deadline_misses": misses,
        "miss_rate": misses / h["count"],
        "stalls": counters.get("stream.stalls", 0),
    }


def diff_snapshots(snap_a, snap_b) -> str:
    """Render the metric delta between two snapshots (A -> B).

    The before/after triage view behind ``repro stats --diff A B``:
    counters are subtracted (B - A), gauges shown as transitions, and
    histograms compared at p50/p95 with their count deltas.  Metrics
    present on only one side are marked ``(new)`` / ``(gone)``.
    """
    a, b = _snap(snap_a), _snap(snap_b)
    out = []

    ca, cb = a.get("counters", {}), b.get("counters", {})
    names = sorted(set(ca) | set(cb))
    if names:
        out.append("counters (B - A):")
        width = max(len(n) for n in names)
        for name in names:
            if name not in ca:
                out.append(f"  {name:<{width}}  +{_fmt(cb[name])} (new)")
            elif name not in cb:
                out.append(f"  {name:<{width}}  -{_fmt(ca[name])} (gone)")
            else:
                delta = cb[name] - ca[name]
                out.append(f"  {name:<{width}}  {delta:+g}")

    def _gfmt(v):
        return "unset" if v is None else f"{v:.4g}"

    ga, gb = a.get("gauges", {}), b.get("gauges", {})
    names = sorted(set(ga) | set(gb))
    if names:
        out.append("gauges (A -> B):")
        width = max(len(n) for n in names)
        for name in names:
            out.append(f"  {name:<{width}}  "
                       f"{_gfmt(ga.get(name))} -> {_gfmt(gb.get(name))}")

    ha, hb = a.get("histograms", {}), b.get("histograms", {})
    names = sorted(set(ha) | set(hb))
    if names:
        out.append("histograms (A -> B):")
        for name in names:
            va, vb = ha.get(name), hb.get(name)
            if va is None or vb is None:
                out.append(f"  {name}: {'(new)' if va is None else '(gone)'}")
                continue
            parts = [f"count {va['count']} -> {vb['count']} "
                     f"({vb['count'] - va['count']:+d})"]
            for q in (0.5, 0.95):
                qa = histogram_quantile(va, q) * 1e3
                qb = histogram_quantile(vb, q) * 1e3
                parts.append(f"p{int(q * 100)} {qa:.3f} -> {qb:.3f} ms")
            out.append(f"  {name}: " + ", ".join(parts))

    return "\n".join(out) + ("\n" if out else "(identical or empty)\n")


def format_snapshot(tel_or_snap) -> str:
    """Human-readable rendering (the ``repro stats`` command)."""
    snap = _snap(tel_or_snap)
    out = []
    counters = snap.get("counters", {})
    if counters:
        out.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            out.append(f"  {name:<{width}}  {_fmt(counters[name])}")
    gauges = {n: v for n, v in snap.get("gauges", {}).items() if v is not None}
    if gauges:
        out.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            out.append(f"  {name:<{width}}  {gauges[name]:.4g}")
    hists = snap.get("histograms", {})
    if hists:
        out.append("histograms:")
        for name in sorted(hists):
            h = hists[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            quant = "  ".join(
                f"p{int(q * 100)} {histogram_quantile(h, q) * 1e3:.3f} ms"
                for q in (0.5, 0.95, 0.99))
            out.append(f"  {name}: count {h['count']}, "
                       f"mean {mean * 1e3:.3f} ms, {quant}")
    slo = slo_summary(snap)
    if slo is not None:
        out.append("slo:")
        out.append(f"  e2e latency   p50 {slo['p50_s'] * 1e3:.3f} ms  "
                   f"p95 {slo['p95_s'] * 1e3:.3f} ms  "
                   f"p99 {slo['p99_s'] * 1e3:.3f} ms")
        out.append(f"  deadline miss {slo['deadline_misses']}/{slo['frames']} "
                   f"({slo['miss_rate']:.1%})  stalls {slo['stalls']}")
    spans = snap.get("spans", [])
    if spans:
        totals: dict[str, list] = {}
        for s in spans:
            name = s["name"]
            tier = (s.get("args") or {}).get("tier")
            if tier:
                name = f"{name} [{tier}]"
            agg = totals.setdefault(name, [0, 0.0])
            agg[0] += 1
            agg[1] += s["dur"]
        out.append("spans:")
        width = max(len(n) for n in totals)
        for name in sorted(totals):
            n, dur = totals[name]
            out.append(f"  {name:<{width}}  x{n:<6} total {dur * 1e3:.3f} ms")
    return "\n".join(out) + ("\n" if out else "(empty snapshot)\n")
