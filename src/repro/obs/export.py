"""Exporters: JSON snapshots, Prometheus text, Chrome ``trace_event``.

All three render the same :meth:`~repro.obs.telemetry.Telemetry
.snapshot` payload, so a snapshot written by a worker, merged in a
parent, or loaded back from disk exports identically:

- :func:`metrics_json` / :func:`write_metrics` — the canonical
  machine-readable dump (what ``repro --metrics out.json`` writes and
  ``repro stats`` pretty-prints);
- :func:`prometheus_text` — `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ with
  cumulative histogram buckets, for scrape endpoints;
- :func:`chrome_trace` — a ``trace_event`` JSON array loadable in
  ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_,
  containing both measured spans and the platform models' injected
  timelines.
"""

from __future__ import annotations

import json
import re

__all__ = [
    "metrics_json",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "format_snapshot",
]

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _snap(tel_or_snap) -> dict:
    if isinstance(tel_or_snap, dict):
        return tel_or_snap
    return tel_or_snap.snapshot()


def metrics_json(tel_or_snap) -> dict:
    """The JSON-able snapshot (passes dicts through unchanged)."""
    return _snap(tel_or_snap)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str = "repro_") -> str:
    return prefix + _PROM_BAD.sub("_", name.replace(".", "_"))


def _fmt(v) -> str:
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def prometheus_text(tel_or_snap, prefix: str = "repro_") -> str:
    """Render the snapshot in Prometheus text exposition format.

    Dotted metric names flatten to underscores under ``prefix``;
    histogram buckets are emitted cumulatively with the closing
    ``+Inf`` bucket, ``_sum`` and ``_count`` series.
    """
    snap = _snap(tel_or_snap)
    lines = []
    for name in sorted(snap.get("counters", {})):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_fmt(snap['counters'][name])}")
    for name in sorted(snap.get("gauges", {})):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_fmt(snap['gauges'][name])}")
    for name in sorted(snap.get("histograms", {})):
        h = snap["histograms"][name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} histogram")
        cum = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cum += count
            lines.append(f'{pname}_bucket{{le="{_fmt(float(bound))}"}} {cum}')
        cum += h["counts"][-1]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{pname}_sum {_fmt(float(h['sum']))}")
        lines.append(f"{pname}_count {h['count']}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(tel_or_snap) -> list:
    """Render spans as a ``trace_event`` JSON array of ``X`` events.

    Timestamps are rebased so the earliest span starts at 0 µs.
    String track ids (the models' synthetic timelines) are mapped to
    stable integer ``tid``s with ``thread_name`` metadata events so
    Perfetto labels the tracks.  Spans that carry a ``tier`` arg (the
    kernel spans) render as ``name [tier]`` so a trace shows at a
    glance which rung of the kernel ladder each band executed on.
    """
    snap = _snap(tel_or_snap)
    spans = snap.get("spans", [])
    events = []
    origin = min((s["ts"] for s in spans), default=0.0)
    tid_map: dict[str, int] = {}
    for s in sorted(spans, key=lambda s: (s["ts"], -s["dur"])):
        tid = s.get("tid", 0)
        if isinstance(tid, str):
            if tid not in tid_map:
                tid_map[tid] = 1000 + len(tid_map)
                events.append({"ph": "M", "name": "thread_name",
                               "pid": s.get("pid", 0), "tid": tid_map[tid],
                               "args": {"name": tid}})
            tid = tid_map[tid]
        args = s.get("args") or {}
        name = s["name"]
        if "tier" in args:
            name = f"{name} [{args['tier']}]"
        ev = {
            "name": name,
            "cat": s.get("cat") or "repro",
            "ph": "X",
            "ts": round((s["ts"] - origin) * 1e6, 3),
            "dur": round(s["dur"] * 1e6, 3),
            "pid": s.get("pid", 0),
            "tid": tid,
        }
        if args:
            ev["args"] = args
        events.append(ev)
    return events


# ----------------------------------------------------------------------
# file writers + pretty printer
# ----------------------------------------------------------------------
def write_metrics(tel_or_snap, path: str) -> dict:
    """Write the JSON snapshot to ``path``; returns the snapshot."""
    snap = _snap(tel_or_snap)
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return snap


def write_trace(tel_or_snap, path: str) -> list:
    """Write the Chrome ``trace_event`` array to ``path``; returns it."""
    events = chrome_trace(tel_or_snap)
    with open(path, "w") as fh:
        json.dump(events, fh)
        fh.write("\n")
    return events


def format_snapshot(tel_or_snap) -> str:
    """Human-readable rendering (the ``repro stats`` command)."""
    snap = _snap(tel_or_snap)
    out = []
    counters = snap.get("counters", {})
    if counters:
        out.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            out.append(f"  {name:<{width}}  {_fmt(counters[name])}")
    gauges = snap.get("gauges", {})
    if gauges:
        out.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            out.append(f"  {name:<{width}}  {gauges[name]:.4g}")
    hists = snap.get("histograms", {})
    if hists:
        out.append("histograms:")
        for name in sorted(hists):
            h = hists[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            out.append(f"  {name}: count {h['count']}, mean {mean * 1e3:.3f} ms")
            peak = max(h["counts"]) or 1
            labels = [f"<={_fmt(float(b))}" for b in h["bounds"]] + ["+Inf"]
            for label, count in zip(labels, h["counts"]):
                if count:
                    bar = "#" * max(1, round(24 * count / peak))
                    out.append(f"    {label:>10}  {count:>8}  {bar}")
    spans = snap.get("spans", [])
    if spans:
        totals: dict[str, list] = {}
        for s in spans:
            name = s["name"]
            tier = (s.get("args") or {}).get("tier")
            if tier:
                name = f"{name} [{tier}]"
            agg = totals.setdefault(name, [0, 0.0])
            agg[0] += 1
            agg[1] += s["dur"]
        out.append("spans:")
        width = max(len(n) for n in totals)
        for name in sorted(totals):
            n, dur = totals[name]
            out.append(f"  {name:<{width}}  x{n:<6} total {dur * 1e3:.3f} ms")
    return "\n".join(out) + ("\n" if out else "(empty snapshot)\n")
