"""Observability: telemetry registry, exporters, logging setup.

The runtime-visibility layer the production pipeline reports through:

- :mod:`repro.obs.telemetry` — counters, gauges, fixed-bucket latency
  histograms and nested timing spans, behind an off-by-default global
  registry whose disabled path is a branch per frame;
- :mod:`repro.obs.export` — JSON snapshot, Prometheus text exposition
  and Chrome ``trace_event`` exporters over one snapshot schema;
- :mod:`repro.obs.logsetup` — the single ``logging`` configuration
  helper shared by the CLI and the executors.

Quick use::

    from repro import obs

    tel = obs.enable()                    # global, or obs.scoped(...) local
    ... run the pipeline ...
    obs.write_metrics(tel, "metrics.json")
    obs.write_trace(tel, "trace.json")    # open in ui.perfetto.dev
"""

from .telemetry import (  # noqa: F401
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    Telemetry,
    disable,
    emit_phase_spans,
    enable,
    get_telemetry,
    scoped,
    set_telemetry,
)
from .export import (  # noqa: F401
    chrome_trace,
    format_snapshot,
    metrics_json,
    prometheus_text,
    write_metrics,
    write_trace,
)
from .logsetup import LOG_LEVELS, configure_logging, get_logger  # noqa: F401

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "NullTelemetry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_telemetry",
    "set_telemetry",
    "enable",
    "disable",
    "scoped",
    "emit_phase_spans",
    "metrics_json",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "format_snapshot",
    "configure_logging",
    "get_logger",
    "LOG_LEVELS",
]
