"""Observability: telemetry registry, exporters, logging setup.

The runtime-visibility layer the production pipeline reports through:

- :mod:`repro.obs.telemetry` — counters, gauges, fixed-bucket latency
  histograms and nested timing spans, behind an off-by-default global
  registry whose disabled path is a branch per frame;
- :mod:`repro.obs.export` — JSON snapshot, Prometheus text exposition
  and Chrome ``trace_event`` exporters over one snapshot schema, plus
  snapshot diffing and the frame-SLO digest;
- :mod:`repro.obs.live` — the live scrape surface: a zero-dependency
  threaded HTTP server exposing ``/metrics`` (Prometheus), ``/health``
  (JSON liveness) and ``/snapshot`` while a stream runs;
- :mod:`repro.obs.flightrec` — the crash flight recorder: a bounded
  ring of the last N spans/events, dumped to a timestamped JSON file
  when a worker dies or the stall watchdog fires;
- :mod:`repro.obs.logsetup` — the single ``logging`` configuration
  helper shared by the CLI and the executors.

Quick use::

    from repro import obs

    tel = obs.enable()                    # global, or obs.scoped(...) local
    ... run the pipeline ...
    obs.write_metrics(tel, "metrics.json")
    obs.write_trace(tel, "trace.json")    # open in ui.perfetto.dev
"""

from .telemetry import (  # noqa: F401
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullTelemetry,
    Telemetry,
    disable,
    emit_phase_spans,
    enable,
    get_telemetry,
    histogram_quantile,
    scoped,
    set_telemetry,
)
from .export import (  # noqa: F401
    chrome_trace,
    diff_snapshots,
    escape_label_value,
    format_snapshot,
    labeled,
    metrics_json,
    parse_prometheus_text,
    prometheus_text,
    slo_summary,
    split_labeled,
    write_metrics,
    write_trace,
)
from .flightrec import DEFAULT_FLIGHT_CAPACITY, FlightRecorder  # noqa: F401
from .live import MetricsServer, health_summary  # noqa: F401
from .logsetup import LOG_LEVELS, configure_logging, get_logger  # noqa: F401

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "NullTelemetry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_telemetry",
    "set_telemetry",
    "enable",
    "disable",
    "scoped",
    "emit_phase_spans",
    "histogram_quantile",
    "metrics_json",
    "prometheus_text",
    "chrome_trace",
    "write_metrics",
    "write_trace",
    "format_snapshot",
    "diff_snapshots",
    "slo_summary",
    "escape_label_value",
    "labeled",
    "split_labeled",
    "parse_prometheus_text",
    "FlightRecorder",
    "DEFAULT_FLIGHT_CAPACITY",
    "MetricsServer",
    "health_summary",
    "configure_logging",
    "get_logger",
    "LOG_LEVELS",
]
