"""The telemetry registry: counters, gauges, histograms and spans.

Design constraints, in order:

1. **Off means free.**  The default registry is :class:`NullTelemetry`;
   every instrumentation site in the hot path costs one
   :func:`get_telemetry` call plus an ``enabled`` branch per *frame*
   (never per pixel).  The benchmark gate in
   ``benchmarks/check_regression.py`` and ``tests/test_obs_overhead``
   hold this to <5% of a 1080p ``apply_into``.
2. **Process-safe by construction.**  Nothing is shared between
   processes; worker registries are plain per-process objects whose
   :meth:`Telemetry.drain` deltas travel back over the existing pool
   result channel and are folded in with :meth:`Telemetry.merge`.
   This works identically under ``fork`` and ``spawn``.
3. **One trace for modeled and measured time.**  Spans recorded by the
   live kernels and spans injected from the accelerator models'
   analytic ledgers (:meth:`Telemetry.add_span`,
   :func:`emit_phase_spans`) land in the same event list, so a Chrome
   ``trace_event`` export renders both timelines side by side.

Metric names are dotted strings (``remap.frames``); exporters transform
them per format (Prometheus flattens dots to underscores).  See
``docs/observability.md`` for the stable-name policy.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager

from ..errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "NullTelemetry",
    "get_telemetry",
    "set_telemetry",
    "enable",
    "disable",
    "scoped",
    "emit_phase_spans",
    "histogram_quantile",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bounds for frame-scale latencies, in seconds.
#: 0.5 ms .. 2.5 s covers a 64x64 test band through a struggling 4K frame.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, n=1) -> None:
        if n < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease (inc {n})")
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time scalar (last write wins).

    A gauge that was registered but never written holds ``None`` —
    distinguishable from an explicit ``set(0)``.  Exporters render
    unset gauges as *absent* (Prometheus text omits the series, the
    pretty-printer skips the line); the JSON snapshot carries the
    ``None`` through so merges preserve unset-ness.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = None
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = float(value)

    @property
    def is_set(self) -> bool:
        return self.value is not None


class Histogram:
    """Fixed-bucket histogram with sum/count, Prometheus-compatible.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    (``+Inf``) follows the last bound.  Bucket counts are stored
    *non-cumulative*; exporters cumulate where their format demands it.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count", "_lock")

    def __init__(self, name: str, bounds, lock: threading.Lock):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name} needs strictly increasing non-empty bounds")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value) -> None:
        value = float(value)
        # first bucket whose bound >= value (inclusive upper edges)
        i = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[i] += 1
            self.total += value
            self.count += 1

    def as_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.total, "count": self.count}

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (see :func:`histogram_quantile`)."""
        with self._lock:
            return histogram_quantile(self.as_dict(), q)


def histogram_quantile(hist: dict, q: float) -> float:
    """Estimate a quantile from a fixed-bucket histogram dict.

    ``hist`` is the :meth:`Histogram.as_dict` / snapshot shape
    (``bounds``, non-cumulative ``counts``, ``count``).  The estimate
    interpolates linearly within the bucket containing the target rank
    (the same model ``histogram_quantile()`` applies in PromQL); the
    first bucket's lower edge is taken as 0, which is exact for the
    latency histograms this registry records.  Ranks falling in the
    overflow bucket return the last finite bound — a lower bound on
    the true value.  An empty histogram returns 0.0.
    """
    if not 0.0 <= float(q) <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    bounds = hist["bounds"]
    counts = hist["counts"]
    total = hist.get("count", sum(counts))
    if total <= 0:
        return 0.0
    rank = float(q) * total
    cum = 0.0
    lo = 0.0
    for bound, count in zip(bounds, counts):
        if count > 0 and cum + count >= rank:
            frac = (rank - cum) / count
            return lo + max(0.0, min(1.0, frac)) * (float(bound) - lo)
        cum += count
        lo = float(bound)
    return float(bounds[-1])


class _SpanHandle:
    """Context manager recording one timed span on exit."""

    __slots__ = ("_tel", "name", "cat", "args", "_wall0", "_t0", "_depth")

    def __init__(self, tel: "Telemetry", name: str, cat: str, args):
        self._tel = tel
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        self._depth = self._tel._enter_depth()
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        dur = time.perf_counter() - self._t0
        self._tel._exit_depth()
        self._tel.add_span(self.name, self._wall0, dur, cat=self.cat,
                           depth=self._depth, args=self.args)
        return False


class _NullMetric:
    """No-op counter/gauge/histogram — a single shared instance."""

    __slots__ = ()

    def inc(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled registry: every operation is a no-op.

    Instrumentation sites branch on :attr:`enabled` before doing any
    timing work, so with this registry active the hot path pays one
    attribute test per frame.
    """

    enabled = False
    stage_detail = False

    def counter(self, name):
        return _NULL_METRIC

    def gauge(self, name):
        return _NULL_METRIC

    def histogram(self, name, buckets=None):
        return _NULL_METRIC

    def span(self, name, cat="", **args):
        return _NULL_SPAN

    def add_span(self, name, start, dur, cat="", tid=None, depth=0, args=None):
        pass

    def snapshot(self):
        return {}

    def drain(self):
        return {}

    def merge(self, snap):
        pass


class Telemetry:
    """An enabled metrics + span registry.

    Parameters
    ----------
    max_spans:
        Upper bound on retained span records; overflow increments the
        ``telemetry.spans_dropped`` counter instead of growing without
        bound on long streams.
    stage_detail:
        When true, the remap kernel wraps its gather / interpolate /
        store stages in spans (the ``remap_profiled`` path).  Off by
        default — per-tap spans are too fine for production streams.
    pid:
        Process id stamped on span records; defaults to ``os.getpid()``
        and is overridable for deterministic exporter tests.
    """

    enabled = True

    def __init__(self, max_spans: int = 20000, stage_detail: bool = False,
                 pid: int | None = None):
        if max_spans < 0:
            raise TelemetryError(f"max_spans must be >= 0, got {max_spans}")
        self.stage_detail = stage_detail
        self.max_spans = max_spans
        self.pid = os.getpid() if pid is None else int(pid)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: list[dict] = []
        self._depth = threading.local()

    # ------------------------------------------------------------------
    # metric accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name, self._lock))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name, self._lock))
        return g

    def histogram(self, name: str, buckets=None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name, Histogram(name, buckets or DEFAULT_LATENCY_BUCKETS,
                                    self._lock))
        return h

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def _enter_depth(self) -> int:
        d = getattr(self._depth, "value", 0)
        self._depth.value = d + 1
        return d

    def _exit_depth(self) -> None:
        self._depth.value = getattr(self._depth, "value", 1) - 1

    def span(self, name: str, cat: str = "", **args) -> _SpanHandle:
        """Time a block: ``with tel.span("stream.frame"): ...``.

        Nesting is tracked per thread; the recorded ``depth`` lets
        tests and pretty-printers reconstruct the call tree without
        relying on record order (children are recorded on *exit*, i.e.
        before their parent).
        """
        return _SpanHandle(self, name, cat, args or None)

    def timed(self, name: str, cat: str = ""):
        """Decorator form of :meth:`span`."""
        def wrap(fn):
            def inner(*a, **kw):
                with self.span(name, cat=cat):
                    return fn(*a, **kw)
            inner.__name__ = getattr(fn, "__name__", name)
            inner.__doc__ = fn.__doc__
            return inner
        return wrap

    def add_span(self, name: str, start: float, dur: float, cat: str = "",
                 tid=None, depth: int = 0, args=None) -> None:
        """Record a span directly (measured or *modeled* — the platform
        models inject their analytic DMA/kernel ledgers through here so
        modeled and measured timelines share one trace).

        ``start`` is wall-clock seconds (``time.time()``), ``dur``
        seconds.  ``tid`` defaults to the calling thread; models pass a
        synthetic track name instead.
        """
        if tid is None:
            tid = threading.get_ident()
        rec = {"name": name, "cat": cat, "ts": float(start), "dur": float(dur),
               "pid": self.pid, "tid": tid, "depth": depth}
        if args:
            rec["args"] = dict(args)
        with self._lock:
            if len(self._spans) >= self.max_spans:
                pass_drop = self._counters.get("telemetry.spans_dropped")
                if pass_drop is None:
                    pass_drop = self._counters.setdefault(
                        "telemetry.spans_dropped",
                        Counter("telemetry.spans_dropped", self._lock))
                pass_drop.value += 1  # already under self._lock
                return
            self._spans.append(rec)

    def span_total(self, name: str) -> float:
        """Summed duration (seconds) of all spans with this name."""
        with self._lock:
            return sum(s["dur"] for s in self._spans if s["name"] == name)

    @property
    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    # ------------------------------------------------------------------
    # snapshot / merge — the cross-process aggregation path
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able state dump (counters, gauges, histograms, spans)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {n: h.as_dict() for n, h in self._histograms.items()},
                "spans": [dict(s) for s in self._spans],
                "meta": {"pid": self.pid},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()

    def drain(self) -> dict:
        """Snapshot then reset: the delta a pool worker ships back.

        Because the worker's registry starts empty and is reset after
        every drain, each returned snapshot is a pure delta — merging
        it into the parent never double-counts.
        """
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` delta into this registry."""
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            g = self.gauge(name)  # register even when unset
            if value is not None:  # unset stays unset across merges
                g.set(value)
        for name, h in snap.get("histograms", {}).items():
            mine = self.histogram(name, buckets=h["bounds"])
            if list(mine.bounds) != [float(b) for b in h["bounds"]]:
                raise TelemetryError(
                    f"histogram {name} bucket mismatch on merge: "
                    f"{mine.bounds} vs {h['bounds']}")
            with self._lock:
                for i, c in enumerate(h["counts"]):
                    mine.counts[i] += c
                mine.total += h["sum"]
                mine.count += h["count"]
        for s in snap.get("spans", []):
            self.add_span(s["name"], s["ts"], s["dur"], cat=s.get("cat", ""),
                          tid=s.get("tid"), depth=s.get("depth", 0),
                          args=s.get("args"))


# ----------------------------------------------------------------------
# The active registry
# ----------------------------------------------------------------------
_GLOBAL: Telemetry | NullTelemetry = NullTelemetry()
# Context-local override (used by remap_profiled and capture helpers);
# contextvars give each thread/task its own view with a cheap C-level get.
_ACTIVE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_telemetry", default=None)


def get_telemetry():
    """The active registry: context-local override, else the global one."""
    tel = _ACTIVE.get()
    return _GLOBAL if tel is None else tel


def set_telemetry(tel) -> None:
    """Install ``tel`` (or ``None`` to disable) as the global registry."""
    global _GLOBAL
    _GLOBAL = NullTelemetry() if tel is None else tel


def enable(**kwargs) -> Telemetry:
    """Install and return a fresh enabled global registry."""
    tel = Telemetry(**kwargs)
    set_telemetry(tel)
    return tel


def disable() -> None:
    """Restore the no-op global registry."""
    set_telemetry(None)


@contextmanager
def scoped(tel):
    """Make ``tel`` the active registry inside the ``with`` block only.

    Context-local: concurrent threads/tasks outside the block keep
    seeing the global registry.
    """
    token = _ACTIVE.set(tel)
    try:
        yield tel
    finally:
        _ACTIVE.reset(token)


def emit_phase_spans(tel, prefix: str, phases_ns: dict, track: str,
                     cat: str = "model", start: float | None = None) -> float:
    """Lay a dict of ``{phase: nanoseconds}`` end to end as spans.

    The bridge from the analytic platform models (Cell DMA ledger, GPU
    ``Breakdown``) into the trace: each phase becomes one span on the
    synthetic ``track``, placed sequentially from ``start`` (default:
    now).  Returns the wall-clock end time, so callers chaining several
    emissions (per-tile ledgers) can keep one continuous timeline.
    """
    t = time.time() if start is None else float(start)
    for phase, ns in phases_ns.items():
        dur = max(0.0, float(ns)) * 1e-9
        tel.add_span(f"{prefix}.{phase}", t, dur, cat=cat, tid=track)
        t += dur
    return t
