"""Crash flight recorder: a bounded ring of the last N events.

When a streaming worker dies, the evidence needed to debug it is the
*tail* of activity — which frame was in flight, which bands completed,
what the workers were doing in the seconds before the crash.  The
passive telemetry registry cannot answer that after the fact: its span
buffer is either unbounded cost on long streams or already rotated out.

:class:`FlightRecorder` keeps exactly that tail: a fixed-capacity
in-memory deque of structured events (engine lifecycle records plus
any telemetry spans fed into it), costing one ``deque.append`` per
event and nothing when nothing fails.  On a crash or a watchdog
escalation, :meth:`FlightRecorder.dump` serializes the ring to a
timestamped JSON file; the streaming engines attach that path to the
:class:`~repro.errors.StreamError` they raise (``flight_dump``
attribute), so the artefact survives the process that produced it.

Dump format (one JSON object)::

    {
      "reason":   "worker crash" | "stall watchdog" | ...,
      "error":    "<stringified exception, if any>",
      "pid":      1234,
      "time":     1700000000.0,        # wall clock of the dump
      "capacity": 512,
      "recorded": 2048,                # events ever recorded
      "dropped":  1536,                # recorded - retained
      "events": [                      # oldest -> newest, <= capacity
        {"t": ..., "kind": "decode", "frame_id": 7, "slot": 1},
        {"t": ..., "kind": "span", "name": "ring.band", "ts": ...,
         "dur": ..., "pid": ..., "tid": "ring-worker-0",
         "args": {"frame_id": 7, ...}},
        {"t": ..., "kind": "stall", "idle_s": 2.1, ...}
      ]
    }

Each process records into its own recorder; the ring engine's workers
ship their spans back with every completed band (the normal telemetry
delta channel), so the parent-side recorder also holds the last spans
of a worker that subsequently dies.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque

from ..errors import TelemetryError

__all__ = ["FlightRecorder", "DEFAULT_FLIGHT_CAPACITY"]

#: default event-ring capacity; ~a few seconds of ring activity at VGA.
DEFAULT_FLIGHT_CAPACITY = 512


class FlightRecorder:
    """A bounded in-memory event ring with a JSON crash dump.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are silently rotated out
        (their count is preserved in the dump's ``dropped`` field).
    directory:
        Where :meth:`dump` writes its file.  Defaults to the system
        temp directory so dumps never pollute a working tree unless a
        caller opts in.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 directory: str | None = None):
        if capacity < 1:
            raise TelemetryError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = directory or tempfile.gettempdir()
        self._events: deque = deque(maxlen=capacity)
        self._recorded = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        """Append one structured event (timestamped now)."""
        event = {"t": time.time(), "kind": kind}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            self._recorded += 1

    def record_span(self, span: dict) -> None:
        """Append a telemetry span record (the dict shape
        :meth:`repro.obs.telemetry.Telemetry.snapshot` emits)."""
        self.record("span", **span)

    # ------------------------------------------------------------------
    @property
    def recorded(self) -> int:
        """Events ever recorded (including rotated-out ones)."""
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._recorded - len(self._events)

    def events(self) -> list:
        """The retained tail, oldest first."""
        with self._lock:
            return [dict(e) for e in self._events]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._recorded = 0

    # ------------------------------------------------------------------
    def dump(self, reason: str, error: BaseException | str | None = None,
             directory: str | None = None) -> str:
        """Write the ring to a timestamped JSON file; returns its path.

        Never raises on I/O problems — a failing dump must not mask the
        crash being reported — an empty string is returned instead.
        """
        now = time.time()
        stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(now))
        name = f"repro-flightrec-{os.getpid()}-{stamp}-{int(now * 1e6) % 1000000:06d}.json"
        path = os.path.join(directory or self.directory, name)
        with self._lock:
            payload = {
                "reason": reason,
                "error": str(error) if error is not None else None,
                "pid": os.getpid(),
                "time": now,
                "capacity": self.capacity,
                "recorded": self._recorded,
                "dropped": self._recorded - len(self._events),
                "events": [dict(e) for e in self._events],
            }
        try:
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True, default=str)
                fh.write("\n")
        except OSError:  # pragma: no cover - disk full / unwritable dir
            return ""
        return path
