"""One-stop ``logging`` configuration for the library and its CLI.

The library logs under the ``repro`` namespace (``repro.parallel``,
``repro.video``, ...) and never configures handlers on import — that
is an application decision.  :func:`configure_logging` is that
decision, made exactly once: the CLI calls it from ``--log-level``,
the executors call it defensively with the default level so their
worker lifecycle messages are never silently dropped on the floor,
and embedding applications may ignore it entirely and attach their own
handlers to the ``repro`` logger.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "get_logger", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_configured = False


def configure_logging(level: str = "warning", stream=None,
                      force: bool = False) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: repeated calls only adjust the level unless ``force``
    re-installs the handler (tests use this with a fresh stream).
    Returns the configured ``repro`` logger.
    """
    global _configured
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; known: {LOG_LEVELS}")
    logger = logging.getLogger("repro")
    if force:
        for h in list(logger.handlers):
            logger.removeHandler(h)
        _configured = False
    if not _configured:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
        _configured = True
    logger.setLevel(getattr(logging, level.upper()))
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("video")``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
