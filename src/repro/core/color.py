"""Colour-space conversions used by the video pipeline.

Security/automotive fisheye cameras deliver YUV; correction normally
runs per-plane on Y (full resolution) and the subsampled chroma planes.
The conversions here follow BT.601 studio-swing coefficients with
full-range variants, all vectorized and round-trip tested.
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageFormatError

__all__ = [
    "rgb_to_gray",
    "rgb_to_yuv",
    "yuv_to_rgb",
    "rgb_to_yuv420",
    "yuv420_to_rgb",
    "subsample_420",
    "upsample_420",
]

# BT.601 full-range analog coefficients
_KR, _KG, _KB = 0.299, 0.587, 0.114

# Fused 3x3 forward matrix (RGB -> YUV): Y = Kr R + Kg G + Kb B,
# U = 0.492 (B - Y), V = 0.877 (R - Y), expanded so one matmul does the
# whole conversion.  float32 keeps the hot path at half the memory
# traffic of the float64 reference functions below while staying well
# inside one uint8 LSB of them.
_FWD32 = np.array([
    [_KR, _KG, _KB],
    [-0.492 * _KR, -0.492 * _KG, 0.492 * (1.0 - _KB)],
    [0.877 * (1.0 - _KR), -0.877 * _KG, -0.877 * _KB],
], dtype=np.float32)
_INV32 = np.linalg.inv(_FWD32.astype(np.float64)).astype(np.float32)


def _check_rgb(rgb):
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ImageFormatError(f"expected (H, W, 3) RGB, got shape {rgb.shape}")
    return rgb


def rgb_to_gray(rgb):
    """Luma from RGB (BT.601 weights), preserving the input dtype."""
    rgb = _check_rgb(rgb)
    y = _KR * rgb[..., 0].astype(np.float64) + _KG * rgb[..., 1] + _KB * rgb[..., 2]
    if np.issubdtype(rgb.dtype, np.integer):
        info = np.iinfo(rgb.dtype)
        y = np.clip(np.rint(y), info.min, info.max)
    return y.astype(rgb.dtype)


def rgb_to_yuv(rgb):
    """Full-range BT.601 RGB -> YUV (float64, U/V centred on 0).

    ``Y`` in ``[0, max]`` of the input range; ``U = 0.492 (B - Y)``,
    ``V = 0.877 (R - Y)``.
    """
    rgb = _check_rgb(rgb).astype(np.float64)
    y = _KR * rgb[..., 0] + _KG * rgb[..., 1] + _KB * rgb[..., 2]
    u = 0.492 * (rgb[..., 2] - y)
    v = 0.877 * (rgb[..., 0] - y)
    return np.stack([y, u, v], axis=-1)


def yuv_to_rgb(yuv, dtype=np.float64):
    """Inverse of :func:`rgb_to_yuv`; clips to the dtype range if integer."""
    yuv = np.asarray(yuv, dtype=np.float64)
    if yuv.ndim != 3 or yuv.shape[2] != 3:
        raise ImageFormatError(f"expected (H, W, 3) YUV, got shape {yuv.shape}")
    y, u, v = yuv[..., 0], yuv[..., 1], yuv[..., 2]
    r = y + v / 0.877
    b = y + u / 0.492
    g = (y - _KR * r - _KB * b) / _KG
    rgb = np.stack([r, g, b], axis=-1)
    if np.issubdtype(np.dtype(dtype), np.integer):
        info = np.iinfo(dtype)
        rgb = np.clip(np.rint(rgb), info.min, info.max)
    return rgb.astype(dtype)


def rgb_to_yuv420(rgb):
    """Pack uint8 RGB straight into planar 4:2:0 (BT.601, box-filtered).

    The vectorized hot-path twin of ``rgb_to_yuv`` + ``subsample_420``:
    one float32 matmul converts all three channels, and the chroma
    planes are box-filtered with a reshape (no per-plane Python-level
    passes, no float64 temporaries).  Returns ``(y, u, v)`` uint8
    planes with chroma stored offset-binary around 128.
    """
    rgb = _check_rgb(rgb)
    h, w = rgb.shape[:2]
    if h % 2 or w % 2:
        raise ImageFormatError(f"4:2:0 packing needs even dimensions, got {w}x{h}")
    yuv = rgb.astype(np.float32, copy=False) @ _FWD32.T
    y = np.clip(np.rint(yuv[..., 0]), 0, 255).astype(np.uint8)
    # 2x2 box filter via reshape: mean over the (2, 2) block axes
    sub = yuv[..., 1:].reshape(h // 2, 2, w // 2, 2, 2).mean(axis=(1, 3))
    uv = np.clip(np.rint(sub + 128.0), 0, 255).astype(np.uint8)
    return y, uv[..., 0], uv[..., 1]


def yuv420_to_rgb(y, u, v):
    """Unpack planar 4:2:0 to uint8 RGB (nearest chroma upsampling).

    Inverse of :func:`rgb_to_yuv420`, again one fused float32 matmul
    over an ``(H, W, 3)`` working buffer instead of per-plane float64
    stacking.
    """
    y = np.asarray(y)
    h, w = y.shape
    yuv = np.empty((h, w, 3), dtype=np.float32)
    yuv[..., 0] = y
    # nearest-neighbour upsample: write each chroma sample into its 2x2
    # block through strided views (no intermediate repeat arrays)
    for c, plane in ((1, u), (2, v)):
        p = np.asarray(plane, dtype=np.float32) - 128.0
        for dy in (0, 1):
            for dx in (0, 1):
                yuv[dy::2, dx::2, c] = p
    rgb = yuv @ _INV32.T
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def subsample_420(plane):
    """2x2 box-filter chroma subsampling (the '420' in YUV420).

    Requires even dimensions — real 4:2:0 hardware does too.
    """
    plane = np.asarray(plane, dtype=np.float64)
    if plane.ndim != 2:
        raise ImageFormatError(f"expected a 2-D plane, got shape {plane.shape}")
    h, w = plane.shape
    if h % 2 or w % 2:
        raise ImageFormatError(f"4:2:0 subsampling needs even dimensions, got {w}x{h}")
    return 0.25 * (plane[0::2, 0::2] + plane[0::2, 1::2]
                   + plane[1::2, 0::2] + plane[1::2, 1::2])


def upsample_420(plane):
    """Nearest-neighbour 2x chroma upsampling (inverse of subsampling)."""
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ImageFormatError(f"expected a 2-D plane, got shape {plane.shape}")
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)
