"""Fast map construction via the radial look-up table.

The first optimization of the sequential code (before any parallelism):
an axis-aligned perspective correction is radially symmetric, so the
expensive per-pixel trigonometry

    r_p -> theta = atan(r_p / f_out) -> r_s = f * m(theta)

collapses to a 1-D profile ``scale(r_p) = r_s / r_p`` sampled once
(``samples`` points) and linearly interpolated per pixel.  Map
construction then costs one hypot, one table interpolation and two
multiplies per pixel — an order of magnitude cheaper than the exact
builder, with sub-pixel accuracy from a few hundred samples (the A5
ablation quantifies the error/speed trade).

Limitations (checked, not silent): the output view must be axis-aligned
(no yaw/pitch/roll) with square pixels; rotated virtual-PTZ views break
the radial symmetry and need the exact builder.
"""

from __future__ import annotations

import numpy as np

from ..errors import MappingError
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .lens import LensModel
from .mapping import RemapField

__all__ = ["RadialProfile", "radial_perspective_map"]


class RadialProfile:
    """The 1-D ``r_p -> scale`` table for one (lens, output-focal) pair."""

    def __init__(self, lens: LensModel, out_focal: float, max_radius: float,
                 samples: int = 1024):
        if out_focal <= 0:
            raise MappingError(f"output focal must be positive, got {out_focal}")
        if max_radius <= 0:
            raise MappingError(f"max_radius must be positive, got {max_radius}")
        if samples < 2:
            raise MappingError(f"need at least 2 samples, got {samples}")
        self.lens = lens
        self.out_focal = float(out_focal)
        self.max_radius = float(max_radius)
        radii = np.linspace(0.0, max_radius, samples)
        theta = np.arctan(radii / out_focal)
        with np.errstate(invalid="ignore"):
            r_s = np.asarray(lens.angle_to_radius(theta), dtype=np.float64)
        # scale = r_s / r_p with the analytic limit f / f_out at r_p = 0
        scale = np.empty_like(radii)
        scale[0] = lens.focal / out_focal
        scale[1:] = r_s[1:] / radii[1:]
        self.radii = radii
        self.scale = scale
        #: True where the lens cannot represent the angle (beyond FOV)
        self.valid = np.isfinite(scale)
        # np.interp cannot carry nan reliably; patch holes with the last
        # valid value and keep the mask for the caller.
        if not self.valid.all():
            last = np.where(self.valid)[0]
            if last.size == 0:
                raise MappingError("profile entirely outside the lens FOV")
            fill = self.scale[last[-1]]
            self.scale = np.where(self.valid, self.scale, fill)
        self._valid_limit = (self.radii[self.valid][-1]
                             if not self.valid.all() else np.inf)

    def __len__(self) -> int:
        return self.radii.size

    def evaluate(self, r_p):
        """Interpolate the scale at output radii ``r_p`` (nan beyond FOV)."""
        r_p = np.asarray(r_p, dtype=np.float64)
        scale = np.interp(r_p, self.radii, self.scale)
        out_of_table = r_p > self.max_radius
        beyond_fov = r_p > self._valid_limit
        return np.where(out_of_table | beyond_fov, np.nan, scale)


def radial_perspective_map(sensor: FisheyeIntrinsics, lens: LensModel,
                           out: CameraIntrinsics,
                           samples: int = 1024) -> RemapField:
    """Approximate :func:`~repro.core.mapping.perspective_map` via the
    radial profile.

    Raises :class:`~repro.errors.MappingError` for configurations that
    break the radial symmetry (non-square pixels, skew); use the exact
    builder for rotated views.
    """
    if abs(out.fx - out.fy) > 1e-9 * max(out.fx, out.fy):
        raise MappingError("radial map needs square pixels (fx == fy)")
    if out.skew != 0.0:
        raise MappingError("radial map does not support skew")

    ys, xs = np.indices((out.height, out.width), dtype=np.float64)
    dx = xs - out.cx
    dy = ys - out.cy
    r_p = np.hypot(dx, dy)
    corner = float(np.hypot(max(out.cx, out.width - 1 - out.cx),
                            max(out.cy, out.height - 1 - out.cy)))
    profile = RadialProfile(lens, out.fx, corner * 1.001, samples=samples)
    scale = profile.evaluate(r_p)
    return RemapField(sensor.cx + dx * scale, sensor.cy + dy * scale,
                      sensor.width, sensor.height)
