"""LUT memoization: reuse built remap tables across streams and restarts.

The T2 profile shows the per-stream cost of the LUT pipeline is
dominated by table *construction* (map analysis, border resolution,
fraction extraction), not application — roughly two orders of magnitude
more than correcting one frame.  A long-running service that restarts
streams, rotates views, or multiplexes a handful of camera geometries
re-pays that cost every time unless the tables are memoized.

:class:`LUTCache` keys built :class:`~repro.core.remap.RemapLUT` tables
by *field content* (a SHA-1 over the coordinate arrays) plus the build
parameters, so two fields that are numerically identical share one
table no matter how they were constructed.  Two tiers:

- an in-process LRU of live ``RemapLUT`` objects (``capacity`` entries);
- an optional on-disk tier (``cache_dir``): each entry is a directory
  of ``.npy`` tables that are **memory-mapped** on load, so a restarted
  process pays file-open cost, not a rebuild, and the OS page cache
  shares the bytes between processes.

Typical streaming-restart usage::

    cache = LUTCache(cache_dir="~/.cache/repro-luts")
    lut = cache.get(field, method="bilinear")   # build once...
    ...                                          # process restarts
    lut = cache.get(field, method="bilinear")   # ...mmap'd back, no build
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Optional

import numpy as np

from ..errors import MappingError, ReproError
from ..obs.telemetry import get_telemetry
from .mapping import RemapField
from .remap import RemapLUT

__all__ = ["LUTCache", "field_fingerprint"]

_FORMAT_VERSION = 1


def field_fingerprint(field: RemapField) -> str:
    """Content hash of a coordinate field (SHA-1 hex digest).

    Hashes the raw bytes of ``map_x``/``map_y`` plus their shapes and
    the source geometry, so equality means "same remap", independent of
    how the field object was produced.
    """
    h = hashlib.sha1()
    for arr in (field.map_x, field.map_y):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    h.update(f"{field.src_width}x{field.src_height}".encode())
    return h.hexdigest()


class LUTCache:
    """Two-tier (memory + optional disk) cache of built remap LUTs.

    Parameters
    ----------
    capacity:
        Maximum live LUTs kept in memory (LRU eviction).
    cache_dir:
        Optional directory for persistent entries.  Created on first
        write; tables are loaded back memory-mapped (read-only).

    Concurrent ``get()`` calls that miss on the same key are
    *single-flighted*: one caller builds (or loads) while the others
    block on a per-key lock and then reuse the finished table, so a
    burst of streams starting against one calibration performs exactly
    one build and writes the disk tier once.

    Attributes
    ----------
    hits, misses, disk_hits:
        Counters; ``hits`` are memory-tier hits, ``disk_hits`` count
        loads that skipped a rebuild via the disk tier (they also
        increment ``misses`` for the memory tier).
    coalesced:
        Misses that were absorbed by a build already in flight for the
        same key (the caller waited instead of building).
    corrupt_reads:
        Disk-tier entries that existed but could not be loaded
        (truncated/garbled tables, bad metadata); each one is treated
        as a miss and rebuilt, never raised to the caller.
    evictions:
        Memory-tier LRU evictions.
    """

    def __init__(self, capacity: int = 8, cache_dir: Optional[str] = None):
        if capacity < 1:
            raise MappingError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.cache_dir = os.path.expanduser(cache_dir) if cache_dir else None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt_reads = 0
        self.evictions = 0
        self.coalesced = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, RemapLUT]" = OrderedDict()
        # Per-key single-flight build locks: holders of self._lock only
        # ever create/look up these, never acquire them, so there is no
        # lock-ordering cycle.
        self._builds: dict = {}

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(field: RemapField, method: str = "bilinear",
                border: str = "constant", fill: float = 0.0) -> str:
        """Cache key: field content hash + build parameters."""
        tail = f"|{method}|{border}|{float(fill)!r}"
        return field_fingerprint(field) + hashlib.sha1(tail.encode()).hexdigest()[:8]

    @staticmethod
    def key_for_composed(outer: RemapField, inner: RemapField,
                         method: str = "bilinear", border: str = "constant",
                         fill: float = 0.0) -> str:
        """Cache key of a fused ``inner after outer`` table.

        Derived from the content hashes of the *constituent* fields
        (plus the build parameters), so hitting the cache never pays
        the composition itself, and any two callers composing
        numerically identical stages share one fused table.
        """
        tail = f"|{method}|{border}|{float(fill)!r}"
        h = hashlib.sha1(b"composed|")
        h.update(field_fingerprint(outer).encode())
        h.update(field_fingerprint(inner).encode())
        h.update(tail.encode())
        return "comp" + h.hexdigest()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop the memory tier (the disk tier is left intact)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counter snapshot across both tiers."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "corrupt_reads": self.corrupt_reads,
                "evictions": self.evictions,
                "coalesced": self.coalesced,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }

    # ------------------------------------------------------------------
    def get(self, field: RemapField, method: str = "bilinear",
            border: str = "constant", fill: float = 0.0) -> RemapLUT:
        """Return the LUT for this configuration, building at most once."""
        key = self.key_for(field, method, border, fill)

        def build() -> RemapLUT:
            return RemapLUT(field, method=method, border=border, fill=fill)

        return self._get_by_key(key, build)

    def get_composed(self, outer: RemapField, inner: RemapField,
                     method: str = "bilinear", border: str = "constant",
                     fill: float = 0.0) -> RemapLUT:
        """Return the fused LUT of ``inner after outer``.

        The key comes from the constituent fields' content hashes
        (:meth:`key_for_composed`), so a memory or disk hit skips both
        the composition and the table build; a burst of concurrent
        opens against the same composition single-flights into exactly
        one build (``lutcache.builds`` increments once).
        """
        from .compose import compose_fields

        key = self.key_for_composed(outer, inner, method, border, fill)

        def build() -> RemapLUT:
            field = compose_fields(outer, inner)
            return RemapLUT(field, method=method, border=border, fill=fill)

        return self._get_by_key(key, build)

    def _get_by_key(self, key: str, build) -> RemapLUT:
        """Two-tier single-flight fetch: ``build()`` runs at most once."""
        tel = get_telemetry()
        with self._lock:
            lut = self._entries.get(key)
            if lut is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                tel.counter("lutcache.mem.hits").inc()
                return lut
            self.misses += 1
            # Single-flight: all concurrent missers of one key funnel
            # through one per-key lock, so the expensive build (and the
            # disk-tier write) happens exactly once.
            flight = self._builds.get(key)
            if flight is None:
                flight = self._builds[key] = threading.Lock()
        tel.counter("lutcache.mem.misses").inc()
        with flight:
            with self._lock:
                lut = self._entries.get(key)
                if lut is not None:
                    # Another thread finished this build while we waited.
                    self._entries.move_to_end(key)
                    self.coalesced += 1
                    tel.counter("lutcache.coalesced").inc()
                    return lut
            lut = self._load(key)
            if lut is None:
                t0 = time.perf_counter() if tel.enabled else 0.0
                lut = build()
                if tel.enabled:
                    tel.histogram("lutcache.build_seconds").observe(
                        time.perf_counter() - t0)
                    tel.counter("lutcache.builds").inc()
                self._store(key, lut)
            else:
                self.disk_hits += 1
                tel.counter("lutcache.disk.hits").inc()
            with self._lock:
                self._entries[key] = lut
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    tel.counter("lutcache.evictions").inc()
                # Late waiters re-enter through the memory tier; if the
                # entry is evicted before they do, a fresh lock is made.
                self._builds.pop(key, None)
        return lut

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _entry_dir(self, key: str) -> Optional[str]:
        return os.path.join(self.cache_dir, key) if self.cache_dir else None

    def _store(self, key: str, lut: RemapLUT) -> None:
        path = self._entry_dir(key)
        if path is None:
            return
        tmp = path + ".tmp"
        os.makedirs(tmp, exist_ok=True)
        np.save(os.path.join(tmp, "indices.npy"), lut.indices)
        if lut.fracs is not None:
            np.save(os.path.join(tmp, "fracs.npy"), lut.fracs)
        if lut.mask is not None:
            np.save(os.path.join(tmp, "mask.npy"), lut.mask)
        meta = {
            "version": _FORMAT_VERSION,
            "method": lut.method,
            "border": lut.border,
            "fill": lut.fill,
            "out_shape": list(lut.out_shape),
            "src_shape": list(lut.src_shape),
        }
        with open(os.path.join(tmp, "meta.json"), "w") as fh:
            json.dump(meta, fh)
        # Atomic publish: a reader either sees the full entry or nothing.
        try:
            os.replace(tmp, path)
        except OSError:
            # Entry appeared concurrently (or non-empty dir on this
            # platform): keep the existing one.
            import shutil
            shutil.rmtree(tmp, ignore_errors=True)

    def _corrupt(self) -> None:
        self.corrupt_reads += 1
        get_telemetry().counter("lutcache.disk.corrupt").inc()

    def _load(self, key: str) -> Optional[RemapLUT]:
        path = self._entry_dir(key)
        if path is None or not os.path.isdir(path):
            return None
        # Any defect in an on-disk entry — truncated .npy, garbled
        # metadata, tables inconsistent with the recorded geometry —
        # counts as a corrupt read and falls back to a rebuild; a bad
        # cache entry must never take down the stream it memoizes for.
        try:
            with open(os.path.join(path, "meta.json")) as fh:
                meta = json.load(fh)
            if meta.get("version") != _FORMAT_VERSION:
                return None
            indices = np.load(os.path.join(path, "indices.npy"), mmap_mode="r")
            fracs_path = os.path.join(path, "fracs.npy")
            fracs = np.load(fracs_path, mmap_mode="r") if os.path.exists(fracs_path) else None
            mask_path = os.path.join(path, "mask.npy")
            mask = np.load(mask_path, mmap_mode="r") if os.path.exists(mask_path) else None
            if meta["method"] != "nearest" and fracs is None:
                self._corrupt()
                return None
            return RemapLUT.from_tables(
                indices, fracs, mask,
                out_shape=tuple(meta["out_shape"]), src_shape=tuple(meta["src_shape"]),
                method=meta["method"], border=meta["border"], fill=meta["fill"])
        except (OSError, EOFError, ValueError, KeyError, TypeError,
                json.JSONDecodeError, ReproError):
            self._corrupt()
            return None
