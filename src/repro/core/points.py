"""Point-level distortion correction (features, not images).

Downstream vision pipelines (tracking, stereo, structure-from-motion)
often correct *detected feature coordinates* instead of whole frames —
it is thousands of points instead of millions of pixels.  This module
maps individual points both ways through any lens model:

:func:`undistort_points`
    fisheye sensor coordinates -> perspective view coordinates
    (where a corrected image's content ends up),

:func:`distort_points`
    perspective view coordinates -> fisheye sensor coordinates
    (exactly what the backward image warp evaluates).

Both are exact inverses of each other (tested by property), handle
virtual pan/tilt/roll views, and mark unreachable points ``nan``.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from . import geometry
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .lens import LensModel

__all__ = ["distort_points", "undistort_points"]


def _check_points(xs, ys):
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape:
        raise GeometryError(f"coordinate shape mismatch: {xs.shape} vs {ys.shape}")
    return xs, ys


def distort_points(xs, ys, sensor: FisheyeIntrinsics, lens: LensModel,
                   out: CameraIntrinsics, yaw: float = 0.0, pitch: float = 0.0,
                   roll: float = 0.0):
    """Perspective-view pixel coordinates -> fisheye sensor coordinates.

    This is the per-point form of
    :func:`repro.core.mapping.perspective_map`; the two agree exactly
    on grid points.

    Returns ``(xs_s, ys_s)`` with ``nan`` where the view ray leaves the
    lens's representable field.
    """
    xs, ys = _check_points(xs, ys)
    rot = geometry.rotation_matrix_ypr(yaw, pitch, roll)
    rays = geometry.rays_from_pixels(xs, ys, out.fx, out.fy, out.cx, out.cy,
                                     rotation=rot)
    theta, phi = geometry.angles_from_rays(rays)
    with np.errstate(invalid="ignore"):
        r = lens.angle_to_radius(theta)
    return sensor.cx + r * np.cos(phi), sensor.cy + r * np.sin(phi)


def undistort_points(xs, ys, sensor: FisheyeIntrinsics, lens: LensModel,
                     out: CameraIntrinsics, yaw: float = 0.0, pitch: float = 0.0,
                     roll: float = 0.0):
    """Fisheye sensor coordinates -> perspective-view pixel coordinates.

    The forward direction a tracker needs: where does this detected
    fisheye feature land in the corrected view?

    Returns ``(xs_p, ys_p)`` with ``nan`` for points outside the lens's
    invertible radius or behind the (possibly rotated) view plane.
    """
    xs, ys = _check_points(xs, ys)
    r, phi = geometry.polar_from_cartesian(xs, ys, sensor.cx, sensor.cy)
    with np.errstate(invalid="ignore"):
        theta = np.asarray(lens.radius_to_angle(r), dtype=np.float64)

    sin_t = np.sin(theta)
    rays = np.stack([sin_t * np.cos(phi), sin_t * np.sin(phi), np.cos(theta)],
                    axis=-1)
    # world -> view: inverse (transpose) of the view rotation
    rot = geometry.rotation_matrix_ypr(yaw, pitch, roll)
    rays = rays @ rot  # == rays @ (rot.T).T

    z = rays[..., 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        xn = rays[..., 0] / z
        yn = rays[..., 1] / z
    xp, yp = out.denormalize(xn, yn)
    bad = ~np.isfinite(theta) | (z <= 1e-12)
    xp = np.where(bad, np.nan, xp)
    yp = np.where(bad, np.nan, yp)
    return xp, yp
