"""Remap construction: where does each corrected pixel come from?

Distortion correction is *backward* warping: for every pixel of the
corrected output view we compute the fractional source coordinate on
the fisheye sensor image, then interpolate.  This module builds those
coordinate fields for three output geometries,

- :func:`perspective_map` — rectilinear view (the paper's kernel),
  with optional pan/tilt/roll/zoom "virtual PTZ" windows,
- :func:`cylindrical_map` — cylindrical panorama,
- :func:`equirectangular_map` — full spherical panorama,

plus :func:`fisheye_forward_map`, the inverse construction used by the
synthetic-workload generator to *create* fisheye imagery from an ideal
perspective scene (ground truth for quality metrics).

The result type :class:`RemapField` also carries the analysis methods
the accelerator models need: per-tile source bounding boxes (Cell-BE
local-store sizing), row-span statistics (FPGA line buffering), and
cache-line gather counts (GPU coalescing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MappingError
from . import geometry
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .lens import LensModel

__all__ = [
    "RemapField",
    "perspective_map",
    "cylindrical_map",
    "equirectangular_map",
    "fisheye_forward_map",
    "identity_map",
    "chroma_half_field",
]


@dataclass
class RemapField:
    """A backward-warp coordinate field plus its source geometry.

    Attributes
    ----------
    map_x, map_y:
        ``(H_out, W_out)`` float64 arrays of fractional source
        coordinates; ``nan`` marks output pixels with no source
        (outside the lens FOV or outside the source frame).
    src_width, src_height:
        Size of the source image the maps index into.
    """

    map_x: np.ndarray
    map_y: np.ndarray
    src_width: int
    src_height: int

    def __post_init__(self):
        self.map_x = np.asarray(self.map_x, dtype=np.float64)
        self.map_y = np.asarray(self.map_y, dtype=np.float64)
        if self.map_x.shape != self.map_y.shape or self.map_x.ndim != 2:
            raise MappingError(
                f"map_x/map_y must be matching 2-D arrays, got {self.map_x.shape} / {self.map_y.shape}")
        if self.src_width <= 0 or self.src_height <= 0:
            raise MappingError(f"source size must be positive: {self.src_width}x{self.src_height}")

    # ------------------------------------------------------------------
    @property
    def shape(self):
        """Output shape ``(H_out, W_out)``."""
        return self.map_x.shape

    def valid_mask(self) -> np.ndarray:
        """Boolean mask of output pixels with an in-source sample point.

        Cached after the first call — fields are treated as immutable
        once constructed (mutate ``map_x``/``map_y`` and the cache is
        stale; build a new field instead).
        """
        cached = getattr(self, "_valid_mask", None)
        if cached is None:
            with np.errstate(invalid="ignore"):
                cached = (
                    np.isfinite(self.map_x) & np.isfinite(self.map_y)
                    & (self.map_x >= 0) & (self.map_x <= self.src_width - 1)
                    & (self.map_y >= 0) & (self.map_y <= self.src_height - 1)
                )
            self._valid_mask = cached
        return cached

    def coverage(self) -> float:
        """Fraction of output pixels that receive source data."""
        return float(self.valid_mask().mean())

    # ------------------------------------------------------------------
    # Analyses consumed by the platform models
    # ------------------------------------------------------------------
    def source_bbox(self, row0: int, row1: int, col0: int, col1: int,
                    margin: int = 2):
        """Bounding box of source pixels needed by an output tile.

        Returns ``(sy0, sy1, sx0, sx1)`` (half-open, clamped to the
        source frame) or ``None`` when the tile is entirely out-of-FOV.
        ``margin`` accounts for the interpolation footprint.
        """
        sub_x = self.map_x[row0:row1, col0:col1]
        sub_y = self.map_y[row0:row1, col0:col1]
        # Only samples that will actually be fetched count (out-of-FOV
        # pixels are filled, not gathered).
        fetched = self.valid_mask()[row0:row1, col0:col1]
        if not fetched.any():
            return None
        xs = sub_x[fetched]
        ys = sub_y[fetched]
        sx0 = int(np.floor(xs.min())) - margin
        sx1 = int(np.ceil(xs.max())) + margin + 1
        sy0 = int(np.floor(ys.min())) - margin
        sy1 = int(np.ceil(ys.max())) + margin + 1
        return (
            max(0, sy0), min(self.src_height, sy1),
            max(0, sx0), min(self.src_width, sx1),
        )

    def row_span(self) -> np.ndarray:
        """Vertical source span (rows) required per output row.

        Entry ``i`` is ``max(map_y[i]) - min(map_y[i])`` over finite
        samples (0 for fully-invalid rows).  The maximum over the image
        bounds the line-buffer depth a streaming (FPGA-style)
        implementation must provision.
        """
        spans = np.zeros(self.map_y.shape[0], dtype=np.float64)
        finite = np.isfinite(self.map_y)
        for i in range(self.map_y.shape[0]):
            row = self.map_y[i][finite[i]]
            if row.size:
                spans[i] = float(row.max() - row.min())
        return spans

    def gather_lines(self, group: int = 32, line_bytes: int = 128,
                     pixel_bytes: int = 1) -> np.ndarray:
        """Distinct cache lines touched by each ``group`` of output pixels.

        Models a GPU warp (or SIMD gather) of ``group`` consecutive
        output pixels reading their *nearest* source pixel: the number
        of distinct ``line_bytes``-sized memory segments those reads
        hit.  1.0 means perfectly coalesced, ``group`` means fully
        scattered.  Out-of-FOV lanes issue no transaction.

        Returns a 1-D array with one entry per complete group in
        row-major output order.
        """
        if group <= 0 or line_bytes <= 0 or pixel_bytes <= 0:
            raise MappingError("group, line_bytes and pixel_bytes must be positive")
        mask = self.valid_mask().ravel()
        xs = np.clip(np.nan_to_num(self.map_x.ravel()), 0, self.src_width - 1)
        ys = np.clip(np.nan_to_num(self.map_y.ravel()), 0, self.src_height - 1)
        addr = (np.rint(ys).astype(np.int64) * self.src_width
                + np.rint(xs).astype(np.int64)) * pixel_bytes
        line = addr // line_bytes
        n = (line.size // group) * group
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        line = line[:n].reshape(-1, group)
        mask = mask[:n].reshape(-1, group)
        counts = np.empty(line.shape[0], dtype=np.float64)
        for k in range(line.shape[0]):
            active = line[k][mask[k]]
            counts[k] = float(np.unique(active).size) if active.size else 0.0
        return counts

    def astype32(self):
        """Return ``(map_x, map_y)`` as C-contiguous float32 arrays."""
        return (
            np.ascontiguousarray(self.map_x, dtype=np.float32),
            np.ascontiguousarray(self.map_y, dtype=np.float32),
        )


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _source_coords_from_rays(rays, lens: LensModel, sensor: FisheyeIntrinsics):
    """Shared tail: rays -> (theta, phi) -> fisheye sensor coordinates."""
    theta, phi = geometry.angles_from_rays(rays)
    with np.errstate(invalid="ignore"):
        r = lens.angle_to_radius(theta)
    map_x = sensor.cx + r * np.cos(phi)
    map_y = sensor.cy + r * np.sin(phi)
    return map_x, map_y


def perspective_map(sensor: FisheyeIntrinsics, lens: LensModel,
                    out: CameraIntrinsics, yaw: float = 0.0,
                    pitch: float = 0.0, roll: float = 0.0) -> RemapField:
    """Backward map for a rectilinear (perspective) output view.

    Parameters
    ----------
    sensor:
        Geometry of the fisheye source image.
    lens:
        The fisheye projection model (its ``focal`` should equal
        ``sensor.focal``; they are kept separate so a deliberately
        mis-modelled correction can be constructed for the quality
        benchmarks).
    out:
        Intrinsics of the desired perspective output (size, focal =
        zoom, principal point).
    yaw, pitch, roll:
        Virtual pan/tilt/roll of the output view (radians).

    Returns
    -------
    RemapField
    """
    xs, ys = geometry.pixel_grid(out.height, out.width)
    rot = geometry.rotation_matrix_ypr(yaw, pitch, roll)
    rays = geometry.rays_from_pixels(xs, ys, out.fx, out.fy, out.cx, out.cy, rotation=rot)
    map_x, map_y = _source_coords_from_rays(rays, lens, sensor)
    return RemapField(map_x, map_y, sensor.width, sensor.height)


def cylindrical_map(sensor: FisheyeIntrinsics, lens: LensModel,
                    out_width: int, out_height: int,
                    hfov: float = np.pi, vfov: float = np.pi / 2.0) -> RemapField:
    """Backward map for a cylindrical panorama output.

    Columns are uniform in azimuth over ``[-hfov/2, hfov/2]``; rows are
    uniform in the tangent of elevation over ``[-tan(vfov/2), ...]``
    (so vertical lines in the scene stay vertical).
    """
    if out_width <= 0 or out_height <= 0:
        raise MappingError(f"output size must be positive: {out_width}x{out_height}")
    if not 0 < hfov <= 2 * np.pi or not 0 < vfov < np.pi:
        raise MappingError(f"invalid panorama FOV: hfov={hfov}, vfov={vfov}")
    psi = np.linspace(-hfov / 2.0, hfov / 2.0, out_width)
    v = np.linspace(-np.tan(vfov / 2.0), np.tan(vfov / 2.0), out_height)
    psi_g, v_g = np.meshgrid(psi, v)
    rays = np.stack([np.sin(psi_g), v_g, np.cos(psi_g)], axis=-1)
    rays = geometry.normalize_rows(rays)
    map_x, map_y = _source_coords_from_rays(rays, lens, sensor)
    return RemapField(map_x, map_y, sensor.width, sensor.height)


def equirectangular_map(sensor: FisheyeIntrinsics, lens: LensModel,
                        out_width: int, out_height: int,
                        hfov: float = np.pi, vfov: float = np.pi) -> RemapField:
    """Backward map for an equirectangular (longitude/latitude) output."""
    if out_width <= 0 or out_height <= 0:
        raise MappingError(f"output size must be positive: {out_width}x{out_height}")
    lon = np.linspace(-hfov / 2.0, hfov / 2.0, out_width)
    lat = np.linspace(-vfov / 2.0, vfov / 2.0, out_height)
    lon_g, lat_g = np.meshgrid(lon, lat)
    cos_lat = np.cos(lat_g)
    rays = np.stack([cos_lat * np.sin(lon_g), np.sin(lat_g), cos_lat * np.cos(lon_g)], axis=-1)
    map_x, map_y = _source_coords_from_rays(rays, lens, sensor)
    return RemapField(map_x, map_y, sensor.width, sensor.height)


def fisheye_forward_map(scene: CameraIntrinsics, lens: LensModel,
                        sensor: FisheyeIntrinsics) -> RemapField:
    """Backward map that *renders a fisheye image* from a perspective scene.

    For each fisheye sensor pixel, invert the lens model to a field
    angle and project that ray onto the ideal perspective scene plane.
    Used by the synthetic workload generator: applying this map to a
    known perspective scene produces the distorted input whose
    correction can then be checked against the original.
    """
    xs, ys = geometry.pixel_grid(sensor.height, sensor.width)
    r, phi = geometry.polar_from_cartesian(xs, ys, sensor.cx, sensor.cy)
    with np.errstate(invalid="ignore"):
        theta = lens.radius_to_angle(r)
        # theta may exceed the scene camera's 90deg representable range.
        tan_theta = np.where(theta < np.pi / 2.0, np.tan(np.where(theta < np.pi / 2.0, theta, 0.0)), np.nan)
    xs_n = tan_theta * np.cos(phi)
    ys_n = tan_theta * np.sin(phi)
    map_x, map_y = scene.denormalize(xs_n, ys_n)
    bad = ~np.isfinite(theta)
    map_x = np.where(bad, np.nan, map_x)
    map_y = np.where(bad, np.nan, map_y)
    return RemapField(map_x, map_y, scene.width, scene.height)


def identity_map(width: int, height: int) -> RemapField:
    """A no-op map (output pixel samples the same source pixel).

    Useful as a baseline in cache/coalescing studies: it is the
    perfectly sequential access pattern.
    """
    xs, ys = geometry.pixel_grid(height, width)
    return RemapField(xs, ys, width, height)


def chroma_half_field(field: RemapField) -> RemapField:
    """Derive the half-resolution 4:2:0 chroma twin of a luma field.

    Chroma output pixel ``(i, j)`` covers luma output pixels
    ``(2i..2i+1, 2j..2j+1)``, so its sample point sits at luma
    coordinate ``(2i + 0.5, 2j + 0.5)`` — exactly the centre of the
    2x2 block, where bilinear interpolation of the luma map equals the
    block mean.  The averaged source coordinate is then rescaled into
    the half-resolution chroma source plane with the same half-pixel
    convention: ``c' = (c - 0.5) / 2``.

    Because the construction is purely numeric it works for *any*
    luma field (perspective, cylindrical, tilted views, composed
    maps), always describes the same scene geometry as the luma plane,
    and produces a field whose content fingerprint — and therefore its
    :class:`~repro.core.lutcache.LUTCache` key — is distinct from the
    full-resolution map it was derived from.  NaN (out-of-FOV) luma
    samples propagate through the mean, so a chroma pixel is valid
    only when its whole 2x2 luma block is.
    """
    h, w = field.shape
    if h % 2 or w % 2:
        raise MappingError(f"4:2:0 output size must be even, got {w}x{h}")
    if field.src_width % 2 or field.src_height % 2:
        raise MappingError(
            f"4:2:0 source size must be even, got "
            f"{field.src_width}x{field.src_height}")
    mx = field.map_x.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))
    my = field.map_y.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))
    return RemapField((mx - 0.5) / 2.0, (my - 0.5) / 2.0,
                      field.src_width // 2, field.src_height // 2)
