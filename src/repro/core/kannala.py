"""Kannala–Brandt fisheye model — the modern polynomial comparator.

Brown–Conrady (F10's classical baseline) is a polynomial in the
*perspective* radius ``tan(theta)`` and therefore structurally cannot
represent a 180-degree lens.  Kannala & Brandt's fix — now the standard
"fisheye model" of OpenCV and Kalibr — is a polynomial in the *angle*
itself::

    r(theta) = f * (theta + k1 theta^3 + k2 theta^5 + k3 theta^7 + k4 theta^9)

which stays finite over the whole hemisphere and subsumes every
classical family to high accuracy with 2-4 coefficients.  Including it
makes the F10 story complete: the failure is not "polynomials", it is
*the wrong expansion variable*.

The inverse (radius -> angle) is a guarded Newton iteration, like the
Brown–Conrady one, but here the forward map is monotone for all
physically sensible coefficient sets, so convergence is routine.
"""

from __future__ import annotations

import numpy as np

from ..errors import CalibrationError, LensModelError
from .lens import LensModel

__all__ = ["KannalaBrandtLens", "fit_kannala_brandt"]


class KannalaBrandtLens(LensModel):
    """Angle-polynomial fisheye: ``r = f * poly(theta)``."""

    name = "kannala_brandt"

    def __init__(self, focal: float, k1: float = 0.0, k2: float = 0.0,
                 k3: float = 0.0, k4: float = 0.0,
                 max_theta: float = np.pi / 2.0):
        super().__init__(focal)
        if not 0.0 < max_theta <= np.pi:
            raise LensModelError(f"max_theta must be in (0, pi], got {max_theta}")
        self.coeffs = (float(k1), float(k2), float(k3), float(k4))
        self._max_theta = float(max_theta)
        # Monotonicity check over the domain: a non-monotone forward map
        # would make the model useless as a lens (folded image).
        theta = np.linspace(0.0, self._max_theta, 512)
        if np.any(np.diff(self._poly(theta)) <= 0):
            raise LensModelError(
                f"coefficients {self.coeffs} make r(theta) non-monotone on "
                f"[0, {max_theta:.3f}]")

    # ------------------------------------------------------------------
    def _poly(self, theta):
        k1, k2, k3, k4 = self.coeffs
        t2 = theta * theta
        return theta * (1.0 + t2 * (k1 + t2 * (k2 + t2 * (k3 + t2 * k4))))

    def _dpoly(self, theta):
        k1, k2, k3, k4 = self.coeffs
        t2 = theta * theta
        return (1.0 + t2 * (3.0 * k1 + t2 * (5.0 * k2
                + t2 * (7.0 * k3 + t2 * 9.0 * k4))))

    # ------------------------------------------------------------------
    def angle_to_radius(self, theta):
        theta = np.asarray(theta, dtype=np.float64)
        ok = (theta >= 0) & (theta <= self._max_theta)
        safe = np.where(ok, theta, 0.0)
        return np.where(ok, self.focal * self._poly(safe), np.nan)

    def radius_to_angle(self, r, iterations: int = 25, tol: float = 1e-12):
        r = np.asarray(r, dtype=np.float64)
        target = r / self.focal
        max_target = self._poly(np.array(self._max_theta))
        # Initial guess: the equidistant inverse.
        theta = np.clip(target, 0.0, self._max_theta)
        for _ in range(max(1, iterations)):
            g = self._poly(theta) - target
            dg = self._dpoly(theta)
            step = g / np.where(np.abs(dg) < 1e-12, 1.0, dg)
            theta = np.clip(theta - step, 0.0, self._max_theta)
            if np.all(np.abs(step) < tol):
                break
        ok = (r >= 0) & (target <= max_target + 1e-12)
        return np.where(ok, theta, np.nan)

    @property
    def max_theta(self) -> float:
        return self._max_theta


def fit_kannala_brandt(lens: LensModel, max_theta: float | None = None,
                       samples: int = 256, order: int = 4) -> KannalaBrandtLens:
    """Least-squares Kannala–Brandt fit to any lens model.

    Linear in the coefficients: ``m(theta)/theta - 1`` is regressed on
    ``theta^2, theta^4, ...``.  Unlike the Brown–Conrady fit this works
    over the lens's *entire* domain, including 180 degrees.

    Parameters
    ----------
    lens:
        The exact model to approximate.
    max_theta:
        Fit range; defaults to the lens's full domain (capped at pi/2
        for lenses that extend beyond the hemisphere).
    samples, order:
        Sample count and number of coefficients (1..4).
    """
    if not 1 <= order <= 4:
        raise CalibrationError(f"order must be 1..4, got {order}")
    if max_theta is None:
        max_theta = min(lens.max_theta, np.pi / 2.0)
    if not 0.0 < max_theta <= lens.max_theta:
        raise CalibrationError(
            f"max_theta must be in (0, {lens.max_theta:.3f}], got {max_theta}")
    if samples < order + 1:
        raise CalibrationError(f"need at least {order + 1} samples, got {samples}")

    theta = np.linspace(max_theta / samples, max_theta, samples)
    m = np.asarray(lens.angle_to_radius(theta), dtype=np.float64) / lens.focal
    if not np.all(np.isfinite(m)):
        raise CalibrationError("lens model returned non-finite radii in the fit range")
    target = m / theta - 1.0
    basis = np.stack([theta ** (2 * (i + 1)) for i in range(order)], axis=1)
    coeffs, *_ = np.linalg.lstsq(basis, target, rcond=None)
    ks = list(coeffs) + [0.0] * (4 - order)
    return KannalaBrandtLens(lens.focal, *ks, max_theta=max_theta)
