"""Camera intrinsics: pixel <-> normalized coordinate bookkeeping.

:class:`CameraIntrinsics` models the classic pinhole intrinsic matrix

::

        [ fx  s  cx ]
    K = [  0  fy cy ]
        [  0  0   1 ]

and provides the conversions that the mapping builders need.  Fisheye
*sensors* are described by :class:`FisheyeIntrinsics`, which couples a
principal point with the radius at which the lens reaches a reference
field angle (the ``r0``/``R0`` parametrization common in fisheye
data sheets: ``r0`` pixels at 45 degrees, ``R0 = 2 * r0`` pixels at 90
degrees for an equidistant lens).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import GeometryError

__all__ = ["CameraIntrinsics", "FisheyeIntrinsics"]


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsic parameters for a perspective view.

    Attributes
    ----------
    fx, fy:
        Focal lengths in pixels (positive).
    cx, cy:
        Principal point in pixels.
    skew:
        Axis skew coefficient (almost always 0).
    width, height:
        Image size in pixels (positive).
    """

    fx: float
    fy: float
    cx: float
    cy: float
    width: int
    height: int
    skew: float = 0.0

    def __post_init__(self):
        if self.fx <= 0 or self.fy <= 0:
            raise GeometryError(f"focal lengths must be positive: fx={self.fx} fy={self.fy}")
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(f"image size must be positive: {self.width}x{self.height}")

    @classmethod
    def from_fov(cls, width: int, height: int, hfov: float,
                 square_pixels: bool = True) -> "CameraIntrinsics":
        """Build intrinsics from a horizontal field of view (radians).

        The focal length is chosen so a perspective (rectilinear) camera
        of the given width spans ``hfov``:  ``fx = (width/2) / tan(hfov/2)``.
        ``hfov`` must lie strictly inside ``(0, pi)`` — a rectilinear
        camera cannot reach 180 degrees.
        """
        if not 0.0 < hfov < np.pi:
            raise GeometryError(f"perspective hfov must be in (0, pi), got {hfov}")
        fx = (width / 2.0) / np.tan(hfov / 2.0)
        fy = fx if square_pixels else fx * (height / width)
        return cls(fx=fx, fy=fy, cx=(width - 1) / 2.0, cy=(height - 1) / 2.0,
                   width=width, height=height)

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 intrinsic matrix ``K``."""
        return np.array([
            [self.fx, self.skew, self.cx],
            [0.0, self.fy, self.cy],
            [0.0, 0.0, 1.0],
        ])

    @property
    def hfov(self) -> float:
        """Horizontal field of view (radians) of the perspective view."""
        return 2.0 * np.arctan((self.width / 2.0) / self.fx)

    @property
    def vfov(self) -> float:
        """Vertical field of view (radians) of the perspective view."""
        return 2.0 * np.arctan((self.height / 2.0) / self.fy)

    def scaled(self, factor: float) -> "CameraIntrinsics":
        """Return intrinsics for an image scaled uniformly by ``factor``."""
        if factor <= 0:
            raise GeometryError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            fx=self.fx * factor,
            fy=self.fy * factor,
            cx=self.cx * factor,
            cy=self.cy * factor,
            width=int(round(self.width * factor)),
            height=int(round(self.height * factor)),
        )

    def normalize(self, xs, ys):
        """Pixel coordinates -> normalized image-plane coordinates."""
        ys_n = (np.asarray(ys, dtype=np.float64) - self.cy) / self.fy
        xs_n = (np.asarray(xs, dtype=np.float64) - self.cx - self.skew * ys_n) / self.fx
        return xs_n, ys_n

    def denormalize(self, xs_n, ys_n):
        """Normalized image-plane coordinates -> pixel coordinates."""
        xs_n = np.asarray(xs_n, dtype=np.float64)
        ys_n = np.asarray(ys_n, dtype=np.float64)
        return self.fx * xs_n + self.skew * ys_n + self.cx, self.fy * ys_n + self.cy


@dataclass(frozen=True)
class FisheyeIntrinsics:
    """Geometry of a fisheye *sensor* image.

    Attributes
    ----------
    width, height:
        Sensor image size in pixels.
    cx, cy:
        Distortion centre (lens axis) in pixels.
    focal:
        The lens model's focal parameter ``f`` in pixels.  For an
        equidistant lens ``r = f * theta``, so a lens whose 180-degree
        image circle has radius ``R`` has ``focal = R / (pi / 2)``.
    """

    width: int
    height: int
    cx: float
    cy: float
    focal: float

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(f"image size must be positive: {self.width}x{self.height}")
        if self.focal <= 0:
            raise GeometryError(f"focal must be positive, got {self.focal}")

    @classmethod
    def centered(cls, width: int, height: int, focal: float) -> "FisheyeIntrinsics":
        """Intrinsics with the lens axis at the image centre."""
        return cls(width=width, height=height,
                   cx=(width - 1) / 2.0, cy=(height - 1) / 2.0, focal=focal)

    @classmethod
    def from_image_circle(cls, width: int, height: int, circle_radius: float,
                          max_angle: float = np.pi / 2.0,
                          model_radius_at=None) -> "FisheyeIntrinsics":
        """Build intrinsics from the radius of the lens's image circle.

        Parameters
        ----------
        circle_radius:
            Radius (pixels) at which the lens reaches ``max_angle``.
        max_angle:
            Field angle (radians) at the image-circle edge; pi/2 for a
            180-degree lens.
        model_radius_at:
            Optional callable ``theta -> r/f`` giving the lens model's
            normalized radius (e.g. ``lambda t: t`` for equidistant).
            Defaults to equidistant.
        """
        if circle_radius <= 0:
            raise GeometryError(f"circle radius must be positive, got {circle_radius}")
        if not 0.0 < max_angle <= np.pi:
            raise GeometryError(f"max_angle must be in (0, pi], got {max_angle}")
        unit = max_angle if model_radius_at is None else float(model_radius_at(max_angle))
        if unit <= 0:
            raise GeometryError("model_radius_at(max_angle) must be positive")
        return cls.centered(width, height, focal=circle_radius / unit)

    @property
    def r0(self) -> float:
        """Equidistant-convention radius (pixels) at 45 degrees."""
        return self.focal * (np.pi / 4.0)

    @property
    def image_circle_radius_180(self) -> float:
        """Equidistant-convention radius (pixels) at 90 degrees."""
        return self.focal * (np.pi / 2.0)

    @property
    def max_inscribed_radius(self) -> float:
        """Largest centred radius fully inside the sensor rectangle."""
        return min(self.cx, self.cy, self.width - 1 - self.cx, self.height - 1 - self.cy)

    def contains(self, xs, ys):
        """Boolean mask: do ``(xs, ys)`` fall inside the sensor image?"""
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        return (xs >= 0) & (xs <= self.width - 1) & (ys >= 0) & (ys <= self.height - 1)
