"""Image container with explicit pixel-format metadata.

The library's kernels accept bare numpy arrays; :class:`Frame` is the
thin metadata wrapper the *pipeline* level uses so colour space, bit
depth and frame indices travel with the data through a video stream.
It deliberately does not subclass ``ndarray`` — the array is a plain
attribute, keeping all numpy semantics unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ImageFormatError

__all__ = ["PixelFormat", "Frame", "GRAY8", "GRAY16", "RGB8", "RGBF32"]


@dataclass(frozen=True)
class PixelFormat:
    """A named pixel layout: channel count + dtype + colour space tag."""

    name: str
    channels: int
    dtype: np.dtype
    colorspace: str  # "gray" | "rgb" | "yuv"

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.channels not in (1, 3):
            raise ImageFormatError(f"unsupported channel count {self.channels}")
        if self.colorspace not in ("gray", "rgb", "yuv"):
            raise ImageFormatError(f"unsupported colorspace {self.colorspace!r}")

    @property
    def bytes_per_pixel(self) -> int:
        return self.channels * self.dtype.itemsize


GRAY8 = PixelFormat("gray8", 1, np.uint8, "gray")
GRAY16 = PixelFormat("gray16", 1, np.uint16, "gray")
RGB8 = PixelFormat("rgb8", 3, np.uint8, "rgb")
RGBF32 = PixelFormat("rgbf32", 3, np.float32, "rgb")

_FORMATS = {f.name: f for f in (GRAY8, GRAY16, RGB8, RGBF32)}


@dataclass
class Frame:
    """One video frame: pixel data + format + stream position.

    Attributes
    ----------
    data:
        ``(H, W)`` for single-channel or ``(H, W, C)`` array whose dtype
        and channel count match ``fmt``.
    fmt:
        The declared :class:`PixelFormat`.
    index:
        Position in the originating stream (0-based).
    timestamp:
        Presentation time in seconds (``index / fps`` for synthetic
        streams).
    """

    data: np.ndarray
    fmt: PixelFormat = GRAY8
    index: int = 0
    timestamp: float = 0.0

    def __post_init__(self):
        self.data = np.asarray(self.data)
        expected_ndim = 2 if self.fmt.channels == 1 else 3
        if self.data.ndim != expected_ndim:
            raise ImageFormatError(
                f"{self.fmt.name} frame must be {expected_ndim}-D, got shape {self.data.shape}")
        if expected_ndim == 3 and self.data.shape[2] != self.fmt.channels:
            raise ImageFormatError(
                f"{self.fmt.name} expects {self.fmt.channels} channels, got {self.data.shape[2]}")
        if self.data.dtype != self.fmt.dtype:
            raise ImageFormatError(
                f"{self.fmt.name} expects dtype {self.fmt.dtype}, got {self.data.dtype}")

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @classmethod
    def zeros(cls, height: int, width: int, fmt: PixelFormat = GRAY8,
              index: int = 0, timestamp: float = 0.0) -> "Frame":
        """A black frame of the given size and format."""
        if height <= 0 or width <= 0:
            raise ImageFormatError(f"frame size must be positive: {width}x{height}")
        shape = (height, width) if fmt.channels == 1 else (height, width, fmt.channels)
        return cls(np.zeros(shape, dtype=fmt.dtype), fmt, index, timestamp)

    def with_data(self, data: np.ndarray) -> "Frame":
        """Same metadata, new pixel data (shape may change, format not)."""
        return Frame(data, self.fmt, self.index, self.timestamp)

    @staticmethod
    def format_by_name(name: str) -> PixelFormat:
        try:
            return _FORMATS[name]
        except KeyError:
            raise ImageFormatError(
                f"unknown pixel format {name!r}; known: {sorted(_FORMATS)}") from None
