"""Core library: lens models, remap construction, and the correction API.

This subpackage is the paper's primary contribution — the fisheye
distortion-correction kernel — implemented from scratch:

- :mod:`~repro.core.lens` — the classical fisheye projection families,
- :mod:`~repro.core.brown_conrady` — the polynomial comparator,
- :mod:`~repro.core.mapping` — backward-warp coordinate fields and the
  map analyses the platform models consume,
- :mod:`~repro.core.interpolation` / :mod:`~repro.core.remap` /
  :mod:`~repro.core.fixedpoint` — the sampling kernels (on-the-fly,
  float LUT, fixed-point LUT),
- :mod:`~repro.core.calibration` / :mod:`~repro.core.quality` — lens
  parameter recovery and quantitative quality metrics,
- :mod:`~repro.core.pipeline` — the high-level streaming API.
"""

from .brown_conrady import BrownConrady, BrownConradyLens, fit_brown_conrady
from .calibration import CalibrationResult, calibrate, detect_blobs, fit_focal, select_model
from .fixedpoint import FixedPointLUT
from .image import GRAY8, GRAY16, RGB8, RGBF32, Frame, PixelFormat
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .kannala import KannalaBrandtLens, fit_kannala_brandt
from .kernel_tiers import (
    KERNEL_CHOICES,
    KERNEL_TIERS,
    available_tiers,
    kernel_tier,
    resolve_tier,
)
from .lens import (
    LENS_MODELS,
    EquidistantLens,
    EquisolidLens,
    LensModel,
    OrthographicLens,
    PerspectiveLens,
    StereographicLens,
    make_lens,
)
from .mapping import (
    RemapField,
    cylindrical_map,
    equirectangular_map,
    fisheye_forward_map,
    identity_map,
    perspective_map,
)
from .antialias import SupersampledLUT, minification_map, supersample_field
from .lutcache import LUTCache, field_fingerprint
from .compose import affine_field, compose_fields, crop_field
from .multiview import ViewSpec, compose_views, quad_view
from .pipeline import FisheyeCorrector, SequentialExecutor, StreamStats
from .points import distort_points, undistort_points
from .quality import center_scale, fov_retention, line_straightness, psnr, ssim
from .remap import RemapLUT, StageProfile, remap, remap_profiled
from .vignette import VignetteModel, correct_vignette

__all__ = [
    "BrownConrady",
    "BrownConradyLens",
    "fit_brown_conrady",
    "CalibrationResult",
    "calibrate",
    "detect_blobs",
    "fit_focal",
    "select_model",
    "FixedPointLUT",
    "KERNEL_CHOICES",
    "KERNEL_TIERS",
    "available_tiers",
    "kernel_tier",
    "resolve_tier",
    "Frame",
    "PixelFormat",
    "GRAY8",
    "GRAY16",
    "RGB8",
    "RGBF32",
    "CameraIntrinsics",
    "FisheyeIntrinsics",
    "KannalaBrandtLens",
    "fit_kannala_brandt",
    "LensModel",
    "EquidistantLens",
    "EquisolidLens",
    "OrthographicLens",
    "StereographicLens",
    "PerspectiveLens",
    "make_lens",
    "LENS_MODELS",
    "RemapField",
    "perspective_map",
    "cylindrical_map",
    "equirectangular_map",
    "fisheye_forward_map",
    "identity_map",
    "FisheyeCorrector",
    "SequentialExecutor",
    "StreamStats",
    "RemapLUT",
    "LUTCache",
    "field_fingerprint",
    "StageProfile",
    "remap",
    "remap_profiled",
    "SupersampledLUT",
    "supersample_field",
    "minification_map",
    "distort_points",
    "undistort_points",
    "compose_fields",
    "crop_field",
    "affine_field",
    "ViewSpec",
    "compose_views",
    "quad_view",
    "VignetteModel",
    "correct_vignette",
    "psnr",
    "ssim",
    "line_straightness",
    "fov_retention",
    "center_scale",
]
