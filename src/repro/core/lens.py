"""Fisheye lens projection models.

A radially symmetric lens is fully described by its *mapping function*
``r = f * m(theta)`` relating the field angle ``theta`` (between an
incoming ray and the optical axis) to the image radius ``r`` in pixels.
The classical families implemented here are

=============== ======================= =========================
model           mapping ``r(theta)``    inverse ``theta(r)``
=============== ======================= =========================
equidistant     ``f * theta``           ``r / f``
equisolid       ``2 f sin(theta/2)``    ``2 asin(r / 2f)``
orthographic    ``f sin(theta)``        ``asin(r / f)``
stereographic   ``2 f tan(theta/2)``    ``2 atan(r / 2f)``
perspective     ``f tan(theta)``        ``atan(r / f)``
=============== ======================= =========================

(Equidistant is by far the most common scheme for security/automotive
fisheye cameras and is the scheme the target paper's kernel corrects.)

Every model exposes vectorized forward/inverse maps plus domain
metadata (the largest representable field angle), which the mapping
builders use to mask out-of-FOV output pixels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import LensModelError

__all__ = [
    "LensModel",
    "EquidistantLens",
    "EquisolidLens",
    "OrthographicLens",
    "StereographicLens",
    "PerspectiveLens",
    "make_lens",
    "LENS_MODELS",
]


class LensModel(ABC):
    """Abstract radially-symmetric lens model with focal ``f`` in pixels."""

    #: short identifier used by :func:`make_lens` and in reports
    name: str = "abstract"

    def __init__(self, focal: float):
        if focal <= 0:
            raise LensModelError(f"{type(self).__name__}: focal must be positive, got {focal}")
        self.focal = float(focal)

    # ------------------------------------------------------------------
    # The two primitive maps; everything else derives from these.
    # ------------------------------------------------------------------
    @abstractmethod
    def angle_to_radius(self, theta):
        """Image radius (pixels) for field angle ``theta`` (radians).

        Angles outside the model's domain map to ``nan``.
        """

    @abstractmethod
    def radius_to_angle(self, r):
        """Field angle (radians) for image radius ``r`` (pixels).

        Radii outside the model's range map to ``nan``.
        """

    # ------------------------------------------------------------------
    # Domain metadata
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def max_theta(self) -> float:
        """Largest field angle (radians) the model can represent."""

    @property
    def max_radius(self) -> float:
        """Image radius (pixels) at :attr:`max_theta` (may be ``inf``)."""
        return float(self.angle_to_radius(self.max_theta))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def magnification(self, theta, eps: float = 1e-6):
        """Radial magnification ``dr/dtheta`` via central differences.

        Used by the quality metrics to measure how strongly a model
        compresses the image periphery relative to the centre.
        """
        theta = np.asarray(theta, dtype=np.float64)
        lo = np.clip(theta - eps, 0.0, self.max_theta)
        hi = np.clip(theta + eps, 0.0, self.max_theta)
        span = hi - lo
        span = np.where(span <= 0, np.nan, span)
        return (self.angle_to_radius(hi) - self.angle_to_radius(lo)) / span

    def __repr__(self):
        return f"{type(self).__name__}(focal={self.focal:g})"


def _as_float(x):
    return np.asarray(x, dtype=np.float64)


class EquidistantLens(LensModel):
    """Equidistant (f-theta) fisheye: ``r = f * theta``."""

    name = "equidistant"

    def angle_to_radius(self, theta):
        theta = _as_float(theta)
        r = self.focal * theta
        return np.where((theta >= 0) & (theta <= self.max_theta), r, np.nan)

    def radius_to_angle(self, r):
        r = _as_float(r)
        theta = r / self.focal
        return np.where((r >= 0) & (theta <= self.max_theta), theta, np.nan)

    @property
    def max_theta(self) -> float:
        return np.pi


class EquisolidLens(LensModel):
    """Equisolid-angle fisheye: ``r = 2 f sin(theta / 2)``."""

    name = "equisolid"

    def angle_to_radius(self, theta):
        theta = _as_float(theta)
        r = 2.0 * self.focal * np.sin(theta / 2.0)
        return np.where((theta >= 0) & (theta <= self.max_theta), r, np.nan)

    def radius_to_angle(self, r):
        r = _as_float(r)
        arg = r / (2.0 * self.focal)
        theta = 2.0 * np.arcsin(np.clip(arg, -1.0, 1.0))
        return np.where((r >= 0) & (arg <= 1.0), theta, np.nan)

    @property
    def max_theta(self) -> float:
        return np.pi


class OrthographicLens(LensModel):
    """Orthographic fisheye: ``r = f sin(theta)`` (domain theta <= pi/2)."""

    name = "orthographic"

    def angle_to_radius(self, theta):
        theta = _as_float(theta)
        r = self.focal * np.sin(theta)
        return np.where((theta >= 0) & (theta <= self.max_theta), r, np.nan)

    def radius_to_angle(self, r):
        r = _as_float(r)
        arg = r / self.focal
        theta = np.arcsin(np.clip(arg, -1.0, 1.0))
        return np.where((r >= 0) & (arg <= 1.0), theta, np.nan)

    @property
    def max_theta(self) -> float:
        return np.pi / 2.0


class StereographicLens(LensModel):
    """Stereographic fisheye: ``r = 2 f tan(theta / 2)``."""

    name = "stereographic"

    def angle_to_radius(self, theta):
        theta = _as_float(theta)
        # tan(pi/2) explodes; mask first to keep the ufunc warning-free.
        ok = (theta >= 0) & (theta < self.max_theta)
        safe = np.where(ok, theta, 0.0)
        r = 2.0 * self.focal * np.tan(safe / 2.0)
        return np.where(ok, r, np.nan)

    def radius_to_angle(self, r):
        r = _as_float(r)
        theta = 2.0 * np.arctan(r / (2.0 * self.focal))
        return np.where(r >= 0, theta, np.nan)

    @property
    def max_theta(self) -> float:
        return np.pi


class PerspectiveLens(LensModel):
    """Rectilinear (pinhole) projection: ``r = f tan(theta)``.

    Not a fisheye — included because the *output* of distortion
    correction is a perspective view, and because it doubles as the
    identity comparator in the quality benchmarks.
    """

    name = "perspective"

    def angle_to_radius(self, theta):
        theta = _as_float(theta)
        ok = (theta >= 0) & (theta < self.max_theta)
        safe = np.where(ok, theta, 0.0)
        r = self.focal * np.tan(safe)
        return np.where(ok, r, np.nan)

    def radius_to_angle(self, r):
        r = _as_float(r)
        theta = np.arctan(r / self.focal)
        return np.where(r >= 0, theta, np.nan)

    @property
    def max_theta(self) -> float:
        return np.pi / 2.0


#: registry used by :func:`make_lens` and the CLI-ish bench harness
LENS_MODELS = {
    cls.name: cls
    for cls in (
        EquidistantLens,
        EquisolidLens,
        OrthographicLens,
        StereographicLens,
        PerspectiveLens,
    )
}


def make_lens(name: str, focal: float) -> LensModel:
    """Instantiate a lens model by registry name.

    Raises
    ------
    LensModelError
        If ``name`` is not one of :data:`LENS_MODELS`.
    """
    try:
        cls = LENS_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(LENS_MODELS))
        raise LensModelError(f"unknown lens model {name!r}; known models: {known}") from None
    return cls(focal)
