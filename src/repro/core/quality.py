"""Quantitative quality metrics for corrected imagery.

The target paper evaluates its correction qualitatively (figures); the
synthetic-workload substitution lets this reproduction do better: every
distorted input is rendered from a known perspective scene, so
correction quality is measurable.

Photometric metrics
    :func:`psnr`, :func:`ssim` — standard full-reference measures.

Geometric metrics
    :func:`line_straightness` — residual curvature of points that
    should be collinear (the visual definition of "distortion
    corrected").
    :func:`warp_composition_error` — sub-pixel geometric error of the
    correction map composed with the known rendering map.
    :func:`fov_retention`, :func:`center_scale` — the paper
    introduction's trade-off triangle: field of view vs output size vs
    central resolution.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import GeometryError, ImageFormatError
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .interpolation import sample
from .lens import LensModel
from .mapping import RemapField

__all__ = [
    "psnr",
    "ssim",
    "line_straightness",
    "perspective_reference_coords",
    "warp_composition_error",
    "fov_retention",
    "center_scale",
]


def psnr(reference, test, peak: float | None = None, mask=None) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical inputs).

    Parameters
    ----------
    reference, test:
        Arrays of identical shape.
    peak:
        Signal peak; defaults to the dtype max for integer inputs and
        1.0 for floats.
    mask:
        Optional boolean mask restricting the comparison (e.g. the
        valid region of a corrected frame — the black out-of-FOV ring
        would otherwise dominate).
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ImageFormatError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if peak is None:
        peak = 255.0 if reference.max() > 1.5 or test.max() > 1.5 else 1.0
    diff = reference - test
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != reference.shape[: mask.ndim]:
            raise ImageFormatError(f"mask shape {mask.shape} does not match {reference.shape}")
        diff = diff[mask]
    mse = float(np.mean(diff ** 2)) if diff.size else 0.0
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def ssim(reference, test, peak: float | None = None, sigma: float = 1.5) -> float:
    """Mean structural-similarity index (Gaussian-windowed, K1/K2 defaults).

    Operates on 2-D (grayscale) images; colour inputs are averaged over
    channels first.
    """
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ImageFormatError(f"shape mismatch: {reference.shape} vs {test.shape}")
    if reference.ndim == 3:
        reference = reference.mean(axis=2)
        test = test.mean(axis=2)
    if reference.ndim != 2:
        raise ImageFormatError(f"ssim needs 2-D or 3-D input, got {reference.ndim}-D")
    if peak is None:
        peak = 255.0 if reference.max() > 1.5 or test.max() > 1.5 else 1.0
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2

    def blur(a):
        return ndimage.gaussian_filter(a, sigma, mode="reflect")

    mu_r, mu_t = blur(reference), blur(test)
    mu_r2, mu_t2, mu_rt = mu_r * mu_r, mu_t * mu_t, mu_r * mu_t
    var_r = blur(reference * reference) - mu_r2
    var_t = blur(test * test) - mu_t2
    cov = blur(reference * test) - mu_rt
    num = (2.0 * mu_rt + c1) * (2.0 * cov + c2)
    den = (mu_r2 + mu_t2 + c1) * (var_r + var_t + c2)
    return float(np.mean(num / den))


def line_straightness(points):
    """Perpendicular deviation of points from their best-fit line.

    Fits a total-least-squares line through ``(N, 2)`` points (SVD of
    the centred coordinates) and returns ``(rms, max)`` perpendicular
    deviation in pixels.  A perfectly corrected straight edge scores
    ``(0, 0)``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GeometryError(f"points must be (N, 2), got {pts.shape}")
    if pts.shape[0] < 3:
        raise GeometryError(f"need at least 3 points, got {pts.shape[0]}")
    centred = pts - pts.mean(axis=0)
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    normal = vt[-1]
    dist = centred @ normal
    return float(np.sqrt(np.mean(dist ** 2))), float(np.abs(dist).max())


def perspective_reference_coords(out: CameraIntrinsics, scene: CameraIntrinsics):
    """Ideal scene coordinates for each pixel of a perspective output.

    Both views are rectilinear with the same orientation, so the map
    between them is affine in the normalized coordinates: a corrected
    output pixel should land at exactly these scene coordinates.
    Returns ``(expected_x, expected_y)`` arrays of the output shape.
    """
    from .geometry import pixel_grid

    xs, ys = pixel_grid(out.height, out.width)
    xn, yn = out.normalize(xs, ys)
    return scene.denormalize(xn, yn)


def warp_composition_error(correction: RemapField, rendering: RemapField,
                           expected_x, expected_y):
    """Sub-pixel geometric error field of a correction.

    ``rendering`` maps fisheye pixels to scene coordinates (the map the
    synthetic generator used to *create* the distorted frame);
    ``correction`` maps output pixels to fisheye coordinates.  Their
    composition tells where each corrected output pixel's content
    really came from in the scene; a perfect correction matches
    ``(expected_x, expected_y)`` exactly.

    Returns the per-pixel Euclidean error (pixels in scene units) with
    ``nan`` where either map is out of range.
    """
    if (rendering.shape[1], rendering.shape[0]) != (correction.src_width, correction.src_height):
        raise GeometryError(
            "rendering map shape must match correction source size: "
            f"{rendering.shape} vs {(correction.src_height, correction.src_width)}")
    # Sample the rendering map (a float field over fisheye pixels) at the
    # fractional fisheye coordinates the correction requests.
    got_x = sample(rendering.map_x, correction.map_x, correction.map_y,
                   method="bilinear", border="constant", fill=np.nan)
    got_y = sample(rendering.map_y, correction.map_x, correction.map_y,
                   method="bilinear", border="constant", fill=np.nan)
    ex = np.asarray(expected_x, dtype=np.float64)
    ey = np.asarray(expected_y, dtype=np.float64)
    if ex.shape != correction.shape or ey.shape != correction.shape:
        raise GeometryError(
            f"expected coords {ex.shape} must match correction output {correction.shape}")
    return np.hypot(got_x - ex, got_y - ey)


def fov_retention(field: RemapField, lens: LensModel, sensor: FisheyeIntrinsics,
                  max_angle: float | None = None) -> float:
    """Fraction of the lens's field of view present in the output.

    Computes the largest field angle among the output's valid sample
    points and divides by the sensor's maximum captured angle (the
    angle at the inscribed image-circle edge, or ``max_angle``).
    """
    mask = field.valid_mask()
    if not mask.any():
        return 0.0
    r = np.hypot(field.map_x[mask] - sensor.cx, field.map_y[mask] - sensor.cy)
    with np.errstate(invalid="ignore"):
        theta = np.asarray(lens.radius_to_angle(r))
    theta = theta[np.isfinite(theta)]
    if theta.size == 0:
        return 0.0
    if max_angle is None:
        capped = lens.radius_to_angle(sensor.max_inscribed_radius)
        max_angle = float(capped) if np.isfinite(capped) else lens.max_theta
    if max_angle <= 0:
        raise GeometryError(f"max_angle must be positive, got {max_angle}")
    return float(min(1.0, theta.max() / max_angle))


def center_scale(field: RemapField) -> float:
    """Source pixels consumed per output pixel at the output centre.

    1.0 means central spatial resolution is preserved; > 1 means the
    output under-samples (resolution loss), < 1 means it interpolates
    up.  Estimated from the Jacobian of the map at the central pixel.
    """
    h, w = field.shape
    i, j = h // 2, w // 2
    if h < 3 or w < 3:
        raise GeometryError(f"output too small for a Jacobian estimate: {field.shape}")
    dxu = (field.map_x[i, j + 1] - field.map_x[i, j - 1]) / 2.0
    dyu = (field.map_y[i, j + 1] - field.map_y[i, j - 1]) / 2.0
    dxv = (field.map_x[i + 1, j] - field.map_x[i - 1, j]) / 2.0
    dyv = (field.map_y[i + 1, j] - field.map_y[i - 1, j]) / 2.0
    jac = abs(dxu * dyv - dxv * dyu)
    return float(np.sqrt(jac))
