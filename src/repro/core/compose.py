"""Coordinate-field composition: chain warps without chaining resampling.

Applying two warps to an *image* back to back resamples twice and
compounds interpolation loss; composing the *coordinate fields* first
and remapping once is both cheaper and sharper.  Use cases in this
repo's domain:

- digital zoom / crop *after* correction (outer crop ∘ inner
  correction),
- applying a stabilizing micro-rotation per frame on top of a fixed
  correction,
- the quality metrics' correction ∘ rendering composition (F10), here
  generalized.

``compose_fields(outer, inner)`` returns the field of "``inner`` after
``outer``": output pixel ``p`` goes to ``inner(outer(p))``, with
``inner``'s coordinate arrays sampled bilinearly at ``outer``'s
fractional targets.  Out-of-range at either stage propagates to
``nan`` (out-of-FOV), like every map in the library.
"""

from __future__ import annotations

import numpy as np

from ..errors import MappingError
from .interpolation import sample
from .mapping import RemapField

__all__ = ["compose_fields", "crop_field", "affine_field"]


def compose_fields(outer: RemapField, inner: RemapField) -> RemapField:
    """Field of ``inner`` applied after ``outer`` (see module docs).

    ``outer`` must map into ``inner``'s output domain: its source size
    must equal ``inner``'s output shape.
    """
    ih, iw = inner.shape
    if (outer.src_width, outer.src_height) != (iw, ih):
        raise MappingError(
            f"outer field samples a {outer.src_width}x{outer.src_height} frame "
            f"but inner produces {iw}x{ih}")
    mx = sample(inner.map_x, outer.map_x, outer.map_y, method="bilinear",
                border="constant", fill=np.nan)
    my = sample(inner.map_y, outer.map_x, outer.map_y, method="bilinear",
                border="constant", fill=np.nan)
    return RemapField(mx, my, inner.src_width, inner.src_height)


def crop_field(width: int, height: int, x0: float, y0: float,
               src_width: int, src_height: int, scale: float = 1.0) -> RemapField:
    """A crop/zoom field: output pixel ``(i, j)`` samples
    ``(x0 + j * scale, y0 + i * scale)`` of the source.

    ``scale < 1`` zooms in (upsamples), ``> 1`` zooms out.
    """
    if width <= 0 or height <= 0:
        raise MappingError(f"output size must be positive: {width}x{height}")
    if scale <= 0:
        raise MappingError(f"scale must be positive, got {scale}")
    ys, xs = np.indices((height, width), dtype=np.float64)
    return RemapField(x0 + xs * scale, y0 + ys * scale, src_width, src_height)


def affine_field(width: int, height: int, matrix, src_width: int,
                 src_height: int) -> RemapField:
    """A general 2x3 affine backward map (rotation/scale/shear/shift).

    ``matrix`` rows are ``[a, b, tx]`` / ``[c, d, ty]``:
    ``src = (a x + b y + tx, c x + d y + ty)``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (2, 3):
        raise MappingError(f"affine matrix must be 2x3, got {matrix.shape}")
    if width <= 0 or height <= 0:
        raise MappingError(f"output size must be positive: {width}x{height}")
    ys, xs = np.indices((height, width), dtype=np.float64)
    mx = matrix[0, 0] * xs + matrix[0, 1] * ys + matrix[0, 2]
    my = matrix[1, 0] * xs + matrix[1, 1] * ys + matrix[1, 2]
    return RemapField(mx, my, src_width, src_height)
