"""Coordinate-field composition: chain warps without chaining resampling.

Applying two warps to an *image* back to back resamples twice and
compounds interpolation loss; composing the *coordinate fields* first
and remapping once is both cheaper and sharper.  Use cases in this
repo's domain:

- digital zoom / crop *after* correction (outer crop ∘ inner
  correction),
- applying a stabilizing micro-rotation per frame on top of a fixed
  correction,
- fused correct+downscale: a 4K feed delivered at 1080p gathers ~5x
  fewer bytes through one composed table than through
  correct-then-downscale (the ``check_fused`` gate),
- the quality metrics' correction ∘ rendering composition (F10), here
  generalized.

``compose_fields(outer, inner)`` returns the field of "``inner`` after
``outer``": output pixel ``p`` goes to ``inner(outer(p))``, with
``inner``'s coordinate arrays sampled bilinearly at ``outer``'s
fractional targets.  Out-of-range at either stage propagates to
``nan`` (out-of-FOV), like every map in the library.

:func:`downscale_field` is the area-convention outer map for fused
delivery, and :func:`composed_lut` collapses a composition into one
gather table — memoized through :meth:`repro.core.lutcache.LUTCache
.get_composed` under a key derived from the *constituent* field
content hashes, so composed maps warm-start like plain ones.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MappingError
from .interpolation import sample
from .mapping import RemapField

__all__ = ["compose_fields", "crop_field", "affine_field",
           "downscale_field", "composed_lut"]


def _require_finite(label: str, *values) -> None:
    for v in values:
        if not np.all(np.isfinite(v)):
            raise MappingError(f"{label} must be finite, got {v!r}")


def compose_fields(outer: RemapField, inner: RemapField) -> RemapField:
    """Field of ``inner`` applied after ``outer`` (see module docs).

    ``outer`` must map into ``inner``'s output domain: its source size
    must equal ``inner``'s output shape.
    """
    ih, iw = inner.shape
    if (outer.src_width, outer.src_height) != (iw, ih):
        raise MappingError(
            f"outer field samples a {outer.src_width}x{outer.src_height} frame "
            f"but inner produces {iw}x{ih}")
    mx = sample(inner.map_x, outer.map_x, outer.map_y, method="bilinear",
                border="constant", fill=np.nan)
    my = sample(inner.map_y, outer.map_x, outer.map_y, method="bilinear",
                border="constant", fill=np.nan)
    return RemapField(mx, my, inner.src_width, inner.src_height)


def crop_field(width: int, height: int, x0: float, y0: float,
               src_width: int, src_height: int, scale: float = 1.0) -> RemapField:
    """A crop/zoom field: output pixel ``(i, j)`` samples
    ``(x0 + j * scale, y0 + i * scale)`` of the source.

    ``scale < 1`` zooms in (upsamples), ``> 1`` zooms out.
    """
    if width <= 0 or height <= 0:
        raise MappingError(f"output size must be positive: {width}x{height}")
    _require_finite("crop origin", x0, y0)
    _require_finite("crop scale", scale)
    if scale <= 0:
        raise MappingError(f"scale must be positive, got {scale}")
    ys, xs = np.indices((height, width), dtype=np.float64)
    return RemapField(x0 + xs * scale, y0 + ys * scale, src_width, src_height)


def affine_field(width: int, height: int, matrix, src_width: int,
                 src_height: int) -> RemapField:
    """A general 2x3 affine backward map (rotation/scale/shear/shift).

    ``matrix`` rows are ``[a, b, tx]`` / ``[c, d, ty]``:
    ``src = (a x + b y + tx, c x + d y + ty)``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (2, 3):
        raise MappingError(f"affine matrix must be 2x3, got {matrix.shape}")
    _require_finite("affine matrix entries", matrix)
    if width <= 0 or height <= 0:
        raise MappingError(f"output size must be positive: {width}x{height}")
    ys, xs = np.indices((height, width), dtype=np.float64)
    mx = matrix[0, 0] * xs + matrix[0, 1] * ys + matrix[0, 2]
    my = matrix[1, 0] * xs + matrix[1, 1] * ys + matrix[1, 2]
    return RemapField(mx, my, src_width, src_height)


def downscale_field(width: int, height: int, src_width: int,
                    src_height: int, prefilter: bool = True) -> RemapField:
    """The outer map of a fused correct+downscale composition.

    Unlike :func:`crop_field`'s corner-aligned convention, this uses
    the **area convention**: output pixel ``j`` covers source span
    ``[j*s, (j+1)*s)`` and samples its centre, ``(j + 0.5)*s - 0.5``.
    At exactly 2:1 the bilinear taps of the composed table then land
    halfway between source pixels — the gather *is* the 2x2 box
    average, so the fused 4-tap table is inherently anti-aliased for
    the common 4K→1080p case.

    Beyond 2:1 a 2x2 bilinear footprint no longer covers the ``s x s``
    pixel area, so the field carries a ``prefilter_factor`` hint
    (``ceil(s / 2)``) that :func:`composed_lut` threads to the
    antialias module (:class:`~repro.core.antialias.SupersampledLUT`)
    when anti-aliased quality is requested.  ``prefilter=False`` pins
    the hint to 1 (always the plain 4-tap table).
    """
    if width <= 0 or height <= 0:
        raise MappingError(f"output size must be positive: {width}x{height}")
    if src_width <= 0 or src_height <= 0:
        raise MappingError(
            f"source size must be positive: {src_width}x{src_height}")
    if src_width < width or src_height < height:
        raise MappingError(
            f"downscale_field shrinks: {src_width}x{src_height} source "
            f"cannot downscale to {width}x{height}")
    sx = src_width / width
    sy = src_height / height
    ys, xs = np.indices((height, width), dtype=np.float64)
    field = RemapField((xs + 0.5) * sx - 0.5, (ys + 0.5) * sy - 0.5,
                       src_width, src_height)
    field.prefilter_factor = max(1, math.ceil(max(sx, sy) / 2.0)) \
        if prefilter else 1
    return field


def _composed_builder(outer: RemapField, inner: RemapField):
    """A fractional-coordinate evaluator of ``inner after outer``.

    Both constituent fields live on integer grids, so off-grid
    evaluation bilinearly interpolates ``outer``'s coordinate arrays
    first (exact for affine outers such as :func:`downscale_field`)
    and then ``inner``'s at the resulting targets — the builder shape
    :func:`~repro.core.antialias.supersample_field` consumes.
    """
    def build(xs, ys):
        ox = sample(outer.map_x, xs, ys, method="bilinear",
                    border="constant", fill=np.nan)
        oy = sample(outer.map_y, xs, ys, method="bilinear",
                    border="constant", fill=np.nan)
        mx = sample(inner.map_x, ox, oy, method="bilinear",
                    border="constant", fill=np.nan)
        my = sample(inner.map_y, ox, oy, method="bilinear",
                    border="constant", fill=np.nan)
        return mx, my, inner.src_width, inner.src_height
    return build


def composed_lut(outer: RemapField, inner: RemapField, *,
                 method: str = "bilinear", border: str = "constant",
                 fill: float = 0.0, cache=None, antialias=None):
    """One fused gather table for ``inner after outer``.

    The hot path of fused correct+downscale(+crop): instead of
    remapping at full resolution and resampling again, the composition
    collapses into a single :class:`~repro.core.remap.RemapLUT` at the
    *output* resolution — every frame pays one gather pass whose
    traffic scales with the delivered size, not the intermediate.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.core.lutcache.LUTCache`; the fused
        table is then fetched through :meth:`~repro.core.lutcache
        .LUTCache.get_composed`, keyed by the content hashes of the
        *constituent* fields (cheap — no need to fingerprint the
        composed field), so concurrent opens build once and restarts
        warm-start from the disk tier.
    antialias:
        ``None`` (default) honours the outer field's
        ``prefilter_factor`` hint (see :func:`downscale_field`);
        ``False`` forces the plain 4-tap table; an ``int >= 2`` forces
        that supersampling factor.  A factor above 1 returns a
        :class:`~repro.core.antialias.SupersampledLUT` built through
        the sub-pixel composed map (``factor**2 x taps`` gathers,
        never cached).
    """
    factor = getattr(outer, "prefilter_factor", 1) if antialias is None \
        else (1 if antialias is False else int(antialias))
    if factor < 1:
        raise MappingError(f"antialias factor must be >= 1, got {factor}")
    if factor > 1:
        from .antialias import SupersampledLUT
        oh, ow = outer.shape
        return SupersampledLUT.from_builder(
            _composed_builder(outer, inner), ow, oh, factor,
            method=method, fill=fill)
    if cache is not None:
        return cache.get_composed(outer, inner, method=method,
                                  border=border, fill=fill)
    from .remap import RemapLUT
    return RemapLUT(compose_fields(outer, inner), method=method,
                    border=border, fill=fill)
