"""Brown–Conrady polynomial distortion model — the classical baseline.

The Brown–Conrady model expresses the *distorted* normalized image
coordinates as a polynomial perturbation of the *undistorted*
(perspective) ones::

    x_d = x_u * (1 + k1 r^2 + k2 r^4 + k3 r^6) + 2 p1 x_u y_u + p2 (r^2 + 2 x_u^2)
    y_d = y_u * (1 + k1 r^2 + k2 r^4 + k3 r^6) + p1 (r^2 + 2 y_u^2) + 2 p2 x_u y_u

with ``r^2 = x_u^2 + y_u^2``.  For a radially symmetric fisheye the
tangential coefficients ``p1, p2`` are zero and the model reduces to a
radial polynomial in the perspective radius ``r_u = tan(theta)``.

The model is included as the *comparator*: because ``tan(theta)``
diverges as the field angle approaches 90 degrees, no finite polynomial
in ``r_u`` can represent a 180-degree fisheye, and the F10 quality
benchmark quantifies exactly how the polynomial fit degrades toward the
image periphery while the exact trigonometric models stay lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError, LensModelError
from .lens import LensModel

__all__ = ["BrownConrady", "fit_brown_conrady"]


@dataclass(frozen=True)
class BrownConrady:
    """Brown–Conrady coefficients acting on normalized coordinates.

    Attributes
    ----------
    k1, k2, k3:
        Radial polynomial coefficients.
    p1, p2:
        Tangential (decentering) coefficients.
    """

    k1: float = 0.0
    k2: float = 0.0
    k3: float = 0.0
    p1: float = 0.0
    p2: float = 0.0

    # ------------------------------------------------------------------
    # Forward: undistorted -> distorted
    # ------------------------------------------------------------------
    def distort(self, xu, yu):
        """Apply the model: perspective coords -> distorted coords."""
        xu = np.asarray(xu, dtype=np.float64)
        yu = np.asarray(yu, dtype=np.float64)
        r2 = xu * xu + yu * yu
        radial = 1.0 + r2 * (self.k1 + r2 * (self.k2 + r2 * self.k3))
        xd = xu * radial + 2.0 * self.p1 * xu * yu + self.p2 * (r2 + 2.0 * xu * xu)
        yd = yu * radial + self.p1 * (r2 + 2.0 * yu * yu) + 2.0 * self.p2 * xu * yu
        return xd, yd

    def distort_radius(self, ru):
        """Radial-only forward map ``r_u -> r_d`` (p1 = p2 = 0 assumed)."""
        ru = np.asarray(ru, dtype=np.float64)
        r2 = ru * ru
        return ru * (1.0 + r2 * (self.k1 + r2 * (self.k2 + r2 * self.k3)))

    # ------------------------------------------------------------------
    # Inverse: distorted -> undistorted (Newton iteration on the radius)
    # ------------------------------------------------------------------
    def undistort_radius(self, rd, iterations: int = 20, tol: float = 1e-12):
        """Invert the radial polynomial with damped Newton iteration.

        Starts from ``r_u = r_d`` (the identity guess) and iterates
        ``r_u <- r_u - (g(r_u) - r_d) / g'(r_u)``.  Convergence is only
        guaranteed while the forward map is monotonic; radii beyond the
        monotonic range return ``nan``, which the mapping layer renders
        as out-of-FOV black — mirroring the real failure mode of the
        classical model on wide-angle lenses.
        """
        rd = np.asarray(rd, dtype=np.float64)
        ru = rd.copy().astype(np.float64)
        for _ in range(max(1, iterations)):
            r2 = ru * ru
            poly = 1.0 + r2 * (self.k1 + r2 * (self.k2 + r2 * self.k3))
            dpoly = ru * (2.0 * self.k1 + r2 * (4.0 * self.k2 + 6.0 * self.k3 * r2))
            g = ru * poly
            dg = poly + ru * dpoly
            step = np.where(np.abs(dg) > 1e-12, (g - rd) / np.where(dg == 0, 1.0, dg), 0.0)
            # Damp to keep the iterate in the positive half-line.
            ru_next = ru - step
            ru = np.where(ru_next > 0, ru_next, ru * 0.5)
            if np.all(np.abs(step) < tol):
                break
        # Reject non-converged / non-monotonic points.
        check = self.distort_radius(ru)
        bad = ~np.isfinite(check) | (np.abs(check - rd) > 1e-6 * np.maximum(1.0, np.abs(rd)))
        return np.where(bad, np.nan, ru)


class BrownConradyLens(LensModel):
    """Adapter exposing a fitted Brown–Conrady polynomial as a lens model.

    ``angle_to_radius`` composes the perspective projection with the
    radial polynomial: ``r = f * poly(tan(theta))``; the model domain is
    truncated just below 90 degrees where ``tan`` diverges.
    """

    name = "brown_conrady"

    def __init__(self, focal: float, coeffs: BrownConrady, max_theta: float = np.deg2rad(89.0)):
        super().__init__(focal)
        if not 0.0 < max_theta < np.pi / 2.0:
            raise LensModelError(f"max_theta must be in (0, pi/2), got {max_theta}")
        self.coeffs = coeffs
        self._max_theta = float(max_theta)

    def angle_to_radius(self, theta):
        theta = np.asarray(theta, dtype=np.float64)
        ok = (theta >= 0) & (theta <= self._max_theta)
        safe = np.where(ok, theta, 0.0)
        r = self.focal * self.coeffs.distort_radius(np.tan(safe))
        return np.where(ok, r, np.nan)

    def radius_to_angle(self, r):
        r = np.asarray(r, dtype=np.float64)
        ru = self.coeffs.undistort_radius(r / self.focal)
        theta = np.arctan(ru)
        ok = (r >= 0) & np.isfinite(theta) & (theta <= self._max_theta)
        return np.where(ok, theta, np.nan)

    @property
    def max_theta(self) -> float:
        return self._max_theta


def fit_brown_conrady(lens: LensModel, max_theta: float = np.deg2rad(80.0),
                      samples: int = 256, order: int = 3) -> BrownConradyLens:
    """Least-squares fit of a Brown–Conrady polynomial to a fisheye lens.

    Samples the exact relation ``r_d / f = m(theta)`` vs
    ``r_u = tan(theta)`` over ``theta in (0, max_theta]`` and solves the
    linear system for ``(k1, k2, k3)`` (radial coefficients up to
    ``order``; tangential terms are zero by symmetry).

    Parameters
    ----------
    lens:
        The exact lens model to approximate.
    max_theta:
        Largest field angle included in the fit; must stay below 90
        degrees because the perspective radius diverges there.
    samples:
        Number of sample angles (>= order + 1).
    order:
        Number of radial coefficients (1..3).

    Returns
    -------
    BrownConradyLens
        A lens-model adapter around the fitted coefficients with the
        same focal as ``lens``.
    """
    if not 0.0 < max_theta < np.pi / 2.0:
        raise CalibrationError(f"max_theta must be in (0, pi/2), got {max_theta}")
    if not 1 <= order <= 3:
        raise CalibrationError(f"order must be 1..3, got {order}")
    if samples < order + 1:
        raise CalibrationError(f"need at least {order + 1} samples, got {samples}")

    theta = np.linspace(max_theta / samples, max_theta, samples)
    ru = np.tan(theta)
    rd = np.asarray(lens.angle_to_radius(theta), dtype=np.float64) / lens.focal
    if not np.all(np.isfinite(rd)):
        raise CalibrationError("lens model returned non-finite radii inside the fit range")

    # rd = ru * (1 + k1 ru^2 + k2 ru^4 + k3 ru^6)  =>
    # (rd / ru - 1) = [ru^2, ru^4, ru^6] @ [k1, k2, k3]
    target = rd / ru - 1.0
    basis = np.stack([ru ** (2 * (i + 1)) for i in range(order)], axis=1)
    coeffs, *_ = np.linalg.lstsq(basis, target, rcond=None)
    ks = list(coeffs) + [0.0] * (3 - order)
    bc = BrownConrady(k1=ks[0], k2=ks[1], k3=ks[2])
    return BrownConradyLens(lens.focal, bc, max_theta=min(np.deg2rad(89.0), lens.max_theta))


__all__.append("BrownConradyLens")
