"""Fixed-point remap LUTs — the embedded/accelerator representation.

Hardware accelerators (and the SPE/SIMD paths of the target paper's
study) do not interpolate in float: weights are quantized to ``Q``
fractional bits, accumulation happens in wide integers, and the result
is rounded with a single shift.  Quantization shrinks the LUT (less DMA
traffic, more tiles per local store) at the cost of bounded rounding
error.  :class:`FixedPointLUT` implements exactly that arithmetic so
the F12 benchmark can sweep precision vs quality vs bandwidth.

Since the kernel-tier work this is no longer only a modeled study:
the same Q-format arithmetic is a *shipping* execution path.
:meth:`FixedPointLUT.apply` (and its zero-copy twins
:meth:`~FixedPointLUT.apply_into` / :meth:`~FixedPointLUT
.apply_rows_into`) run the vectorised block engine in
:mod:`repro.core.kernel_tiers`, and :class:`~repro.core.remap.RemapLUT`
executes the identical arithmetic when switched to its ``fixed`` or
``compiled`` tier — bit-exact across all three entry points.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpolationError, MappingError
from .kernel_tiers import q_apply_block
from .mapping import RemapField
from .remap import RemapLUT

__all__ = ["FixedPointLUT", "quantize_weights", "max_abs_weight_error"]


def quantize_weights(weights, frac_bits: int):
    """Quantize interpolation weights to signed fixed point.

    Weights are scaled by ``2**frac_bits``, rounded to nearest, and
    each pixel's tap set is re-balanced so the quantized weights still
    sum to exactly ``2**frac_bits`` (otherwise flat image regions would
    drift in brightness).  The correction is applied to the largest tap
    of each pixel, which minimizes relative error.

    Parameters
    ----------
    weights:
        ``(N, taps)`` float weights, rows summing to ~1 (all-zero rows
        — masked-out pixels — are preserved as zero).
    frac_bits:
        Fractional bits, 1..14 (int16 storage with headroom for the
        bicubic overshoot range [-0.0625, 1.0625]).

    Returns
    -------
    ndarray of int16, shape ``(N, taps)``.
    """
    if not 1 <= frac_bits <= 14:
        raise InterpolationError(f"frac_bits must be 1..14, got {frac_bits}")
    weights = np.asarray(weights, dtype=np.float64)
    scale = 1 << frac_bits
    q = np.rint(weights * scale).astype(np.int32)
    target = np.rint(weights.sum(axis=1) * scale).astype(np.int32)  # 0 or scale
    deficit = target - q.sum(axis=1)
    # push the rounding residue onto each row's largest-magnitude tap
    rows = np.arange(q.shape[0])
    top = np.abs(q).argmax(axis=1)
    q[rows, top] += deficit
    return q.astype(np.int16)


def max_abs_weight_error(weights, frac_bits: int) -> float:
    """Largest absolute weight error introduced by quantization."""
    q = quantize_weights(weights, frac_bits).astype(np.float64) / (1 << frac_bits)
    return float(np.abs(q - np.asarray(weights, dtype=np.float64)).max())


class FixedPointLUT:
    """Integer-arithmetic remap LUT derived from a float field.

    Parameters
    ----------
    field:
        The backward coordinate field.
    method:
        ``nearest``, ``bilinear`` or ``bicubic``.
    frac_bits:
        Weight precision in fractional bits (Q-format).
    index_dtype:
        Integer dtype for the flat gather indices; ``np.int32`` covers
        frames up to 2 Gpixel and is what a 32-bit DMA descriptor holds.
    border, fill:
        As for :class:`~repro.core.remap.RemapLUT`.
    """

    def __init__(self, field: RemapField, method: str = "bilinear",
                 frac_bits: int = 8, index_dtype=np.int32,
                 border: str = "constant", fill: int = 0):
        base = RemapLUT(field, method=method, border=border, fill=fill)
        max_index = field.src_width * field.src_height - 1
        if max_index > np.iinfo(index_dtype).max:
            raise MappingError(
                f"{np.dtype(index_dtype).name} cannot index a "
                f"{field.src_width}x{field.src_height} source frame")
        self.method = method
        self.frac_bits = int(frac_bits)
        self.fill = int(fill)
        self.out_shape = base.out_shape
        self.src_shape = base.src_shape
        self.mask = base.mask
        self.indices = base.indices.astype(index_dtype)
        self.qweights = quantize_weights(base.weights, frac_bits)
        self._qw_t = None    # lazily (taps, N) transposed view for the engine
        self._inv = None     # lazily ~mask

    @property
    def taps(self) -> int:
        return self.indices.shape[1]

    @property
    def nbytes(self) -> int:
        n = self.indices.nbytes + self.qweights.nbytes
        if self.mask is not None:
            n += self.mask.nbytes
        return n

    def entry_bytes(self) -> int:
        """Bytes of table data per output pixel (host layout)."""
        per = self.indices.dtype.itemsize * self.taps + self.qweights.dtype.itemsize * self.taps
        if self.mask is not None:
            per += 1
        return per

    def packed_entry_bytes(self) -> float:
        """Bytes per output pixel of the *deployed* packed layout.

        Hardware tables store one base offset (32 bits) plus the two
        per-axis fractions at ``frac_bits`` each; tap offsets and the
        full weight set are reconstructed on-chip.  Bicubic needs the
        same fractions (weights are polynomial in them); nearest needs
        no fractions at all.
        """
        frac_fields = 0 if self.method == "nearest" else 2
        return (32 + frac_fields * self.frac_bits) / 8.0

    # ------------------------------------------------------------------
    # execution (shared Q-format block engine)
    # ------------------------------------------------------------------
    def _qw_transposed(self):
        if self._qw_t is None:
            self._qw_t = np.ascontiguousarray(self.qweights.T)
        return self._qw_t

    def _invalid_mask(self):
        if self.mask is None:
            return None
        if self._inv is None:
            self._inv = ~self.mask
        return self._inv

    def _run(self, image, row0=None, row1=None, out=None):
        image = np.asarray(image)
        if not np.issubdtype(image.dtype, np.integer):
            raise MappingError("FixedPointLUT operates on integer frames")
        if image.shape[:2] != self.src_shape:
            raise MappingError(
                f"frame {image.shape[:2]} does not match LUT source {self.src_shape}")
        squeeze = image.ndim == 2
        acc_dtype = np.int64 if image.dtype.itemsize > 1 else np.int32
        flat = image.reshape(
            self.src_shape[0] * self.src_shape[1], -1).astype(acc_dtype, copy=False)
        w_out = self.out_shape[1]
        if row0 is None:
            sl = slice(None)
            shape2d = self.out_shape
        else:
            sl = slice(row0 * w_out, row1 * w_out)
            shape2d = (row1 - row0, w_out)
        idx = self.indices[sl]
        n = idx.shape[0]
        channels = flat.shape[1]
        expected = shape2d if squeeze else shape2d + (channels,)
        if out is not None and (out.shape != expected or out.dtype != image.dtype):
            raise MappingError(
                f"output buffer {out.shape}/{out.dtype} does not match "
                f"{expected}/{image.dtype}")
        result = out if out is not None else np.empty(expected, dtype=image.dtype)
        invalid = self._invalid_mask()
        if invalid is not None and row0 is not None:
            invalid = invalid[sl]
        info = np.iinfo(image.dtype)
        acc = np.empty((n, channels), dtype=acc_dtype)
        scratch = np.empty_like(acc)
        if result.flags.c_contiguous:
            q_apply_block(flat, idx, self._qw_transposed()[:, sl],
                          self.frac_bits, info.min, info.max, invalid,
                          self.fill, result.reshape(n, -1), acc, scratch)
        else:
            tmp = np.empty(expected, dtype=image.dtype)
            q_apply_block(flat, idx, self._qw_transposed()[:, sl],
                          self.frac_bits, info.min, info.max, invalid,
                          self.fill, tmp.reshape(n, -1), acc, scratch)
            np.copyto(result, tmp)
        return result

    def apply(self, image, out=None):
        """Correct an integer frame entirely in integer arithmetic.

        Accumulates ``sum(tap * qweight)`` in int32/int64 and rounds
        with a single arithmetic shift — bit-exact with what a DSP or
        SPE fixed-point kernel computes, and with
        :class:`~repro.core.remap.RemapLUT` running on its ``fixed``
        or ``compiled`` tier.
        """
        return self._run(image, out=out)

    def apply_into(self, image, out):
        """Correct one frame straight into ``out`` (required, validated) —
        the zero-copy streaming twin of :meth:`apply`."""
        if out is None:
            raise MappingError("apply_into requires a destination buffer")
        return self._run(image, out=out)

    def apply_rows_into(self, image, row0: int, row1: int, out):
        """Correct output rows ``[row0, row1)`` into ``out`` — the band
        primitive the tile-parallel executors use."""
        if not 0 <= row0 < row1 <= self.out_shape[0]:
            raise MappingError(
                f"bad row range [{row0}, {row1}) for output {self.out_shape}")
        if out is None:
            raise MappingError("apply_rows_into requires a destination buffer")
        return self._run(image, row0=row0, row1=row1, out=out)
