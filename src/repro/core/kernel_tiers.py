"""The kernel-tier ladder: numpy → fixed-point → compiled.

The remap hot path exists at three rungs, all executing the *same*
compact LUT tables (int32 tap offsets + per-axis fractions):

``numpy``
    The fused float gather-multiply-accumulate of
    :meth:`repro.core.remap.RemapLUT.apply` — always available, full
    float32 precision, one numpy ufunc dispatch per tap.
``fixed``
    Q-format integer arithmetic (quantized ``int16`` weights,
    wide-integer accumulate, single-shift round) — the
    :class:`~repro.core.fixedpoint.FixedPointLUT` model promoted to a
    shipping execution path, vectorised with pooled scratch and a
    tile-blocked row walk so the per-tile accumulator and source
    working set stay cache-resident.  Bit-faithful to what a DSP/SPE
    kernel computes; integer frames only.
``compiled``
    The same Q-format arithmetic jitted by Numba
    (:mod:`repro.accel.compiled`): ``njit(parallel=True)`` over 2-D
    output tiles, no per-tap ufunc dispatch, no float conversion pass
    over the source.  Requires the optional ``repro[speed]`` extra.

Selection rules
---------------
:func:`resolve_tier` maps a user request to an executable tier:

- ``auto`` picks ``compiled`` when numba imports, else ``numpy``
  (the pure-numpy ``fixed`` tier trades precision for accelerator
  fidelity, not speed, so ``auto`` never picks it silently);
- an explicit ``compiled`` request without numba falls back to
  ``numpy`` and logs a one-time warning (never raises: an uninstalled
  optional extra must not take down a pipeline);
- ``numpy``/``fixed`` always resolve to themselves.

Q tiers operate on integer frames; float frames silently use the
``numpy`` path per-frame (full precision is the only sensible meaning
of a float pipeline).
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelTierError

__all__ = [
    "KERNEL_TIERS",
    "KERNEL_CHOICES",
    "DEFAULT_FRAC_BITS",
    "DEFAULT_TILE_ROWS",
    "kernel_tier",
    "available_tiers",
    "resolve_tier",
    "numba_available",
    "numba_version",
    "q_apply_block",
]

#: executable tiers, in ladder order (slowest/most-general first).
KERNEL_TIERS = ("numpy", "fixed", "compiled")

#: what callers may request (``auto`` resolves to the best available).
KERNEL_CHOICES = ("auto",) + KERNEL_TIERS

#: Q-format precision of the shipping fixed/compiled tiers.  Q12 keeps
#: the quantization error far below the uint8 LSB (PSNR >= 40 dB vs the
#: float oracle, enforced by the regression gate) while leaving int16
#: headroom for the bicubic overshoot range.
DEFAULT_FRAC_BITS = 12

#: row-block height of the numpy ``fixed`` tier's tile walk: blocks of
#: this many output rows are processed per gather pass so accumulator,
#: scratch and the block's source bounding box stay cache-resident
#: (the host-kernel application of the paper's F6 tile study).
DEFAULT_TILE_ROWS = 64

_warned_fallback = False


def numba_available() -> bool:
    """True when the optional numba dependency imports cleanly."""
    from ..accel import compiled
    return compiled.numba_available()


def numba_version():
    """Installed numba version string, or ``None``."""
    from ..accel import compiled
    return compiled.numba_version()


def available_tiers() -> tuple:
    """The tiers executable in this environment, ladder order."""
    if numba_available():
        return KERNEL_TIERS
    return KERNEL_TIERS[:2]


def kernel_tier() -> str:
    """Capability probe: the best tier available right now.

    ``compiled`` when numba imports, else ``numpy`` — the same answer
    ``resolve_tier("auto")`` gives, exposed as a probe so callers and
    benchmarks can report which path a host will run.
    """
    return "compiled" if numba_available() else "numpy"


def resolve_tier(requested: str, *, quiet: bool = False) -> str:
    """Map a requested tier to one executable here (see module docs).

    Parameters
    ----------
    requested:
        One of :data:`KERNEL_CHOICES`.
    quiet:
        Suppress the one-time compiled→numpy fallback warning (used by
        probes that only ask hypothetically).
    """
    global _warned_fallback
    if requested not in KERNEL_CHOICES:
        raise KernelTierError(
            f"unknown kernel tier {requested!r}; known: {KERNEL_CHOICES}")
    if requested == "auto":
        return kernel_tier()
    if requested == "compiled" and not numba_available():
        if not _warned_fallback and not quiet:
            _warned_fallback = True
            from ..obs.logsetup import get_logger
            get_logger(__name__).warning(
                "kernel tier 'compiled' requested but numba is not "
                "installed; falling back to the numpy tier "
                "(pip install repro[speed] to enable it)")
        return "numpy"
    return requested


# ----------------------------------------------------------------------
# the numpy Q-format block engine
# ----------------------------------------------------------------------
def q_apply_block(flat, idx, qw_t, frac_bits, lo, hi, invalid, fill,
                  out_flat, acc, scratch):
    """Fixed-point gather-MAC over one output block (numpy tier).

    The integer twin of ``RemapLUT._accumulate`` + store epilogue:
    gather each tap into ``scratch``, multiply by its quantized weight
    column, accumulate in ``acc`` (int32 for 1-byte frames, int64
    wider), then round with ``+half`` and a single arithmetic shift —
    bit-exact with :class:`~repro.core.fixedpoint.FixedPointLUT`.

    Parameters
    ----------
    flat:
        ``(H*W, channels)`` source, already cast to the accumulator
        dtype (the one conversion pass a wide-int kernel needs).
    idx:
        ``(n, taps)`` int32 flat tap offsets for this block.
    qw_t:
        ``(taps, N_block)`` int16 quantized weights for this block.
    frac_bits:
        Q-format shift.
    lo, hi:
        Output dtype clip range.
    invalid:
        ``(n,)`` bool invalid-pixel mask or ``None``.
    fill:
        Integer fill for invalid pixels (applied after clip, matching
        the float epilogue).
    out_flat:
        ``(n, channels)`` destination view (output dtype).
    acc, scratch:
        Pooled ``(n, channels)`` accumulator-dtype work buffers.
    """
    taps = idx.shape[1]
    flat.take(idx[:, 0], axis=0, out=scratch, mode="clip")
    np.multiply(scratch, qw_t[0][:, None], out=acc)
    for k in range(1, taps):
        flat.take(idx[:, k], axis=0, out=scratch, mode="clip")
        np.multiply(scratch, qw_t[k][:, None], out=scratch)
        np.add(acc, scratch, out=acc)
    np.add(acc, acc.dtype.type(1 << (frac_bits - 1)), out=acc)
    np.right_shift(acc, frac_bits, out=acc)
    np.clip(acc, lo, hi, out=acc)
    if invalid is not None:
        acc[invalid] = fill
    np.copyto(out_flat, acc, casting="unsafe")
    return out_flat
