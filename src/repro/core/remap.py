"""The remap engine: apply a :class:`~repro.core.mapping.RemapField`.

Two execution styles, mirroring the design space the target paper
explores:

``remap``  (on-the-fly)
    Interpolation taps and weights are recomputed from the float
    coordinate field on every frame.  Cheapest in memory, most compute
    per frame.

:class:`RemapLUT`  (precomputed look-up table)
    Tap indices and weights are resolved once per view configuration;
    each subsequent frame is a pure gather + weighted accumulate.  This
    is the streaming-video fast path and the representation the
    accelerator models ship to device memory (its entry size determines
    DMA traffic).

Both paths share exact semantics with
:func:`repro.core.interpolation.sample`; the test-suite cross-checks
all three against the scalar oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import InterpolationError, MappingError
from . import interpolation as interp
from .mapping import RemapField

__all__ = ["remap", "RemapLUT", "remap_profiled", "StageProfile"]


def remap(image, field: RemapField, method: str = "bilinear",
          border: str = "constant", fill: float = 0.0):
    """On-the-fly remap of ``image`` through ``field``.

    Parameters
    ----------
    image:
        Source image, ``(H_src, W_src)`` or ``(H_src, W_src, C)``.
    field:
        Backward coordinate field (its ``src_width``/``src_height``
        must match the image).
    method, border, fill:
        Passed to :func:`repro.core.interpolation.sample`.
    """
    image = np.asarray(image)
    if image.shape[0] != field.src_height or image.shape[1] != field.src_width:
        raise MappingError(
            f"image {image.shape[1]}x{image.shape[0]} does not match field source "
            f"{field.src_width}x{field.src_height}")
    return interp.sample(image, field.map_x, field.map_y, method=method,
                         border=border, fill=fill)


def _resolve_border(idx, size, border):
    mode = "replicate" if border == "constant" else border
    return interp.resolve_indices(idx, size, mode)


@dataclass
class StageProfile:
    """Wall-clock seconds per pipeline stage of one profiled remap."""

    map_build: float = 0.0
    lut_build: float = 0.0
    gather: float = 0.0
    interpolate: float = 0.0
    store: float = 0.0

    @property
    def total(self) -> float:
        return self.map_build + self.lut_build + self.gather + self.interpolate + self.store

    def as_dict(self):
        return {
            "map_build": self.map_build,
            "lut_build": self.lut_build,
            "gather": self.gather,
            "interpolate": self.interpolate,
            "store": self.store,
            "total": self.total,
        }


class RemapLUT:
    """Precomputed gather indices + weights for one coordinate field.

    Parameters
    ----------
    field:
        The backward coordinate field to freeze.
    method:
        Interpolation kind; determines taps per pixel (1/4/16).
    border:
        Border mode resolved *at build time*.  ``constant`` keeps a
        validity mask and writes ``fill`` at apply time.
    fill:
        Fill value for ``constant`` border handling.

    Notes
    -----
    Indices are stored as flat row-major offsets into the source frame
    so that a frame application is a single fancy-indexed gather —
    the same dataflow as a DMA'd scatter-gather list or a texture
    fetch.  Weights are float32 (the precision an embedded fixed-point
    implementation would start from; see :mod:`repro.core.fixedpoint`).
    """

    def __init__(self, field: RemapField, method: str = "bilinear",
                 border: str = "constant", fill: float = 0.0):
        if method not in interp.METHODS:
            raise InterpolationError(
                f"unknown interpolation method {method!r}; known: {interp.METHODS}")
        if border not in interp.BORDER_MODES:
            raise InterpolationError(
                f"unknown border mode {border!r}; known: {interp.BORDER_MODES}")
        self.method = method
        self.border = border
        self.fill = float(fill)
        self.out_shape = field.shape
        self.src_shape = (field.src_height, field.src_width)
        h, w = self.src_shape
        self.mask = field.valid_mask().ravel() if border == "constant" else None

        if method == "nearest":
            mx = np.where(np.isfinite(field.map_x), field.map_x, 0.0)
            my = np.where(np.isfinite(field.map_y), field.map_y, 0.0)
            ix = np.rint(mx).astype(np.int64).ravel()
            iy = np.rint(my).astype(np.int64).ravel()
            ix = _resolve_border(ix, w, border)
            iy = _resolve_border(iy, h, border)
            self.indices = (iy * w + ix).reshape(-1, 1)
            self.weights = np.ones((self.indices.shape[0], 1), dtype=np.float32)
        elif method == "bilinear":
            ix, iy, fx, fy = interp.bilinear_taps(field.map_x, field.map_y)
            ix, iy = ix.ravel(), iy.ravel()
            fx, fy = fx.ravel().astype(np.float32), fy.ravel().astype(np.float32)
            x0 = _resolve_border(ix, w, border)
            x1 = _resolve_border(ix + 1, w, border)
            y0 = _resolve_border(iy, h, border)
            y1 = _resolve_border(iy + 1, h, border)
            self.indices = np.stack(
                [y0 * w + x0, y0 * w + x1, y1 * w + x0, y1 * w + x1], axis=1
            ).astype(np.int64)
            one = np.float32(1.0)
            self.weights = np.stack(
                [(one - fx) * (one - fy), fx * (one - fy), (one - fx) * fy, fx * fy],
                axis=1,
            )
        else:  # bicubic
            ix, iy, wx, wy = interp.bicubic_taps(field.map_x, field.map_y)
            ix, iy = ix.ravel(), iy.ravel()
            wx = wx.reshape(-1, 4).astype(np.float32)
            wy = wy.reshape(-1, 4).astype(np.float32)
            cols = [_resolve_border(ix - 1 + i, w, border) for i in range(4)]
            rows = [_resolve_border(iy - 1 + j, h, border) for j in range(4)]
            idx = np.empty((ix.size, 16), dtype=np.int64)
            wgt = np.empty((ix.size, 16), dtype=np.float32)
            for j in range(4):
                for i in range(4):
                    k = j * 4 + i
                    idx[:, k] = rows[j] * w + cols[i]
                    wgt[:, k] = wy[:, j] * wx[:, i]
            self.indices = idx
            self.weights = wgt

        if self.mask is not None:
            # Invalid output pixels contribute nothing; keep their taps at 0
            # so the gather stays in-bounds and branch-free.
            self.indices[~self.mask] = 0
            self.weights[~self.mask] = 0.0

    # ------------------------------------------------------------------
    @property
    def taps(self) -> int:
        """Source gathers per output pixel."""
        return self.indices.shape[1]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the table (indices + weights + mask)."""
        n = self.indices.nbytes + self.weights.nbytes
        if self.mask is not None:
            n += self.mask.nbytes
        return n

    def entry_bytes(self) -> int:
        """Bytes per output pixel of LUT data (DMA sizing)."""
        per = self.indices.dtype.itemsize * self.taps + self.weights.dtype.itemsize * self.taps
        if self.mask is not None:
            per += 1
        return per

    # ------------------------------------------------------------------
    def apply(self, image, out=None):
        """Correct one frame: pure gather + weighted accumulate.

        Parameters
        ----------
        image:
            Source frame matching the field's source size.
        out:
            Optional preallocated output array of shape
            ``out_shape (+ channels)`` and the source dtype; reusing it
            across frames avoids per-frame allocation (streaming mode).
        """
        image = np.asarray(image)
        if image.shape[:2] != self.src_shape:
            raise MappingError(
                f"frame {image.shape[:2]} does not match LUT source {self.src_shape}")
        squeeze = image.ndim == 2
        flat = image.reshape(self.src_shape[0] * self.src_shape[1], -1).astype(np.float32, copy=False)
        acc = np.zeros((self.indices.shape[0], flat.shape[1]), dtype=np.float32)
        for k in range(self.taps):
            acc += flat[self.indices[:, k]] * self.weights[:, k, None]
        if self.mask is not None:
            acc[~self.mask] = self.fill
        result = acc.reshape(self.out_shape + (flat.shape[1],))
        if np.issubdtype(image.dtype, np.integer):
            info = np.iinfo(image.dtype)
            result = np.clip(np.rint(result), info.min, info.max)
        result = result.astype(image.dtype, copy=False)
        if squeeze:
            result = result[..., 0]
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    def apply_rows(self, image, row0: int, row1: int):
        """Correct only output rows ``[row0, row1)`` — the tile primitive.

        Returns the partial output block; used by the parallel
        executors, which stitch blocks into a shared output buffer.
        """
        if not 0 <= row0 < row1 <= self.out_shape[0]:
            raise MappingError(f"bad row range [{row0}, {row1}) for output {self.out_shape}")
        image = np.asarray(image)
        w = self.out_shape[1]
        sl = slice(row0 * w, row1 * w)
        flat = image.reshape(self.src_shape[0] * self.src_shape[1], -1).astype(np.float32, copy=False)
        idx = self.indices[sl]
        wgt = self.weights[sl]
        acc = np.zeros((idx.shape[0], flat.shape[1]), dtype=np.float32)
        for k in range(self.taps):
            acc += flat[idx[:, k]] * wgt[:, k, None]
        if self.mask is not None:
            acc[~self.mask[sl]] = self.fill
        result = acc.reshape((row1 - row0, w, flat.shape[1]))
        if np.issubdtype(image.dtype, np.integer):
            info = np.iinfo(image.dtype)
            result = np.clip(np.rint(result), info.min, info.max)
        result = result.astype(image.dtype, copy=False)
        if image.ndim == 2:
            result = result[..., 0]
        return result


def remap_profiled(image, field: RemapField, method: str = "bilinear",
                   border: str = "constant", fill: float = 0.0):
    """Remap one frame while timing each pipeline stage (T2 profile).

    Stages: LUT build (tap/weight resolution), gather (source fetches),
    interpolate (weighted accumulate), store (rounding, dtype cast,
    fill).  The ``map_build`` stage is timed by the caller, which owns
    map construction; it is left 0 here.

    Returns
    -------
    (ndarray, StageProfile)
    """
    image = np.asarray(image)
    prof = StageProfile()

    t0 = time.perf_counter()
    lut = RemapLUT(field, method=method, border=border, fill=fill)
    prof.lut_build = time.perf_counter() - t0

    flat = image.reshape(image.shape[0] * image.shape[1], -1).astype(np.float32, copy=False)

    t0 = time.perf_counter()
    gathered = [flat[lut.indices[:, k]] for k in range(lut.taps)]
    prof.gather = time.perf_counter() - t0

    t0 = time.perf_counter()
    acc = np.zeros_like(gathered[0])
    for k in range(lut.taps):
        acc += gathered[k] * lut.weights[:, k, None]
    prof.interpolate = time.perf_counter() - t0

    t0 = time.perf_counter()
    if lut.mask is not None:
        acc[~lut.mask] = fill
    result = acc.reshape(field.shape + (flat.shape[1],))
    if np.issubdtype(image.dtype, np.integer):
        info = np.iinfo(image.dtype)
        result = np.clip(np.rint(result), info.min, info.max)
    result = result.astype(image.dtype, copy=False)
    if image.ndim == 2:
        result = result[..., 0]
    prof.store = time.perf_counter() - t0
    return result, prof
