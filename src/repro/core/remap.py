"""The remap engine: apply a :class:`~repro.core.mapping.RemapField`.

Two execution styles, mirroring the design space the target paper
explores:

``remap``  (on-the-fly)
    Interpolation taps and weights are recomputed from the float
    coordinate field on every frame.  Cheapest in memory, most compute
    per frame.

:class:`RemapLUT`  (precomputed look-up table)
    Tap indices and weights are resolved once per view configuration;
    each subsequent frame is a pure gather + weighted accumulate.  This
    is the streaming-video fast path and the representation the
    accelerator models ship to device memory (its entry size determines
    DMA traffic).

The LUT stores the *compact* table layout: ``int32`` flat gather
offsets plus per-axis interpolation fractions (nothing at all for
nearest), from which the per-tap weight vectors are derived — the same
entry the paper DMAs to a Cell SPE or streams through a GPU texture
path.  :meth:`RemapLUT.entry_bytes` prices exactly this layout.

Frame application is a fused gather-multiply-accumulate
(:meth:`RemapLUT.apply`) that reuses pooled scratch buffers, so
steady-state streaming performs **zero allocations**:

- ``apply(image)``            returns a fresh output array;
- ``apply(image, out=buf)`` / ``apply_into(image, buf)``
                              write the destination buffer directly
                              (no materialize-then-copy);
- ``apply_rows(image, r0, r1)`` is the tile primitive for the parallel
  executors, and ``apply_rows_into`` its in-place twin for executors
  that own a shared output buffer.

Both paths share exact semantics with
:func:`repro.core.interpolation.sample`; the test-suite cross-checks
all three against the scalar oracle.

When a :mod:`repro.obs` registry is enabled the kernel reports
``remap.frames`` / ``remap.bands`` / ``remap.pixels`` /
``remap.bytes_gathered`` counters and ``remap.apply_seconds`` /
``remap.band_seconds`` latency histograms; the disabled registry costs
one branch per call (never per pixel), which the overhead gate in
``benchmarks/check_regression.py`` enforces.

Execution is *tiered* (:mod:`repro.core.kernel_tiers`): every LUT
carries a ``tier`` — ``numpy`` (the float fused kernel below),
``fixed`` (Q-format integer arithmetic, tile-blocked) or ``compiled``
(the Numba kernel in :mod:`repro.accel.compiled`) — selected at build
time or re-selected cheaply with :meth:`RemapLUT.with_tier`, which
shares the underlying tables.  Q tiers apply to integer frames; float
frames always take the full-precision numpy path.  Each apply reports
a ``kernel.tier.<tier>`` counter and tier-labelled spans so traces
show which rung actually ran.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import InterpolationError, KernelTierError, MappingError
from ..obs.telemetry import Telemetry, get_telemetry, scoped
from . import interpolation as interp
from . import kernel_tiers
from .mapping import RemapField

__all__ = ["remap", "RemapLUT", "remap_profiled", "StageProfile"]


def remap(image, field: RemapField, method: str = "bilinear",
          border: str = "constant", fill: float = 0.0):
    """On-the-fly remap of ``image`` through ``field``.

    Parameters
    ----------
    image:
        Source image, ``(H_src, W_src)`` or ``(H_src, W_src, C)``.
    field:
        Backward coordinate field (its ``src_width``/``src_height``
        must match the image).
    method, border, fill:
        Passed to :func:`repro.core.interpolation.sample`.
    """
    image = np.asarray(image)
    if image.shape[0] != field.src_height or image.shape[1] != field.src_width:
        raise MappingError(
            f"image {image.shape[1]}x{image.shape[0]} does not match field source "
            f"{field.src_width}x{field.src_height}")
    return interp.sample(image, field.map_x, field.map_y, method=method,
                         border=border, fill=fill)


def _resolve_border(idx, size, border):
    mode = "replicate" if border == "constant" else border
    return interp.resolve_indices(idx, size, mode)


def _check_frac_bits(frac_bits: int) -> int:
    """Validate the Q-format precision at LUT build time (fail fast)."""
    frac_bits = int(frac_bits)
    if not 1 <= frac_bits <= 14:
        raise KernelTierError(
            f"frac_bits must be 1..14 (int16 Q-format storage), got {frac_bits}")
    return frac_bits


@dataclass
class StageProfile:
    """Wall-clock seconds per pipeline stage of one profiled remap."""

    map_build: float = 0.0
    lut_build: float = 0.0
    gather: float = 0.0
    interpolate: float = 0.0
    store: float = 0.0

    @property
    def total(self) -> float:
        return self.map_build + self.lut_build + self.gather + self.interpolate + self.store

    def as_dict(self):
        return {
            "map_build": self.map_build,
            "lut_build": self.lut_build,
            "gather": self.gather,
            "interpolate": self.interpolate,
            "store": self.store,
            "total": self.total,
        }


class _ScratchPool:
    """Thread-safe pool of (accumulator, gather) scratch buffer pairs.

    The fused kernel borrows a pair per call and returns it afterwards,
    so a steady-state stream touches the allocator only on its first
    frame.  Keys are ``(rows, channels, dtype)`` — concurrent tile
    workers with equal band sizes each get their own pair.
    """

    _MAX_PER_KEY = 8  # bound idle memory under bursty concurrency

    def __init__(self):
        self._lock = threading.Lock()
        self._free = {}

    def acquire(self, n: int, channels: int, dtype):
        key = (n, channels, np.dtype(dtype).str)
        with self._lock:
            stack = self._free.get(key)
            if stack:
                return stack.pop()
        return (np.empty((n, channels), dtype=dtype),
                np.empty((n, channels), dtype=dtype))

    def release(self, pair):
        acc = pair[0]
        key = (acc.shape[0], acc.shape[1], acc.dtype.str)
        with self._lock:
            stack = self._free.setdefault(key, [])
            if len(stack) < self._MAX_PER_KEY:
                stack.append(pair)


def _store_epilogue(acc, invalid, fill, dtype, out_shape, squeeze,
                    out=None, tel=None):
    """Shared store stage: fill, round, clip, cast, (optionally) emit.

    ``acc`` is the float accumulator, reshaped — never returned — so the
    caller can recycle it.  With ``out`` the destination buffer is
    written directly; otherwise a fresh array of ``dtype`` is returned.
    ``tel`` (a stage-detail telemetry registry) wraps the stage in a
    ``remap.store`` span for the profiled path.
    """
    span = tel.span("remap.store", cat="kernel") if tel is not None else None
    if span is not None:
        span.__enter__()
    if invalid is not None:
        np.copyto(acc, fill, where=invalid[:, None])
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        np.rint(acc, out=acc)
        np.clip(acc, info.min, info.max, out=acc)
    view = acc.reshape(out_shape + (acc.shape[1],))
    if squeeze:
        view = view[..., 0]
    if out is not None:
        np.copyto(out, view, casting="unsafe")
        result = out
    else:
        result = view.astype(dtype, copy=True)
    if span is not None:
        span.__exit__(None, None, None)
    return result


class RemapLUT:
    """Precomputed gather indices + interpolation fractions for one field.

    Parameters
    ----------
    field:
        The backward coordinate field to freeze.
    method:
        Interpolation kind; determines taps per pixel (1/4/16).
    border:
        Border mode resolved *at build time*.  ``constant`` keeps a
        validity mask and writes ``fill`` at apply time.
    fill:
        Fill value for ``constant`` border handling.

    Notes
    -----
    Indices are stored as flat row-major ``int32`` offsets into the
    source frame so that a frame application is a single fancy-indexed
    gather — the same dataflow as a DMA'd scatter-gather list or a
    texture fetch, at half the index traffic of an ``int64`` table.
    Instead of materialized per-tap weights, the table keeps only the
    per-axis interpolation fractions (``fracs``): 2 float32 for
    bilinear, the two 4-vector Catmull-Rom axis weights for bicubic,
    nothing for nearest.  The full ``(taps,)`` weight vector is derived
    from them once, lazily, into a reusable scratch table — in a
    hardware kernel that derivation happens in-register, which is why
    :meth:`entry_bytes` (DMA sizing) prices only indices + fractions
    (+ 1 mask byte).
    """

    def __init__(self, field: RemapField, method: str = "bilinear",
                 border: str = "constant", fill: float = 0.0,
                 tier: str = "numpy",
                 frac_bits: int = kernel_tiers.DEFAULT_FRAC_BITS):
        if method not in interp.METHODS:
            raise InterpolationError(
                f"unknown interpolation method {method!r}; known: {interp.METHODS}")
        if border not in interp.BORDER_MODES:
            raise InterpolationError(
                f"unknown border mode {border!r}; known: {interp.BORDER_MODES}")
        self.method = method
        self.border = border
        self.fill = float(fill)
        self.tier = kernel_tiers.resolve_tier(tier)
        self.frac_bits = _check_frac_bits(frac_bits)
        self.out_shape = field.shape
        self.src_shape = (field.src_height, field.src_width)
        h, w = self.src_shape
        if h * w - 1 > np.iinfo(np.int32).max:
            raise MappingError(
                f"source frame {w}x{h} exceeds the int32 index range of the "
                f"compact LUT layout")
        self.mask = field.valid_mask().ravel() if border == "constant" else None

        if method == "nearest":
            mx = np.where(np.isfinite(field.map_x), field.map_x, 0.0)
            my = np.where(np.isfinite(field.map_y), field.map_y, 0.0)
            ix = np.rint(mx).astype(np.int64).ravel()
            iy = np.rint(my).astype(np.int64).ravel()
            ix = _resolve_border(ix, w, border)
            iy = _resolve_border(iy, h, border)
            self.indices = (iy * w + ix).reshape(-1, 1).astype(np.int32)
            self.fracs = None
        elif method == "bilinear":
            ix, iy, fx, fy = interp.bilinear_taps(field.map_x, field.map_y)
            ix, iy = ix.ravel(), iy.ravel()
            x0 = _resolve_border(ix, w, border)
            x1 = _resolve_border(ix + 1, w, border)
            y0 = _resolve_border(iy, h, border)
            y1 = _resolve_border(iy + 1, h, border)
            self.indices = np.stack(
                [y0 * w + x0, y0 * w + x1, y1 * w + x0, y1 * w + x1], axis=1
            ).astype(np.int32)
            self.fracs = np.stack(
                [fx.ravel(), fy.ravel()], axis=1).astype(np.float32)
        else:  # bicubic
            ix, iy, wx, wy = interp.bicubic_taps(field.map_x, field.map_y)
            ix, iy = ix.ravel(), iy.ravel()
            cols = [_resolve_border(ix - 1 + i, w, border) for i in range(4)]
            rows = [_resolve_border(iy - 1 + j, h, border) for j in range(4)]
            idx = np.empty((ix.size, 16), dtype=np.int32)
            for j in range(4):
                base = rows[j] * w
                for i in range(4):
                    idx[:, j * 4 + i] = base + cols[i]
            self.indices = idx
            self.fracs = np.concatenate(
                [wx.reshape(-1, 4), wy.reshape(-1, 4)], axis=1).astype(np.float32)

        if self.mask is not None:
            # Invalid output pixels contribute nothing; keep their taps at 0
            # so the gather stays in-bounds and branch-free.
            self.indices[~self.mask] = 0

        self._invalid = None       # lazily ~mask
        self._wtab = None          # lazily derived (taps, N) weight table
        self._qwtab = None         # lazily derived (taps, N) int16 Q weights
        self._pool = _ScratchPool()

    # ------------------------------------------------------------------
    @classmethod
    def from_tables(cls, indices, fracs, mask, out_shape, src_shape,
                    method: str, border: str, fill: float,
                    weight_table=None, tier: str = "numpy",
                    frac_bits: int = kernel_tiers.DEFAULT_FRAC_BITS,
                    qweight_table=None) -> "RemapLUT":
        """Reconstruct a LUT from prebuilt tables (cache / shared memory).

        Arrays are adopted as-is (no copy), so memory-mapped or
        shared-memory-backed tables stay zero-copy.  ``weight_table``
        optionally injects an already-derived ``(taps, N)`` float32
        weight table, e.g. one living in a shared segment;
        ``qweight_table`` likewise injects the ``(taps, N)`` int16
        quantized table the Q tiers execute.
        """
        self = cls.__new__(cls)
        self.method = method
        self.border = border
        self.fill = float(fill)
        self.tier = kernel_tiers.resolve_tier(tier)
        self.frac_bits = _check_frac_bits(frac_bits)
        self.out_shape = tuple(out_shape)
        self.src_shape = tuple(src_shape)
        self.indices = indices
        self.fracs = fracs
        self.mask = mask
        n = int(np.prod(self.out_shape))
        if indices.ndim != 2 or indices.shape[0] != n:
            raise MappingError(
                f"index table {indices.shape} does not cover output {self.out_shape}")
        self._invalid = None
        self._wtab = weight_table
        self._qwtab = qweight_table
        self._pool = _ScratchPool()
        return self

    def with_tier(self, tier: str,
                  frac_bits: int | None = None) -> "RemapLUT":
        """A view of this LUT executing on another kernel tier.

        The returned LUT *shares* the underlying tables (indices,
        fractions, mask and any already-derived weight tables), so
        re-tiering is cheap and safe even for LUTs handed out by a
        shared :class:`~repro.core.lutcache.LUTCache` — the cached
        object is never mutated.  ``tier`` accepts ``auto`` and
        resolves it here (with the numpy fallback when numba is
        absent).
        """
        resolved = kernel_tiers.resolve_tier(tier)
        bits = self.frac_bits if frac_bits is None else _check_frac_bits(frac_bits)
        if resolved == self.tier and bits == self.frac_bits:
            return self
        return RemapLUT.from_tables(
            self.indices, self.fracs, self.mask, self.out_shape,
            self.src_shape, self.method, self.border, self.fill,
            weight_table=self._wtab, tier=resolved, frac_bits=bits,
            qweight_table=self._qwtab if bits == self.frac_bits else None)

    # Scratch pools and derived tables are per-process state; drop them
    # when a LUT is pickled to a worker.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_wtab"] = None
        state["_qwtab"] = None
        state["_invalid"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # LUTs pickled by pre-tier callers (or old cache blobs) lack
        # the tier fields; default them.
        self.__dict__.setdefault("tier", "numpy")
        self.__dict__.setdefault("frac_bits", kernel_tiers.DEFAULT_FRAC_BITS)
        self.__dict__.setdefault("_qwtab", None)
        self._pool = _ScratchPool()

    # ------------------------------------------------------------------
    @property
    def taps(self) -> int:
        """Source gathers per output pixel."""
        return self.indices.shape[1]

    @property
    def weights(self):
        """Derived per-tap weight matrix, shape ``(N, taps)`` float32.

        This is the *expanded* form of the stored fractions (scratch, not
        part of the streamed table); rows of invalid output pixels are
        zero.  Kept for consumers that need explicit weights, e.g.
        :class:`~repro.core.fixedpoint.FixedPointLUT` quantization.
        """
        return self._weight_table_full().T

    @property
    def nbytes(self) -> int:
        """Memory footprint of the stored table (indices + fracs + mask)."""
        n = self.indices.nbytes
        if self.fracs is not None:
            n += self.fracs.nbytes
        if self.mask is not None:
            n += self.mask.nbytes
        return n

    def entry_bytes(self) -> int:
        """Bytes per output pixel of streamed LUT data (DMA sizing).

        Compact layout: ``taps`` int32 offsets, the per-axis fractions
        (8 B bilinear, 32 B bicubic, 0 B nearest) and one validity byte
        in ``constant`` mode.  The derived tap weights are *not*
        counted — a device kernel rebuilds them in-register.
        """
        per = self.indices.dtype.itemsize * self.taps
        if self.fracs is not None:
            per += self.fracs.dtype.itemsize * self.fracs.shape[1]
        if self.mask is not None:
            per += 1
        return per

    @staticmethod
    def entry_bytes_for(method: str, border: str = "constant") -> int:
        """Predict :meth:`entry_bytes` for a configuration without building.

        Used by the accelerator models and benchmarks to price DMA/LUT
        traffic of the host table layout.
        """
        if method not in interp.METHODS:
            raise InterpolationError(
                f"unknown interpolation method {method!r}; known: {interp.METHODS}")
        taps = interp.footprint(method)
        frac_floats = {"nearest": 0, "bilinear": 2, "bicubic": 8}[method]
        return 4 * taps + 4 * frac_floats + (1 if border == "constant" else 0)

    def traffic_per_frame(self, channels: int = 1,
                          pixel_bytes: int = 1) -> dict:
        """Per-frame bytes the fused apply touches (the host DMA ledger).

        Accounts the same three flows the Cell model's
        :meth:`~repro.accel.cellbe.CellModel.dma_profile` prices:
        source gathers (``taps`` reads per output pixel per channel —
        this is exactly what the ``remap.bytes_gathered`` counter
        observes at run time), the streamed LUT entries
        (:meth:`entry_bytes` per output pixel, independent of the
        channel count — the table is shared across planes/channels)
        and the output writes.  Planar 4:2:0 streaming sums this
        ledger over the full-resolution luma LUT plus two half-
        resolution chroma applies, which is where its ~2x
        bytes-touched advantage over 3-channel RGB comes from.
        """
        n = int(np.prod(self.out_shape))
        gather = n * self.taps * channels * pixel_bytes
        lut = n * self.entry_bytes()
        out = n * channels * pixel_bytes
        return {
            "pixels": n,
            "channels": channels,
            "gather_bytes": gather,
            "lut_bytes": lut,
            "out_bytes": out,
            "total_bytes": gather + lut + out,
        }

    # ------------------------------------------------------------------
    # Derived tables (scratch; lazily built, reused across frames)
    # ------------------------------------------------------------------
    def _invalid_mask(self):
        if self.mask is None:
            return None
        if self._invalid is None:
            self._invalid = ~self.mask
        return self._invalid

    def _weight_table(self):
        """``(taps, N)`` float32 weight rows, or ``None`` for nearest."""
        if self.fracs is None:
            return None
        return self._weight_table_full()

    def _weight_table_full(self):
        if self._wtab is None:
            n = self.indices.shape[0]
            if self.fracs is None:
                wtab = np.ones((1, n), dtype=np.float32)
            elif self.method == "bilinear":
                fx = self.fracs[:, 0]
                fy = self.fracs[:, 1]
                one = np.float32(1.0)
                wtab = np.empty((4, n), dtype=np.float32)
                wtab[0] = (one - fx) * (one - fy)
                wtab[1] = fx * (one - fy)
                wtab[2] = (one - fx) * fy
                wtab[3] = fx * fy
            else:  # bicubic
                wx = self.fracs[:, :4]
                wy = self.fracs[:, 4:]
                wtab = np.empty((16, n), dtype=np.float32)
                for j in range(4):
                    for i in range(4):
                        wtab[j * 4 + i] = wy[:, j] * wx[:, i]
            inv = self._invalid_mask()
            if inv is not None:
                wtab[:, inv] = 0.0
            self._wtab = wtab
        return self._wtab

    def _qweight_table(self):
        """``(taps, N)`` int16 Q-format weights for the fixed/compiled
        tiers; rows of one tap are contiguous so both the ufunc columns
        and the jitted per-tap streams read forward."""
        if self._qwtab is None:
            # lazy import: fixedpoint imports this module at its top
            from .fixedpoint import quantize_weights
            q = quantize_weights(self._weight_table_full().T, self.frac_bits)
            self._qwtab = np.ascontiguousarray(q.T)
        return self._qwtab

    # ------------------------------------------------------------------
    # The fused kernel
    # ------------------------------------------------------------------
    def _prepare(self, image, tier: str = "numpy"):
        image = np.asarray(image)
        if image.shape[:2] != self.src_shape:
            raise MappingError(
                f"frame {image.shape[:2]} does not match LUT source {self.src_shape}")
        squeeze = image.ndim == 2
        n_src = self.src_shape[0] * self.src_shape[1]
        if tier == "numpy":
            # Accumulate in float32 (the embedded-precision baseline)
            # except for float64 frames, which keep their native
            # precision instead of a lossy float32 round-trip.
            acc_dtype = np.float64 if image.dtype == np.float64 else np.float32
            flat = image.reshape(n_src, -1).astype(acc_dtype, copy=False)
        else:
            # Q tiers: int32 accumulate covers 1-byte samples at Q14
            # with 16 taps; wider samples need int64.
            acc_dtype = np.int64 if image.dtype.itemsize > 1 else np.int32
            if tier == "compiled":
                # the jitted kernel gathers the raw samples — no
                # conversion pass over the source at all
                flat = np.ascontiguousarray(image.reshape(n_src, -1))
            else:
                flat = image.reshape(n_src, -1).astype(acc_dtype, copy=False)
        return image, flat, squeeze, acc_dtype

    def _accumulate(self, flat, idx, wtab, acc, scratch, tel=None):
        """Fused gather-multiply-accumulate into preallocated ``acc``.

        ``tel`` is a stage-detail telemetry registry (or ``None`` on the
        shipping fast path): when present each gather/interpolate stage
        is wrapped in a span — the profiled path times exactly this
        kernel, never a re-implementation.
        """
        if wtab is None:  # nearest: one unweighted gather, straight into acc
            if tel is None:
                flat.take(idx[:, 0], axis=0, out=acc, mode="clip")
            else:
                with tel.span("remap.gather", cat="kernel"):
                    flat.take(idx[:, 0], axis=0, out=acc, mode="clip")
            return
        taps = idx.shape[1]
        if tel is None:
            flat.take(idx[:, 0], axis=0, out=scratch, mode="clip")
            np.multiply(scratch, wtab[0][:, None], out=acc)
            for k in range(1, taps):
                flat.take(idx[:, k], axis=0, out=scratch, mode="clip")
                np.multiply(scratch, wtab[k][:, None], out=scratch)
                np.add(acc, scratch, out=acc)
            return
        for k in range(taps):
            with tel.span("remap.gather", cat="kernel"):
                flat.take(idx[:, k], axis=0, out=scratch, mode="clip")
            with tel.span("remap.interpolate", cat="kernel"):
                if k == 0:
                    np.multiply(scratch, wtab[0][:, None], out=acc)
                else:
                    np.multiply(scratch, wtab[k][:, None], out=scratch)
                    np.add(acc, scratch, out=acc)

    def _run(self, image, row0=None, row1=None, out=None):
        """Shared implementation of apply/apply_rows/profiled apply."""
        tel = get_telemetry()
        wall0 = time.time() if tel.enabled else 0.0
        t0 = time.perf_counter() if tel.enabled else 0.0
        image = np.asarray(image)
        tier = self.tier
        if tier != "numpy" and not np.issubdtype(image.dtype, np.integer):
            # Q-format arithmetic is an integer-frame contract; float
            # pipelines keep full precision on the numpy path.
            tier = "numpy"
        image, flat, squeeze, acc_dtype = self._prepare(image, tier)
        h_out, w_out = self.out_shape
        if row0 is None:
            sl = slice(None)
            n = self.indices.shape[0]
            shape2d = self.out_shape
        else:
            sl = slice(row0 * w_out, row1 * w_out)
            n = sl.stop - sl.start
            shape2d = (row1 - row0, w_out)
        channels = flat.shape[1]
        if out is not None:
            expected = shape2d if squeeze else shape2d + (channels,)
            if out.shape != expected or out.dtype != image.dtype:
                raise MappingError(
                    f"output buffer {out.shape}/{out.dtype} does not match "
                    f"{expected}/{image.dtype}")
        idx = self.indices[sl]
        invalid = self._invalid_mask()
        if invalid is not None and row0 is not None:
            invalid = invalid[sl]
        if tier == "numpy":
            wtab = self._weight_table()
            if wtab is not None and row0 is not None:
                wtab = wtab[:, sl]
            pair = self._pool.acquire(n, channels, acc_dtype)
            try:
                acc, scratch = pair
                detail = tel if tel.stage_detail else None
                self._accumulate(flat, idx, wtab, acc, scratch, tel=detail)
                result = _store_epilogue(acc, invalid, self.fill, image.dtype,
                                         shape2d, squeeze, out=out, tel=detail)
            finally:
                self._pool.release(pair)
        else:
            result = self._run_q(tier, flat, idx, sl, invalid, image.dtype,
                                 shape2d, squeeze, channels, acc_dtype,
                                 w_out, out)
        if tel.enabled:
            dt = time.perf_counter() - t0
            tel.counter(f"kernel.tier.{tier}").inc()
            if row0 is None:
                tel.counter("remap.frames").inc()
                tel.histogram("remap.apply_seconds").observe(dt)
                tel.add_span("remap.apply", wall0, dt, cat="kernel",
                             args={"tier": tier})
            else:
                tel.counter("remap.bands").inc()
                tel.histogram("remap.band_seconds").observe(dt)
            tel.counter("remap.pixels").inc(n)
            tel.counter("remap.bytes_gathered").inc(
                n * self.indices.shape[1] * channels * flat.dtype.itemsize)
        return result

    def _run_q(self, tier, flat, idx, sl, invalid, dtype, shape2d, squeeze,
               channels, acc_dtype, w_out, out):
        """The Q-format (fixed/compiled) execution paths.

        Both share the quantized ``(taps, N)`` int16 weight table and
        the FixedPointLUT arithmetic contract: wide-int accumulate,
        ``+half`` then one arithmetic shift, clip, fill.  The numpy
        ``fixed`` tier walks the output in row blocks
        (:data:`~repro.core.kernel_tiers.DEFAULT_TILE_ROWS`) so the
        accumulator and each block's source bounding box stay
        cache-resident; the ``compiled`` tier tiles in 2-D inside the
        jitted kernel itself.
        """
        qw = self._qweight_table()[:, sl]
        info = np.iinfo(dtype)
        fill = int(round(self.fill))
        n = idx.shape[0]
        result = out if out is not None else np.empty(
            shape2d if squeeze else shape2d + (channels,), dtype=dtype)
        if not result.flags.c_contiguous:
            # strided destination (rare): compute into a fresh frame,
            # then let copyto deal with the strides
            tmp = self._run_q(tier, flat, idx, sl, invalid, dtype, shape2d,
                              squeeze, channels, acc_dtype, w_out, None)
            np.copyto(result, tmp)
            return result
        out_flat = result.reshape(n, -1)
        if tier == "compiled":
            from ..accel.compiled import compiled_apply_block
            valid = self.mask[sl] if self.mask is not None else None
            compiled_apply_block(flat, idx, qw, valid, fill, self.frac_bits,
                                 info.min, info.max, out_flat, w_out)
            return result
        tile = kernel_tiers.DEFAULT_TILE_ROWS * w_out
        for b0 in range(0, n, tile):
            b1 = min(b0 + tile, n)
            pair = self._pool.acquire(b1 - b0, channels, acc_dtype)
            try:
                kernel_tiers.q_apply_block(
                    flat, idx[b0:b1], qw[:, b0:b1], self.frac_bits,
                    info.min, info.max,
                    invalid[b0:b1] if invalid is not None else None,
                    fill, out_flat[b0:b1], pair[0], pair[1])
            finally:
                self._pool.release(pair)
        return result

    # ------------------------------------------------------------------
    def apply(self, image, out=None):
        """Correct one frame: fused gather + weighted accumulate.

        Parameters
        ----------
        image:
            Source frame matching the field's source size.
        out:
            Optional preallocated output array of shape
            ``out_shape (+ channels)`` and the source dtype.  When
            given, the result is written into it directly (no
            intermediate full-frame materialization) and reusing it
            across frames makes the steady-state path allocation-free
            (streaming mode).
        """
        return self._run(image, out=out)

    def apply_into(self, image, out):
        """Correct one frame directly into ``out`` (required, validated).

        The explicit-destination twin of :meth:`apply`: the epilogue
        writes the caller's buffer in place, which is what the
        streaming pipeline and the shared-memory executors use to keep
        per-frame allocations at zero.
        """
        if out is None:
            raise MappingError("apply_into requires a destination buffer")
        return self._run(image, out=out)

    def apply_rows(self, image, row0: int, row1: int):
        """Correct only output rows ``[row0, row1)`` — the tile primitive.

        Returns the partial output block; used by the parallel
        executors, which stitch blocks into a shared output buffer.
        """
        if not 0 <= row0 < row1 <= self.out_shape[0]:
            raise MappingError(f"bad row range [{row0}, {row1}) for output {self.out_shape}")
        return self._run(image, row0=row0, row1=row1)

    def apply_rows_into(self, image, row0: int, row1: int, out):
        """Correct rows ``[row0, row1)`` straight into ``out``.

        ``out`` must be the destination *block* (e.g. a slice of a
        shared output frame); writing in place skips the
        stitch-by-copy of :meth:`apply_rows`.
        """
        if not 0 <= row0 < row1 <= self.out_shape[0]:
            raise MappingError(f"bad row range [{row0}, {row1}) for output {self.out_shape}")
        if out is None:
            raise MappingError("apply_rows_into requires a destination buffer")
        return self._run(image, row0=row0, row1=row1, out=out)


def remap_profiled(image, field: RemapField, method: str = "bilinear",
                   border: str = "constant", fill: float = 0.0):
    """Remap one frame while timing each pipeline stage (T2 profile).

    Stages: LUT build (tap/fraction resolution + weight derivation),
    gather (source fetches), interpolate (weighted accumulate), store
    (fill, rounding, dtype cast).  The stage times come from the
    :mod:`repro.obs` span API: a private stage-detail registry is
    scoped in and the *shipping fused kernel* emits ``remap.gather`` /
    ``remap.interpolate`` / ``remap.store`` spans as it runs — the
    profile reflects exactly the code path :meth:`RemapLUT.apply`
    executes, not a parallel re-implementation, and cannot drift from
    it.  The ``map_build`` stage is timed by the caller, which owns map
    construction; it is left 0 here.

    Returns
    -------
    (ndarray, StageProfile)
    """
    image = np.asarray(image)
    prof = StageProfile()

    tel = Telemetry(stage_detail=True)
    with scoped(tel):
        with tel.span("remap.lut_build", cat="kernel"):
            lut = RemapLUT(field, method=method, border=border, fill=fill)
            lut._weight_table()  # derive tap weights now; part of the build cost
        result = lut._run(image)
    prof.lut_build = tel.span_total("remap.lut_build")
    prof.gather = tel.span_total("remap.gather")
    prof.interpolate = tel.span_total("remap.interpolate")
    prof.store = tel.span_total("remap.store")
    return result, prof
