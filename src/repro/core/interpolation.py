"""Image sampling kernels: nearest, bilinear, and bicubic interpolation.

These are the inner loops of the distortion-correction kernel.  The
vectorized implementations are pure numpy gathers (fancy indexing) plus
weighted accumulation — the same dataflow a SIMD/GPU implementation
uses — and each has a straight-line *scalar reference* twin
(``*_scalar``) used as a correctness oracle by the test suite.

Coordinate convention: pixel centres on integer coordinates, ``x``
along width (axis 1), ``y`` along height (axis 0).

Border modes
------------
``constant``
    Samples whose footprint leaves the image return ``fill``
    (the "black ring" of a corrected fisheye frame).
``replicate``
    Indices clamp to the edge.
``reflect``
    Mirror about the edge pixel (``dcb|abcd|cba``).
``wrap``
    Periodic tiling.
"""

from __future__ import annotations

import numpy as np

from ..errors import InterpolationError

__all__ = [
    "METHODS",
    "BORDER_MODES",
    "resolve_indices",
    "valid_mask",
    "sample",
    "sample_nearest",
    "sample_bilinear",
    "sample_bicubic",
    "sample_scalar",
    "bilinear_taps",
    "bicubic_taps",
    "catmull_rom_weights",
    "footprint",
]

#: supported interpolation methods, cheapest first
METHODS = ("nearest", "bilinear", "bicubic")

#: supported border handling modes
BORDER_MODES = ("constant", "replicate", "reflect", "wrap")

#: taps along each axis per method (footprint is taps**2 pixels)
_TAPS = {"nearest": 1, "bilinear": 2, "bicubic": 4}


def footprint(method: str) -> int:
    """Number of source pixels gathered per output pixel."""
    try:
        taps = _TAPS[method]
    except KeyError:
        raise InterpolationError(
            f"unknown interpolation method {method!r}; known: {METHODS}") from None
    return taps * taps


def resolve_indices(idx, size: int, border: str):
    """Map (possibly out-of-range) integer indices into ``[0, size)``.

    For ``constant`` the indices are clamped — the caller is expected to
    mask invalid samples separately via :func:`valid_mask`.
    """
    idx = np.asarray(idx)
    if border in ("constant", "replicate"):
        return np.clip(idx, 0, size - 1)
    if border == "reflect":
        if size == 1:
            return np.zeros_like(idx)
        period = 2 * (size - 1)
        idx = np.mod(idx, period)
        return np.where(idx >= size, period - idx, idx)
    if border == "wrap":
        return np.mod(idx, size)
    raise InterpolationError(f"unknown border mode {border!r}; known: {BORDER_MODES}")


def valid_mask(xs, ys, width: int, height: int):
    """Mask of coordinates that fall inside the source image.

    ``nan`` coordinates (out-of-FOV mapping results) are invalid.
    """
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    with np.errstate(invalid="ignore"):
        return (xs >= 0) & (xs <= width - 1) & (ys >= 0) & (ys <= height - 1)


def _prepare(image, xs, ys):
    image = np.asarray(image)
    if image.ndim == 2:
        image = image[:, :, None]
        squeeze = True
    elif image.ndim == 3:
        squeeze = False
    else:
        raise InterpolationError(f"image must be 2-D or 3-D, got shape {image.shape}")
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape:
        raise InterpolationError(f"coordinate shape mismatch: {xs.shape} vs {ys.shape}")
    return image, xs, ys, squeeze


def _finish(out, image, mask, fill, squeeze, out_dtype):
    if mask is not None:
        out = np.where(mask[..., None], out, fill)
    if np.issubdtype(out_dtype, np.integer):
        info = np.iinfo(out_dtype)
        out = np.clip(np.rint(out), info.min, info.max)
    out = out.astype(out_dtype, copy=False)
    if squeeze:
        out = out[..., 0]
    return out


# ----------------------------------------------------------------------
# Nearest neighbour
# ----------------------------------------------------------------------
def sample_nearest(image, xs, ys, border: str = "constant", fill: float = 0.0):
    """Nearest-neighbour sampling (1 gather per output pixel)."""
    image, xs, ys, squeeze = _prepare(image, xs, ys)
    h, w = image.shape[:2]
    mask = valid_mask(xs, ys, w, h) if border == "constant" else None
    with np.errstate(invalid="ignore"):
        ix = np.rint(np.where(np.isfinite(xs), xs, 0.0)).astype(np.intp)
        iy = np.rint(np.where(np.isfinite(ys), ys, 0.0)).astype(np.intp)
    ix = resolve_indices(ix, w, border)
    iy = resolve_indices(iy, h, border)
    out = image[iy, ix].astype(np.float64)
    return _finish(out, image, mask, fill, squeeze, image.dtype)


# ----------------------------------------------------------------------
# Bilinear
# ----------------------------------------------------------------------
def bilinear_taps(xs, ys):
    """Decompose coordinates into integer bases and fractional weights.

    Returns ``(ix, iy, fx, fy)`` with ``ix = floor(xs)`` etc.  ``nan``
    inputs produce tap ``(0, 0)`` with zero fraction; the caller masks
    them out.  This is the precomputation a remap LUT stores.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    xs = np.where(np.isfinite(xs), xs, 0.0)
    ys = np.where(np.isfinite(ys), ys, 0.0)
    ix = np.floor(xs).astype(np.intp)
    iy = np.floor(ys).astype(np.intp)
    return ix, iy, xs - ix, ys - iy


def sample_bilinear(image, xs, ys, border: str = "constant", fill: float = 0.0):
    """Bilinear sampling (4 gathers + 8 multiply-adds per output pixel)."""
    image, xs, ys, squeeze = _prepare(image, xs, ys)
    h, w = image.shape[:2]
    mask = valid_mask(xs, ys, w, h) if border == "constant" else None
    ix, iy, fx, fy = bilinear_taps(xs, ys)
    x0 = resolve_indices(ix, w, border)
    x1 = resolve_indices(ix + 1, w, border)
    y0 = resolve_indices(iy, h, border)
    y1 = resolve_indices(iy + 1, h, border)
    fx = fx[..., None]
    fy = fy[..., None]
    img = image.astype(np.float64, copy=False)
    top = img[y0, x0] * (1.0 - fx) + img[y0, x1] * fx
    bot = img[y1, x0] * (1.0 - fx) + img[y1, x1] * fx
    out = top * (1.0 - fy) + bot * fy
    return _finish(out, image, mask, fill, squeeze, image.dtype)


# ----------------------------------------------------------------------
# Bicubic (Catmull-Rom, a = -0.5)
# ----------------------------------------------------------------------
def catmull_rom_weights(frac):
    """Catmull-Rom weights for taps at offsets (-1, 0, +1, +2).

    Returns an array with shape ``frac.shape + (4,)``; the four weights
    sum to 1 for every fractional position.
    """
    t = np.asarray(frac, dtype=np.float64)
    t2 = t * t
    t3 = t2 * t
    w0 = 0.5 * (-t3 + 2.0 * t2 - t)
    w1 = 0.5 * (3.0 * t3 - 5.0 * t2 + 2.0)
    w2 = 0.5 * (-3.0 * t3 + 4.0 * t2 + t)
    w3 = 0.5 * (t3 - t2)
    return np.stack([w0, w1, w2, w3], axis=-1)


def bicubic_taps(xs, ys):
    """Integer bases plus 4-tap weight vectors along each axis.

    Returns ``(ix, iy, wx, wy)`` where ``wx``/``wy`` have a trailing
    length-4 axis; the 16 source pixels are ``(iy - 1 + j, ix - 1 + i)``
    weighted by ``wy[..., j] * wx[..., i]``.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    xs = np.where(np.isfinite(xs), xs, 0.0)
    ys = np.where(np.isfinite(ys), ys, 0.0)
    ix = np.floor(xs).astype(np.intp)
    iy = np.floor(ys).astype(np.intp)
    return ix, iy, catmull_rom_weights(xs - ix), catmull_rom_weights(ys - iy)


def sample_bicubic(image, xs, ys, border: str = "constant", fill: float = 0.0):
    """Bicubic (Catmull-Rom) sampling: 16 gathers + ~20 MACs per pixel."""
    image, xs, ys, squeeze = _prepare(image, xs, ys)
    h, w = image.shape[:2]
    mask = valid_mask(xs, ys, w, h) if border == "constant" else None
    ix, iy, wx, wy = bicubic_taps(xs, ys)
    img = image.astype(np.float64, copy=False)
    out = np.zeros(xs.shape + (img.shape[2],), dtype=np.float64)
    # Separable accumulation: 4 row passes, each combining 4 column taps.
    for j in range(4):
        yj = resolve_indices(iy - 1 + j, h, "replicate" if border == "constant" else border)
        row = np.zeros_like(out)
        for i in range(4):
            xi = resolve_indices(ix - 1 + i, w, "replicate" if border == "constant" else border)
            row += img[yj, xi] * wx[..., i, None]
        out += row * wy[..., j, None]
    return _finish(out, image, mask, fill, squeeze, image.dtype)


_SAMPLERS = {
    "nearest": sample_nearest,
    "bilinear": sample_bilinear,
    "bicubic": sample_bicubic,
}


def sample(image, xs, ys, method: str = "bilinear", border: str = "constant",
           fill: float = 0.0):
    """Sample ``image`` at fractional coordinates ``(xs, ys)``.

    Parameters
    ----------
    image:
        ``(H, W)`` or ``(H, W, C)`` array of any real dtype.
    xs, ys:
        Fractional source coordinates (same shape); ``nan`` marks
        out-of-FOV points, which return ``fill`` in ``constant`` mode.
    method:
        One of :data:`METHODS`.
    border:
        One of :data:`BORDER_MODES`.
    fill:
        Value used by ``constant`` border handling.

    Returns
    -------
    ndarray
        Sampled image with shape ``xs.shape`` (+ channels), same dtype
        as ``image`` (rounded and clipped for integer dtypes).
    """
    if border not in BORDER_MODES:
        raise InterpolationError(f"unknown border mode {border!r}; known: {BORDER_MODES}")
    try:
        fn = _SAMPLERS[method]
    except KeyError:
        raise InterpolationError(
            f"unknown interpolation method {method!r}; known: {METHODS}") from None
    return fn(image, xs, ys, border=border, fill=fill)


# ----------------------------------------------------------------------
# Scalar reference implementation (oracle; deliberately loop-based)
# ----------------------------------------------------------------------
def _sample_one(image, x, y, method, border, fill):
    h, w = image.shape[:2]
    if not (np.isfinite(x) and np.isfinite(y)):
        if border == "constant":
            return np.full(image.shape[2], fill, dtype=np.float64)
        x, y = 0.0, 0.0

    def fetch(ix, iy):
        ix = int(resolve_indices(np.array(ix), w, border if border != "constant" else "replicate"))
        iy = int(resolve_indices(np.array(iy), h, border if border != "constant" else "replicate"))
        return image[iy, ix].astype(np.float64)

    if border == "constant" and not (0 <= x <= w - 1 and 0 <= y <= h - 1):
        return np.full(image.shape[2], fill, dtype=np.float64)

    if method == "nearest":
        return fetch(int(round(x)), int(round(y)))
    if method == "bilinear":
        ix, iy = int(np.floor(x)), int(np.floor(y))
        fx, fy = x - ix, y - iy
        top = fetch(ix, iy) * (1 - fx) + fetch(ix + 1, iy) * fx
        bot = fetch(ix, iy + 1) * (1 - fx) + fetch(ix + 1, iy + 1) * fx
        return top * (1 - fy) + bot * fy
    if method == "bicubic":
        ix, iy = int(np.floor(x)), int(np.floor(y))
        wx = catmull_rom_weights(np.array(x - ix))
        wy = catmull_rom_weights(np.array(y - iy))
        acc = np.zeros(image.shape[2], dtype=np.float64)
        for j in range(4):
            row = np.zeros(image.shape[2], dtype=np.float64)
            for i in range(4):
                row += fetch(ix - 1 + i, iy - 1 + j) * wx[i]
            acc += row * wy[j]
        return acc
    raise InterpolationError(f"unknown interpolation method {method!r}")


def sample_scalar(image, xs, ys, method: str = "bilinear", border: str = "constant",
                  fill: float = 0.0):
    """Loop-based reference sampler (slow; for tests and tiny images).

    Semantically identical to :func:`sample`; kept free of any numpy
    vector tricks so the two implementations fail independently.
    """
    image = np.asarray(image)
    squeeze = image.ndim == 2
    if squeeze:
        image = image[:, :, None]
    xs = np.atleast_1d(np.asarray(xs, dtype=np.float64))
    ys = np.atleast_1d(np.asarray(ys, dtype=np.float64))
    shape = xs.shape
    flat_x = xs.ravel()
    flat_y = ys.ravel()
    out = np.empty((flat_x.size, image.shape[2]), dtype=np.float64)
    for k in range(flat_x.size):
        out[k] = _sample_one(image, flat_x[k], flat_y[k], method, border, fill)
    if np.issubdtype(image.dtype, np.integer):
        info = np.iinfo(image.dtype)
        out = np.clip(np.rint(out), info.min, info.max)
    out = out.astype(image.dtype).reshape(shape + (image.shape[2],))
    if squeeze:
        out = out[..., 0]
    return out
