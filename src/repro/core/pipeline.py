"""High-level correction pipeline: the library's front door.

:class:`FisheyeCorrector` bundles the full workflow the paper's
application implements — configure lens + output view, build the remap
once, then stream frames through it — behind a small API:

.. code-block:: python

    corrector = FisheyeCorrector.for_sensor(
        sensor, lens, out_width=1280, out_height=960, zoom=0.5)
    corrected = corrector.correct(frame)          # one ndarray in/out
    for out in corrector.correct_stream(frames):  # streaming mode
        ...

Execution is pluggable: any object implementing
:class:`RemapExecutor` (``run(lut, image, out=None)``) can be passed,
so the tiled thread-pool and process-pool executors in
:mod:`repro.parallel` and the simulated platforms drop in without the
caller changing shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Protocol

import numpy as np

from ..errors import MappingError, ScheduleError
from ..obs.telemetry import get_telemetry
from .image import Frame
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .lens import LensModel
from .mapping import RemapField, perspective_map
from . import kernel_tiers
from .remap import RemapLUT

__all__ = ["RemapExecutor", "SequentialExecutor", "StreamStats", "FisheyeCorrector"]


class RemapExecutor(Protocol):
    """Anything that can apply a prepared LUT to one frame."""

    def run(self, lut: RemapLUT, image: np.ndarray, out: Optional[np.ndarray] = None
            ) -> np.ndarray:  # pragma: no cover - protocol
        ...


class SequentialExecutor:
    """Single-threaded executor: apply the LUT in one shot."""

    name = "sequential"

    def run(self, lut: RemapLUT, image, out=None):
        return lut.apply(image, out=out)


@dataclass
class StreamStats:
    """Throughput accounting for a correction stream."""

    frames: int = 0
    pixels: int = 0
    seconds: float = 0.0

    @property
    def fps(self) -> float:
        return self.frames / self.seconds if self.seconds > 0 else 0.0

    @property
    def mpixels_per_s(self) -> float:
        return self.pixels / self.seconds / 1e6 if self.seconds > 0 else 0.0


class FisheyeCorrector:
    """End-to-end fisheye distortion corrector.

    Parameters
    ----------
    field:
        The backward coordinate field to correct through (typically
        from :func:`repro.core.mapping.perspective_map`).
    method:
        Interpolation kind (``nearest``/``bilinear``/``bicubic``).
    border, fill:
        Border handling for out-of-FOV output pixels.
    kernel:
        Kernel-tier request, one of
        :data:`~repro.core.kernel_tiers.KERNEL_CHOICES`
        (``auto``/``numpy``/``fixed``/``compiled``); resolved once at
        construction via
        :func:`~repro.core.kernel_tiers.resolve_tier` and applied to
        the LUT with :meth:`~repro.core.remap.RemapLUT.with_tier`, so
        cache-shared tables are never mutated.
    executor:
        Optional :class:`RemapExecutor`; defaults to
        :class:`SequentialExecutor`.
    lut_cache:
        Optional :class:`~repro.core.lutcache.LUTCache`.  When given,
        the remap table is fetched through it instead of being built
        unconditionally, so correctors sharing a cache (or restarting
        against its disk tier) skip the most expensive per-stream
        stage.
    out_size:
        Optional ``(width, height)`` to deliver at.  Builds one
        **fused** correct+downscale table
        (:func:`~repro.core.compose.composed_lut` over an area-style
        :func:`~repro.core.compose.downscale_field`): every frame pays
        a single gather pass whose traffic scales with the delivered
        size, not the correction's intermediate.  With a ``lut_cache``
        the fused table is keyed by the constituent fields' content
        hashes, so it warm-starts like a plain one.
    """

    def __init__(self, field: RemapField, method: str = "bilinear",
                 border: str = "constant", fill: float = 0.0,
                 executor: Optional[RemapExecutor] = None,
                 lut_cache=None, kernel: str = "numpy",
                 out_size: Optional[tuple] = None):
        self.field = field
        self.method = method
        self.border = border
        self.fill = fill
        self.kernel = kernel_tiers.resolve_tier(kernel)
        self.executor = executor or SequentialExecutor()
        self.lut_cache = lut_cache
        if out_size is not None:
            from .compose import downscale_field
            fh, fw = field.shape
            self._outer = downscale_field(int(out_size[0]), int(out_size[1]),
                                          fw, fh)
        else:
            self._outer = None
        self.fused = self._outer is not None
        self._lut: Optional[RemapLUT] = None
        self._frames_corrected = 0
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_sensor(cls, sensor: FisheyeIntrinsics, lens: LensModel,
                   out_width: int, out_height: int, zoom: float = 1.0,
                   yaw: float = 0.0, pitch: float = 0.0, roll: float = 0.0,
                   method: str = "bilinear", border: str = "constant",
                   fill: float = 0.0,
                   executor: Optional[RemapExecutor] = None,
                   lut_cache=None, kernel: str = "numpy",
                   out_size: Optional[tuple] = None) -> "FisheyeCorrector":
        """Build a perspective-view corrector for a fisheye sensor.

        ``zoom`` scales the output focal length relative to the value
        that preserves central spatial resolution (``zoom=1`` keeps the
        centre 1:1; smaller values widen the recovered field of view at
        the cost of central resolution — the trade-off triangle from
        the paper's introduction).
        """
        if zoom <= 0:
            raise MappingError(f"zoom must be positive, got {zoom}")
        # For any lens, dr/dtheta at theta=0 equals the focal; matching
        # the perspective focal to it preserves central resolution.
        focal_out = float(lens.magnification(1e-4)) * zoom
        out = CameraIntrinsics(
            fx=focal_out, fy=focal_out,
            cx=(out_width - 1) / 2.0, cy=(out_height - 1) / 2.0,
            width=out_width, height=out_height,
        )
        field = perspective_map(sensor, lens, out, yaw=yaw, pitch=pitch, roll=roll)
        return cls(field, method=method, border=border, fill=fill, executor=executor,
                   lut_cache=lut_cache, kernel=kernel, out_size=out_size)

    # ------------------------------------------------------------------
    @property
    def lut(self) -> RemapLUT:
        """The frozen remap table (built lazily, reused across frames)."""
        if self._lut is None:
            if self._outer is not None:
                from .compose import composed_lut
                if self.lut_cache is not None:
                    hits0 = self.lut_cache.hits
                    misses0 = self.lut_cache.misses
                self._lut = composed_lut(self._outer, self.field,
                                         method=self.method,
                                         border=self.border, fill=self.fill,
                                         cache=self.lut_cache)
                if self.lut_cache is not None:
                    self._cache_hits += self.lut_cache.hits - hits0
                    self._cache_misses += self.lut_cache.misses - misses0
            elif self.lut_cache is not None:
                hits0, misses0 = self.lut_cache.hits, self.lut_cache.misses
                self._lut = self.lut_cache.get(self.field, method=self.method,
                                               border=self.border, fill=self.fill)
                self._cache_hits += self.lut_cache.hits - hits0
                self._cache_misses += self.lut_cache.misses - misses0
            else:
                self._lut = RemapLUT(self.field, method=self.method,
                                     border=self.border, fill=self.fill)
            if self.kernel != "numpy" and hasattr(self._lut, "with_tier"):
                # non-mutating: cache-fetched tables stay tier-neutral
                # (a supersampled fused table has no Q-format twin and
                # keeps the numpy path)
                self._lut = self._lut.with_tier(self.kernel)
        return self._lut

    def stats(self) -> dict:
        """Counters for this corrector: frames corrected plus its share
        of LUT-cache traffic (and, under ``cache``, the live counters of
        the attached :class:`~repro.core.lutcache.LUTCache`, which may
        be shared with other correctors).

        Under ``slo``, the frame-latency digest from the active
        telemetry registry (end-to-end p50/p95/p99, deadline misses,
        stalls — see :func:`repro.obs.export.slo_summary`), or ``None``
        when telemetry is disabled or no stream has reported latency.
        """
        from ..obs.export import slo_summary
        tel = get_telemetry()
        return {
            "frames_corrected": self._frames_corrected,
            "kernel": self.kernel,
            "fused": self.fused,
            "lut_built": self._lut is not None,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "cache": self.lut_cache.stats() if self.lut_cache is not None else None,
            "slo": slo_summary(tel.snapshot()) if tel.enabled else None,
        }

    @property
    def out_shape(self):
        return self._outer.shape if self._outer is not None else self.field.shape

    def coverage(self) -> float:
        """Fraction of output pixels with source data."""
        return self.field.coverage()

    # ------------------------------------------------------------------
    def correct(self, image, out=None):
        """Correct one frame.

        Accepts a bare ndarray or a :class:`~repro.core.image.Frame`;
        returns the same kind.
        """
        tel = get_telemetry()
        t0 = time.perf_counter() if tel.enabled else 0.0
        if isinstance(image, Frame):
            result = image.with_data(self.executor.run(self.lut, image.data, out=out))
        else:
            result = self.executor.run(self.lut, np.asarray(image), out=out)
        self._frames_corrected += 1
        if tel.enabled:
            tel.counter("pipeline.frames").inc()
            tel.histogram("pipeline.frame_seconds").observe(time.perf_counter() - t0)
        return result

    def correct_stream(self, frames: Iterable, stats: Optional[StreamStats] = None,
                       engine: str = "sync", **engine_kwargs) -> Iterator:
        """Correct a frame stream lazily, reusing one output buffer.

        Pass a :class:`StreamStats` to accumulate throughput numbers
        while the stream drains.  Buffer reuse means each yielded
        array aliases the previous one — consume (or copy) each frame
        before advancing, as with any zero-copy decoder API.

        ``engine`` selects the execution strategy:

        ``"sync"``
            This corrector's own executor, one frame at a time
            (default; honours ``self.executor``).
        ``"pipelined"``
            :func:`repro.parallel.stream.pipelined_stream` — ``depth``
            worker threads keep that many frames in flight; each
            yielded frame owns its buffer.
        ``"ring"``
            :func:`repro.parallel.ring.ring_stream` — persistent
            worker processes over a shared-memory frame ring;
            ``engine_kwargs`` (``workers``, ``depth``, ``schedule``,
            ``chunk``, ``context``, ``copy``) configure the
            :class:`~repro.parallel.ring.RingEngine`.
        """
        if engine == "sync":
            if engine_kwargs:
                raise ScheduleError(
                    f"engine 'sync' takes no options, got {sorted(engine_kwargs)}")
            yield from self._sync_stream(frames, stats)
        elif engine == "pipelined":
            # lazy import: repro.parallel imports this module
            from ..parallel.stream import pipelined_stream
            yield from self._account(
                pipelined_stream(self, frames, **engine_kwargs), stats,
                count=False)  # correct() already counts each frame
        elif engine == "ring":
            from ..parallel.ring import ring_stream
            yield from self._account(
                ring_stream(self.lut, frames, **engine_kwargs), stats,
                count=True)
        else:
            raise ScheduleError(
                f"unknown stream engine {engine!r}; known: sync, pipelined, ring")

    def _account(self, inner: Iterator, stats: Optional[StreamStats],
                 count: bool) -> Iterator:
        """Fold a delegated engine's output into this corrector's stats."""
        it = iter(inner)
        while True:
            t0 = time.perf_counter()
            try:
                item = next(it)
            except StopIteration:
                return
            elapsed = time.perf_counter() - t0
            if count:
                self._frames_corrected += 1
            if stats is not None:
                stats.frames += 1
                stats.pixels += int(np.prod(self.out_shape))
                stats.seconds += elapsed
            yield item

    def _sync_stream(self, frames: Iterable, stats: Optional[StreamStats]
                     ) -> Iterator:
        tel = get_telemetry()
        buffer = None
        for item in frames:
            data = item.data if isinstance(item, Frame) else np.asarray(item)
            if buffer is None or buffer.shape[: 2] != self.out_shape or buffer.dtype != data.dtype:
                shape = self.out_shape + data.shape[2:]
                buffer = np.empty(shape, dtype=data.dtype)
            t0 = time.perf_counter()
            result = self.executor.run(self.lut, data, out=buffer)
            elapsed = time.perf_counter() - t0
            self._frames_corrected += 1
            if stats is not None:
                stats.frames += 1
                stats.pixels += int(np.prod(self.out_shape))
                stats.seconds += elapsed
            if tel.enabled:
                tel.counter("pipeline.frames").inc()
                tel.histogram("pipeline.frame_seconds").observe(elapsed)
            if isinstance(item, Frame):
                yield item.with_data(result)
            else:
                yield result
