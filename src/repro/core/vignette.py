"""Vignetting: the fisheye's radiometric distortion, and its correction.

Wide-angle lenses darken toward the periphery — to first order the
``cos^4`` law in the field angle, plus mechanical clipping near the
image-circle edge.  Geometric correction *spreads* the dark periphery
across more output pixels, making the falloff more visible, so real
correctors pair the remap with a per-pixel gain.  This module provides

- :class:`VignetteModel` — parametric ``cos^alpha`` falloff over a lens
  model (forward application for the synthetic renderer, gain map for
  correction),
- :func:`correct_vignette` — apply a gain map with saturation-aware
  clipping,

and composes with the remap: the gain can be evaluated either on the
fisheye frame before remapping or, via the coordinate field, directly
on the corrected output (one fused pass — the way an optimized kernel
folds it into the interpolation weights).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from .intrinsics import FisheyeIntrinsics
from .lens import LensModel
from .mapping import RemapField

__all__ = ["VignetteModel", "correct_vignette"]


class VignetteModel:
    """Radially symmetric ``cos^alpha(theta)`` illumination falloff.

    Parameters
    ----------
    lens:
        Lens model translating image radius to field angle.
    sensor:
        Sensor geometry (distortion centre).
    alpha:
        Falloff exponent; 4.0 is the thin-lens ``cos^4`` law, real
        fisheyes are engineered closer to 2..3.
    floor:
        Lower bound on relative illumination (keeps gains finite at
        the rim and models the lens's actual T-stop profile).
    """

    def __init__(self, lens: LensModel, sensor: FisheyeIntrinsics,
                 alpha: float = 3.0, floor: float = 0.05):
        if alpha < 0:
            raise GeometryError(f"alpha must be >= 0, got {alpha}")
        if not 0 < floor <= 1:
            raise GeometryError(f"floor must be in (0, 1], got {floor}")
        self.lens = lens
        self.sensor = sensor
        self.alpha = float(alpha)
        self.floor = float(floor)

    # ------------------------------------------------------------------
    def falloff_at_radius(self, r):
        """Relative illumination (0..1] at fisheye radius ``r`` (pixels)."""
        r = np.asarray(r, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            theta = np.asarray(self.lens.radius_to_angle(r), dtype=np.float64)
        cos_t = np.cos(np.clip(np.nan_to_num(theta, nan=np.pi / 2), 0, np.pi / 2))
        fall = cos_t ** self.alpha
        return np.maximum(self.floor, np.where(np.isfinite(theta), fall, self.floor))

    def falloff_map(self) -> np.ndarray:
        """Per-pixel relative illumination over the sensor frame."""
        ys, xs = np.indices((self.sensor.height, self.sensor.width))
        r = np.hypot(xs - self.sensor.cx, ys - self.sensor.cy)
        return self.falloff_at_radius(r)

    def apply(self, image) -> np.ndarray:
        """Darken an ideal frame the way the lens would (renderer side)."""
        image = np.asarray(image)
        if image.shape[:2] != (self.sensor.height, self.sensor.width):
            raise GeometryError(
                f"image {image.shape[:2]} does not match sensor "
                f"{(self.sensor.height, self.sensor.width)}")
        fall = self.falloff_map()
        if image.ndim == 3:
            fall = fall[..., None]
        out = image.astype(np.float64) * fall
        if np.issubdtype(image.dtype, np.integer):
            info = np.iinfo(image.dtype)
            out = np.clip(np.rint(out), info.min, info.max)
        return out.astype(image.dtype)

    # ------------------------------------------------------------------
    def gain_map(self, max_gain: float = 8.0) -> np.ndarray:
        """Correction gains over the *sensor* frame (1 / falloff, capped)."""
        if max_gain < 1:
            raise GeometryError(f"max_gain must be >= 1, got {max_gain}")
        return np.minimum(max_gain, 1.0 / self.falloff_map())

    def gain_for_field(self, field: RemapField, max_gain: float = 8.0) -> np.ndarray:
        """Correction gains evaluated at each *output* pixel of a remap.

        Evaluating the analytic gain at the map's fractional source
        coordinates (rather than remapping a sensor-domain gain image)
        keeps the radiometric and geometric corrections exactly
        aligned — the fused-kernel formulation.
        """
        if max_gain < 1:
            raise GeometryError(f"max_gain must be >= 1, got {max_gain}")
        r = np.hypot(np.nan_to_num(field.map_x) - self.sensor.cx,
                     np.nan_to_num(field.map_y) - self.sensor.cy)
        gain = np.minimum(max_gain, 1.0 / self.falloff_at_radius(r))
        return np.where(field.valid_mask(), gain, 1.0)


def correct_vignette(image, gain_map) -> np.ndarray:
    """Multiply an image by per-pixel gains with dtype-aware clipping."""
    image = np.asarray(image)
    gain_map = np.asarray(gain_map, dtype=np.float64)
    if gain_map.shape != image.shape[:2]:
        raise GeometryError(
            f"gain map {gain_map.shape} does not match image {image.shape[:2]}")
    if image.ndim == 3:
        gain_map = gain_map[..., None]
    out = image.astype(np.float64) * gain_map
    if np.issubdtype(image.dtype, np.integer):
        info = np.iinfo(image.dtype)
        out = np.clip(np.rint(out), info.min, info.max)
    return out.astype(image.dtype)
