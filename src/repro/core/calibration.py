"""Fisheye calibration from synthetic target images.

The paper's kernel needs one lens parameter — the focal ``f`` (or
equivalently the ``r0``/``R0`` image-circle radius) — and the
distortion centre.  This module recovers them from calibration-target
imagery the way a lab would:

1. :func:`detect_blobs` finds bright markers (connected components +
   intensity-weighted centroids, built on ``scipy.ndimage``),
2. :func:`fit_focal` solves the one-parameter least-squares problem
   ``r_i = f * m(theta_i)`` in closed form (every classical mapping
   function is linear in ``f``),
3. :func:`select_model` picks the mapping family with the smallest
   residual,
4. :func:`calibrate` optionally refines the distortion centre with a
   Nelder–Mead search around the blob centroid.

Because the workload generator renders targets through a *known* lens,
the test suite can assert recovered parameters against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage, optimize

from ..errors import CalibrationError
from .lens import LENS_MODELS, LensModel, make_lens

__all__ = [
    "Blob",
    "detect_blobs",
    "fit_focal",
    "ModelFit",
    "select_model",
    "CalibrationResult",
    "calibrate",
]


@dataclass(frozen=True)
class Blob:
    """A detected calibration marker."""

    x: float
    y: float
    area: int
    intensity: float


def detect_blobs(image, threshold: float | None = None, min_area: int = 3):
    """Find bright blobs on a dark background.

    Parameters
    ----------
    image:
        2-D grayscale array.
    threshold:
        Binarization level; defaults to midway between the 10th and
        99.5th intensity percentiles.
    min_area:
        Components smaller than this many pixels are treated as noise.

    Returns
    -------
    list of :class:`Blob`, ordered by decreasing area.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise CalibrationError(f"blob detection needs a 2-D image, got shape {image.shape}")
    if threshold is None:
        lo, hi = np.percentile(image, [10.0, 99.5])
        threshold = 0.5 * (lo + hi)
    binary = image > threshold
    labels, count = ndimage.label(binary)
    blobs = []
    for idx in range(1, count + 1):
        mask = labels == idx
        area = int(mask.sum())
        if area < min_area:
            continue
        weights = image * mask
        total = weights.sum()
        if total <= 0:
            continue
        ys, xs = np.nonzero(mask)
        wvals = image[ys, xs]
        blobs.append(Blob(
            x=float((xs * wvals).sum() / total),
            y=float((ys * wvals).sum() / total),
            area=area,
            intensity=float(wvals.mean()),
        ))
    blobs.sort(key=lambda b: -b.area)
    return blobs


def fit_focal(thetas, radii, model: str = "equidistant") -> float:
    """Closed-form least-squares focal for ``r = f * m(theta)``.

    All registry models have mapping functions linear in ``f``, so the
    optimum is ``f* = sum(r m) / sum(m^2)``.
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    if thetas.shape != radii.shape or thetas.size == 0:
        raise CalibrationError(
            f"need matching non-empty observation arrays, got {thetas.shape}/{radii.shape}")
    if np.any(thetas <= 0) or np.any(radii <= 0):
        raise CalibrationError("observations must have positive angles and radii")
    probe = make_lens(model, 1.0)
    if np.any(thetas > probe.max_theta):
        raise CalibrationError(
            f"model {model!r} cannot represent angles beyond {probe.max_theta:.3f} rad")
    m = np.asarray(probe.angle_to_radius(thetas), dtype=np.float64)
    denom = float(np.dot(m, m))
    if denom <= 0 or not np.isfinite(denom):
        raise CalibrationError("degenerate fit: mapping values are zero/non-finite")
    f = float(np.dot(radii, m) / denom)
    if f <= 0:
        raise CalibrationError(f"fit produced non-positive focal {f}")
    return f


@dataclass(frozen=True)
class ModelFit:
    """One mapping family's fit to the observations."""

    model: str
    focal: float
    rms_residual: float

    def lens(self) -> LensModel:
        return make_lens(self.model, self.focal)


def _rms(model: str, focal: float, thetas, radii) -> float:
    predicted = make_lens(model, focal).angle_to_radius(thetas)
    return float(np.sqrt(np.mean((np.asarray(predicted) - radii) ** 2)))


def select_model(thetas, radii, candidates=None):
    """Fit every candidate family; return fits sorted best-first.

    ``perspective`` is excluded by default (angles near 90 degrees are
    outside its domain and it is not a fisheye).
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    if candidates is None:
        candidates = [n for n in LENS_MODELS if n != "perspective"]
    fits = []
    for name in candidates:
        try:
            f = fit_focal(thetas, radii, name)
        except CalibrationError:
            continue
        fits.append(ModelFit(name, f, _rms(name, f, thetas, radii)))
    if not fits:
        raise CalibrationError("no candidate model could fit the observations")
    fits.sort(key=lambda m: m.rms_residual)
    return fits


@dataclass(frozen=True)
class CalibrationResult:
    """Full calibration output."""

    model: str
    focal: float
    cx: float
    cy: float
    rms_residual: float
    fits: tuple

    def lens(self) -> LensModel:
        return make_lens(self.model, self.focal)


def calibrate(blob_points, blob_angles, center_guess, refine_center: bool = True,
              candidates=None) -> CalibrationResult:
    """Calibrate model + focal (+ centre) from marker correspondences.

    Parameters
    ----------
    blob_points:
        ``(N, 2)`` detected marker pixel positions ``(x, y)``.
    blob_angles:
        Known field angle (radians) of each marker, from target
        geometry.
    center_guess:
        Initial ``(cx, cy)``.
    refine_center:
        If true, run a Nelder–Mead search over the centre with the
        closed-form focal fit nested inside.
    """
    pts = np.asarray(blob_points, dtype=np.float64)
    thetas = np.asarray(blob_angles, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] != thetas.size:
        raise CalibrationError(
            f"blob_points must be (N, 2) matching blob_angles, got {pts.shape}/{thetas.shape}")
    if pts.shape[0] < 3:
        raise CalibrationError(f"need at least 3 markers, got {pts.shape[0]}")

    def best_rms(center):
        radii = np.hypot(pts[:, 0] - center[0], pts[:, 1] - center[1])
        try:
            fits = select_model(thetas, radii, candidates)
        except CalibrationError:
            return np.inf, None
        return fits[0].rms_residual, fits

    if refine_center:
        result = optimize.minimize(
            lambda c: best_rms(c)[0], np.asarray(center_guess, dtype=np.float64),
            method="Nelder-Mead", options={"xatol": 1e-3, "fatol": 1e-9, "maxiter": 200},
        )
        center = result.x
    else:
        center = np.asarray(center_guess, dtype=np.float64)

    rms, fits = best_rms(center)
    if fits is None:
        raise CalibrationError("calibration failed: no model fits at the solved centre")
    best = fits[0]
    return CalibrationResult(
        model=best.model, focal=best.focal,
        cx=float(center[0]), cy=float(center[1]),
        rms_residual=best.rms_residual, fits=tuple(fits),
    )
