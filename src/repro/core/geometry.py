"""Low-level geometric helpers shared by the lens and mapping modules.

Everything in this module is dtype-stable, vectorized numpy with no
Python-level loops over pixels; scalar inputs come back as scalars and
array inputs come back as arrays of the same shape (standard ufunc-like
behaviour).  Angles are radians throughout the library.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError

__all__ = [
    "pixel_grid",
    "radius_from_center",
    "polar_from_cartesian",
    "cartesian_from_polar",
    "rotation_matrix_ypr",
    "rays_from_pixels",
    "angles_from_rays",
    "normalize_rows",
    "deg2rad",
    "rad2deg",
]


def deg2rad(deg):
    """Degrees to radians (thin alias kept for API symmetry)."""
    return np.deg2rad(deg)


def rad2deg(rad):
    """Radians to degrees (thin alias kept for API symmetry)."""
    return np.rad2deg(rad)


def pixel_grid(height: int, width: int, dtype=np.float64):
    """Return ``(xs, ys)`` coordinate arrays for an image of the given size.

    ``xs[i, j] == j`` and ``ys[i, j] == i``; pixel centres sit on integer
    coordinates (the convention used by the whole library: the centre of
    the top-left pixel is ``(0, 0)``).

    Parameters
    ----------
    height, width:
        Image size in pixels; must both be positive.
    dtype:
        Floating dtype of the returned arrays.

    Returns
    -------
    tuple of ndarray
        Two ``(height, width)`` arrays ``(xs, ys)``.
    """
    if height <= 0 or width <= 0:
        raise GeometryError(f"pixel_grid requires positive size, got {height}x{width}")
    ys, xs = np.meshgrid(
        np.arange(height, dtype=dtype),
        np.arange(width, dtype=dtype),
        indexing="ij",
    )
    return xs, ys


def radius_from_center(xs, ys, cx: float, cy: float):
    """Euclidean distance of each ``(x, y)`` point from centre ``(cx, cy)``."""
    dx = np.asarray(xs, dtype=np.float64) - cx
    dy = np.asarray(ys, dtype=np.float64) - cy
    return np.hypot(dx, dy)


def polar_from_cartesian(xs, ys, cx: float = 0.0, cy: float = 0.0):
    """Convert image coordinates to polar ``(r, phi)`` about a centre.

    ``phi`` is ``atan2(y - cy, x - cx)`` in ``(-pi, pi]``.
    """
    dx = np.asarray(xs, dtype=np.float64) - cx
    dy = np.asarray(ys, dtype=np.float64) - cy
    return np.hypot(dx, dy), np.arctan2(dy, dx)


def cartesian_from_polar(r, phi, cx: float = 0.0, cy: float = 0.0):
    """Inverse of :func:`polar_from_cartesian`."""
    r = np.asarray(r, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    return cx + r * np.cos(phi), cy + r * np.sin(phi)


def rotation_matrix_ypr(yaw: float = 0.0, pitch: float = 0.0, roll: float = 0.0):
    """Build a 3x3 rotation matrix from yaw/pitch/roll (radians).

    Axes follow the camera convention used throughout the library:
    ``+x`` right, ``+y`` down, ``+z`` forward (into the scene).  Yaw
    rotates about ``y`` (pan left/right), pitch about ``x`` (tilt
    up/down), roll about ``z``.  The combined matrix is
    ``R = Rz(roll) @ Rx(pitch) @ Ry(yaw)``.
    """
    cy_, sy = np.cos(yaw), np.sin(yaw)
    cx_, sx = np.cos(pitch), np.sin(pitch)
    cz, sz = np.cos(roll), np.sin(roll)
    ry = np.array([[cy_, 0.0, sy], [0.0, 1.0, 0.0], [-sy, 0.0, cy_]])
    rx = np.array([[1.0, 0.0, 0.0], [0.0, cx_, -sx], [0.0, sx, cx_]])
    rz = np.array([[cz, -sz, 0.0], [sz, cz, 0.0], [0.0, 0.0, 1.0]])
    return rz @ rx @ ry


def rays_from_pixels(xs, ys, fx: float, fy: float, cx: float, cy: float,
                     rotation=None):
    """Back-project pixels of a *perspective* view into unit rays.

    Parameters
    ----------
    xs, ys:
        Pixel coordinates (any matching shapes).
    fx, fy:
        Focal lengths in pixels; must be positive.
    cx, cy:
        Principal point in pixels.
    rotation:
        Optional 3x3 rotation applied to the rays (camera-to-world);
        use :func:`rotation_matrix_ypr` for pan/tilt/roll view windows.

    Returns
    -------
    ndarray
        Array of shape ``xs.shape + (3,)`` holding unit direction
        vectors ``(dx, dy, dz)``.
    """
    if fx <= 0 or fy <= 0:
        raise GeometryError(f"focal lengths must be positive, got fx={fx}, fy={fy}")
    x = (np.asarray(xs, dtype=np.float64) - cx) / fx
    y = (np.asarray(ys, dtype=np.float64) - cy) / fy
    z = np.ones_like(x)
    rays = np.stack([x, y, z], axis=-1)
    if rotation is not None:
        rotation = np.asarray(rotation, dtype=np.float64)
        if rotation.shape != (3, 3):
            raise GeometryError(f"rotation must be 3x3, got {rotation.shape}")
        rays = rays @ rotation.T
    return normalize_rows(rays)


def angles_from_rays(rays):
    """Split unit rays into ``(theta, phi)``.

    ``theta`` is the angle from the optical axis (``+z``), in
    ``[0, pi]``; ``phi`` is the azimuth in the image plane,
    ``atan2(dy, dx)``.
    """
    rays = np.asarray(rays, dtype=np.float64)
    if rays.shape[-1] != 3:
        raise GeometryError(f"rays must have a trailing dimension of 3, got {rays.shape}")
    dx, dy, dz = rays[..., 0], rays[..., 1], rays[..., 2]
    theta = np.arctan2(np.hypot(dx, dy), dz)
    phi = np.arctan2(dy, dx)
    return theta, phi


def normalize_rows(vectors):
    """Normalize vectors along the last axis, leaving zero vectors zero."""
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    # Avoid a divide-by-zero warning for degenerate rows; they stay zero.
    safe = np.where(norms == 0.0, 1.0, norms)
    return vectors / safe
