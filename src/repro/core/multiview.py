"""Multi-view composition: several virtual cameras, one output mosaic.

The surveillance deployment the paper motivates rarely shows a single
corrected view: the standard UI is a *quad* — e.g. one wide overview
plus three virtual PTZ close-ups — composed into a single output frame
that feeds one encoder.  Because every sub-view is just a backward map
into the same fisheye source, the whole mosaic collapses into **one**
coordinate field (and hence one LUT, one kernel launch, one DMA plan):
the composition is free at runtime.

:class:`ViewSpec` describes one pane; :func:`compose_views` stitches
panes into a single :class:`~repro.core.mapping.RemapField`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MappingError
from .intrinsics import CameraIntrinsics, FisheyeIntrinsics
from .lens import LensModel
from .mapping import RemapField, perspective_map

__all__ = ["ViewSpec", "compose_views", "quad_view"]


@dataclass(frozen=True)
class ViewSpec:
    """One pane of a multi-view mosaic.

    Attributes
    ----------
    x0, y0:
        Top-left corner of the pane in the mosaic.
    width, height:
        Pane size in pixels.
    zoom:
        Output focal relative to the resolution-preserving one.
    yaw, pitch, roll:
        Virtual view orientation (radians).
    """

    x0: int
    y0: int
    width: int
    height: int
    zoom: float = 1.0
    yaw: float = 0.0
    pitch: float = 0.0
    roll: float = 0.0

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise MappingError(f"pane size must be positive: {self.width}x{self.height}")
        if self.x0 < 0 or self.y0 < 0:
            raise MappingError(f"pane origin must be non-negative: ({self.x0}, {self.y0})")
        if self.zoom <= 0:
            raise MappingError(f"zoom must be positive, got {self.zoom}")


def compose_views(sensor: FisheyeIntrinsics, lens: LensModel, views,
                  out_width: int, out_height: int) -> RemapField:
    """Build one coordinate field covering a mosaic of virtual views.

    Panes must fit inside the mosaic and must not overlap; mosaic
    pixels not covered by any pane are out-of-FOV (rendered as fill).

    Returns a single :class:`RemapField` — feed it to
    :class:`~repro.core.remap.RemapLUT` / any executor as usual.
    """
    views = list(views)
    if not views:
        raise MappingError("compose_views needs at least one view")
    if out_width <= 0 or out_height <= 0:
        raise MappingError(f"mosaic size must be positive: {out_width}x{out_height}")

    covered = np.zeros((out_height, out_width), dtype=bool)
    map_x = np.full((out_height, out_width), np.nan)
    map_y = np.full((out_height, out_width), np.nan)

    for i, v in enumerate(views):
        if v.x0 + v.width > out_width or v.y0 + v.height > out_height:
            raise MappingError(
                f"view {i} ({v.width}x{v.height} at ({v.x0}, {v.y0})) exceeds "
                f"the {out_width}x{out_height} mosaic")
        region = covered[v.y0:v.y0 + v.height, v.x0:v.x0 + v.width]
        if region.any():
            raise MappingError(f"view {i} overlaps an earlier pane")
        region[:] = True

        focal = float(lens.magnification(1e-4)) * v.zoom
        cam = CameraIntrinsics(
            fx=focal, fy=focal,
            cx=(v.width - 1) / 2.0, cy=(v.height - 1) / 2.0,
            width=v.width, height=v.height)
        sub = perspective_map(sensor, lens, cam,
                              yaw=v.yaw, pitch=v.pitch, roll=v.roll)
        map_x[v.y0:v.y0 + v.height, v.x0:v.x0 + v.width] = sub.map_x
        map_y[v.y0:v.y0 + v.height, v.x0:v.x0 + v.width] = sub.map_y

    return RemapField(map_x, map_y, sensor.width, sensor.height)


def quad_view(sensor: FisheyeIntrinsics, lens: LensModel,
              out_width: int, out_height: int,
              overview_zoom: float = 0.5, detail_zoom: float = 1.5,
              detail_pitch: float = 0.5) -> RemapField:
    """The standard surveillance quad: overview + three PTZ close-ups.

    Top-left pane: wide overview.  The other three panes: zoomed views
    tilted toward azimuths -90/0/+90 degrees.

    ``out_width``/``out_height`` must be even (panes are half-size).
    """
    if out_width % 2 or out_height % 2:
        raise MappingError(
            f"quad mosaic size must be even, got {out_width}x{out_height}")
    hw, hh = out_width // 2, out_height // 2
    views = [
        ViewSpec(0, 0, hw, hh, zoom=overview_zoom),
        ViewSpec(hw, 0, hw, hh, zoom=detail_zoom,
                 yaw=-np.pi / 2 * 0.5, pitch=detail_pitch),
        ViewSpec(0, hh, hw, hh, zoom=detail_zoom, pitch=detail_pitch),
        ViewSpec(hw, hh, hw, hh, zoom=detail_zoom,
                 yaw=np.pi / 2 * 0.5, pitch=detail_pitch),
    ]
    return compose_views(sensor, lens, views, out_width, out_height)
