"""Supersampled remap: anti-aliasing for minifying corrections.

Backward warping with point sampling aliases wherever the map
*minifies* — and every wide-FOV correction minifies toward the
periphery (many source pixels collapse into one output pixel).  The
classic fix, and the optional quality mode of the paper's application,
is output supersampling: evaluate the map on an ``s x s`` sub-pixel
grid and box-average.  Cost grows with ``s**2``; quality is measured
by the F8-style benches.

:func:`supersampled_map` expands a coordinate-field *builder* onto the
sub-pixel grid (exact — no interpolation of the map itself), and
:class:`SupersampledLUT` packages the expanded field behind the same
``apply`` interface as :class:`~repro.core.remap.RemapLUT`, so the
executors and pipeline accept it unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import MappingError
from .mapping import RemapField
from .remap import RemapLUT

__all__ = ["supersample_field", "SupersampledLUT", "minification_map"]


def supersample_field(builder, width: int, height: int, factor: int) -> RemapField:
    """Build a coordinate field on an ``factor``-times denser pixel grid.

    Parameters
    ----------
    builder:
        Callable ``(xs, ys) -> (map_x, map_y, src_width, src_height)``
        evaluating the backward map at arbitrary fractional output
        coordinates.  (Map builders in :mod:`repro.core.mapping` are
        closed-form, so exact evaluation off the integer grid is free —
        this is why supersampling composes with *builders* rather than
        resampling an existing integer-grid field.)
    width, height:
        Output size in real pixels.
    factor:
        Sub-samples per axis (1 = plain sampling).

    Returns
    -------
    RemapField over the ``(height * factor, width * factor)`` sub-grid.
    """
    if factor < 1:
        raise MappingError(f"supersampling factor must be >= 1, got {factor}")
    if width <= 0 or height <= 0:
        raise MappingError(f"output size must be positive: {width}x{height}")
    # sub-pixel centres: pixel i covers [i - 0.5, i + 0.5); its s
    # sub-samples sit at i - 0.5 + (k + 0.5)/s
    offs = (np.arange(factor) + 0.5) / factor - 0.5
    xs = (np.arange(width)[:, None] + offs[None, :]).ravel()
    ys = (np.arange(height)[:, None] + offs[None, :]).ravel()
    gx, gy = np.meshgrid(xs, ys)
    map_x, map_y, sw, sh = builder(gx, gy)
    return RemapField(map_x, map_y, sw, sh)


class SupersampledLUT:
    """Anti-aliased remap: supersample, gather, box-average.

    Drop-in alternative to :class:`~repro.core.remap.RemapLUT` with the
    same ``apply`` signature; ``taps`` and memory scale with
    ``factor**2``.
    """

    def __init__(self, sub_field: RemapField, out_width: int, out_height: int,
                 factor: int, method: str = "bilinear", fill: float = 0.0):
        if factor < 1:
            raise MappingError(f"factor must be >= 1, got {factor}")
        expected = (out_height * factor, out_width * factor)
        if sub_field.shape != expected:
            raise MappingError(
                f"sub-field shape {sub_field.shape} does not match "
                f"{out_width}x{out_height} at factor {factor} (want {expected})")
        self.factor = factor
        self.out_shape = (out_height, out_width)
        self.src_shape = (sub_field.src_height, sub_field.src_width)
        self.fill = float(fill)
        self._lut = RemapLUT(sub_field, method=method, fill=fill)

    @classmethod
    def from_builder(cls, builder, out_width: int, out_height: int,
                     factor: int = 2, method: str = "bilinear",
                     fill: float = 0.0) -> "SupersampledLUT":
        """Build directly from a closed-form map builder."""
        sub = supersample_field(builder, out_width, out_height, factor)
        return cls(sub, out_width, out_height, factor, method=method, fill=fill)

    @property
    def taps(self) -> int:
        """Source gathers per *output* pixel."""
        return self._lut.taps * self.factor * self.factor

    @property
    def nbytes(self) -> int:
        return self._lut.nbytes

    def apply(self, image, out=None):
        """Correct one frame with box-filtered supersampling."""
        image = np.asarray(image)
        sub = self._lut.apply(image)
        s = self.factor
        h, w = self.out_shape
        if sub.ndim == 2:
            pooled = sub.reshape(h, s, w, s).astype(np.float64).mean(axis=(1, 3))
        else:
            pooled = sub.reshape(h, s, w, s, sub.shape[2]).astype(np.float64).mean(axis=(1, 3))
        if np.issubdtype(image.dtype, np.integer):
            info = np.iinfo(image.dtype)
            pooled = np.clip(np.rint(pooled), info.min, info.max)
        result = pooled.astype(image.dtype)
        if out is not None:
            np.copyto(out, result)
            return out
        return result


def minification_map(field: RemapField) -> np.ndarray:
    """Local minification factor of a coordinate field.

    Returns, per output pixel, the linear scale ``sqrt(|det J|)`` of
    the backward map (source pixels consumed per output pixel along
    one axis).  Values > 1 mark regions where point sampling aliases
    — the justification for :class:`SupersampledLUT` and the data for
    the anti-aliasing ablation bench.
    """
    mx = field.map_x
    my = field.map_y
    dxu = np.gradient(mx, axis=1)
    dyu = np.gradient(my, axis=1)
    dxv = np.gradient(mx, axis=0)
    dyv = np.gradient(my, axis=0)
    det = np.abs(dxu * dyv - dxv * dyu)
    with np.errstate(invalid="ignore"):
        return np.sqrt(det)
