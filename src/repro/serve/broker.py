"""Multi-stream correction broker: N streams, one worker fleet.

The ring engine (:mod:`repro.parallel.ring`) corrects exactly one
stream per worker fleet.  Production hosts serve many cameras at once
— the multi-video batch workflows and the real-time multi-feed
constraints in PAPERS.md — so this module multiplexes *sessions* onto
one pool of persistent band workers:

- :class:`StreamBroker` owns the fleet.  Each admitted session gets a
  private ring of ``depth`` shared-memory frame slots; **admission
  control** caps the total slots across sessions at a configurable
  ``slot_budget``, so one host's memory/latency envelope is a
  parameter, not an accident.
- A per-session **feeder thread** decodes frames into free slots —
  when a session's consumer lags, its feeder blocks on its own free
  list (**per-stream backpressure**) without slowing anyone else.
- A single **dispatcher thread** drains the sessions' band queues in
  **weighted round-robin** order (:class:`_FairScheduler`): every
  scheduling turn a stream may dispatch up to ``weight`` band items,
  so a stalled or slow stream cannot starve the others, and priority
  streams get proportionally more of the fleet.
- Workers attach a session's slots and LUT lazily, **cached by
  calibration key** — sessions sharing a calibration share one
  :class:`~repro.parallel.shmseg.SharedTables` publication (fed from
  one single-flight :class:`~repro.core.lutcache.LUTCache`), attached
  once per worker.
- A **collector thread** routes band completions back to sessions;
  each :class:`StreamSession` yields its frames **strictly in input
  order** no matter how the fleet interleaved the bands.

Telemetry: next to the aggregate ``stream.*`` series the broker emits
per-stream labelled series (``stream.frames{stream="cam0"}``,
``frame.e2e_latency_seconds{stream="cam0"}``,
``stream.deadline_miss{stream="cam0"}`` — see
:func:`repro.obs.export.labeled`) plus fleet-level ``serve.*``
counters/gauges, all scrapeable live from a
:class:`~repro.obs.live.MetricsServer`.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import queue as _queue
import threading
import time
from collections import deque

import numpy as np

from ..core.image import Frame
from ..core.kernel_tiers import resolve_tier
from ..core.lutcache import LUTCache
from ..errors import AdmissionError, ScheduleError, StreamError
from ..obs.export import labeled
from ..obs.logsetup import get_logger
from ..obs.telemetry import get_telemetry
from ..parallel.ring import plan_bands

__all__ = ["StreamBroker", "StreamSession", "DEFAULT_SLOT_BUDGET"]

log = get_logger(__name__)

#: default total slot budget (the admission-control cap): the sum of
#: every admitted session's ``depth`` may not exceed it.
DEFAULT_SLOT_BUDGET = 16

#: queue poll interval (seconds) shared by all broker threads.
_POLL_S = 0.2


# ----------------------------------------------------------------------
# fair scheduling
# ----------------------------------------------------------------------
class _FairScheduler:
    """Weighted round-robin over per-stream band deques.

    Pure data structure (caller provides locking): ``push`` appends a
    work item to a stream's deque, ``pop`` returns the next item under
    weighted round-robin — the cursor stream may dispatch up to
    ``weight`` consecutive items before the turn passes on, so with
    weights 2:1 a backlogged pair of streams dispatches bands 2:1.
    """

    def __init__(self):
        self._queues: dict = {}
        self._weights: dict = {}
        self._order: list = []
        self._cursor = 0
        self._credit = 0

    def add_stream(self, sid, weight: int = 1) -> None:
        if weight < 1:
            raise ScheduleError(f"stream weight must be >= 1, got {weight}")
        self._queues[sid] = deque()
        self._weights[sid] = int(weight)
        self._order.append(sid)

    def remove_stream(self, sid) -> None:
        if sid not in self._queues:
            return
        pos = self._order.index(sid)
        del self._order[pos]
        del self._queues[sid]
        del self._weights[sid]
        if pos < self._cursor:
            self._cursor -= 1
        if self._cursor >= len(self._order):
            self._cursor = 0
        self._credit = 0

    def push(self, sid, item) -> None:
        self._queues[sid].append(item)

    def pop(self):
        """Next ``(sid, item)`` under weighted round-robin, or ``None``."""
        n = len(self._order)
        for _ in range(n + 1):
            if not self._order:
                return None
            if self._cursor >= len(self._order):
                self._cursor = 0
            sid = self._order[self._cursor]
            q = self._queues[sid]
            if q and self._credit < self._weights[sid]:
                self._credit += 1
                return sid, q.popleft()
            self._cursor += 1
            self._credit = 0
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _serve_worker_main(rank, task_q, done_q, ctrl_q, telemetry_enabled):
    """Fleet worker: pull ``(sid, seq, slot, plane, row0, row1, desc)``.

    Unlike the single-stream ring worker, attachments are *lazy and
    cached*: the first band of a session attaches its slots (and its
    LUT tables — cached by calibration key, so sessions sharing one
    calibration attach the tables once).  Planar (yuv420/nv12)
    sessions publish a chroma LUT next to the luma one; the worker
    detects it from the table metadata, indexes both slot views and
    LUTs by the band's ``plane``, and labels its spans with the
    publication's plane names (``y``/``u``/``v`` or ``y``/``uv``).
    ``ctrl_q`` broadcasts ``("forget", sid)`` when a session closes so
    the worker drops its mappings; a band whose segments are already
    gone posts ``rows=-1`` and the collector decides whether anyone
    still cares.
    """
    from ..parallel.shmseg import (attach_any_slot, attach_planar_tables,
                                   attach_tables, init_worker_telemetry,
                                   worker_delta)
    from ..video.yuv import plane_names_for

    init_worker_telemetry(telemetry_enabled)
    luts: dict = {}      # lut_key -> (segments, per-plane lut tuple, names)
    sessions: dict = {}  # sid -> (segments, slots, plane luts, label, names)
    track = f"serve-worker-{rank}"

    def forget(sid):
        entry = sessions.pop(sid, None)
        if entry is None:
            return
        for shm in entry[0]:
            try:
                shm.close()
            except Exception:  # pragma: no cover - already closed
                pass

    try:
        while True:
            while True:  # drain control messages first
                try:
                    kind, sid = ctrl_q.get_nowait()
                except _queue.Empty:
                    break
                if kind == "forget":
                    forget(sid)
            try:
                item = task_q.get(timeout=_POLL_S)
            except _queue.Empty:
                continue
            if item is None:
                break
            sid, seq, slot_idx, plane, row0, row1, desc = item
            tel = get_telemetry()
            wall0 = time.time() if tel.enabled else 0.0
            t0 = time.perf_counter() if tel.enabled else 0.0
            rows = -1
            delta = None
            planar = False
            lut = None
            try:
                entry = sessions.get(sid)
                if entry is None:
                    lut_key, label, table_spec, table_meta, slot_spec = desc
                    cached = luts.get(lut_key)
                    if cached is None:
                        meta = dict(table_meta)
                        if "chroma" in meta:
                            segs, plane_luts = attach_planar_tables(
                                dict(table_spec), meta)
                            names = plane_names_for(
                                meta.get("pixfmt", "yuv420"))
                        else:
                            segs, _, one = attach_tables(dict(table_spec),
                                                         meta)
                            plane_luts = (one,)
                            names = ("y",)
                        cached = luts[lut_key] = (segs, plane_luts, names)
                    slots, slot_segs = [], []
                    for spec in slot_spec:
                        segs, srcs, dsts = attach_any_slot(spec)
                        slot_segs += segs
                        slots.append((srcs, dsts))
                    entry = sessions[sid] = (slot_segs, slots, cached[1],
                                             label, cached[2])
                _, slots, plane_luts, label, plane_names = entry
                planar = len(plane_luts) > 1
                srcs, dsts = slots[slot_idx]
                lut = plane_luts[plane]
                lut.apply_rows_into(srcs[plane], row0, row1,
                                    dsts[plane][row0:row1])
                rows = row1 - row0
            except Exception:
                # session torn down under us (or a real kernel fault):
                # report the failed band; the collector ignores it when
                # the session is already gone.
                forget(sid)
            if tel.enabled and rows >= 0:
                dt = time.perf_counter() - t0
                tel.counter("serve.bands").inc()
                tel.counter(f"serve.worker.{rank}.busy_seconds").inc(dt)
                tel.histogram("serve.band_seconds").observe(dt)
                args = {"frame_id": seq, "stream": label,
                        "rows": rows, "tier": lut.tier}
                if planar:
                    args["plane"] = plane_names[plane]
                tel.add_span("serve.band", wall0, dt, cat="serve", tid=track,
                             args=args)
                delta = worker_delta()
            done_q.put((sid, seq, slot_idx, rows, rank, delta))
    finally:
        for sid in list(sessions):
            forget(sid)
        for segs, _, _ in luts.values():
            for shm in segs:
                try:
                    shm.close()
                except Exception:  # pragma: no cover
                    pass


# ----------------------------------------------------------------------
# session
# ----------------------------------------------------------------------
class StreamSession:
    """One admitted stream: iterate it for strictly in-order frames.

    Created by :meth:`StreamBroker.open` — not directly.  The session
    is an iterator (and context manager); ``close()`` releases its
    slots back to the broker's budget immediately.  With ``copy=True``
    (the default — the safe mode when several threads drain several
    sessions) every yielded frame owns its data; ``copy=False`` yields
    zero-copy views of the session's slot buffers that are recycled
    when the consumer advances.
    """

    def __init__(self, broker: "StreamBroker", sid: int, name: str,
                 source, depth: int, weight: int, copy: bool,
                 deadline_s, bands, slots, desc, empty: bool = False,
                 pixfmt: str = "rgb"):
        self.broker = broker
        self.sid = sid
        self.name = name
        self.depth = depth
        self.weight = weight
        self.copy = copy
        self.deadline_s = deadline_s
        self.delivered = 0
        self.pixfmt = pixfmt
        self._source = source
        self._bands = bands
        self._slots = slots
        self._desc = desc
        self._planar = bool(slots) and hasattr(slots[0], "plane_shapes")
        if self._planar:
            from ..video.yuv import NV12Frame, YUV420Frame
            self._frame_cls = NV12Frame if pixfmt == "nv12" else YUV420Frame
        else:
            self._frame_cls = None
        self._cond = threading.Condition()
        self._free: _queue.Queue = _queue.Queue()
        for i in range(len(slots)):
            self._free.put(i)
        self._pending = [0] * len(slots)      # outstanding bands per slot
        self._slot_items = [None] * len(slots)
        self._completed: dict = {}            # seq -> slot
        self._decode_t0: dict = {}            # seq -> decode wall time
        self._produced = 0 if empty else None
        self._error: BaseException | None = None
        self._closed = False
        self._next_seq = 0
        self._held_slot = None
        self._feeder = None
        self._empty = empty
        self._exhausted = False

    def _start(self) -> None:
        """Launch the feeder — only after the broker has registered the
        session (scheduler + routing map), else early bands are lost."""
        if self._empty or self._feeder is not None:
            return
        self._feeder = threading.Thread(
            target=self._feed, name=f"serve-feed-{self.name}", daemon=True)
        self._feeder.start()

    # -- feeder thread -------------------------------------------------
    def _feed(self):
        broker = self.broker
        seq = 0
        it = iter(self._source)
        try:
            while not self._closed and not broker._abort.is_set():
                try:
                    item = next(it)
                except StopIteration:
                    break
                t_dec = time.time()
                slot0 = self._slots[0]
                if self._planar:
                    if not isinstance(item, self._frame_cls):
                        raise ScheduleError(
                            f"planar stream {self.name!r} expects "
                            f"{self._frame_cls.__name__} items, "
                            f"got {type(item).__name__}")
                    if (item.y.shape != slot0.plane_shapes[0]
                            or item.y.dtype != slot0.dtype):
                        raise ScheduleError(
                            f"stream {self.name!r} frame "
                            f"{item.y.shape}/{item.y.dtype} does not match "
                            f"session geometry "
                            f"{slot0.plane_shapes[0]}/{slot0.dtype}")
                else:
                    data = (item.data if isinstance(item, Frame)
                            else np.asarray(item))
                    if (data.shape != slot0.frame_shape
                            or data.dtype != slot0.dtype):
                        raise ScheduleError(
                            f"stream {self.name!r} frame "
                            f"{data.shape}/{data.dtype} "
                            f"does not match session geometry "
                            f"{slot0.frame_shape}/{slot0.dtype}")
                while True:  # per-stream backpressure: block on OUR ring
                    try:
                        slot = self._free.get(timeout=_POLL_S)
                        break
                    except _queue.Empty:
                        if self._closed or broker._abort.is_set():
                            return
                if self._planar:
                    for view, plane in zip(self._slots[slot].src_views,
                                           item.planes):
                        np.copyto(view, plane)
                else:
                    np.copyto(self._slots[slot].src_view, data)
                with self._cond:
                    self._pending[slot] = len(self._bands)
                    self._slot_items[slot] = item if isinstance(item, Frame) else None
                    self._decode_t0[seq] = t_dec
                broker._push_bands(
                    self.sid,
                    [(seq, slot, p, r0, r1) for p, r0, r1 in self._bands])
                seq += 1
        except BaseException as exc:  # noqa: BLE001 - re-raised by consumer
            self._fail(exc)
        finally:
            close = getattr(it, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - source cleanup
                    pass
            with self._cond:
                if self._produced is None:
                    self._produced = seq
                self._cond.notify_all()

    # -- collector callbacks -------------------------------------------
    def _band_done(self, seq, slot):
        with self._cond:
            if self._closed:
                return
            self._pending[slot] -= 1
            if self._pending[slot] == 0:
                self._completed[seq] = slot
                self._cond.notify_all()

    def _fail(self, exc: BaseException):
        with self._cond:
            if self._error is None:
                self._error = exc
            self._cond.notify_all()

    # -- consumer ------------------------------------------------------
    def __iter__(self):
        return self

    def __next__(self):
        broker = self.broker
        tel = broker._tel
        with self._cond:
            if self._exhausted:
                raise StopIteration
            if self._held_slot is not None:
                # consumer advanced past the zero-copy view: recycle
                self._recycle(self._held_slot)
                self._held_slot = None
            while True:
                if self._error is not None:
                    raise self._error
                if broker._error is not None:
                    raise broker._error
                if self._closed:
                    # slots are already released: never deliver from them
                    raise StreamError(
                        f"stream session {self.name!r} was closed")
                if self._next_seq in self._completed:
                    break
                if (self._produced is not None
                        and self._next_seq >= self._produced):
                    break
                self._cond.wait(_POLL_S)
            exhausted = self._next_seq not in self._completed
            if exhausted:
                self._exhausted = True
            if not exhausted:
                slot = self._completed.pop(self._next_seq)
                if self._planar:
                    result = self._frame_cls(*self._slots[slot].dst_views)
                else:
                    result = self._slots[slot].dst_view
                item = self._slot_items[slot]
                if self.copy:
                    result = result.copy()
                    self._recycle(slot)
                else:
                    self._held_slot = slot
                t_dec0 = self._decode_t0.pop(self._next_seq, None)
                self._next_seq += 1
                self.delivered += 1
        if exhausted:
            self.close()
            raise StopIteration
        if t_dec0 is not None:
            e2e = time.time() - t_dec0
            miss = self.deadline_s is not None and e2e > self.deadline_s
            if tel.enabled:
                tel.counter("stream.frames").inc()
                tel.counter(labeled("stream.frames", stream=self.name)).inc()
                tel.histogram("frame.e2e_latency_seconds").observe(e2e)
                tel.histogram(labeled("frame.e2e_latency_seconds",
                                      stream=self.name)).observe(e2e)
                if miss:
                    tel.counter("stream.deadline_miss").inc()
                    tel.counter(labeled("stream.deadline_miss",
                                        stream=self.name)).inc()
        return item.with_data(result) if item is not None else result

    def _recycle(self, slot):
        self._slot_items[slot] = None
        self._free.put(slot)

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release this session's slots back to the budget (idempotent).

        In-flight bands finish against unlinked (harmless) segments;
        workers are told to drop their cached mappings.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if self._held_slot is not None:
                self._recycle(self._held_slot)
                self._held_slot = None
            self._cond.notify_all()
        if self._feeder is not None and self._feeder is not threading.current_thread():
            self._feeder.join(timeout=2.0)
        self.broker._session_closed(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def stats(self) -> dict:
        return {
            "name": self.name,
            "delivered": self.delivered,
            "depth": self.depth,
            "weight": self.weight,
            "closed": self._closed,
        }


# ----------------------------------------------------------------------
# broker
# ----------------------------------------------------------------------
class StreamBroker:
    """Admission-controlled multi-stream front end over one worker fleet.

    Parameters
    ----------
    workers:
        Persistent worker-process count shared by every session.
    slot_budget:
        Total shared-memory frame slots across all admitted sessions
        (each session takes ``depth`` of them for its lifetime);
        :meth:`open` raises :class:`~repro.errors.AdmissionError` when
        the budget cannot cover another session.
    schedule, chunk:
        Band-granularity policy applied per session (see
        :func:`repro.parallel.ring.plan_bands`).
    context:
        Multiprocessing start method (``fork`` default).
    lut_cache:
        Optional shared :class:`~repro.core.lutcache.LUTCache`; one is
        created when omitted.  Sessions opened against the same
        calibration (field + build parameters + kernel tier) share one
        built LUT *and* one shared-memory table publication.
    max_inflight_bands:
        Cap on dispatched-but-uncompleted band items (default
        ``4 * workers``); keeps the fleet queue short so round-robin
        fairness acts at band granularity instead of deep in a FIFO.

    Telemetry is captured at construction time
    (:func:`~repro.obs.telemetry.get_telemetry`), as worker processes
    fork here — enable/scope a registry *before* building the broker.
    """

    def __init__(self, workers: int = 2, slot_budget: int = DEFAULT_SLOT_BUDGET,
                 schedule: str = "dynamic", chunk: int | None = None,
                 context: str = "fork", lut_cache: LUTCache | None = None,
                 max_inflight_bands: int | None = None):
        if workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {workers}")
        if slot_budget < 1:
            raise ScheduleError(f"slot_budget must be >= 1, got {slot_budget}")
        if max_inflight_bands is not None and max_inflight_bands < 1:
            raise ScheduleError(
                f"max_inflight_bands must be >= 1, got {max_inflight_bands}")
        self.workers = workers
        self.slot_budget = slot_budget
        self.schedule = schedule
        self.chunk = chunk
        self.lut_cache = lut_cache if lut_cache is not None else LUTCache()
        self.sessions_admitted = 0
        self.admission_rejects = 0
        self._tel = get_telemetry()
        self._lock = threading.Lock()
        self._sessions: dict = {}          # sid -> StreamSession
        self._tables: dict = {}            # lut_key -> (SharedTables, lut)
        self._slots_used = 0
        self._sid_gen = itertools.count()
        self._error: BaseException | None = None
        self._closed = False
        self._abort = threading.Event()
        self._sched = _FairScheduler()
        self._sched_cond = threading.Condition()
        self._inflight_sem = threading.Semaphore(
            max_inflight_bands if max_inflight_bands is not None
            else 4 * workers)

        from ..parallel.shmseg import ensure_resource_tracker
        ensure_resource_tracker()  # workers must inherit ONE tracker
        ctx = mp.get_context(context)
        self._task_q = ctx.Queue()
        self._done_q = ctx.Queue()
        self._ctrl_qs = [ctx.Queue() for _ in range(workers)]
        self._tel.gauge("serve.workers").set(workers)
        self._tel.gauge("serve.slot_budget").set(slot_budget)
        log.debug("starting %d shared serve workers (%s, budget %d slots)",
                  workers, context, slot_budget)
        self._procs = []
        for rank in range(workers):
            p = ctx.Process(
                target=_serve_worker_main,
                args=(rank, self._task_q, self._done_q, self._ctrl_qs[rank],
                      self._tel.enabled),
                daemon=True, name=f"serve-worker-{rank}")
            p.start()
            self._procs.append(p)
        self._dispatcher = threading.Thread(
            target=self._dispatch, name="serve-dispatch", daemon=True)
        self._collector = threading.Thread(
            target=self._collect, name="serve-collect", daemon=True)
        self._dispatcher.start()
        self._collector.start()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def open(self, frames, field, *, name: str | None = None,
             method: str = "bilinear", border: str = "constant",
             fill: float = 0.0, kernel: str = "numpy", depth: int = 2,
             weight: int = 1, copy: bool = True,
             deadline_s: float | None = None,
             pixfmt: str = "rgb",
             out_size: tuple | None = None) -> StreamSession:
        """Admit a stream session; raises
        :class:`~repro.errors.AdmissionError` when ``depth`` slots do
        not fit the remaining budget.

        The first frame is pulled eagerly to size the session's slots
        (like :meth:`RingEngine.for_stream`), then corrected like the
        rest.  ``weight`` sets the session's share of the fleet under
        backlog (weighted round-robin); ``deadline_s`` arms the
        per-frame latency SLO counted by
        ``stream.deadline_miss{stream="<name>"}``.

        ``pixfmt="yuv420"`` admits a planar session: ``frames`` must
        yield :class:`~repro.video.yuv.YUV420Frame` items whose luma
        geometry matches ``field``; a half-resolution chroma LUT is
        derived through the same shared
        :class:`~repro.core.lutcache.LUTCache`, every frame is
        scheduled as per-plane bands over the fleet, and the session
        yields corrected :class:`YUV420Frame`\\ s with no RGB
        conversion anywhere on the path.  ``pixfmt="nv12"`` is the
        same planar pipeline over
        :class:`~repro.video.yuv.NV12Frame` items — the interleaved
        UV plane runs as one 2-channel band set (plane 1) against the
        same half-resolution chroma tables.

        ``out_size=(width, height)`` delivers at a smaller size
        through a **fused** correct+downscale table: the area-style
        downscale map is composed with ``field`` (per plane on planar
        sessions) via :meth:`~repro.core.lutcache.LUTCache
        .get_composed`, so every frame pays one gather pass whose
        traffic scales with the delivered size, and concurrent opens
        of the same composition build the table once.
        """
        from ..parallel.shmseg import (FrameSegments, PlanarFrameSegments,
                                       SharedTables)

        if depth < 1:
            raise ScheduleError(f"depth must be >= 1, got {depth}")
        if pixfmt not in ("rgb", "yuv420", "nv12"):
            raise ScheduleError(
                f"unknown pixfmt {pixfmt!r}; known: rgb, yuv420, nv12")
        planar = pixfmt in ("yuv420", "nv12")
        if out_size is not None:
            ow_, oh_ = int(out_size[0]), int(out_size[1])
            if ow_ < 2 or oh_ < 2:
                raise ScheduleError(
                    f"out_size must be at least 2x2, got {ow_}x{oh_}")
            if planar and (ow_ % 2 or oh_ % 2):
                raise ScheduleError(
                    f"planar out_size must be even, got {ow_}x{oh_}")
        tier = resolve_tier(kernel)
        with self._lock:
            if self._closed:
                raise ScheduleError("stream broker already closed")
            if self._error is not None:
                raise self._error
            sid = next(self._sid_gen)
            if name is None:
                name = f"stream-{sid}"
            if self._slots_used + depth > self.slot_budget:
                self.admission_rejects += 1
                self._tel.counter("serve.admission_rejects").inc()
                raise AdmissionError(
                    f"cannot admit stream {name!r}: needs {depth} slots but "
                    f"only {self.slot_budget - self._slots_used} of "
                    f"{self.slot_budget} remain "
                    f"({len(self._sessions)} active sessions)")
            self._slots_used += depth

        session = None
        try:
            # single-flight shared build: concurrent opens on one
            # calibration build (and publish) exactly once
            chroma_lut = None
            if out_size is not None:
                from ..core.compose import downscale_field
                fh, fw = field.shape
                # prefilter=False: the streaming path always runs the
                # plain 4-tap fused table (exact 2x2 box at 2:1, the
                # headline 4K->1080p case; see docs/kernel.md).
                outer = downscale_field(ow_, oh_, fw, fh, prefilter=False)
                lut = self.lut_cache.get_composed(
                    outer, field, method=method, border=border, fill=fill)
                if planar:
                    from ..core.mapping import chroma_half_field
                    outer_c = downscale_field(ow_ // 2, oh_ // 2,
                                              fw // 2, fh // 2,
                                              prefilter=False)
                    chroma_lut = self.lut_cache.get_composed(
                        outer_c, chroma_half_field(field),
                        method="bilinear", border=border, fill=128.0)
                if tier != "numpy":
                    lut = lut.with_tier(tier)
                    if chroma_lut is not None:
                        chroma_lut = chroma_lut.with_tier(tier)
            elif planar:
                from ..video.yuv import YUVCorrector
                corr = YUVCorrector.from_field(
                    field, method=method, border=border, fill=fill,
                    lut_cache=self.lut_cache, kernel=kernel)
                lut, chroma_lut = corr.luma_lut, corr.chroma_lut
            else:
                lut = self.lut_cache.get(field, method=method, border=border,
                                         fill=fill)
                if tier != "numpy":
                    lut = lut.with_tier(tier)
            lut_key = (self.lut_cache.key_for(field, method, border, fill)
                       + f"|{tier}" + (f"|{pixfmt}" if planar else "")
                       + (f"|fused{ow_}x{oh_}" if out_size is not None
                          else ""))
            it = iter(frames)
            try:
                first = next(it)
            except StopIteration:
                first = None
            if first is None:
                session = StreamSession(self, sid, name, iter(()), depth,
                                        weight, copy, deadline_s,
                                        bands=[], slots=[], desc=None,
                                        empty=True, pixfmt=pixfmt)
            elif planar:
                from ..video.yuv import NV12Frame, YUV420Frame
                frame_cls = NV12Frame if pixfmt == "nv12" else YUV420Frame
                if not isinstance(first, frame_cls):
                    raise ScheduleError(
                        f"planar stream {name!r} expects "
                        f"{frame_cls.__name__} items, "
                        f"got {type(first).__name__}")
                if first.y.shape != lut.src_shape:
                    raise ScheduleError(
                        f"stream {name!r} luma shape {first.y.shape} does "
                        f"not match LUT source {lut.src_shape}")
                oh, ow = lut.out_shape
                with self._lock:
                    shared = self._tables.get(lut_key)
                    if shared is None:
                        shared = self._tables[lut_key] = (
                            SharedTables(lut, chroma=chroma_lut,
                                         pixfmt=pixfmt), lut)
                tables = shared[0]
                slots = [PlanarFrameSegments(
                            frame_cls.plane_shapes(*first.y.shape),
                            first.y.dtype,
                            frame_cls.plane_shapes(oh, ow))
                         for _ in range(depth)]
                cchunk = (None if self.chunk is None
                          else max(1, self.chunk // 2))
                chroma_planes = (1,) if pixfmt == "nv12" else (1, 2)
                bands = ([(0, r0, r1) for r0, r1 in
                          plan_bands(oh, self.workers, self.schedule,
                                     self.chunk)]
                         + [(p, r0, r1) for p in chroma_planes for r0, r1 in
                            plan_bands(oh // 2, self.workers, self.schedule,
                                       cchunk)])
                desc = (lut_key, name,
                        tuple(sorted(tables.spec.items())),
                        tuple(sorted(tables.meta.items())),
                        tuple(s.spec for s in slots))
            else:
                data = (first.data if isinstance(first, Frame)
                        else np.asarray(first))
                if data.shape[:2] != lut.src_shape:
                    raise ScheduleError(
                        f"stream {name!r} frame shape {data.shape} does not "
                        f"match LUT source {lut.src_shape}")
                channels = data.shape[2:] if data.ndim == 3 else ()
                out_shape = lut.out_shape + channels
                with self._lock:
                    shared = self._tables.get(lut_key)
                    if shared is None:
                        shared = self._tables[lut_key] = (SharedTables(lut), lut)
                tables = shared[0]
                slots = [FrameSegments(data.shape, data.dtype, out_shape)
                         for _ in range(depth)]
                bands = [(0, r0, r1) for r0, r1 in
                         plan_bands(lut.out_shape[0], self.workers,
                                    self.schedule, self.chunk)]
                desc = (lut_key, name,
                        tuple(sorted(tables.spec.items())),
                        tuple(sorted(tables.meta.items())),
                        tuple(s.spec for s in slots))
            if session is None:
                session = StreamSession(
                    self, sid, name, itertools.chain([first], it), depth,
                    weight, copy, deadline_s, bands=bands, slots=slots,
                    desc=desc, pixfmt=pixfmt)
        except BaseException:
            with self._lock:
                self._slots_used -= depth
            raise
        with self._lock:
            self._sessions[sid] = session
            self.sessions_admitted += 1
        with self._sched_cond:
            self._sched.add_stream(sid, weight)
        session._start()  # feeder may push bands from here on
        self._tel.gauge("serve.active_streams").set(len(self._sessions))
        self._tel.gauge("serve.slots_used").set(self._slots_used)
        self._tel.counter("serve.sessions").inc()
        log.debug("admitted stream %r (sid %d, depth %d, weight %d): "
                  "%d/%d slots in use",
                  name, sid, depth, weight, self._slots_used, self.slot_budget)
        return session

    # ------------------------------------------------------------------
    # internals: scheduling + collection
    # ------------------------------------------------------------------
    def _push_bands(self, sid, bands) -> None:
        with self._sched_cond:
            if sid not in self._sched._queues:
                return  # session removed while its feeder raced us
            for band in bands:
                self._sched.push(sid, band)
            self._sched_cond.notify_all()

    def _dispatch(self):
        while not self._abort.is_set():
            with self._sched_cond:
                picked = self._sched.pop()
                if picked is None:
                    self._sched_cond.wait(_POLL_S)
                    continue
            sid, (seq, slot, plane, row0, row1) = picked
            while not self._inflight_sem.acquire(timeout=_POLL_S):
                if self._abort.is_set():
                    return
            with self._lock:
                session = self._sessions.get(sid)
            if session is None or session.closed:
                self._inflight_sem.release()
                continue
            try:
                self._task_q.put((sid, seq, slot, plane, row0, row1,
                                  session._desc))
            except Exception:  # pragma: no cover - queue torn down
                self._inflight_sem.release()
                return

    def _collect(self):
        last_live_check = time.monotonic()
        while not self._abort.is_set():
            try:
                sid, seq, slot, rows, rank, delta = self._done_q.get(
                    timeout=_POLL_S)
            except _queue.Empty:
                if time.monotonic() - last_live_check > _POLL_S:
                    self._check_workers()
                    last_live_check = time.monotonic()
                continue
            self._inflight_sem.release()
            if delta and self._tel.enabled:
                self._tel.merge(delta)
            with self._lock:
                session = self._sessions.get(sid)
            if session is None:
                continue  # closed session's stale band: nobody cares
            if rows < 0:
                session._fail(StreamError(
                    f"band ({seq}, slot {slot}) of stream {session.name!r} "
                    f"failed in serve-worker-{rank}"))
                continue
            session._band_done(seq, slot)

    def _check_workers(self):
        for p in self._procs:
            if not p.is_alive():
                exc = StreamError(
                    f"{p.name} died with exit code {p.exitcode}; "
                    f"broker shut down and all shared segments released")
                log.error("%s", exc)
                self._error = exc
                with self._lock:
                    sessions = list(self._sessions.values())
                for s in sessions:
                    s._fail(exc)
                self._abort.set()
                return

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _session_closed(self, session: StreamSession) -> None:
        with self._lock:
            existed = self._sessions.pop(session.sid, None) is not None
            if existed:
                self._slots_used -= session.depth
        if not existed:
            return
        with self._sched_cond:
            self._sched.remove_stream(session.sid)
        for q in self._ctrl_qs:
            try:
                q.put(("forget", session.sid))
            except Exception:  # pragma: no cover - queue torn down
                pass
        for seg in session._slots:
            seg.release()
        self._tel.gauge("serve.active_streams").set(len(self._sessions))
        self._tel.gauge("serve.slots_used").set(self._slots_used)

    @property
    def slots_used(self) -> int:
        with self._lock:
            return self._slots_used

    @property
    def active_streams(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict:
        with self._lock:
            sessions = list(self._sessions.values())
            slots_used = self._slots_used
        return {
            "workers": self.workers,
            "slot_budget": self.slot_budget,
            "slots_used": slots_used,
            "active_streams": len(sessions),
            "sessions_admitted": self.sessions_admitted,
            "admission_rejects": self.admission_rejects,
            "streams": [s.stats() for s in sessions],
            "lut_cache": self.lut_cache.stats(),
        }

    def close(self) -> None:
        """Close every session, stop the fleet, unlink all segments."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            sessions = list(self._sessions.values())
        for s in sessions:
            s.close()
        self._abort.set()
        for t in (self._dispatcher, self._collector):
            t.join(timeout=2.0)
        try:  # drop stale band items so pills are reached promptly
            while True:
                self._task_q.get_nowait()
        except (_queue.Empty, OSError, ValueError):
            pass
        for p in self._procs:
            if p.is_alive():
                try:
                    self._task_q.put(None)
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for q in [self._task_q, self._done_q] + self._ctrl_qs:
            q.cancel_join_thread()
            q.close()
        for tables, _ in self._tables.values():
            tables.release()
        self._tables.clear()
        self._tel.gauge("serve.active_streams").set(0)
        self._tel.gauge("serve.slots_used").set(0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
