"""High-level multi-stream correction service.

:class:`MultiStreamCorrector` wraps a :class:`~repro.serve.broker
.StreamBroker` with the ergonomics of
:func:`~repro.video.stream.corrected_stream`: open sessions against
coordinate fields, optionally expose the live ``/metrics`` surface for
the service's lifetime, and drain several sessions from one loop with
:meth:`~MultiStreamCorrector.merged`.

Typical use — four cameras, one calibration, one fleet::

    with MultiStreamCorrector(workers=4, serve_metrics=9464) as svc:
        sessions = [svc.open_stream(src, field, name=f"cam{i}")
                    for i, src in enumerate(sources)]
        for name, frame in svc.merged(sessions):
            sink(name, frame)
"""

from __future__ import annotations

import queue as _queue
import threading

from ..core.lutcache import LUTCache
from ..obs.telemetry import get_telemetry
from .broker import DEFAULT_SLOT_BUDGET, StreamBroker, StreamSession

__all__ = ["MultiStreamCorrector"]

_DONE = object()


class MultiStreamCorrector:
    """Serve many correction streams from one shared worker fleet.

    Constructor parameters mirror :class:`~repro.serve.broker
    .StreamBroker` (``workers``, ``slot_budget``, ``schedule``,
    ``chunk``, ``context``, ``lut_cache``), plus:

    serve_metrics:
        Live scrape surface for the service's lifetime: an ``int``
        port starts a :class:`~repro.obs.live.MetricsServer` (closed
        with the service); a pre-built server is started if needed but
        left running (caller owns it).  ``None`` serves nothing.

    Like the broker, telemetry is captured at construction — enable or
    scope a registry first if you want per-stream labelled metrics.
    """

    def __init__(self, workers: int = 2,
                 slot_budget: int = DEFAULT_SLOT_BUDGET,
                 schedule: str = "dynamic", chunk: int | None = None,
                 context: str = "fork", lut_cache: LUTCache | None = None,
                 serve_metrics=None):
        tel = get_telemetry()
        self._server = None
        self._own_server = False
        if serve_metrics is not None:
            from ..obs.live import MetricsServer
            if isinstance(serve_metrics, MetricsServer):
                self._server = serve_metrics.start()
            else:
                # pin the active registry: HTTP request threads do not
                # inherit an obs.scoped() context
                self._server = MetricsServer(
                    telemetry=tel if tel.enabled else None,
                    port=int(serve_metrics)).start()
                self._own_server = True
        try:
            self.broker = StreamBroker(workers=workers,
                                       slot_budget=slot_budget,
                                       schedule=schedule, chunk=chunk,
                                       context=context, lut_cache=lut_cache)
        except BaseException:
            if self._own_server:
                self._server.close()
            raise

    # ------------------------------------------------------------------
    @property
    def metrics_url(self) -> str | None:
        """The live ``/metrics`` base URL, when a server is attached."""
        return self._server.url if self._server is not None else None

    def open_stream(self, frames, field, *, name: str | None = None,
                    method: str = "bilinear", border: str = "constant",
                    fill: float = 0.0, kernel: str = "numpy",
                    depth: int = 2, weight: int = 1, copy: bool = True,
                    deadline_s: float | None = None,
                    pixfmt: str = "rgb",
                    out_size: tuple | None = None) -> StreamSession:
        """Admit one stream; see :meth:`StreamBroker.open`.

        ``pixfmt="yuv420"`` opens a planar zero-copy session over
        :class:`~repro.video.yuv.YUV420Frame` items;
        ``pixfmt="nv12"`` the same over
        :class:`~repro.video.yuv.NV12Frame` items.
        ``out_size=(width, height)`` delivers through a fused
        correct+downscale composed table.
        """
        return self.broker.open(frames, field, name=name, method=method,
                                border=border, fill=fill, kernel=kernel,
                                depth=depth, weight=weight, copy=copy,
                                deadline_s=deadline_s, pixfmt=pixfmt,
                                out_size=out_size)

    def merged(self, sessions):
        """Drain several sessions concurrently; yield ``(name, frame)``.

        One pump thread per session feeds a single queue, so a slow
        stream never blocks delivery of the others (order across
        streams is arrival order; order *within* each stream stays
        strict).  The generator owns the drain: on early close it
        closes every session so their slots return to the budget.
        Sessions must use ``copy=True`` (the default) — frames cross
        threads here.
        """
        sessions = list(sessions)
        out: _queue.Queue = _queue.Queue()

        def pump(s: StreamSession):
            try:
                for frame in s:
                    out.put((s.name, frame, None))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                out.put((s.name, None, exc))
            finally:
                out.put((s.name, _DONE, None))

        threads = [threading.Thread(target=pump, args=(s,),
                                    name=f"serve-drain-{s.name}", daemon=True)
                   for s in sessions]
        for t in threads:
            t.start()
        active = len(sessions)
        try:
            while active:
                name, frame, exc = out.get()
                if exc is not None:
                    raise exc
                if frame is _DONE:
                    active -= 1
                    continue
                yield name, frame
        finally:
            for s in sessions:
                s.close()
            for t in threads:
                t.join(timeout=2.0)

    def stats(self) -> dict:
        return self.broker.stats()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the broker (all sessions, the fleet) and any owned
        metrics server (idempotent)."""
        self.broker.close()
        if self._own_server and self._server is not None:
            self._server.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
