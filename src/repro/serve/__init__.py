"""Multi-stream correction service: N streams, one worker fleet.

The production-serving layer on top of the shared-memory streaming
engine: :class:`~repro.serve.broker.StreamBroker` multiplexes admitted
stream sessions onto one pool of persistent band workers with
admission control (slot budget), per-stream backpressure, weighted
round-robin band scheduling, shared-calibration LUT publication and
strict per-stream in-order delivery;
:class:`~repro.serve.service.MultiStreamCorrector` is the high-level
facade (sessions + merged drain + live metrics).  See
``docs/serving.md``.
"""

from .broker import DEFAULT_SLOT_BUDGET, StreamBroker, StreamSession  # noqa: F401
from .service import MultiStreamCorrector  # noqa: F401

__all__ = [
    "DEFAULT_SLOT_BUDGET",
    "StreamBroker",
    "StreamSession",
    "MultiStreamCorrector",
]
