"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``synth``
    Generate a test scene, optionally rendered through a fisheye lens
    (the way this repo substitutes for a physical camera).
``correct``
    Correct a fisheye PGM image to a perspective view.
``calibrate``
    Estimate the lens (family + focal + centre) from a rendered
    circle-grid target and print the fit.
``bench``
    Run evaluation experiments by id (``T1``, ``F1``.. ``A3``, ``all``).
``stream``
    Drive a synthetic camera stream through a correction engine
    (``seq``, ``pipelined`` threads, or the ``ring`` persistent-worker
    shared-memory engine) and report throughput; with ``--trace`` the
    ring engine's decode/remap/deliver overlap is visible per worker.
    ``--serve-metrics PORT`` exposes ``/metrics`` / ``/health`` /
    ``/snapshot`` live while the stream runs; ``--deadline-ms`` and
    ``--stall-timeout`` arm the ring engine's per-frame SLO check and
    stall watchdog.
``serve``
    Multiplex several synthetic camera streams onto one shared
    persistent worker fleet (:mod:`repro.serve`): admission-controlled
    sessions, weighted round-robin band scheduling, one shared LUT
    publication, per-stream labelled metrics on ``--serve-metrics``.
``info``
    Print the platform park (T1) and the library version.
``stats``
    Pretty-print a metrics snapshot written by ``--metrics``, or diff
    two snapshots with ``--diff A.json B.json``.

Every command accepts the global observability flags: ``--metrics
out.json`` / ``--trace out.trace.json`` enable the telemetry registry
for the run and write the JSON snapshot / Chrome ``trace_event`` file
on exit; ``--log-level`` configures the ``repro`` logger.

All commands are plain functions over argparse namespaces so the test
suite drives them in-process via :func:`main`.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__, obs
from .core.intrinsics import FisheyeIntrinsics
from .core.kernel_tiers import KERNEL_CHOICES
from .core.lens import LENS_MODELS, make_lens
from .core.pipeline import FisheyeCorrector
from .errors import ReproError

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _parse_size(value):
    """Parse a ``WIDTHxHEIGHT`` CLI size (e.g. ``1280x720``)."""
    try:
        w, h = value.lower().split("x")
        return int(w), int(h)
    except (ValueError, AttributeError):
        raise argparse.ArgumentTypeError(
            f"expected WIDTHxHEIGHT (e.g. 1280x720), got {value!r}")


def _sensor_for(image, focal, cx=None, cy=None):
    h, w = image.shape[:2]
    if focal is None:
        focal = (min(w, h) / 2.0 - 1.0) / (np.pi / 2.0)
    return FisheyeIntrinsics(
        width=w, height=h,
        cx=(w - 1) / 2.0 if cx is None else cx,
        cy=(h - 1) / 2.0 if cy is None else cy,
        focal=focal,
    )


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_synth(args) -> int:
    from .video import io as vio
    from .video import synth
    from .video.distort import FisheyeRenderer, scene_camera_for_sensor

    generators = {
        "checkerboard": lambda: synth.checkerboard(args.width, args.height,
                                                   square=args.square),
        "circles": lambda: synth.radial_circles(args.width, args.height),
        "urban": lambda: synth.urban(args.width, args.height, seed=args.seed),
        "gradient": lambda: synth.gradient(args.width, args.height),
        "grid": lambda: synth.circle_grid(args.width, args.height)[0],
    }
    image = generators[args.scene]()
    if args.distort:
        sensor = _sensor_for(image, args.focal)
        lens = make_lens(args.model, sensor.focal)
        scene_cam = scene_camera_for_sensor(sensor, lens, args.width, args.height)
        image = FisheyeRenderer(scene_cam, lens, sensor).render(image)
    vio.write_pgm(args.output, image.astype(np.uint8))
    print(f"wrote {args.scene}{' (fisheye-rendered)' if args.distort else ''} "
          f"{args.width}x{args.height} to {args.output}")
    return 0


def cmd_correct(args) -> int:
    from .video import io as vio

    image = vio.read_pgm(args.input)
    sensor = _sensor_for(image, args.focal, args.cx, args.cy)
    lens = make_lens(args.model, sensor.focal)
    out_w = args.out_width or sensor.width
    out_h = args.out_height or sensor.height
    corrector = FisheyeCorrector.for_sensor(
        sensor, lens, out_w, out_h, zoom=args.zoom, method=args.method,
        yaw=np.deg2rad(args.yaw), pitch=np.deg2rad(args.pitch),
        roll=np.deg2rad(args.roll), kernel=args.kernel)
    corrected = corrector.correct(image)
    vio.write_pgm(args.output, corrected)
    print(f"corrected {args.input} -> {args.output} "
          f"({out_w}x{out_h}, {args.model}, zoom {args.zoom}, "
          f"kernel {corrector.kernel}, "
          f"coverage {corrector.coverage():.1%})")
    return 0


def cmd_calibrate(args) -> int:
    from .core.calibration import calibrate, detect_blobs
    from .video import io as vio
    from .video.distort import scene_camera_for_sensor

    image = vio.read_pgm(args.input)
    sensor_guess = _sensor_for(image, None)
    lens_guess = make_lens("equidistant", sensor_guess.focal)
    scene_cam = scene_camera_for_sensor(sensor_guess, lens_guess,
                                        image.shape[1], image.shape[0])
    from .video.synth import circle_grid

    _, scene_points = circle_grid(image.shape[1], image.shape[0],
                                  rings=args.rings, spokes=args.spokes)
    xn, yn = scene_cam.normalize(scene_points[:, 0], scene_points[:, 1])
    true_thetas = np.arctan(np.hypot(xn, yn))

    blobs = detect_blobs(image.astype(float), min_area=2)
    if len(blobs) != len(scene_points):
        print(f"error: detected {len(blobs)} markers, target has "
              f"{len(scene_points)} — is this a rendered circle-grid target "
              f"with matching --rings/--spokes?")
        return 1
    pts = np.array([[b.x, b.y] for b in blobs])
    guess = pts.mean(axis=0)
    order = np.argsort(np.hypot(pts[:, 0] - guess[0], pts[:, 1] - guess[1]))
    result = calibrate(pts[order][1:], np.sort(true_thetas)[1:],
                       center_guess=tuple(guess))
    print(f"model:  {result.model}")
    print(f"focal:  {result.focal:.2f} px")
    print(f"centre: ({result.cx:.2f}, {result.cy:.2f})")
    print(f"rms:    {result.rms_residual:.4f} px")
    for fit in result.fits:
        print(f"  {fit.model:>14}: rms {fit.rms_residual:.4f} px "
              f"(focal {fit.focal:.2f})")
    return 0


def cmd_bench(args) -> int:
    from .bench import EXPERIMENTS, run_experiment

    if args.ids == ["all"]:
        ids = sorted(EXPERIMENTS, key=lambda k: ({"T": 0, "F": 1, "A": 2}[k[0]],
                                                 int(k[1:])))
    else:
        ids = [i.upper() for i in args.ids]
    for exp_id in ids:
        print(run_experiment(exp_id))
        print()
    return 0


def cmd_stream(args) -> int:
    """Run a synthetic camera stream through a correction engine."""
    import time

    from .core.pipeline import StreamStats
    from .video.distort import FisheyeRenderer, scene_camera_for_sensor
    from .video.stream import SyntheticStream
    from .video.synth import urban

    w, h = args.width, args.height
    focal = args.focal or (min(w, h) / 2.0 - 1.0) / (np.pi / 2.0)
    sensor = FisheyeIntrinsics.centered(w, h, focal=focal)
    lens = make_lens(args.model, focal)
    scene_cam = scene_camera_for_sensor(sensor, lens, w, h)
    renderer = FisheyeRenderer(scene_cam, lens, sensor)
    world = urban(int(w * 1.5) + 64, int(h * 1.5) + 64, seed=args.seed)
    source = SyntheticStream(renderer, world, frames=args.frames, step=12)

    out_size = args.out_size
    corrector = FisheyeCorrector.for_sensor(
        sensor, lens, w, h, zoom=args.zoom, method=args.method,
        kernel=args.kernel, out_size=out_size)
    engine = {"seq": "sync"}.get(args.engine, args.engine)
    engine_kwargs = {}
    if engine == "pipelined":
        engine_kwargs = {"depth": args.depth}
    elif engine == "ring":
        engine_kwargs = {"workers": args.workers, "depth": args.depth,
                         "schedule": args.schedule, "context": args.context}
        if args.chunk is not None:
            engine_kwargs["chunk"] = args.chunk
        if args.deadline_ms is not None:
            engine_kwargs["deadline_s"] = args.deadline_ms / 1e3
        if args.stall_timeout is not None:
            engine_kwargs["stall_timeout_s"] = args.stall_timeout

    own_tel = False
    server = None
    tel = obs.get_telemetry()
    stats = StreamStats()
    frames = 0
    try:
        # everything owned by this run — the scrape server and any
        # registry we enabled for it — is torn down in the finally
        # below, whether the stream finishes, raises, or never binds
        if args.serve_metrics is not None:
            if not tel.enabled:
                # the scrape surface needs a live registry even without
                # --metrics/--trace; enable one for the stream's duration
                tel = obs.enable()
                own_tel = True
            server = obs.MetricsServer(telemetry=tel,
                                       port=args.serve_metrics).start()
            print(f"serving metrics on {server.url} "
                  f"(/metrics /health /snapshot)", file=sys.stderr)
        if args.pixfmt in ("yuv420", "nv12"):
            if engine not in ("sync", "ring"):
                print(f"stream: --pixfmt {args.pixfmt} supports --engine "
                      f"seq or ring", file=sys.stderr)
                return 2
            from .video.stream import corrected_stream
            from .video.yuv import to_nv12_stream, to_yuv420_stream
            wrap = (to_nv12_stream if args.pixfmt == "nv12"
                    else to_yuv420_stream)
            it = corrected_stream(
                wrap(source), corrector.field,
                method=args.method, kernel=args.kernel, engine=engine,
                pixfmt=args.pixfmt, out_size=out_size, **engine_kwargs)
        else:
            it = corrector.correct_stream(source, stats=stats, engine=engine,
                                          **engine_kwargs)
        t0 = time.perf_counter()
        for _ in it:
            frames += 1
        wall = time.perf_counter() - t0
        detail = ""
        if engine == "pipelined":
            detail = f" depth={args.depth}"
        elif engine == "ring":
            detail = (f" workers={args.workers} depth={args.depth} "
                      f"schedule={args.schedule}")
        ow, oh = out_size if out_size else (w, h)
        if args.pixfmt in ("yuv420", "nv12"):
            # planar: 1.5 samples per output pixel across the planes
            mpx = frames * (ow * oh * 1.5) / wall / 1e6
        else:
            mpx = stats.mpixels_per_s
        fused_note = f" out={ow}x{oh} fused" if out_size else ""
        print(f"engine={args.engine}{detail} kernel={corrector.kernel} "
              f"pixfmt={args.pixfmt}{fused_note}: {frames} frames "
              f"{w}x{h} {args.method} in {wall:.3f}s "
              f"-> {frames / wall:.1f} fps end-to-end "
              f"({mpx:.1f} Mpx/s in-engine)")
        if tel.enabled:
            slo = obs.slo_summary(tel.snapshot())
            if slo is not None:
                print(f"slo: e2e p50 {slo['p50_s'] * 1e3:.1f} ms "
                      f"p95 {slo['p95_s'] * 1e3:.1f} ms "
                      f"p99 {slo['p99_s'] * 1e3:.1f} ms, "
                      f"deadline miss {slo['deadline_misses']}/{slo['frames']} "
                      f"({slo['miss_rate']:.1%}), stalls {slo['stalls']}")
    finally:
        if server is not None:
            server.close()
        if own_tel:
            obs.disable()
    return 0


def cmd_serve(args) -> int:
    """Serve several synthetic camera streams through one shared fleet."""
    import time

    from .serve import MultiStreamCorrector
    from .video.distort import FisheyeRenderer, scene_camera_for_sensor
    from .video.stream import SyntheticStream
    from .video.synth import urban

    w, h = args.width, args.height
    focal = args.focal or (min(w, h) / 2.0 - 1.0) / (np.pi / 2.0)
    sensor = FisheyeIntrinsics.centered(w, h, focal=focal)
    lens = make_lens(args.model, focal)
    scene_cam = scene_camera_for_sensor(sensor, lens, w, h)
    renderer = FisheyeRenderer(scene_cam, lens, sensor)
    world = urban(int(w * 1.5) + 64, int(h * 1.5) + 64, seed=args.seed)
    # every camera shares one calibration (the common rack-of-cameras
    # deployment): the broker builds and publishes exactly one LUT
    corrector = FisheyeCorrector.for_sensor(
        sensor, lens, w, h, zoom=args.zoom, method=args.method,
        kernel=args.kernel)

    weights = [1] * args.streams
    if args.weights:
        given = [int(x) for x in args.weights.split(",") if x.strip()]
        weights[:len(given)] = given[:args.streams]

    own_tel = False
    server = None
    tel = obs.get_telemetry()
    try:
        if args.serve_metrics is not None:
            if not tel.enabled:
                tel = obs.enable()
                own_tel = True
            server = obs.MetricsServer(telemetry=tel,
                                       port=args.serve_metrics).start()
            print(f"serving metrics on {server.url} "
                  f"(/metrics /health /snapshot)", file=sys.stderr)
        deadline_s = args.deadline_ms / 1e3 if args.deadline_ms else None
        t0 = time.perf_counter()
        pixfmt = {"gray": "rgb"}.get(args.pixfmt, args.pixfmt)
        if pixfmt == "rgb":
            def wrap(src):
                return src
        else:
            from .video.yuv import to_nv12_stream, to_yuv420_stream
            wrap = to_nv12_stream if pixfmt == "nv12" else to_yuv420_stream
        with MultiStreamCorrector(workers=args.workers,
                                  slot_budget=args.slot_budget,
                                  schedule=args.schedule, chunk=args.chunk,
                                  context=args.context,
                                  serve_metrics=server) as svc:
            sessions = [
                svc.open_stream(
                    wrap(SyntheticStream(renderer, world, frames=args.frames,
                                         step=8 + 3 * i)),
                    corrector.field, method=args.method, kernel=args.kernel,
                    name=f"s{i}", depth=args.depth, weight=weights[i],
                    deadline_s=deadline_s, pixfmt=pixfmt,
                    out_size=args.out_size)
                for i in range(args.streams)
            ]
            counts = {s.name: 0 for s in sessions}
            for name, _frame in svc.merged(sessions):
                counts[name] += 1
        wall = time.perf_counter() - t0
        total = sum(counts.values())
        fused_note = (f" out={args.out_size[0]}x{args.out_size[1]} fused"
                      if args.out_size else "")
        print(f"serve: {args.streams} streams x {args.frames} frames "
              f"{w}x{h} {args.method} pixfmt={args.pixfmt}{fused_note} "
              f"through {args.workers} workers "
              f"(budget {args.slot_budget} slots) in {wall:.3f}s "
              f"-> {total / wall:.1f} fps aggregate")
        for i in range(args.streams):
            name = f"s{i}"
            print(f"  {name}: {counts[name]} frames (weight {weights[i]}, "
                  f"{counts[name] / wall:.1f} fps)")
        if tel.enabled:
            slo = obs.slo_summary(tel.snapshot())
            if slo is not None:
                print(f"slo: e2e p50 {slo['p50_s'] * 1e3:.1f} ms "
                      f"p95 {slo['p95_s'] * 1e3:.1f} ms, "
                      f"deadline miss {slo['deadline_misses']}/{slo['frames']}")
    finally:
        if server is not None:
            server.close()
        if own_tel:
            obs.disable()
    return 0


def cmd_map_info(args) -> int:
    """Print the measured properties of a correction map — the numbers
    the platform models consume."""
    import numpy as np

    from .accel.platform import Workload
    from .core.intrinsics import CameraIntrinsics

    w, h = args.width, args.height
    circle = min(w, h) / 2.0 - 1.0
    focal = args.focal or circle / (np.pi / 2.0)
    sensor = FisheyeIntrinsics.centered(w, h, focal=focal)
    lens = make_lens(args.model, focal)
    focal_out = float(lens.magnification(1e-4)) * args.zoom
    out = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=(w - 1) / 2.0,
                           cy=(h - 1) / 2.0, width=w, height=h)
    from .core.mapping import perspective_map

    field = perspective_map(sensor, lens, out,
                            yaw=np.deg2rad(args.yaw), pitch=np.deg2rad(args.pitch))
    workload = Workload.from_field(field, method=args.method)
    spans = field.row_span()
    print(f"map: {args.model} f={focal:.1f}px zoom={args.zoom} "
          f"yaw={args.yaw} pitch={args.pitch} -> {w}x{h}")
    print(f"  coverage:           {workload.coverage:.1%}")
    print(f"  source footprint:   {workload.source_footprint:.1%} of frame")
    print(f"  gather lines/warp:  {workload.gather_lines_per_warp:.2f} "
          f"(1.0 = perfectly coalesced)")
    print(f"  row span (max/avg): {spans.max():.1f} / {spans.mean():.1f} rows")
    bbox = field.source_bbox(0, min(32, h), 0, w)
    if bbox:
        sy0, sy1, sx0, sx1 = bbox
        print(f"  top-band src bbox:  {sx1 - sx0}x{sy1 - sy0} px")
    from .core.antialias import minification_map

    m = minification_map(field)
    print(f"  minification:       centre {m[h // 2, w // 2]:.2f}, "
          f"peak {np.nanmax(m):.2f} src px/out px")
    return 0


def cmd_stats(args) -> int:
    """Pretty-print a metrics snapshot file written by ``--metrics``,
    or diff two of them (``--diff A.json B.json``)."""
    import json

    def load(path):
        with open(path) as fh:
            return json.load(fh)

    if args.diff:
        print(obs.diff_snapshots(load(args.diff[0]), load(args.diff[1])),
              end="")
        return 0
    if args.snapshot is None:
        print("error: give a snapshot file or --diff A.json B.json",
              file=sys.stderr)
        return 1
    print(obs.format_snapshot(load(args.snapshot)), end="")
    return 0


def cmd_info(args) -> int:
    from .bench.experiments import t1_platforms

    print(f"repro {__version__} — fisheye distortion correction on multicore "
          f"and hardware accelerator platforms")
    print(f"lens models: {', '.join(sorted(LENS_MODELS))}")
    print()
    print(t1_platforms())
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="fisheye distortion correction toolkit")
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="enable telemetry; write a JSON metrics snapshot "
                             "here on exit (pretty-print with 'repro stats')")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="enable telemetry; write a Chrome trace_event "
                             "JSON here on exit (open in ui.perfetto.dev)")
    parser.add_argument("--log-level", choices=obs.LOG_LEVELS, default="warning",
                        help="logging verbosity for the repro logger")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="generate a (optionally distorted) test scene")
    p.add_argument("output")
    p.add_argument("--scene", choices=["checkerboard", "circles", "urban",
                                       "gradient", "grid"],
                   default="checkerboard")
    p.add_argument("--width", type=int, default=512)
    p.add_argument("--height", type=int, default=512)
    p.add_argument("--square", type=int, default=32)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--distort", action="store_true",
                   help="render the scene through the fisheye lens")
    p.add_argument("--model", choices=sorted(LENS_MODELS), default="equidistant")
    p.add_argument("--focal", type=float, default=None,
                   help="lens focal in px (default: 180-deg inscribed circle)")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("correct", help="correct a fisheye PGM image")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--model", choices=sorted(LENS_MODELS), default="equidistant")
    p.add_argument("--focal", type=float, default=None)
    p.add_argument("--cx", type=float, default=None)
    p.add_argument("--cy", type=float, default=None)
    p.add_argument("--zoom", type=float, default=0.5)
    p.add_argument("--method", choices=["nearest", "bilinear", "bicubic"],
                   default="bilinear")
    p.add_argument("--yaw", type=float, default=0.0, help="degrees")
    p.add_argument("--pitch", type=float, default=0.0, help="degrees")
    p.add_argument("--roll", type=float, default=0.0, help="degrees")
    p.add_argument("--out-width", type=int, default=None)
    p.add_argument("--out-height", type=int, default=None)
    p.add_argument("--kernel", choices=list(KERNEL_CHOICES), default="auto",
                   help="kernel tier (auto picks compiled when numba is "
                        "installed, else numpy)")
    p.set_defaults(func=cmd_correct)

    p = sub.add_parser("calibrate",
                       help="estimate the lens from a rendered circle-grid target")
    p.add_argument("input")
    p.add_argument("--rings", type=int, default=4)
    p.add_argument("--spokes", type=int, default=8)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("bench", help="run evaluation experiments")
    p.add_argument("ids", nargs="+", metavar="ID",
                   help="experiment ids (T1, F1..F12, A1..A3) or 'all'")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("stream",
                       help="drive a synthetic stream through a correction engine")
    p.add_argument("--engine", choices=["seq", "pipelined", "ring"],
                   default="seq")
    p.add_argument("--frames", type=int, default=32)
    p.add_argument("--width", type=int, default=256)
    p.add_argument("--height", type=int, default=256)
    p.add_argument("--model", choices=sorted(LENS_MODELS), default="equidistant")
    p.add_argument("--focal", type=float, default=None)
    p.add_argument("--zoom", type=float, default=0.5)
    p.add_argument("--method", choices=["nearest", "bilinear", "bicubic"],
                   default="bilinear")
    p.add_argument("--workers", type=int, default=2,
                   help="ring worker processes")
    p.add_argument("--depth", type=int, default=2,
                   help="frames in flight (pipelined threads / ring slots)")
    p.add_argument("--schedule", choices=["static", "dynamic", "guided"],
                   default="dynamic", help="ring band-scheduling policy")
    p.add_argument("--chunk", type=int, default=None,
                   help="ring band granularity in rows")
    p.add_argument("--kernel", choices=list(KERNEL_CHOICES), default="auto",
                   help="kernel tier (auto picks compiled when numba is "
                        "installed, else numpy)")
    p.add_argument("--context", choices=["fork", "spawn"], default="fork",
                   help="ring worker start method")
    p.add_argument("--pixfmt", choices=["gray", "yuv420", "nv12"],
                   default="gray",
                   help="frame pixel format: gray drives 2-D frames through "
                        "the corrector; yuv420 wraps the stream as planar "
                        "YUV 4:2:0 and corrects all three planes natively; "
                        "nv12 is the same with one interleaved UV plane "
                        "(no RGB conversion, engines seq/ring)")
    p.add_argument("--out-size", type=_parse_size, metavar="WxH", default=None,
                   help="deliver at this size through one fused "
                        "correct+downscale composed table (e.g. 1280x720); "
                        "per-frame gather traffic scales with the delivered "
                        "size, not the source")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--serve-metrics", type=int, metavar="PORT", default=None,
                   help="serve /metrics /health /snapshot on 127.0.0.1:PORT "
                        "while the stream runs (0 = ephemeral port; enables "
                        "telemetry if --metrics/--trace did not)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-frame latency SLO (ring engine): deliveries "
                        "over this count as stream.deadline_miss")
    p.add_argument("--stall-timeout", type=float, metavar="SECONDS",
                   default=None,
                   help="stall watchdog (ring engine): warn, count "
                        "stream.stalls and dump the flight recorder when no "
                        "band completes for this long")
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser("serve",
                       help="serve several synthetic streams through one "
                            "shared worker fleet")
    p.add_argument("--streams", type=int, default=4,
                   help="concurrent stream sessions")
    p.add_argument("--frames", type=int, default=32, help="frames per stream")
    p.add_argument("--width", type=int, default=256)
    p.add_argument("--height", type=int, default=256)
    p.add_argument("--model", choices=sorted(LENS_MODELS), default="equidistant")
    p.add_argument("--focal", type=float, default=None)
    p.add_argument("--zoom", type=float, default=0.5)
    p.add_argument("--method", choices=["nearest", "bilinear", "bicubic"],
                   default="bilinear")
    p.add_argument("--kernel", choices=list(KERNEL_CHOICES), default="auto",
                   help="kernel tier shared by every session")
    p.add_argument("--workers", type=int, default=2,
                   help="persistent worker processes shared by all streams")
    p.add_argument("--depth", type=int, default=2,
                   help="shared-memory frame slots per stream")
    p.add_argument("--slot-budget", type=int, default=16,
                   help="total slots across all admitted streams "
                        "(admission control)")
    p.add_argument("--schedule", choices=["static", "dynamic", "guided"],
                   default="dynamic", help="band-scheduling policy")
    p.add_argument("--chunk", type=int, default=None,
                   help="band granularity in rows")
    p.add_argument("--context", choices=["fork", "spawn"], default="fork",
                   help="worker start method")
    p.add_argument("--weights", metavar="CSV", default=None,
                   help="per-stream scheduling weights, e.g. 2,1,1,1 "
                        "(missing entries default to 1)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-frame e2e latency SLO counted per stream as "
                        "stream.deadline_miss{stream=...}")
    p.add_argument("--pixfmt", choices=["gray", "yuv420", "nv12"],
                   default="gray",
                   help="session pixel format: gray packs 2-D frames; "
                        "yuv420/nv12 run the planar per-plane band path")
    p.add_argument("--out-size", type=_parse_size, metavar="WxH", default=None,
                   help="deliver every session at this size through a fused "
                        "correct+downscale composed table")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--serve-metrics", type=int, metavar="PORT", default=None,
                   help="serve /metrics with per-stream labelled series on "
                        "127.0.0.1:PORT while the streams run (0 = ephemeral "
                        "port; enables telemetry if --metrics/--trace did not)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("map-info",
                       help="print measured properties of a correction map")
    p.add_argument("--model", choices=sorted(LENS_MODELS), default="equidistant")
    p.add_argument("--width", type=int, default=1280)
    p.add_argument("--height", type=int, default=720)
    p.add_argument("--focal", type=float, default=None)
    p.add_argument("--zoom", type=float, default=0.5)
    p.add_argument("--yaw", type=float, default=0.0, help="degrees")
    p.add_argument("--pitch", type=float, default=0.0, help="degrees")
    p.add_argument("--method", choices=["nearest", "bilinear", "bicubic"],
                   default="bilinear")
    p.set_defaults(func=cmd_map_info)

    p = sub.add_parser("stats",
                       help="pretty-print or diff metrics snapshots "
                            "from --metrics")
    p.add_argument("snapshot", nargs="?", default=None,
                   help="path to the JSON snapshot file")
    p.add_argument("--diff", nargs=2, metavar=("A.json", "B.json"),
                   default=None,
                   help="print the metric delta between two snapshots "
                        "(counters B - A, histograms at p50/p95)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("info", help="print version, lens models, platform park")
    p.set_defaults(func=cmd_info)
    return parser


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    obs.configure_logging(args.log_level)
    tel = None
    if args.metrics or args.trace:
        tel = obs.enable()
    try:
        if tel is not None:
            with tel.span(f"cli.{args.command}", cat="cli"):
                code = args.func(args)
        else:
            code = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tel is not None:
            if args.metrics:
                obs.write_metrics(tel, args.metrics)
                print(f"metrics snapshot: {args.metrics}", file=sys.stderr)
            if args.trace:
                obs.write_trace(tel, args.trace)
                print(f"chrome trace: {args.trace} (open in ui.perfetto.dev)",
                      file=sys.stderr)
            obs.disable()
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
