"""SIMD execution model: how much does vectorizing the kernel buy?

The incremental study's first step is vectorizing the scalar per-pixel
loop.  The remap kernel vectorizes well *except* for the source
gathers: a classic SIMD ISA without a gather instruction must break
the vector apart, fetch lanes one by one, and repack.  This module
captures that with a small analytic model, plus a functional
lane-chunked evaluator used in tests to demonstrate that lane order
never changes results.

:class:`VectorISA` instances for the ISAs the 2010-era study spans are
provided: SSE2-class (4 x f32, no gather), Altivec/SPU-class (4 x f32,
no gather, fused multiply-add), and a modern AVX2-class reference
(8 x f32, hardware gather).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlatformError

__all__ = ["VectorISA", "SSE2", "SPU", "AVX2", "simd_speedup", "apply_lanewise"]


@dataclass(frozen=True)
class VectorISA:
    """A SIMD instruction-set description.

    Attributes
    ----------
    name:
        Display name.
    lanes:
        32-bit lanes per vector register.
    has_gather:
        Whether scattered loads are a single instruction.
    has_fma:
        Fused multiply-add halves the arithmetic instruction count.
    gather_cost_per_lane:
        Scalar-equivalent instruction cost of emulating one lane of a
        gather (load + insert); ignored when ``has_gather``.
    """

    name: str
    lanes: int
    has_gather: bool = False
    has_fma: bool = False
    gather_cost_per_lane: float = 2.0

    def __post_init__(self):
        if self.lanes < 1:
            raise PlatformError(f"lanes must be >= 1, got {self.lanes}")
        if self.gather_cost_per_lane <= 0:
            raise PlatformError(
                f"gather_cost_per_lane must be positive, got {self.gather_cost_per_lane}")


SSE2 = VectorISA("sse2", lanes=4, has_gather=False, has_fma=False)
SPU = VectorISA("spu", lanes=4, has_gather=False, has_fma=True)
AVX2 = VectorISA("avx2", lanes=8, has_gather=True, has_fma=True)


def simd_speedup(isa: VectorISA, arith_ops: float, gather_ops: float) -> float:
    """Estimated speedup of vectorizing a kernel on ``isa``.

    Parameters
    ----------
    arith_ops:
        Arithmetic operations per output pixel (multiply/add/convert).
    gather_ops:
        Scattered source loads per output pixel (interpolation taps).

    Returns
    -------
    float
        ``scalar_cost / vector_cost`` per pixel.  With no gather
        support the gathers stay serial (Amdahl inside the pixel), so
        the speedup saturates well below ``lanes`` — the effect the
        paper's SIMD section measures.
    """
    if arith_ops < 0 or gather_ops < 0:
        raise PlatformError("operation counts must be non-negative")
    if arith_ops + gather_ops == 0:
        return 1.0
    arith_cost = arith_ops / 2.0 if isa.has_fma else arith_ops
    scalar = arith_ops + gather_ops  # loads cost ~1 in the scalar loop
    if isa.has_gather:
        vector = (arith_cost + gather_ops) / isa.lanes
    else:
        vector = arith_cost / isa.lanes + gather_ops * self_cost(isa)
    return scalar / vector


def self_cost(isa: VectorISA) -> float:
    """Per-pixel cost of an emulated gather on a gather-less ISA."""
    # Each output pixel's tap is fetched lane-serially but the fetches
    # for `lanes` pixels amortize the repack, hence / lanes on the
    # repack half of the cost.
    return isa.gather_cost_per_lane / 2.0 + isa.gather_cost_per_lane / (2.0 * isa.lanes)


def apply_lanewise(fn, values: np.ndarray, lanes: int) -> np.ndarray:
    """Evaluate ``fn`` over ``values`` in SIMD-width chunks.

    Functional model of vector execution: the 1-D input is processed in
    chunks of ``lanes`` elements (the tail padded with its last value
    and trimmed afterwards, as a masked vector epilogue would).  Tests
    use it to verify kernels are value-wise independent — the property
    that makes the vectorization legal in the first place.
    """
    if lanes < 1:
        raise PlatformError(f"lanes must be >= 1, got {lanes}")
    values = np.asarray(values)
    if values.ndim != 1:
        raise PlatformError(f"apply_lanewise expects a 1-D array, got shape {values.shape}")
    n = values.size
    if n == 0:
        return fn(values)
    pad = (-n) % lanes
    padded = np.concatenate([values, np.repeat(values[-1:], pad)]) if pad else values
    chunks = [fn(padded[i:i + lanes]) for i in range(0, padded.size, lanes)]
    return np.concatenate(chunks)[:n]
