"""Domain decomposition of the output frame into work units.

The correction kernel is embarrassingly parallel over *output* pixels;
how the output is cut determines load balance (out-of-FOV corner tiles
are nearly free), source-side locality (small tiles touch a compact
source window) and the per-unit overhead (sync, DMA setup).  Three
classic decompositions are provided:

- :func:`row_bands` — one contiguous band of rows per unit,
- :func:`blocks` — a 2-D grid of rectangular tiles,
- :func:`row_bands_weighted` — contiguous bands balanced by a per-row
  cost estimate instead of row count (Section 4's answer to the
  out-of-FOV imbalance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError

__all__ = ["Tile", "row_bands", "blocks", "row_bands_weighted", "tile_weights"]


@dataclass(frozen=True)
class Tile:
    """A rectangular output region ``[row0, row1) x [col0, col1)``."""

    row0: int
    row1: int
    col0: int
    col1: int

    def __post_init__(self):
        if not (0 <= self.row0 < self.row1 and 0 <= self.col0 < self.col1):
            raise PartitionError(f"degenerate tile {self!r}")

    @property
    def height(self) -> int:
        return self.row1 - self.row0

    @property
    def width(self) -> int:
        return self.col1 - self.col0

    @property
    def pixels(self) -> int:
        return self.height * self.width


def row_bands(height: int, width: int, count: int):
    """Split ``height`` rows into ``count`` contiguous bands.

    Remainder rows go to the leading bands so sizes differ by at most
    one row.  ``count`` may exceed ``height``; empty bands are simply
    not emitted.
    """
    if height <= 0 or width <= 0:
        raise PartitionError(f"domain must be positive, got {height}x{width}")
    if count <= 0:
        raise PartitionError(f"band count must be positive, got {count}")
    base, extra = divmod(height, count)
    tiles = []
    row = 0
    for i in range(count):
        h = base + (1 if i < extra else 0)
        if h == 0:
            continue
        tiles.append(Tile(row, row + h, 0, width))
        row += h
    return tiles


def blocks(height: int, width: int, tile_h: int, tile_w: int):
    """Cut the output into a grid of ``tile_h x tile_w`` blocks.

    Edge tiles are clipped to the frame, so every output pixel belongs
    to exactly one tile.
    """
    if height <= 0 or width <= 0:
        raise PartitionError(f"domain must be positive, got {height}x{width}")
    if tile_h <= 0 or tile_w <= 0:
        raise PartitionError(f"tile size must be positive, got {tile_h}x{tile_w}")
    tiles = []
    for r in range(0, height, tile_h):
        for c in range(0, width, tile_w):
            tiles.append(Tile(r, min(r + tile_h, height), c, min(c + tile_w, width)))
    return tiles


def tile_weights(valid_mask: np.ndarray, tiles, base_cost: float = 0.1):
    """Relative cost of each tile from the map's validity mask.

    A valid output pixel costs 1 unit (gather + interpolate); an
    out-of-FOV pixel costs ``base_cost`` (just the fill store).  This
    is the estimate both the weighted partitioner and the schedulers
    consume.
    """
    valid_mask = np.asarray(valid_mask, dtype=bool)
    if not 0.0 <= base_cost <= 1.0:
        raise PartitionError(f"base_cost must be in [0, 1], got {base_cost}")
    weights = np.empty(len(tiles), dtype=np.float64)
    for i, t in enumerate(tiles):
        sub = valid_mask[t.row0:t.row1, t.col0:t.col1]
        valid = float(sub.sum())
        weights[i] = valid + base_cost * (sub.size - valid)
    return weights


def row_bands_weighted(valid_mask: np.ndarray, count: int, base_cost: float = 0.1):
    """Contiguous row bands with approximately equal total *cost*.

    Greedy prefix cut: walk rows accumulating cost and close a band
    whenever the running sum reaches the ideal share of the remaining
    work.  Guarantees exactly ``min(count, height)`` non-empty bands
    covering every row once.
    """
    valid_mask = np.asarray(valid_mask, dtype=bool)
    if valid_mask.ndim != 2:
        raise PartitionError(f"valid_mask must be 2-D, got shape {valid_mask.shape}")
    if count <= 0:
        raise PartitionError(f"band count must be positive, got {count}")
    height, width = valid_mask.shape
    count = min(count, height)
    valid_per_row = valid_mask.sum(axis=1).astype(np.float64)
    row_cost = valid_per_row + base_cost * (width - valid_per_row)

    tiles = []
    row = 0
    remaining = float(row_cost.sum())
    for band in range(count):
        bands_left = count - band
        rows_left = height - row
        if band == count - 1:
            h = rows_left
        else:
            # Each remaining band must still get at least one row.
            max_h = rows_left - (bands_left - 1)
            target = remaining / bands_left
            acc = 0.0
            h = 0
            while h < max_h:
                acc += row_cost[row + h]
                h += 1
                if acc >= target:
                    break
        tiles.append(Tile(row, row + h, 0, width))
        remaining -= float(row_cost[row:row + h].sum())
        row += h
    return tiles
