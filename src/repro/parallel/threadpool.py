"""Real shared-memory parallel executors for the remap kernel.

:class:`ThreadedExecutor` runs the tile kernel on a
``ThreadPoolExecutor``.  The heavy work inside each tile is numpy
fancy-indexing and arithmetic, which releases the GIL, so on a real
multicore machine this scales like the paper's pthreads version.  (On
this repository's 1-core CI host it cannot speed anything up — the
deterministic models in :mod:`repro.accel` carry the scaling study —
but the executor is exercised functionally by the test suite and is
the implementation a downstream user would deploy.)

Tiles are row bands: each worker writes a disjoint slice of the shared
output array, so no synchronization beyond the final join is needed —
the same ownership argument the paper makes for its data decomposition.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from ..errors import ScheduleError
from ..core.remap import RemapLUT
from ..obs.logsetup import get_logger
from ..obs.telemetry import get_telemetry
from .partition import row_bands, row_bands_weighted

__all__ = ["ThreadedExecutor"]

log = get_logger(__name__)


class ThreadedExecutor:
    """Tile-parallel LUT application on a thread pool.

    Parameters
    ----------
    workers:
        Thread count (>= 1).
    bands_per_worker:
        Work units per worker; more bands improve dynamic balance at
        the cost of dispatch overhead.
    weighted:
        If true, cut bands by estimated cost (valid-pixel count) rather
        than by row count.
    """

    name = "threaded"

    def __init__(self, workers: int = 4, bands_per_worker: int = 4,
                 weighted: bool = False):
        if workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {workers}")
        if bands_per_worker < 1:
            raise ScheduleError(f"bands_per_worker must be >= 1, got {bands_per_worker}")
        self.workers = workers
        self.bands_per_worker = bands_per_worker
        self.weighted = weighted
        self._pool = None

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            log.debug("starting thread pool: %d workers", self.workers)
            self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                            thread_name_prefix="remap")
        return self._pool

    def close(self):
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            log.debug("shutting down thread pool")
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self):
        self._ensure_pool()
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    def _tiles_for(self, lut: RemapLUT):
        h, w = lut.out_shape
        count = min(h, self.workers * self.bands_per_worker)
        if self.weighted and lut.mask is not None:
            return row_bands_weighted(lut.mask.reshape(h, w), count)
        return row_bands(h, w, count)

    def run(self, lut: RemapLUT, image, out=None):
        """Apply ``lut`` to ``image`` with tile-parallel workers."""
        image = np.asarray(image)
        channels = image.shape[2:] if image.ndim == 3 else ()
        if out is None:
            out = np.empty(lut.out_shape + channels, dtype=image.dtype)
        elif out.shape[:2] != lut.out_shape:
            raise ScheduleError(
                f"output buffer {out.shape} does not match LUT output {lut.out_shape}")

        tiles = self._tiles_for(lut)
        pool = self._ensure_pool()
        tel = get_telemetry()
        t_frame = time.perf_counter() if tel.enabled else 0.0

        if tel.enabled:
            band_secs = []

            def worker(tile):
                t0 = time.perf_counter()
                out[tile.row0:tile.row1] = lut.apply_rows(image, tile.row0, tile.row1)
                dt = time.perf_counter() - t0
                tel.histogram("executor.band_seconds").observe(dt)
                band_secs.append(dt)
        else:
            def worker(tile):
                out[tile.row0:tile.row1] = lut.apply_rows(image, tile.row0, tile.row1)

        futures = [pool.submit(worker, t) for t in tiles]
        done, _ = wait(futures)
        for f in done:
            f.result()  # re-raise worker exceptions
        if tel.enabled:
            dt = time.perf_counter() - t_frame
            tel.counter("executor.frames").inc()
            tel.counter("executor.bands").inc(len(tiles))
            tel.histogram("executor.frame_seconds").observe(dt)
            tel.add_span("executor.frame", time.time() - dt, dt, cat=self.name,
                         args={"bands": len(tiles)})
            # dispatch + join cost on top of an ideal parallel schedule
            tel.histogram("executor.fanout_seconds").observe(
                max(0.0, dt - sum(band_secs) / self.workers))
        return out
