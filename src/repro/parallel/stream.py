"""Software-pipelined stream correction on real threads.

The streaming analogue of DMA double buffering: while the consumer
handles corrected frame ``k``, a worker thread is already correcting
frame ``k+1`` (and, at higher depth, ``k+2``...).  On a real multicore
host this overlaps source decoding/generation with the remap; results
are delivered strictly in order.

Because each in-flight frame owns its output buffer, ``depth`` buffers
are live at once — the same memory/overlap trade the Cell model's
double buffering prices.  ``depth`` is therefore capped at
:data:`MAX_STREAM_DEPTH`: past that point the "pipeline" is just an
unbounded frame allocator.  (For process-level parallelism with
*bounded* shared-memory buffers, see :class:`repro.parallel.ring
.RingEngine`.)

When a :mod:`repro.obs` registry is enabled the stream reports the
same surface as :func:`repro.video.stream.corrected_stream`:
``stream.frames`` counter, ``stream.frame_seconds`` histogram, a
``stream.fps`` end-to-end rate gauge, and one ``stream.frame`` span
per delivered frame.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

import numpy as np

from ..errors import ScheduleError
from ..core.image import Frame
from ..core.pipeline import FisheyeCorrector
from ..obs.telemetry import get_telemetry

__all__ = ["pipelined_stream", "MAX_STREAM_DEPTH"]

#: hard cap on in-flight frames — each one owns a full output buffer,
#: so depth is a memory budget, not a free throughput knob.
MAX_STREAM_DEPTH = 64


def pipelined_stream(corrector: FisheyeCorrector, frames: Iterable,
                     depth: int = 2) -> Iterator:
    """Correct ``frames`` with ``depth`` corrections in flight.

    Parameters
    ----------
    corrector:
        The configured corrector (its executor runs inside the worker
        threads; a :class:`~repro.parallel.threadpool.ThreadedExecutor`
        composes, giving pipeline + tile parallelism).
    frames:
        Any iterable of ndarrays or :class:`~repro.core.image.Frame`.
    depth:
        Maximum frames in flight (1 = plain sequential behaviour with
        a worker thread).  Must be within ``[1, MAX_STREAM_DEPTH]`` —
        every in-flight frame allocates its own output buffer, so an
        oversized depth is an unbounded allocation, not a speedup.

    Yields
    ------
    Corrected frames, in input order.  Unlike
    :meth:`FisheyeCorrector.correct_stream`, each yielded frame owns
    its buffer (no reuse), so holding references is safe.
    """
    if depth < 1:
        raise ScheduleError(f"depth must be >= 1, got {depth}")
    if depth > MAX_STREAM_DEPTH:
        raise ScheduleError(
            f"depth {depth} exceeds MAX_STREAM_DEPTH ({MAX_STREAM_DEPTH}); "
            f"each in-flight frame owns a full output buffer")

    def work(item):
        if isinstance(item, Frame):
            return item.with_data(corrector.correct(item.data))
        return corrector.correct(np.asarray(item))

    tel = get_telemetry()
    stream_t0 = time.perf_counter() if tel.enabled else 0.0
    frames_done = 0
    with ThreadPoolExecutor(max_workers=depth, thread_name_prefix="stream") as pool:
        pending = []
        iterator = iter(frames)
        exhausted = False
        while True:
            # keep the pipe full
            while not exhausted and len(pending) < depth:
                try:
                    item = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(pool.submit(work, item))
            if not pending:
                return
            if not tel.enabled:
                yield pending.pop(0).result()
                continue
            wall0 = time.time()
            t0 = time.perf_counter()
            result = pending.pop(0).result()
            now = time.perf_counter()
            frames_done += 1
            tel.counter("stream.frames").inc()
            tel.histogram("stream.frame_seconds").observe(now - t0)
            tel.add_span("stream.frame", wall0, now - t0, cat="stream",
                         args={"depth": depth})
            if now > stream_t0:
                tel.gauge("stream.fps").set(frames_done / (now - stream_t0))
            yield result
