"""Software-pipelined stream correction on real threads.

The streaming analogue of DMA double buffering: while the consumer
handles corrected frame ``k``, a worker thread is already correcting
frame ``k+1`` (and, at higher depth, ``k+2``...).  On a real multicore
host this overlaps source decoding/generation with the remap; results
are delivered strictly in order.

Because each in-flight frame owns its output buffer, ``depth`` buffers
are live at once — the same memory/overlap trade the Cell model's
double buffering prices.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

import numpy as np

from ..errors import ScheduleError
from ..core.image import Frame
from ..core.pipeline import FisheyeCorrector

__all__ = ["pipelined_stream"]


def pipelined_stream(corrector: FisheyeCorrector, frames: Iterable,
                     depth: int = 2) -> Iterator:
    """Correct ``frames`` with ``depth`` corrections in flight.

    Parameters
    ----------
    corrector:
        The configured corrector (its executor runs inside the worker
        threads; a :class:`~repro.parallel.threadpool.ThreadedExecutor`
        composes, giving pipeline + tile parallelism).
    frames:
        Any iterable of ndarrays or :class:`~repro.core.image.Frame`.
    depth:
        Maximum frames in flight (1 = plain sequential behaviour with
        a worker thread).

    Yields
    ------
    Corrected frames, in input order.  Unlike
    :meth:`FisheyeCorrector.correct_stream`, each yielded frame owns
    its buffer (no reuse), so holding references is safe.
    """
    if depth < 1:
        raise ScheduleError(f"depth must be >= 1, got {depth}")

    def work(item):
        if isinstance(item, Frame):
            return item.with_data(corrector.correct(item.data))
        return corrector.correct(np.asarray(item))

    with ThreadPoolExecutor(max_workers=depth, thread_name_prefix="stream") as pool:
        pending = []
        iterator = iter(frames)
        exhausted = False
        while True:
            # keep the pipe full
            while not exhausted and len(pending) < depth:
                try:
                    item = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(pool.submit(work, item))
            if not pending:
                return
            yield pending.pop(0).result()
