"""Deterministic work-unit scheduling, OpenMP style.

The multicore section of the study compares three loop schedules:

``static``
    Units pre-assigned in contiguous chunks (lowest overhead, worst
    balance when tile costs vary).
``dynamic``
    Workers pull the next ``chunk`` units from a shared queue when they
    finish (best balance, one dispatch overhead per chunk).
``guided``
    Dynamic with geometrically shrinking chunks (balance of both).

Rather than timing real threads (impossible to do meaningfully on this
1-core host), :func:`simulate` replays a schedule against *known
per-unit costs* (from :func:`repro.parallel.partition.tile_weights`) on
virtual workers, producing the exact makespan, per-worker busy time and
imbalance — the quantities the paper's scaling figures plot.  The
result is deterministic and platform-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ScheduleError

__all__ = ["Assignment", "static_chunks", "cyclic_chunks", "simulate", "SCHEDULES"]

#: recognized schedule names
SCHEDULES = ("static", "static_cyclic", "dynamic", "guided")


@dataclass
class Assignment:
    """Result of replaying a schedule on virtual workers.

    Attributes
    ----------
    order:
        Per-worker list of unit indices, in execution order.
    busy:
        Per-worker total busy time (cost units).
    makespan:
        Completion time of the slowest worker, including dispatch
        overhead.
    dispatches:
        Total number of queue operations performed (chunk pulls).
    """

    order: list
    busy: np.ndarray
    makespan: float
    dispatches: int

    @property
    def workers(self) -> int:
        return len(self.order)

    @property
    def imbalance(self) -> float:
        """Max busy time over mean busy time (1.0 = perfectly balanced)."""
        mean = float(self.busy.mean())
        return float(self.busy.max() / mean) if mean > 0 else 1.0

    def speedup(self, serial_time: float | None = None) -> float:
        """Speedup over running every unit on one worker."""
        if serial_time is None:
            serial_time = float(self.busy.sum())
        return serial_time / self.makespan if self.makespan > 0 else 0.0


def static_chunks(n_units: int, workers: int):
    """Contiguous block assignment: unit ranges per worker."""
    if workers <= 0:
        raise ScheduleError(f"workers must be positive, got {workers}")
    base, extra = divmod(n_units, workers)
    out = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


def cyclic_chunks(n_units: int, workers: int, chunk: int = 1):
    """Round-robin assignment of fixed-size chunks."""
    if workers <= 0:
        raise ScheduleError(f"workers must be positive, got {workers}")
    if chunk <= 0:
        raise ScheduleError(f"chunk must be positive, got {chunk}")
    out = [[] for _ in range(workers)]
    for i, start in enumerate(range(0, n_units, chunk)):
        out[i % workers].extend(range(start, min(start + chunk, n_units)))
    return out


def simulate(costs, workers: int, schedule: str = "dynamic", chunk: int = 1,
             dispatch_overhead: float = 0.0) -> Assignment:
    """Replay a loop schedule over units with the given costs.

    Parameters
    ----------
    costs:
        1-D array of per-unit execution costs (any time unit).
    workers:
        Number of virtual workers.
    schedule:
        One of :data:`SCHEDULES`.
    chunk:
        Chunk size for ``static_cyclic`` and ``dynamic``; minimum chunk
        for ``guided``.
    dispatch_overhead:
        Cost charged per queue pull (models lock contention / DMA-list
        setup); static schedules pay it once per worker.

    Returns
    -------
    Assignment
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 1 or costs.size == 0:
        raise ScheduleError(f"costs must be a non-empty 1-D array, got shape {costs.shape}")
    if np.any(costs < 0):
        raise ScheduleError("unit costs must be non-negative")
    if workers <= 0:
        raise ScheduleError(f"workers must be positive, got {workers}")
    if chunk <= 0:
        raise ScheduleError(f"chunk must be positive, got {chunk}")
    n = costs.size

    if schedule == "static":
        order = static_chunks(n, workers)
        busy = np.array([costs[idx].sum() for idx in order])
        finish = busy + dispatch_overhead
        return Assignment(order, busy, float(finish.max()), workers)

    if schedule == "static_cyclic":
        order = cyclic_chunks(n, workers, chunk)
        busy = np.array([costs[idx].sum() if idx else 0.0 for idx in order])
        finish = busy + dispatch_overhead
        return Assignment(order, busy, float(finish.max()), workers)

    if schedule not in ("dynamic", "guided"):
        raise ScheduleError(f"unknown schedule {schedule!r}; known: {SCHEDULES}")

    # Event-driven replay of a shared work queue: at every step the
    # earliest-finishing worker pulls the next chunk.
    order = [[] for _ in range(workers)]
    busy = np.zeros(workers)
    clock = np.zeros(workers)  # time each worker becomes free
    next_unit = 0
    dispatches = 0
    remaining = n
    while next_unit < n:
        w = int(np.argmin(clock))
        if schedule == "guided":
            size = max(chunk, int(np.ceil(remaining / (2 * workers))))
        else:
            size = chunk
        size = min(size, n - next_unit)
        units = list(range(next_unit, next_unit + size))
        next_unit += size
        remaining -= size
        work = float(costs[units].sum())
        clock[w] += dispatch_overhead + work
        busy[w] += work
        order[w].extend(units)
        dispatches += 1
    return Assignment(order, busy, float(clock.max()), dispatches)
