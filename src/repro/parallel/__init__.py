"""Parallelization layer: decomposition, scheduling, real executors.

- :mod:`~repro.parallel.partition` — cutting the output frame into
  tiles/bands (including cost-weighted cuts),
- :mod:`~repro.parallel.schedule` — deterministic replay of
  static/dynamic/guided loop schedules,
- :mod:`~repro.parallel.threadpool` / :mod:`~repro.parallel.procpool`
  — real shared-memory executors for the remap kernel,
- :mod:`~repro.parallel.ring` — the persistent-worker streaming engine
  (shared-memory frame ring, frame-level double buffering, dynamic
  band scheduling),
- :mod:`~repro.parallel.shmseg` — the shared-segment plumbing both
  process back ends are built on,
- :mod:`~repro.parallel.simd` — the SIMD vectorization model.
"""

from .partition import Tile, blocks, row_bands, row_bands_weighted, tile_weights
from .ring import MAX_RING_DEPTH, RING_SCHEDULES, RingEngine, plan_bands, ring_stream
from .schedule import SCHEDULES, Assignment, cyclic_chunks, simulate, static_chunks
from .simd import AVX2, SPU, SSE2, VectorISA, apply_lanewise, simd_speedup
from .stream import MAX_STREAM_DEPTH, pipelined_stream
from .threadpool import ThreadedExecutor

__all__ = [
    "Tile",
    "row_bands",
    "row_bands_weighted",
    "blocks",
    "tile_weights",
    "Assignment",
    "simulate",
    "static_chunks",
    "cyclic_chunks",
    "SCHEDULES",
    "VectorISA",
    "SSE2",
    "SPU",
    "AVX2",
    "simd_speedup",
    "apply_lanewise",
    "ThreadedExecutor",
    "pipelined_stream",
    "MAX_STREAM_DEPTH",
    "RingEngine",
    "ring_stream",
    "plan_bands",
    "MAX_RING_DEPTH",
    "RING_SCHEDULES",
]
