"""Shared-memory segment plumbing for the process-based executors.

Everything the process executors and the streaming ring have in common
lives here, so :mod:`~repro.parallel.procpool` (per-frame fork-join)
and :mod:`~repro.parallel.ring` (persistent-worker streaming) share one
implementation of the fragile parts:

- **publication** of numpy arrays and whole LUT table sets into named
  POSIX shared-memory segments (:func:`share_array`,
  :class:`SharedTables`, :class:`FrameSegments`);
- **attachment** from worker processes (:func:`attach_segment`,
  :func:`attach_tables`);
- **lifecycle hardening**: every parent-owned segment group is wired to
  a :func:`weakref.finalize` finalizer, which Python also runs at
  interpreter exit (atexit), so segments are unlinked even when an
  executor is dropped without ``close()`` or a worker crashes mid-run —
  no ``resource_tracker`` leak warnings survive either event;
- the worker-side **telemetry bootstrap/drain** pair
  (:func:`init_worker_telemetry`, :func:`worker_delta`) that lets each
  child keep a private registry and ship pure deltas back over the
  result channel.

Resource-tracker model: both ``fork`` and ``spawn`` children inherit
the parent's tracker process (spawn passes the tracker fd through its
preparation data), so a worker's attach-time registration deduplicates
into the same name set the parent's create-time registration lives in.
The parent's finalizer is therefore the single owner of the unlink —
workers must *never* unregister (that would strip the shared entry and
make the parent's unlink race the tracker), and with the finalizer in
place the tracker's shutdown sweep finds nothing to warn about even
after a crashed worker or an executor dropped without ``close()``.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory

import numpy as np

from ..core.kernel_tiers import DEFAULT_FRAC_BITS
from ..core.remap import RemapLUT
from ..obs.telemetry import Telemetry, get_telemetry, set_telemetry

__all__ = [
    "share_array",
    "attach_segment",
    "release_segments",
    "ensure_resource_tracker",
    "FrameSegments",
    "PlanarFrameSegments",
    "attach_slot",
    "attach_planar_slot",
    "attach_any_slot",
    "SharedTables",
    "attach_tables",
    "attach_planar_tables",
    "init_worker_telemetry",
    "worker_delta",
]

#: key prefix under which a chroma LUT's tables live inside a planar
#: :class:`SharedTables` spec (one spec, two LUTs).
_CHROMA_PREFIX = "c:"


def ensure_resource_tracker() -> None:
    """Start the resource-tracker process now (idempotent).

    Engines that fork workers *before* creating any shared segment
    (the serve broker admits sessions after its fleet is up) must force
    the tracker into existence first — otherwise each child spawns its
    own tracker on first attach and warns at exit about "leaked"
    segments the parent already unlinked.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - platform without the tracker
        pass


# ----------------------------------------------------------------------
# worker-side telemetry bootstrap
# ----------------------------------------------------------------------
def init_worker_telemetry(enabled: bool) -> None:
    """Give this worker its own registry (fork *and* spawn safe).

    The worker registry starts empty and is drained after every work
    unit, so each result carries a pure counter/histogram delta that
    the parent folds in with
    :meth:`~repro.obs.telemetry.Telemetry.merge` — no shared state, no
    locks across processes.
    """
    if enabled:
        set_telemetry(Telemetry())


def worker_delta():
    """Drain this worker's registry: the delta shipped with a result."""
    tel = get_telemetry()
    return tel.drain() if tel.enabled else None


# ----------------------------------------------------------------------
# segment creation / attachment
# ----------------------------------------------------------------------
def share_array(arr):
    """Copy ``arr`` into a fresh named segment; returns (shm, view)."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return shm, view


def attach_segment(name: str):
    """Attach to an existing named segment from a worker process.

    The attach-time registration lands in the parent's inherited
    resource tracker, where it deduplicates against the create-time
    entry (the tracker's cache is a name set).  The parent's finalizer
    owns the unlink; workers only ever ``close()`` their mapping.
    """
    return shared_memory.SharedMemory(name=name)


def release_segments(shms) -> None:
    """Close + unlink segments, tolerating repeats and races.

    Used as the finalizer callback for every parent-owned segment
    group; safe to run from ``close()``, from GC, and from atexit, in
    any order (``unlink`` of an already-unlinked segment is ignored).
    """
    for shm in shms:
        try:
            shm.close()
        except Exception:  # pragma: no cover - buffer already released
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - platform quirks
            pass


class _SegmentGroup:
    """A set of parent-owned segments with a crash-proof finalizer."""

    def __init__(self, shms):
        self._shms = list(shms)
        self._finalizer = weakref.finalize(self, release_segments, self._shms)

    @property
    def released(self) -> bool:
        return not self._finalizer.alive

    def release(self) -> None:
        """Unlink now (idempotent; also runs via GC/atexit otherwise)."""
        self._finalizer()


class FrameSegments(_SegmentGroup):
    """Create/own one source + destination shared frame buffer pair."""

    def __init__(self, frame_shape, frame_dtype, out_shape):
        frame_dtype = np.dtype(frame_dtype)
        self.frame_shape = tuple(frame_shape)
        self.out_shape = tuple(out_shape)
        self.dtype = frame_dtype
        nbytes_src = int(np.prod(frame_shape)) * frame_dtype.itemsize
        nbytes_dst = int(np.prod(out_shape)) * frame_dtype.itemsize
        self.src_shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes_src))
        self.dst_shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes_dst))
        self.src_view = np.ndarray(frame_shape, dtype=frame_dtype, buffer=self.src_shm.buf)
        self.dst_view = np.ndarray(out_shape, dtype=frame_dtype, buffer=self.dst_shm.buf)
        super().__init__([self.src_shm, self.dst_shm])

    @property
    def spec(self):
        """Picklable attach recipe: ``(src_name, frame_shape, dst_name,
        out_shape, dtype_str)`` — what a worker needs to map this slot
        (see :func:`attach_slot`)."""
        return (self.src_shm.name, self.frame_shape, self.dst_shm.name,
                self.out_shape, self.dtype.str)

    def release(self):
        self.src_view = None
        self.dst_view = None
        super().release()


def attach_slot(spec):
    """Worker side of :attr:`FrameSegments.spec`: map one frame slot.

    Returns ``(segments, src_view, dst_view)``; the caller keeps
    ``segments`` alive (and ``close()``\\ s them when done) — the parent
    owns the unlink.
    """
    src_name, frame_shape, dst_name, out_shape, dtype_str = spec
    dtype = np.dtype(dtype_str)
    src_shm = attach_segment(src_name)
    dst_shm = attach_segment(dst_name)
    src = np.ndarray(tuple(frame_shape), dtype=dtype, buffer=src_shm.buf)
    dst = np.ndarray(tuple(out_shape), dtype=dtype, buffer=dst_shm.buf)
    return [src_shm, dst_shm], src, dst


def _plane_views(buf, plane_shapes, dtype):
    """Carve per-plane views out of one packed segment buffer."""
    views = []
    offset = 0
    for shape in plane_shapes:
        views.append(np.ndarray(tuple(shape), dtype=dtype, buffer=buf,
                                offset=offset))
        offset += int(np.prod(shape)) * dtype.itemsize
    return tuple(views)


class PlanarFrameSegments(_SegmentGroup):
    """One multi-plane source + destination shared buffer pair.

    The zero-copy YUV420 slot: all of a frame's planes (full-resolution
    Y, half-resolution U and V) are packed into **one** shared-memory
    allocation per side, laid out back to back in
    :data:`~repro.video.yuv.PLANE_NAMES` order — one segment pair per
    ring slot regardless of plane count, with per-plane views carved
    out at fixed offsets.  Workers address ``(slot, plane)`` pairs, so
    two workers can gather the Y band of frame *N* while a third
    finishes the chroma of frame *N-1*.
    """

    def __init__(self, plane_shapes, frame_dtype, out_plane_shapes):
        frame_dtype = np.dtype(frame_dtype)
        self.plane_shapes = tuple(tuple(s) for s in plane_shapes)
        self.out_plane_shapes = tuple(tuple(s) for s in out_plane_shapes)
        self.dtype = frame_dtype
        nbytes_src = sum(int(np.prod(s)) for s in self.plane_shapes) \
            * frame_dtype.itemsize
        nbytes_dst = sum(int(np.prod(s)) for s in self.out_plane_shapes) \
            * frame_dtype.itemsize
        self.src_shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes_src))
        self.dst_shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes_dst))
        self.src_views = _plane_views(self.src_shm.buf, self.plane_shapes,
                                      frame_dtype)
        self.dst_views = _plane_views(self.dst_shm.buf, self.out_plane_shapes,
                                      frame_dtype)
        super().__init__([self.src_shm, self.dst_shm])

    @property
    def spec(self):
        """Picklable attach recipe (tagged ``"planar"`` so a worker can
        distinguish it from a :attr:`FrameSegments.spec`)."""
        return ("planar", self.src_shm.name, self.plane_shapes,
                self.dst_shm.name, self.out_plane_shapes, self.dtype.str)

    def release(self):
        self.src_views = None
        self.dst_views = None
        super().release()


def attach_planar_slot(spec):
    """Worker side of :attr:`PlanarFrameSegments.spec`.

    Returns ``(segments, src_views, dst_views)`` with one view per
    plane on each side.
    """
    tag, src_name, plane_shapes, dst_name, out_plane_shapes, dtype_str = spec
    if tag != "planar":
        raise ValueError(f"not a planar slot spec: {spec!r}")
    dtype = np.dtype(dtype_str)
    src_shm = attach_segment(src_name)
    dst_shm = attach_segment(dst_name)
    src_views = _plane_views(src_shm.buf, plane_shapes, dtype)
    dst_views = _plane_views(dst_shm.buf, out_plane_shapes, dtype)
    return [src_shm, dst_shm], src_views, dst_views


def attach_any_slot(spec):
    """Attach either slot flavour; always returns per-plane view tuples.

    Non-planar slots come back as one-plane tuples, so engine workers
    can index ``views[plane]`` uniformly.
    """
    if spec and spec[0] == "planar":
        return attach_planar_slot(spec)
    segs, src, dst = attach_slot(spec)
    return segs, (src,), (dst,)


def _lut_meta(lut: RemapLUT) -> dict:
    return {
        "out_shape": lut.out_shape,
        "src_shape": lut.src_shape,
        "method": lut.method,
        "border": lut.border,
        "fill": lut.fill,
        "tier": lut.tier,
        "frac_bits": lut.frac_bits,
    }


class SharedTables(_SegmentGroup):
    """The LUT's compact tables published once into named segments.

    ``spec`` maps table keys to ``(segment_name, shape, dtype_str)``
    triples and ``meta`` carries the scalar LUT parameters — together
    they are everything a worker needs to rebuild a zero-copy
    :class:`~repro.core.remap.RemapLUT` with :func:`attach_tables`.

    With a ``chroma`` LUT the publication becomes *planar*: the chroma
    tables join the same spec under :data:`_CHROMA_PREFIX`-prefixed
    keys and ``meta["chroma"]`` carries the chroma LUT's scalars — one
    spec, one segment group, two zero-copy LUTs on the worker side
    (:func:`attach_planar_tables`).  ``pixfmt`` records which planar
    layout the tables serve (``"yuv420"``: three planes, u/v sharing
    the chroma LUT; ``"nv12"``: two planes, the chroma LUT applied
    once to the interleaved UV view) so the worker side recovers the
    right per-plane LUT tuple without guessing.
    """

    def __init__(self, lut: RemapLUT, chroma: RemapLUT | None = None,
                 pixfmt: str = "yuv420"):
        shms = []
        self.spec = {}

        def publish(key, arr):
            shm, _ = share_array(arr)
            shms.append(shm)
            self.spec[key] = (shm.name, tuple(arr.shape), arr.dtype.str)

        def publish_lut(lut, prefix=""):
            publish(prefix + "indices", lut.indices)
            if lut.fracs is not None:
                publish(prefix + "fracs", lut.fracs)
                publish(prefix + "wtab", lut._weight_table())
            if lut.mask is not None:
                publish(prefix + "mask", np.asarray(lut.mask))
            if lut.tier != "numpy":
                # quantize once in the parent; workers map the same table
                publish(prefix + "qwtab", lut._qweight_table())

        publish_lut(lut)
        self.meta = _lut_meta(lut)
        if chroma is not None:
            publish_lut(chroma, _CHROMA_PREFIX)
            self.meta["chroma"] = _lut_meta(chroma)
            self.meta["pixfmt"] = pixfmt
        super().__init__(shms)


def _attach_lut(spec, meta, segments, prefix=""):
    """Attach one LUT's tables out of a (possibly planar) spec."""
    arrays = {}
    for key, (name, shape, dtype_str) in spec.items():
        if prefix:
            if not key.startswith(prefix):
                continue
            key = key[len(prefix):]
        elif key.startswith(_CHROMA_PREFIX):
            continue
        shm = attach_segment(name)
        segments.append(shm)
        arrays[key] = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                                 buffer=shm.buf)
    lut = RemapLUT.from_tables(
        arrays["indices"], arrays.get("fracs"), arrays.get("mask"),
        out_shape=meta["out_shape"], src_shape=meta["src_shape"],
        method=meta["method"], border=meta["border"],
        fill=meta["fill"], weight_table=arrays.get("wtab"),
        tier=meta.get("tier", "numpy"),
        frac_bits=meta.get("frac_bits", DEFAULT_FRAC_BITS),
        qweight_table=arrays.get("qwtab"))
    return arrays, lut


def attach_tables(spec, meta):
    """Worker side of :class:`SharedTables`: rebuild a zero-copy LUT.

    Returns ``(segments, arrays, lut)``; the caller must keep
    ``segments`` alive as long as the LUT is used.  Chroma-prefixed
    keys of a planar publication are ignored here — use
    :func:`attach_planar_tables` to get both LUTs.
    """
    segments = []
    arrays, lut = _attach_lut(spec, meta, segments)
    return segments, arrays, lut


def attach_planar_tables(spec, meta):
    """Attach a planar publication: both LUTs from one spec.

    Returns ``(segments, luts)`` where ``luts`` is the per-plane LUT
    tuple matching ``meta["pixfmt"]``: for ``"yuv420"`` (the default)
    ``(luma, chroma, chroma)`` in :data:`~repro.video.yuv.PLANE_NAMES`
    order, for ``"nv12"`` ``(luma, chroma)`` in
    :data:`~repro.video.yuv.NV12_PLANE_NAMES` order — the single
    chroma LUT serves the interleaved UV plane as one 2-channel apply.
    """
    if "chroma" not in meta:
        raise ValueError("spec/meta carry no chroma publication")
    segments = []
    _, luma = _attach_lut(spec, meta, segments)
    _, chroma = _attach_lut(spec, meta["chroma"], segments, _CHROMA_PREFIX)
    if meta.get("pixfmt", "yuv420") == "nv12":
        return segments, (luma, chroma)
    return segments, (luma, chroma, chroma)
