"""Process-based executors: the no-shared-GIL configurations.

Two tile-parallel process executors mirror
:class:`repro.parallel.threadpool.ThreadedExecutor`:

:class:`ProcessExecutor`
    Frames travel through POSIX shared memory
    (``multiprocessing.shared_memory``); the LUT itself reaches the
    workers once, through fork inheritance of the initializer
    arguments.  Workers return row blocks by writing the shared output
    segment directly.

:class:`SharedMemoryExecutor`
    Everything — source frame, output frame *and the LUT tables*
    (int32 indices, fraction table, validity mask, derived weight
    rows) — lives in named shared-memory segments that workers attach
    to by name.  Nothing large is ever pickled, the table exists once
    in physical memory no matter the worker count, and the setup works
    under any multiprocessing start method (``fork`` or ``spawn``).
    Workers run the fused :meth:`~repro.core.remap.RemapLUT
    .apply_rows_into` kernel straight into the shared output, so a
    steady-state frame costs one frame-copy in, the remap, and one
    frame-copy out — the communication/computation split the Cell BE
    model prices as DMA.

Both are *fork-join* executors: ``run`` dispatches one frame's bands
and waits for all of them before returning.  The streaming engine in
:mod:`repro.parallel.ring` removes that barrier (frame *k+1*'s bands
start while frame *k* drains); it shares this module's segment and
worker-bootstrap plumbing via :mod:`repro.parallel.shmseg`, which also
hardens the segment lifecycle: every parent-owned segment group is
finalizer/atexit-backed, so dropping an executor without ``close()``
(or crashing a worker mid-run) cannot leak named segments or provoke
``resource_tracker`` warnings.
"""

from __future__ import annotations

import multiprocessing as mp
import time

import numpy as np

from ..errors import ScheduleError
from ..core.remap import RemapLUT
from ..obs.logsetup import get_logger
from ..obs.telemetry import get_telemetry
from .partition import row_bands
from .shmseg import (
    FrameSegments,
    SharedTables,
    attach_segment,
    attach_tables,
    init_worker_telemetry,
    worker_delta,
)

__all__ = ["ProcessExecutor", "SharedMemoryExecutor"]

log = get_logger(__name__)

# Worker-side globals, installed by the initializers in each child.
_WORKER_LUT = None
_WORKER_SRC = None
_WORKER_DST = None
_SHM_STATE = None


def _init_worker(lut, src_name, src_shape, src_dtype, dst_name, dst_shape,
                 dst_dtype, telemetry_enabled=False):
    """Attach this worker to the shared frame buffers."""
    global _WORKER_LUT, _WORKER_SRC, _WORKER_DST
    init_worker_telemetry(telemetry_enabled)
    _WORKER_LUT = lut
    src_shm = attach_segment(src_name)
    dst_shm = attach_segment(dst_name)
    _WORKER_SRC = (src_shm, np.ndarray(src_shape, dtype=src_dtype, buffer=src_shm.buf))
    _WORKER_DST = (dst_shm, np.ndarray(dst_shape, dtype=dst_dtype, buffer=dst_shm.buf))


def _run_tile(rows):
    """Correct output rows [rows[0], rows[1]) into the shared output."""
    row0, row1 = rows
    src = _WORKER_SRC[1]
    dst = _WORKER_DST[1]
    tel = get_telemetry()
    t0 = time.perf_counter() if tel.enabled else 0.0
    dst[row0:row1] = _WORKER_LUT.apply_rows(src, row0, row1)
    if tel.enabled:
        tel.histogram("executor.band_seconds").observe(time.perf_counter() - t0)
    return row1 - row0, worker_delta()


class _BoundExecutorBase:
    """Shared plumbing: fixed geometry, pool lifecycle, run validation."""

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype, workers,
                 bands_per_worker):
        if workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {workers}")
        if bands_per_worker < 1:
            raise ScheduleError(f"bands_per_worker must be >= 1, got {bands_per_worker}")
        frame_shape = tuple(frame_shape)
        if frame_shape[:2] != lut.src_shape:
            raise ScheduleError(
                f"frame shape {frame_shape} does not match LUT source {lut.src_shape}")
        self.lut = lut
        self.workers = workers
        self.bands_per_worker = bands_per_worker
        self.frame_shape = frame_shape
        self.frame_dtype = np.dtype(frame_dtype)
        channels = frame_shape[2:] if len(frame_shape) == 3 else ()
        self.out_shape = lut.out_shape + channels
        self._pool = None
        self._segment_groups = []
        self._closed = False
        self._frame_seq = 0  # lineage: frame_id carried on executor spans

    # ------------------------------------------------------------------
    def _release_segments(self):
        """Unlink every owned segment group (idempotent).

        Each group also carries its own :func:`weakref.finalize`
        finalizer, so the same cleanup runs at GC or interpreter exit
        if the executor is dropped without ``close()``.
        """
        self.src_view = None
        self.dst_view = None
        for group in self._segment_groups:
            group.release()

    def close(self):
        """Terminate workers and release shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
        self._release_segments()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _check_run(self, lut, image):
        if self._closed:
            raise ScheduleError("executor already closed")
        if lut is not self.lut:
            raise ScheduleError(
                f"{type(self).__name__} is bound to the LUT given at construction")
        image = np.asarray(image)
        if image.shape != self.frame_shape or image.dtype != self.frame_dtype:
            raise ScheduleError(
                f"frame {image.shape}/{image.dtype} does not match bound geometry "
                f"{self.frame_shape}/{self.frame_dtype}")
        return image

    def _band_ranges(self):
        h, w = self.lut.out_shape
        count = min(h, self.workers * self.bands_per_worker)
        return [(t.row0, t.row1) for t in row_bands(h, w, count)]

    def _run_bands(self, task):
        """Fan one frame's bands out to the pool, with telemetry.

        Parent-side: frame latency histogram + span, fan-out counters.
        Worker-side deltas riding back on the task results are merged
        into the parent registry here — the process-safe aggregation
        path (workers never share registries; they ship snapshots).
        """
        tel = get_telemetry()
        bands = self._band_ranges()
        frame_id = self._frame_seq
        self._frame_seq += 1
        if not tel.enabled:
            self._pool.map(task, bands)
            return
        t0 = time.perf_counter()
        results = self._pool.map(task, bands)
        dt = time.perf_counter() - t0
        tel.counter("executor.frames").inc()
        tel.counter("executor.bands").inc(len(bands))
        tel.histogram("executor.frame_seconds").observe(dt)
        tel.add_span("executor.frame", time.time() - dt, dt, cat=self.name,
                     args={"frame_id": frame_id, "bands": len(bands),
                           "workers": self.workers})
        band_total = 0.0
        for _, delta in results:
            if delta:
                h = delta.get("histograms", {}).get("executor.band_seconds")
                if h:
                    band_total += h["sum"]
                tel.merge(delta)
        tel.histogram("executor.fanout_seconds").observe(
            max(0.0, dt - band_total / self.workers))


class ProcessExecutor(_BoundExecutorBase):
    """Tile-parallel LUT application on a process pool + shared frames.

    Unlike the thread executor this one is bound to a fixed frame
    geometry at construction (the shared segments are sized once);
    ``run`` only accepts frames of that shape/dtype.

    Parameters
    ----------
    lut:
        The remap table (shipped to workers once, at pool start).
    frame_shape, frame_dtype:
        Geometry of the source frames.
    workers:
        Process count.
    bands_per_worker:
        Work units per worker.
    """

    name = "process"

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype=np.uint8,
                 workers: int = 2, bands_per_worker: int = 2):
        super().__init__(lut, frame_shape, frame_dtype, workers, bands_per_worker)
        self._frames = FrameSegments(self.frame_shape, self.frame_dtype,
                                     self.out_shape)
        self._segment_groups.append(self._frames)
        self.src_view = self._frames.src_view
        self.dst_view = self._frames.dst_view
        ctx = mp.get_context("fork")
        log.debug("starting %d fork workers (process executor)", self.workers)
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(lut, self._frames.src_shm.name, self.frame_shape,
                      self.frame_dtype, self._frames.dst_shm.name,
                      self.out_shape, self.frame_dtype,
                      get_telemetry().enabled),
        )

    # ------------------------------------------------------------------
    def run(self, lut: RemapLUT, image, out=None):
        """Correct one frame (``lut`` must be the bound LUT)."""
        image = self._check_run(lut, image)
        np.copyto(self._frames.src_view, image)
        self._run_bands(_run_tile)
        if out is not None:
            np.copyto(out, self._frames.dst_view)
            return out
        return self._frames.dst_view.copy()


# ----------------------------------------------------------------------
# Fully shared-memory executor (frames + LUT tables)
# ----------------------------------------------------------------------
def _init_shm_worker(table_spec, lut_meta, telemetry_enabled=False):
    """Attach to every shared segment and rebuild a zero-copy LUT."""
    global _SHM_STATE
    init_worker_telemetry(telemetry_enabled)
    segments, arrays, lut = attach_tables(table_spec, lut_meta)
    _SHM_STATE = (segments, lut, arrays["src"], arrays["dst"])


def _run_shm_band(rows):
    """Fused-kernel correction of one band, written in place."""
    row0, row1 = rows
    _, lut, src, dst = _SHM_STATE
    tel = get_telemetry()
    t0 = time.perf_counter() if tel.enabled else 0.0
    lut.apply_rows_into(src, row0, row1, dst[row0:row1])
    if tel.enabled:
        tel.histogram("executor.band_seconds").observe(time.perf_counter() - t0)
    return row1 - row0, worker_delta()


class SharedMemoryExecutor(_BoundExecutorBase):
    """Tile-parallel correction with frames *and* LUT in shared memory.

    The compact tables (indices, fractions, mask) plus the derived
    weight rows are published once into named segments; each worker
    attaches by name and reconstructs a zero-copy
    :class:`~repro.core.remap.RemapLUT` view over them.  Per frame,
    workers receive only ``(row0, row1)`` tuples and write their bands
    straight into the shared destination via ``apply_rows_into`` — no
    arrays are pickled per task, per frame, or per worker.

    Parameters
    ----------
    lut, frame_shape, frame_dtype, workers, bands_per_worker:
        As for :class:`ProcessExecutor`.
    context:
        Multiprocessing start method (``"fork"`` default; ``"spawn"``
        works because nothing relies on inherited memory).
    """

    name = "sharedmem"

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype=np.uint8,
                 workers: int = 2, bands_per_worker: int = 2,
                 context: str = "fork"):
        super().__init__(lut, frame_shape, frame_dtype, workers, bands_per_worker)
        self._frames = FrameSegments(self.frame_shape, self.frame_dtype,
                                     self.out_shape)
        self._tables = SharedTables(lut)
        self._segment_groups += [self._frames, self._tables]
        self.src_view = self._frames.src_view
        self.dst_view = self._frames.dst_view

        table_spec = dict(self._tables.spec)
        table_spec["src"] = (self._frames.src_shm.name, self.frame_shape,
                             self.frame_dtype.str)
        table_spec["dst"] = (self._frames.dst_shm.name, self.out_shape,
                             self.frame_dtype.str)
        ctx = mp.get_context(context)
        log.debug("starting %d %s workers (shared-memory executor)",
                  self.workers, context)
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_init_shm_worker,
            initargs=(table_spec, self._tables.meta, get_telemetry().enabled),
        )

    # ------------------------------------------------------------------
    def run(self, lut: RemapLUT, image, out=None):
        """Correct one frame (``lut`` must be the bound LUT)."""
        image = self._check_run(lut, image)
        np.copyto(self._frames.src_view, image)
        self._run_bands(_run_shm_band)
        if out is not None:
            np.copyto(out, self._frames.dst_view)
            return out
        return self._frames.dst_view.copy()
