"""Process-based executor: the no-shared-GIL configuration.

Mirrors :class:`repro.parallel.threadpool.ThreadedExecutor` but runs
tiles in worker *processes*, exchanging data through POSIX shared
memory (``multiprocessing.shared_memory``) so frames are written once
and never pickled per tile.  This is the configuration a pure-Python
deployment without GIL-releasing kernels would need; it also
demonstrates the communication-vs-computation accounting the Cell BE
model formalizes (the shared-memory setup is the "DMA" here).

The LUT itself is transferred once per executor lifetime via the
fork inheritance of the initializer arguments.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from ..errors import ScheduleError
from ..core.remap import RemapLUT
from .partition import row_bands

__all__ = ["ProcessExecutor"]

# Worker-side globals, installed by _init_worker in each child.
_WORKER_LUT = None
_WORKER_SRC = None
_WORKER_DST = None


def _init_worker(lut, src_name, src_shape, src_dtype, dst_name, dst_shape, dst_dtype):
    """Attach this worker to the shared frame buffers."""
    global _WORKER_LUT, _WORKER_SRC, _WORKER_DST
    _WORKER_LUT = lut
    src_shm = shared_memory.SharedMemory(name=src_name)
    dst_shm = shared_memory.SharedMemory(name=dst_name)
    _WORKER_SRC = (src_shm, np.ndarray(src_shape, dtype=src_dtype, buffer=src_shm.buf))
    _WORKER_DST = (dst_shm, np.ndarray(dst_shape, dtype=dst_dtype, buffer=dst_shm.buf))


def _run_tile(rows):
    """Correct output rows [rows[0], rows[1]) into the shared output."""
    row0, row1 = rows
    src = _WORKER_SRC[1]
    dst = _WORKER_DST[1]
    dst[row0:row1] = _WORKER_LUT.apply_rows(src, row0, row1)
    return row1 - row0


class ProcessExecutor:
    """Tile-parallel LUT application on a process pool + shared memory.

    Unlike the thread executor this one is bound to a fixed frame
    geometry at construction (the shared segments are sized once);
    ``run`` only accepts frames of that shape/dtype.

    Parameters
    ----------
    lut:
        The remap table (shipped to workers once, at pool start).
    frame_shape, frame_dtype:
        Geometry of the source frames.
    workers:
        Process count.
    bands_per_worker:
        Work units per worker.
    """

    name = "process"

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype=np.uint8,
                 workers: int = 2, bands_per_worker: int = 2):
        if workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {workers}")
        frame_shape = tuple(frame_shape)
        if frame_shape[:2] != lut.src_shape:
            raise ScheduleError(
                f"frame shape {frame_shape} does not match LUT source {lut.src_shape}")
        self.lut = lut
        self.workers = workers
        self.bands_per_worker = bands_per_worker
        self.frame_shape = frame_shape
        self.frame_dtype = np.dtype(frame_dtype)
        channels = frame_shape[2:] if len(frame_shape) == 3 else ()
        self.out_shape = lut.out_shape + channels

        nbytes_src = int(np.prod(frame_shape)) * self.frame_dtype.itemsize
        nbytes_dst = int(np.prod(self.out_shape)) * self.frame_dtype.itemsize
        self._src_shm = shared_memory.SharedMemory(create=True, size=nbytes_src)
        self._dst_shm = shared_memory.SharedMemory(create=True, size=nbytes_dst)
        self.src_view = np.ndarray(frame_shape, dtype=self.frame_dtype,
                                   buffer=self._src_shm.buf)
        self.dst_view = np.ndarray(self.out_shape, dtype=self.frame_dtype,
                                   buffer=self._dst_shm.buf)
        ctx = mp.get_context("fork")
        self._pool = ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(lut, self._src_shm.name, frame_shape, self.frame_dtype,
                      self._dst_shm.name, self.out_shape, self.frame_dtype),
        )
        self._closed = False

    # ------------------------------------------------------------------
    def close(self):
        """Terminate workers and release shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.close()
        self._pool.join()
        # Drop our views before unlinking the segments.
        self.src_view = None
        self.dst_view = None
        for shm in (self._src_shm, self._dst_shm):
            shm.close()
            shm.unlink()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run(self, lut: RemapLUT, image, out=None):
        """Correct one frame (``lut`` must be the bound LUT)."""
        if self._closed:
            raise ScheduleError("executor already closed")
        if lut is not self.lut:
            raise ScheduleError("ProcessExecutor is bound to the LUT given at construction")
        image = np.asarray(image)
        if image.shape != self.frame_shape or image.dtype != self.frame_dtype:
            raise ScheduleError(
                f"frame {image.shape}/{image.dtype} does not match bound geometry "
                f"{self.frame_shape}/{self.frame_dtype}")
        np.copyto(self.src_view, image)
        h, w = lut.out_shape
        count = min(h, self.workers * self.bands_per_worker)
        ranges = [(t.row0, t.row1) for t in row_bands(h, w, count)]
        self._pool.map(_run_tile, ranges)
        result = self.dst_view.copy()
        if out is not None:
            np.copyto(out, result)
            return out
        return result
