"""Process-based executors: the no-shared-GIL configurations.

Two tile-parallel process executors mirror
:class:`repro.parallel.threadpool.ThreadedExecutor`:

:class:`ProcessExecutor`
    Frames travel through POSIX shared memory
    (``multiprocessing.shared_memory``); the LUT itself reaches the
    workers once, through fork inheritance of the initializer
    arguments.  Workers return row blocks by writing the shared output
    segment directly.

:class:`SharedMemoryExecutor`
    Everything — source frame, output frame *and the LUT tables*
    (int32 indices, fraction table, validity mask, derived weight
    rows) — lives in named shared-memory segments that workers attach
    to by name.  Nothing large is ever pickled, the table exists once
    in physical memory no matter the worker count, and the setup works
    under any multiprocessing start method (``fork`` or ``spawn``).
    Workers run the fused :meth:`~repro.core.remap.RemapLUT
    .apply_rows_into` kernel straight into the shared output, so a
    steady-state frame costs one frame-copy in, the remap, and one
    frame-copy out — the communication/computation split the Cell BE
    model prices as DMA.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory

import numpy as np

from ..errors import ScheduleError
from ..core.remap import RemapLUT
from ..obs.logsetup import get_logger
from ..obs.telemetry import Telemetry, get_telemetry, set_telemetry
from .partition import row_bands

__all__ = ["ProcessExecutor", "SharedMemoryExecutor"]

log = get_logger(__name__)

# Worker-side globals, installed by the initializers in each child.
_WORKER_LUT = None
_WORKER_SRC = None
_WORKER_DST = None
_SHM_STATE = None


def _init_worker_telemetry(enabled: bool) -> None:
    """Give this worker its own registry (fork *and* spawn safe).

    The worker registry starts empty and is drained after every band,
    so each task result carries a pure counter/histogram delta that the
    parent folds in with :meth:`~repro.obs.telemetry.Telemetry.merge` —
    no shared state, no locks across processes.
    """
    if enabled:
        set_telemetry(Telemetry())


def _worker_delta():
    tel = get_telemetry()
    return tel.drain() if tel.enabled else None


def _init_worker(lut, src_name, src_shape, src_dtype, dst_name, dst_shape,
                 dst_dtype, telemetry_enabled=False):
    """Attach this worker to the shared frame buffers."""
    global _WORKER_LUT, _WORKER_SRC, _WORKER_DST
    _init_worker_telemetry(telemetry_enabled)
    _WORKER_LUT = lut
    src_shm = shared_memory.SharedMemory(name=src_name)
    dst_shm = shared_memory.SharedMemory(name=dst_name)
    _WORKER_SRC = (src_shm, np.ndarray(src_shape, dtype=src_dtype, buffer=src_shm.buf))
    _WORKER_DST = (dst_shm, np.ndarray(dst_shape, dtype=dst_dtype, buffer=dst_shm.buf))


def _run_tile(rows):
    """Correct output rows [rows[0], rows[1]) into the shared output."""
    row0, row1 = rows
    src = _WORKER_SRC[1]
    dst = _WORKER_DST[1]
    tel = get_telemetry()
    t0 = time.perf_counter() if tel.enabled else 0.0
    dst[row0:row1] = _WORKER_LUT.apply_rows(src, row0, row1)
    if tel.enabled:
        tel.histogram("executor.band_seconds").observe(time.perf_counter() - t0)
    return row1 - row0, _worker_delta()


class _FrameSegments:
    """Create/own the source+destination shared-memory frame buffers."""

    def __init__(self, frame_shape, frame_dtype, out_shape):
        nbytes_src = int(np.prod(frame_shape)) * frame_dtype.itemsize
        nbytes_dst = int(np.prod(out_shape)) * frame_dtype.itemsize
        self.src_shm = shared_memory.SharedMemory(create=True, size=nbytes_src)
        self.dst_shm = shared_memory.SharedMemory(create=True, size=nbytes_dst)
        self.src_view = np.ndarray(frame_shape, dtype=frame_dtype, buffer=self.src_shm.buf)
        self.dst_view = np.ndarray(out_shape, dtype=frame_dtype, buffer=self.dst_shm.buf)

    def release(self):
        self.src_view = None
        self.dst_view = None
        for shm in (self.src_shm, self.dst_shm):
            shm.close()
            shm.unlink()


class _BoundExecutorBase:
    """Shared plumbing: fixed geometry, pool lifecycle, run validation."""

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype, workers,
                 bands_per_worker):
        if workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {workers}")
        if bands_per_worker < 1:
            raise ScheduleError(f"bands_per_worker must be >= 1, got {bands_per_worker}")
        frame_shape = tuple(frame_shape)
        if frame_shape[:2] != lut.src_shape:
            raise ScheduleError(
                f"frame shape {frame_shape} does not match LUT source {lut.src_shape}")
        self.lut = lut
        self.workers = workers
        self.bands_per_worker = bands_per_worker
        self.frame_shape = frame_shape
        self.frame_dtype = np.dtype(frame_dtype)
        channels = frame_shape[2:] if len(frame_shape) == 3 else ()
        self.out_shape = lut.out_shape + channels
        self._pool = None
        self._closed = False

    # ------------------------------------------------------------------
    def _release_segments(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def close(self):
        """Terminate workers and release shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
        self._release_segments()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _check_run(self, lut, image):
        if self._closed:
            raise ScheduleError("executor already closed")
        if lut is not self.lut:
            raise ScheduleError(
                f"{type(self).__name__} is bound to the LUT given at construction")
        image = np.asarray(image)
        if image.shape != self.frame_shape or image.dtype != self.frame_dtype:
            raise ScheduleError(
                f"frame {image.shape}/{image.dtype} does not match bound geometry "
                f"{self.frame_shape}/{self.frame_dtype}")
        return image

    def _band_ranges(self):
        h, w = self.lut.out_shape
        count = min(h, self.workers * self.bands_per_worker)
        return [(t.row0, t.row1) for t in row_bands(h, w, count)]

    def _run_bands(self, task):
        """Fan one frame's bands out to the pool, with telemetry.

        Parent-side: frame latency histogram + span, fan-out counters.
        Worker-side deltas riding back on the task results are merged
        into the parent registry here — the process-safe aggregation
        path (workers never share registries; they ship snapshots).
        """
        tel = get_telemetry()
        bands = self._band_ranges()
        if not tel.enabled:
            self._pool.map(task, bands)
            return
        t0 = time.perf_counter()
        results = self._pool.map(task, bands)
        dt = time.perf_counter() - t0
        tel.counter("executor.frames").inc()
        tel.counter("executor.bands").inc(len(bands))
        tel.histogram("executor.frame_seconds").observe(dt)
        tel.add_span("executor.frame", time.time() - dt, dt, cat=self.name,
                     args={"bands": len(bands), "workers": self.workers})
        band_total = 0.0
        for _, delta in results:
            if delta:
                h = delta.get("histograms", {}).get("executor.band_seconds")
                if h:
                    band_total += h["sum"]
                tel.merge(delta)
        tel.histogram("executor.fanout_seconds").observe(
            max(0.0, dt - band_total / self.workers))


class ProcessExecutor(_BoundExecutorBase):
    """Tile-parallel LUT application on a process pool + shared frames.

    Unlike the thread executor this one is bound to a fixed frame
    geometry at construction (the shared segments are sized once);
    ``run`` only accepts frames of that shape/dtype.

    Parameters
    ----------
    lut:
        The remap table (shipped to workers once, at pool start).
    frame_shape, frame_dtype:
        Geometry of the source frames.
    workers:
        Process count.
    bands_per_worker:
        Work units per worker.
    """

    name = "process"

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype=np.uint8,
                 workers: int = 2, bands_per_worker: int = 2):
        super().__init__(lut, frame_shape, frame_dtype, workers, bands_per_worker)
        self._frames = _FrameSegments(self.frame_shape, self.frame_dtype,
                                      self.out_shape)
        self.src_view = self._frames.src_view
        self.dst_view = self._frames.dst_view
        ctx = mp.get_context("fork")
        log.debug("starting %d fork workers (process executor)", self.workers)
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(lut, self._frames.src_shm.name, self.frame_shape,
                      self.frame_dtype, self._frames.dst_shm.name,
                      self.out_shape, self.frame_dtype,
                      get_telemetry().enabled),
        )

    def _release_segments(self):
        self.src_view = None
        self.dst_view = None
        self._frames.release()

    # ------------------------------------------------------------------
    def run(self, lut: RemapLUT, image, out=None):
        """Correct one frame (``lut`` must be the bound LUT)."""
        image = self._check_run(lut, image)
        np.copyto(self._frames.src_view, image)
        self._run_bands(_run_tile)
        if out is not None:
            np.copyto(out, self._frames.dst_view)
            return out
        return self._frames.dst_view.copy()


# ----------------------------------------------------------------------
# Fully shared-memory executor (frames + LUT tables)
# ----------------------------------------------------------------------
def _share_array(arr):
    """Copy ``arr`` into a fresh named segment; returns (shm, view)."""
    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    return shm, view


def _init_shm_worker(table_spec, lut_meta, telemetry_enabled=False):
    """Attach to every shared segment and rebuild a zero-copy LUT."""
    global _SHM_STATE
    _init_worker_telemetry(telemetry_enabled)
    segments = []
    arrays = {}
    for key, (name, shape, dtype_str) in table_spec.items():
        shm = shared_memory.SharedMemory(name=name)
        segments.append(shm)
        arrays[key] = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                                 buffer=shm.buf)
    lut = RemapLUT.from_tables(
        arrays["indices"], arrays.get("fracs"), arrays.get("mask"),
        out_shape=lut_meta["out_shape"], src_shape=lut_meta["src_shape"],
        method=lut_meta["method"], border=lut_meta["border"],
        fill=lut_meta["fill"], weight_table=arrays.get("wtab"))
    _SHM_STATE = (segments, lut, arrays["src"], arrays["dst"])


def _run_shm_band(rows):
    """Fused-kernel correction of one band, written in place."""
    row0, row1 = rows
    _, lut, src, dst = _SHM_STATE
    tel = get_telemetry()
    t0 = time.perf_counter() if tel.enabled else 0.0
    lut.apply_rows_into(src, row0, row1, dst[row0:row1])
    if tel.enabled:
        tel.histogram("executor.band_seconds").observe(time.perf_counter() - t0)
    return row1 - row0, _worker_delta()


class SharedMemoryExecutor(_BoundExecutorBase):
    """Tile-parallel correction with frames *and* LUT in shared memory.

    The compact tables (indices, fractions, mask) plus the derived
    weight rows are published once into named segments; each worker
    attaches by name and reconstructs a zero-copy
    :class:`~repro.core.remap.RemapLUT` view over them.  Per frame,
    workers receive only ``(row0, row1)`` tuples and write their bands
    straight into the shared destination via ``apply_rows_into`` — no
    arrays are pickled per task, per frame, or per worker.

    Parameters
    ----------
    lut, frame_shape, frame_dtype, workers, bands_per_worker:
        As for :class:`ProcessExecutor`.
    context:
        Multiprocessing start method (``"fork"`` default; ``"spawn"``
        works because nothing relies on inherited memory).
    """

    name = "sharedmem"

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype=np.uint8,
                 workers: int = 2, bands_per_worker: int = 2,
                 context: str = "fork"):
        super().__init__(lut, frame_shape, frame_dtype, workers, bands_per_worker)
        self._frames = _FrameSegments(self.frame_shape, self.frame_dtype,
                                      self.out_shape)
        self.src_view = self._frames.src_view
        self.dst_view = self._frames.dst_view

        self._table_shms = []
        table_spec = {}

        def publish(key, arr):
            shm, _ = _share_array(arr)
            self._table_shms.append(shm)
            table_spec[key] = (shm.name, tuple(arr.shape), arr.dtype.str)

        publish("indices", lut.indices)
        if lut.fracs is not None:
            publish("fracs", lut.fracs)
            publish("wtab", lut._weight_table())
        if lut.mask is not None:
            publish("mask", np.asarray(lut.mask))
        table_spec["src"] = (self._frames.src_shm.name, self.frame_shape,
                             self.frame_dtype.str)
        table_spec["dst"] = (self._frames.dst_shm.name, self.out_shape,
                             self.frame_dtype.str)
        lut_meta = {
            "out_shape": lut.out_shape,
            "src_shape": lut.src_shape,
            "method": lut.method,
            "border": lut.border,
            "fill": lut.fill,
        }
        ctx = mp.get_context(context)
        log.debug("starting %d %s workers (shared-memory executor)",
                  self.workers, context)
        self._pool = ctx.Pool(
            processes=self.workers,
            initializer=_init_shm_worker,
            initargs=(table_spec, lut_meta, get_telemetry().enabled),
        )

    def _release_segments(self):
        self.src_view = None
        self.dst_view = None
        self._frames.release()
        for shm in self._table_shms:
            shm.close()
            shm.unlink()
        self._table_shms = []

    # ------------------------------------------------------------------
    def run(self, lut: RemapLUT, image, out=None):
        """Correct one frame (``lut`` must be the bound LUT)."""
        image = self._check_run(lut, image)
        np.copyto(self._frames.src_view, image)
        self._run_bands(_run_shm_band)
        if out is not None:
            np.copyto(out, self._frames.dst_view)
            return out
        return self._frames.dst_view.copy()
