"""Persistent-worker streaming engine: a shared-memory frame ring.

The paper's Cell BE result rests on double buffering — DMA of tile
*k+1* overlaps computation of tile *k*.  The fork-join executors in
:mod:`~repro.parallel.procpool` do not have that property at frame
granularity: ``run`` dispatches one frame's bands, waits for all of
them, and returns before the next frame may even be decoded.
:class:`RingEngine` lifts the overlap into the shipping host pipeline:

- a bounded **frame ring** of ``depth`` slots, each slot a named
  shared-memory input frame + output buffer tagged with a sequence
  number;
- a **decoder thread** in the parent that pulls source frames, blocks
  while the ring is full (backpressure: memory stays bounded at
  ``depth`` frames no matter how slow the consumer is), copies each
  frame into a free slot and enqueues its bands;
- a pool of **persistent worker processes** that pull ``(slot, band)``
  items from one shared queue — frame *k+1*'s bands start the moment a
  worker frees up, with no barrier at frame edges, and the shared
  queue makes band scheduling genuinely *dynamic* (the
  ``dynamic``/``guided`` policies that
  :func:`repro.parallel.schedule.simulate` models are executed here,
  not simulated: :func:`plan_bands` only chooses the granularity);
- an **in-order consumer**: the :meth:`RingEngine.stream` generator
  tracks per-slot band completion and yields frames strictly in input
  order while later frames keep computing behind it.

Telemetry (when a :mod:`repro.obs` registry is enabled): ``ring.depth``
/ ``ring.in_flight`` gauges, ``ring.slot_wait_seconds`` /
``ring.band_seconds`` / ``ring.deliver_wait_seconds`` histograms,
``ring.frames`` / ``ring.bands`` counters plus per-worker
``ring.worker.<rank>.busy_seconds`` utilization counters, and spans on
synthetic ``ring-decode`` / ``ring-worker-<rank>`` / ``ring-deliver``
tracks, so a Chrome trace shows decode, remap and delivery overlapping
across in-flight frames — the frame-level analogue of the modeled F5
DMA-overlap experiment.

Planar YUV420 rings (``chroma_lut=``): each slot is a
:class:`~repro.parallel.shmseg.PlanarFrameSegments` (all three planes
in one shared allocation per side) and the band queue carries
``(seq, slot, plane, row0, row1)`` items — full-height Y bands plus
half-height U/V bands — so the fleet interleaves planes and frames
freely (a worker can gather Y bands of frame *N* while another
finishes the chroma of frame *N-1*) while delivery stays strictly
in order.  Workers then emit ``ring.bands{plane="y"|"u"|"v"}``
labelled counters and their ``ring.band`` spans carry a ``plane``
arg.

Frame lineage: every span carries the frame's ``frame_id`` (the input
sequence number) in its args, and each in-order delivery closes a
``frame.lifecycle`` span on the synthetic ``ring-frames`` track
spanning decode start to delivery — one Perfetto row shows each
frame's full decode → bands → deliver path.  End-to-end latency feeds
the ``frame.e2e_latency_seconds`` histogram.

SLO enforcement: ``deadline_s`` counts deliveries whose end-to-end
latency exceeded the per-frame deadline (``stream.deadline_miss``);
``stall_timeout_s`` arms a watchdog in the consumer poll loop — when
bands are outstanding but no band has completed for that long, it
increments ``stream.stalls``, logs a structured warning and dumps the
flight recorder.  The :class:`~repro.obs.flightrec.FlightRecorder`
keeps the last N decode/band/delivery events (including the spans
workers shipped back) and writes them to a timestamped JSON file on a
worker crash or watchdog fire; the dump path travels on
:attr:`~repro.errors.StreamError.flight_dump`.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import queue as _queue
import threading
import time
from itertools import chain

import numpy as np

from ..errors import ScheduleError, StreamError
from ..core.image import Frame
from ..core.remap import RemapLUT
from ..obs.flightrec import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from ..obs.logsetup import get_logger
from ..obs.telemetry import get_telemetry
from ..video.yuv import NV12Frame, YUV420Frame, plane_names_for
from .partition import row_bands
from .shmseg import (
    FrameSegments,
    PlanarFrameSegments,
    SharedTables,
    attach_any_slot,
    attach_planar_tables,
    attach_tables,
    init_worker_telemetry,
    worker_delta,
)

__all__ = ["RingEngine", "ring_stream", "plan_bands", "MAX_RING_DEPTH",
           "RING_SCHEDULES"]

log = get_logger(__name__)

#: hard cap on ring depth — each slot holds a full input + output frame
#: in shared memory, so unbounded depth is an unbounded allocation.
MAX_RING_DEPTH = 32

#: band-scheduling policies the ring executes (schedule.simulate models
#: the same three; ``static_cyclic`` is meaningless on a shared queue).
RING_SCHEDULES = ("static", "dynamic", "guided")

#: how long the consumer waits on the completion queue before checking
#: worker liveness (seconds).
_POLL_S = 0.2


def plan_bands(height: int, workers: int, schedule: str = "dynamic",
               chunk: int | None = None):
    """Cut ``height`` output rows into ``(row0, row1)`` work items.

    All policies execute on the shared work queue (workers pull the
    next item when free); the policy chooses granularity:

    ``static``
        One contiguous band per worker — the fork-join executors'
        layout, kept for apples-to-apples comparisons.
    ``dynamic``
        Fixed ``chunk``-row bands (default ``height // (8 * workers)``,
        at least 1): many small units, best balance on skewed maps.
    ``guided``
        Geometrically shrinking bands, ``max(chunk, remaining / (2 *
        workers))`` rows each — fewer dispatches than ``dynamic`` with
        nearly its balance (the same formula
        :func:`repro.parallel.schedule.simulate` replays).
    """
    if height < 1:
        raise ScheduleError(f"height must be >= 1, got {height}")
    if workers < 1:
        raise ScheduleError(f"workers must be >= 1, got {workers}")
    if schedule not in RING_SCHEDULES:
        raise ScheduleError(
            f"unknown ring schedule {schedule!r}; known: {RING_SCHEDULES}")
    if schedule == "static":
        return [(t.row0, t.row1) for t in row_bands(height, 1, workers)]
    if chunk is None:
        chunk = max(1, height // (8 * workers))
    if chunk < 1:
        raise ScheduleError(f"chunk must be >= 1, got {chunk}")
    if schedule == "dynamic":
        return [(r0, min(r0 + chunk, height)) for r0 in range(0, height, chunk)]
    bands = []
    row, remaining = 0, height
    while row < height:
        size = min(max(chunk, math.ceil(remaining / (2 * workers))), height - row)
        bands.append((row, row + size))
        row += size
        remaining -= size
    return bands


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _ring_worker_main(rank, task_q, done_q, table_spec, lut_meta, slot_spec,
                      telemetry_enabled):
    """Persistent worker: pull ``(seq, slot, plane, row0, row1)`` items.

    Attaches once to the LUT tables and every ring slot, then loops
    until the poison pill (``None``).  A planar publication (spec with
    a chroma LUT, planar slots) yields one LUT and one view pair per
    plane; the non-planar ring is the one-plane special case of the
    same loop.  Each completed band posts ``(seq, slot, rows, rank,
    telemetry_delta)`` on the completion queue; the delta carries this
    band's counters, histogram samples and its ``ring.band`` span (on
    the ``ring-worker-<rank>`` track, with a ``plane`` arg on planar
    rings) so the parent's merged trace shows true per-worker
    utilization.
    """
    init_worker_telemetry(telemetry_enabled)
    planar = "chroma" in lut_meta
    if planar:
        segments, luts = attach_planar_tables(table_spec, lut_meta)
    else:
        segments, _, lut = attach_tables(table_spec, lut_meta)
        luts = (lut,)
    slots = []
    for spec in slot_spec:
        slot_segs, srcs, dsts = attach_any_slot(spec)
        segments += slot_segs
        slots.append((srcs, dsts))
    track = f"ring-worker-{rank}"
    plane_counters = None
    try:
        while True:
            item = task_q.get()
            if item is None:
                break
            seq, slot_idx, plane, row0, row1 = item
            srcs, dsts = slots[slot_idx]
            src, dst, lut = srcs[plane], dsts[plane], luts[plane]
            tel = get_telemetry()
            wall0 = time.time() if tel.enabled else 0.0
            t0 = time.perf_counter() if tel.enabled else 0.0
            lut.apply_rows_into(src, row0, row1, dst[row0:row1])
            delta = None
            if tel.enabled:
                dt = time.perf_counter() - t0
                tel.counter("ring.bands").inc()
                tel.counter(f"ring.worker.{rank}.busy_seconds").inc(dt)
                tel.histogram("ring.band_seconds").observe(dt)
                args = {"frame_id": seq, "rows": row1 - row0,
                        "tier": lut.tier}
                if planar:
                    if plane_counters is None:
                        from ..obs.export import labeled
                        names = plane_names_for(
                            lut_meta.get("pixfmt", "yuv420"))
                        plane_counters = [
                            (n, labeled("ring.bands", plane=n)) for n in names]
                    args["plane"] = plane_counters[plane][0]
                    tel.counter(plane_counters[plane][1]).inc()
                tel.add_span("ring.band", wall0, dt, cat="ring", tid=track,
                             args=args)
                delta = worker_delta()
            done_q.put((seq, slot_idx, row1 - row0, rank, delta))
    finally:
        for shm in segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class RingEngine:
    """Bounded shared-memory frame ring with persistent band workers.

    Parameters
    ----------
    lut:
        The frozen remap table (published once into shared memory).
    frame_shape, frame_dtype:
        Geometry of the source frames (fixed for the engine's life —
        the ring slots are sized once).
    workers:
        Persistent worker-process count.
    depth:
        Ring slots, i.e. maximum frames in flight (decode + compute +
        undelivered).  ``depth=1`` degenerates to fork-join behaviour;
        ``depth>=2`` gives frame-level double buffering.  Capped at
        :data:`MAX_RING_DEPTH` since each slot owns a full input +
        output frame of shared memory.
    schedule, chunk:
        Band-granularity policy; see :func:`plan_bands`.
    context:
        Multiprocessing start method (``fork`` default, ``spawn``
        supported).
    deadline_s:
        Per-frame latency SLO: deliveries whose decode-to-delivery
        latency exceeds this many seconds increment the
        ``stream.deadline_miss`` counter.  ``None`` (default) disables
        the check.
    stall_timeout_s:
        Watchdog: when bands are outstanding but none has completed
        for this many seconds, increment ``stream.stalls``, log a
        warning and dump the flight recorder (once per stall episode).
        ``None`` (default) disables the watchdog.
    flight_dir, flight_capacity:
        Where crash/stall flight-recorder dumps land (default: the
        system temp dir) and how many trailing events the recorder
        keeps.

    Use as a context manager, or call :meth:`close` — though dropping
    an engine without closing it is safe too: every segment group
    carries a GC/atexit finalizer (see :mod:`repro.parallel.shmseg`).
    """

    name = "ring"

    def __init__(self, lut: RemapLUT, frame_shape, frame_dtype=np.uint8,
                 workers: int = 2, depth: int = 2, schedule: str = "dynamic",
                 chunk: int | None = None, context: str = "fork",
                 deadline_s: float | None = None,
                 stall_timeout_s: float | None = None,
                 flight_dir=None,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 chroma_lut: RemapLUT | None = None,
                 pixfmt: str = "yuv420"):
        if workers < 1:
            raise ScheduleError(f"workers must be >= 1, got {workers}")
        if depth < 1:
            raise ScheduleError(f"depth must be >= 1, got {depth}")
        if deadline_s is not None and not deadline_s > 0:
            raise ScheduleError(f"deadline_s must be > 0, got {deadline_s}")
        if stall_timeout_s is not None and not stall_timeout_s > 0:
            raise ScheduleError(
                f"stall_timeout_s must be > 0, got {stall_timeout_s}")
        if depth > MAX_RING_DEPTH:
            raise ScheduleError(
                f"depth {depth} exceeds MAX_RING_DEPTH ({MAX_RING_DEPTH}); "
                f"each slot allocates a full frame pair in shared memory")
        frame_shape = tuple(frame_shape)
        if frame_shape[:2] != lut.src_shape:
            raise ScheduleError(
                f"frame shape {frame_shape} does not match LUT source {lut.src_shape}")
        self.lut = lut
        self.chroma_lut = chroma_lut
        self.planar = chroma_lut is not None
        self.workers = workers
        self.depth = depth
        self.schedule = schedule
        self.deadline_s = deadline_s
        self.stall_timeout_s = stall_timeout_s
        self.flightrec = FlightRecorder(capacity=flight_capacity,
                                        directory=flight_dir)
        self.frame_shape = frame_shape
        self.frame_dtype = np.dtype(frame_dtype)
        channels = frame_shape[2:] if len(frame_shape) == 3 else ()
        self.out_shape = lut.out_shape + channels
        #: band items as ``(plane, row0, row1)`` — per-plane on planar
        #: rings (Y bands over the full output height, chroma bands over
        #: half), a single plane 0 otherwise.
        self.bands = [(0, r0, r1) for r0, r1 in
                      plan_bands(lut.out_shape[0], workers, schedule, chunk)]
        #: high-water mark of simultaneously occupied slots (observable
        #: backpressure witness; also exported as the ``ring.in_flight``
        #: gauge).
        self.max_in_flight = 0
        self._closed = False
        self._streaming = False

        if self.planar:
            if pixfmt not in ("yuv420", "nv12"):
                raise ScheduleError(
                    f"planar rings support yuv420/nv12, got {pixfmt!r}")
            if len(frame_shape) != 2:
                raise ScheduleError(
                    f"planar rings take 2-D luma frame shapes, got {frame_shape}")
            h, w = frame_shape
            if h % 2 or w % 2:
                raise ScheduleError(
                    f"planar frame size must be even, got {w}x{h}")
            if chroma_lut.src_shape != (h // 2, w // 2):
                raise ScheduleError(
                    f"chroma LUT source {chroma_lut.src_shape} is not half "
                    f"the luma frame {frame_shape}")
            oh, ow = lut.out_shape
            if chroma_lut.out_shape != (oh // 2, ow // 2):
                raise ScheduleError(
                    f"chroma LUT output {chroma_lut.out_shape} is not half "
                    f"the luma output {lut.out_shape}")
            self.pixfmt = pixfmt
            self._frame_cls = NV12Frame if pixfmt == "nv12" else YUV420Frame
            chroma_bands = plan_bands(oh // 2, workers, schedule,
                                      None if chunk is None else max(1, chunk // 2))
            # NV12 folds both chroma planes into one interleaved band
            # set (plane 1); I420 schedules U and V separately (1, 2).
            chroma_planes = (1,) if pixfmt == "nv12" else (1, 2)
            self.bands += [(plane, r0, r1) for plane in chroma_planes
                           for r0, r1 in chroma_bands]
            self._slots = [
                PlanarFrameSegments(self._frame_cls.plane_shapes(h, w),
                                    self.frame_dtype,
                                    self._frame_cls.plane_shapes(oh, ow))
                for _ in range(depth)]
            self._tables = SharedTables(lut, chroma=chroma_lut, pixfmt=pixfmt)
        else:
            self._slots = [FrameSegments(self.frame_shape, self.frame_dtype,
                                         self.out_shape) for _ in range(depth)]
            self._tables = SharedTables(lut)
        self._segment_groups = list(self._slots) + [self._tables]
        slot_spec = [s.spec for s in self._slots]

        ctx = mp.get_context(context)
        self._task_q = ctx.Queue()
        self._done_q = ctx.Queue()
        tel = get_telemetry()
        tel.gauge("ring.depth").set(depth)
        log.debug("starting %d persistent %s ring workers (depth %d, %s x%d bands)",
                  workers, context, depth, schedule, len(self.bands))
        self._procs = []
        for rank in range(workers):
            p = ctx.Process(
                target=_ring_worker_main,
                args=(rank, self._task_q, self._done_q, dict(self._tables.spec),
                      self._tables.meta, slot_spec, tel.enabled),
                daemon=True,
                name=f"ring-worker-{rank}",
            )
            p.start()
            self._procs.append(p)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Stop workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Drop band tasks still queued (an aborted stream leaves a
        # backlog) so every worker reaches its poison pill promptly
        # instead of grinding through stale work against dying slots.
        try:
            while True:
                self._task_q.get_nowait()
        except (_queue.Empty, OSError, ValueError):
            pass
        for p in self._procs:
            if p.is_alive():
                try:
                    self._task_q.put(None)
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for p in self._procs:
            p.join(timeout=2.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for q in (self._task_q, self._done_q):
            q.cancel_join_thread()
            q.close()
        for group in self._segment_groups:
            group.release()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _check_workers(self):
        for p in self._procs:
            if not p.is_alive():
                rank, code = p.name, p.exitcode
                message = (
                    f"{rank} died with exit code {code} mid-stream; "
                    f"ring shut down and all shared segments released")
                self.flightrec.record("worker_crash", worker=rank, exitcode=code)
                dump = self.flightrec.dump("worker-crash", error=message)
                self.close()
                if dump:
                    message += f" (flight recorder dump: {dump})"
                raise StreamError(message, flight_dump=dump or None)

    def _on_stall(self, tel, waited_s, outstanding, next_seq):
        """Watchdog fired: count, warn and dump (once per episode)."""
        self.flightrec.record("stall", waited_s=round(waited_s, 3),
                              outstanding_bands=outstanding,
                              next_frame_id=next_seq)
        dump = self.flightrec.dump(
            "stall",
            error=f"no band completion for {waited_s:.2f}s "
                  f"({outstanding} bands outstanding)")
        if tel.enabled:
            tel.counter("stream.stalls").inc()
        log.warning(
            "ring stall: no band completion for %.2fs with %d bands "
            "outstanding (next frame %d); flight recorder dump: %s",
            waited_s, outstanding, next_seq, dump or "<unwritable>")

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def stream(self, frames, copy: bool = False):
        """Correct ``frames`` through the ring; yield strictly in order.

        Parameters
        ----------
        frames:
            Iterable of ndarrays or :class:`~repro.core.image.Frame`
            matching the bound geometry.
        copy:
            When false (default) each yielded array aliases the slot's
            shared output buffer, which is recycled when the consumer
            advances — consume or copy before the next iteration, like
            any zero-copy decoder API.  When true each frame owns its
            data and the slot recycles immediately.

        Raises
        ------
        StreamError
            If a worker process dies mid-stream (all shared segments
            are released first).
        ScheduleError
            On geometry mismatch or concurrent/closed use.
        """
        if self._closed:
            raise ScheduleError("ring engine already closed")
        if self._streaming:
            raise ScheduleError("ring engine supports one active stream at a time")
        self._streaming = True
        try:
            yield from self._stream(frames, copy)
        finally:
            self._streaming = False

    def _stream(self, frames, copy):
        tel = get_telemetry()
        free: _queue.Queue = _queue.Queue()
        for i in range(self.depth):
            free.put(i)
        pending = [0] * self.depth        # outstanding bands per slot
        slot_items = [None] * self.depth  # original Frame per slot (or None)
        completed = {}                    # seq -> slot index, bands done
        decode_t0 = {}                    # seq -> decode-start wall time
        abort = threading.Event()
        state = {"produced": None, "error": None}
        flightrec = self.flightrec

        def producer():
            """Decode thread: fill free slots, enqueue bands."""
            seq = 0
            it = iter(frames)
            try:
                while not abort.is_set():
                    t_dec = time.time()
                    t0 = time.perf_counter()
                    try:
                        item = next(it)
                    except StopIteration:
                        break
                    if self.planar:
                        if not isinstance(item, self._frame_cls):
                            raise ScheduleError(
                                f"planar ring expects "
                                f"{self._frame_cls.__name__} items, "
                                f"got {type(item).__name__}")
                        if (item.y.shape != self.frame_shape
                                or item.y.dtype != self.frame_dtype):
                            raise ScheduleError(
                                f"frame {item.y.shape}/{item.y.dtype} does not "
                                f"match ring geometry "
                                f"{self.frame_shape}/{self.frame_dtype}")
                    else:
                        data = item.data if isinstance(item, Frame) else np.asarray(item)
                        if data.shape != self.frame_shape or data.dtype != self.frame_dtype:
                            raise ScheduleError(
                                f"frame {data.shape}/{data.dtype} does not match ring "
                                f"geometry {self.frame_shape}/{self.frame_dtype}")
                    t1 = time.perf_counter()
                    while True:
                        try:
                            slot = free.get(timeout=_POLL_S)
                            break
                        except _queue.Empty:
                            if abort.is_set():
                                return
                    t2 = time.perf_counter()
                    if self.planar:
                        for view, plane in zip(self._slots[slot].src_views,
                                               item.planes):
                            np.copyto(view, plane)
                        slot_items[slot] = None
                    else:
                        np.copyto(self._slots[slot].src_view, data)
                        slot_items[slot] = item if isinstance(item, Frame) else None
                    pending[slot] = len(self.bands)
                    decode_t0[seq] = t_dec
                    in_flight = self.depth - free.qsize()
                    self.max_in_flight = max(self.max_in_flight, in_flight)
                    flightrec.record("decode", frame_id=seq, slot=slot)
                    if tel.enabled:
                        tel.counter("ring.frames").inc()
                        tel.histogram("ring.slot_wait_seconds").observe(t2 - t1)
                        tel.gauge("ring.in_flight").set(in_flight)
                        tel.add_span("ring.decode", t_dec,
                                     time.perf_counter() - t0, cat="ring",
                                     tid="ring-decode", args={"frame_id": seq,
                                                              "slot": slot})
                    for plane, row0, row1 in self.bands:
                        self._task_q.put((seq, slot, plane, row0, row1))
                    seq += 1
                state["produced"] = seq
            except BaseException as exc:  # noqa: BLE001 - re-raised by consumer
                state["error"] = exc
                state["produced"] = seq

        prod = threading.Thread(target=producer, name="ring-decode", daemon=True)
        prod.start()

        next_seq = 0
        held_slot = None  # slot whose zero-copy view the consumer still sees
        clean_exit = False
        last_live_check = time.monotonic()
        last_progress = time.monotonic()  # watchdog: last band completion
        stalled = False                   # one warning+dump per episode
        try:
            while True:
                # a dead worker must be noticed even while the healthy
                # workers keep the completion queue busy (its in-flight
                # band is lost, so its frame would stall forever)
                if time.monotonic() - last_live_check > _POLL_S:
                    self._check_workers()
                    last_live_check = time.monotonic()
                if held_slot is not None:
                    # consumer advanced past the zero-copy view: recycle
                    slot_items[held_slot] = None
                    free.put(held_slot)
                    held_slot = None
                if state["error"] is not None:
                    raise state["error"]
                if next_seq in completed:
                    slot = completed.pop(next_seq)
                    if self.planar:
                        result = self._frame_cls(*self._slots[slot].dst_views)
                    else:
                        result = self._slots[slot].dst_view
                    item = slot_items[slot]
                    if copy:
                        result = result.copy()
                        slot_items[slot] = None
                        free.put(slot)
                    else:
                        held_slot = slot
                    t_dec0 = decode_t0.pop(next_seq, None)
                    if t_dec0 is not None:
                        e2e = time.time() - t_dec0
                        miss = (self.deadline_s is not None
                                and e2e > self.deadline_s)
                        flightrec.record("deliver", frame_id=next_seq,
                                         slot=slot, e2e_s=round(e2e, 6))
                        if miss:
                            flightrec.record("deadline_miss",
                                             frame_id=next_seq,
                                             e2e_s=round(e2e, 6),
                                             deadline_s=self.deadline_s)
                        if tel.enabled:
                            tel.histogram("frame.e2e_latency_seconds").observe(e2e)
                            tel.add_span("frame.lifecycle", t_dec0, e2e,
                                         cat="frame", tid="ring-frames",
                                         args={"frame_id": next_seq,
                                               "slot": slot})
                            if miss:
                                tel.counter("stream.deadline_miss").inc()
                    next_seq += 1
                    if tel.enabled:
                        tel.gauge("ring.in_flight").set(self.depth - free.qsize())
                    yield item.with_data(result) if item is not None else result
                    continue
                if state["produced"] is not None and next_seq >= state["produced"]:
                    clean_exit = True
                    return  # everything produced has been delivered
                t_wait = time.time()
                t0 = time.perf_counter()
                try:
                    seq, slot, rows, rank, delta = self._done_q.get(timeout=_POLL_S)
                except _queue.Empty:
                    self._check_workers()
                    if (self.stall_timeout_s is not None and not stalled
                            and sum(pending) > 0
                            and time.monotonic() - last_progress
                            > self.stall_timeout_s):
                        stalled = True
                        self._on_stall(tel, time.monotonic() - last_progress,
                                       sum(pending), next_seq)
                    continue
                last_progress = time.monotonic()
                stalled = False
                flightrec.record("band_done", frame_id=seq, slot=slot,
                                 rows=rows, worker=rank)
                if delta:
                    for span in delta.get("spans", ()):
                        flightrec.record_span(span)
                if tel.enabled:
                    dt = time.perf_counter() - t0
                    tel.histogram("ring.deliver_wait_seconds").observe(dt)
                    if delta:
                        tel.merge(delta)
                    tel.add_span("ring.deliver", t_wait, dt, cat="ring",
                                 tid="ring-deliver", args={"frame_id": seq})
                pending[slot] -= 1  # one completion message per band
                if pending[slot] == 0:
                    completed[seq] = slot
        finally:
            abort.set()
            prod.join(timeout=5.0)
            if not clean_exit and not self._closed:
                # abandoned or failed mid-stream: stale band tasks may
                # still reference slots — the engine cannot be reused.
                self.close()

    # ------------------------------------------------------------------
    @classmethod
    def for_stream(cls, lut: RemapLUT, first_frame, **kwargs) -> "RingEngine":
        """Build an engine sized from the first frame of a stream.

        A :class:`~repro.video.yuv.YUV420Frame` or
        :class:`~repro.video.yuv.NV12Frame` first frame selects the
        planar ring (pass ``chroma_lut=`` alongside); NV12 pins
        ``pixfmt="nv12"`` so band scheduling uses the single
        interleaved chroma plane.
        """
        if isinstance(first_frame, (YUV420Frame, NV12Frame)):
            if kwargs.get("chroma_lut") is None:
                raise ScheduleError(
                    f"{type(first_frame).__name__} streams need a "
                    "chroma_lut for the planar ring")
            kwargs.setdefault(
                "pixfmt",
                "nv12" if isinstance(first_frame, NV12Frame) else "yuv420")
            return cls(lut, first_frame.y.shape, first_frame.y.dtype, **kwargs)
        data = first_frame.data if isinstance(first_frame, Frame) else np.asarray(first_frame)
        return cls(lut, data.shape, data.dtype, **kwargs)


def ring_stream(lut: RemapLUT, frames, copy: bool = False, **kwargs):
    """One-shot helper: build a ring from the stream's first frame,
    run the whole stream through it, and close the engine.

    The geometry is taken from the first frame (the engine binds to
    fixed shapes), so the source iterable may be a generator.  YUV420
    and NV12 sources (with ``chroma_lut=``) run through the planar
    ring and yield :class:`~repro.video.yuv.YUV420Frame` /
    :class:`~repro.video.yuv.NV12Frame` results respectively.
    """
    it = iter(frames)
    try:
        first = next(it)
    except StopIteration:
        return
    engine = RingEngine.for_stream(lut, first, **kwargs)
    with engine:
        yield from engine.stream(chain([first], it), copy=copy)
