"""The evaluation: one function per table/figure (T1, T2, F1..F12).

Each experiment returns a :class:`~repro.bench.report.Table`; the
``benchmarks/`` tree wraps these in pytest-benchmark entry points and
EXPERIMENTS.md quotes their output.  The registry :data:`EXPERIMENTS`
maps experiment ids to functions so examples and docs can run any of
them by name.

Model-driven experiments (platform comparisons, scaling sweeps) are
deterministic; host-measured experiments (T2, parts of F7/F8) time the
real numpy kernels on the machine running the suite.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import BenchmarkError, CapacityError
from ..core.brown_conrady import fit_brown_conrady
from ..core.fixedpoint import FixedPointLUT
from ..core.intrinsics import CameraIntrinsics
from ..core.mapping import perspective_map
from ..core.quality import (
    perspective_reference_coords,
    psnr,
    warp_composition_error,
)
from ..core.remap import RemapLUT, remap, remap_profiled
from ..core.interpolation import sample
from ..accel import kernel_spec, place
from ..accel.platform import STANDARD_RESOLUTIONS, Workload
from ..accel.presets import (
    all_platforms,
    cell_ps3,
    gtx280,
    sequential_reference,
    xeon_2010,
    xeon_modern,
)
from ..parallel.partition import blocks
from ..sim.cache import CacheConfig, CacheSim
from ..sim.trace import tile_gather_trace
from ..video import synth
from .harness import amdahl_fit, resolution, standard_field, standard_sensor, standard_workload
from .report import Table

__all__ = [
    "t1_platforms",
    "t2_sequential_profile",
    "f1_multicore_scaling",
    "f2_cell_scaling",
    "f3_gpu_block_sweep",
    "f4_platform_fps",
    "f5_dma_overlap",
    "f6_tile_size_cache",
    "f7_lut_vs_otf",
    "f8_interpolation",
    "f9_roofline",
    "f10_model_quality",
    "f11_scaling_efficiency",
    "f12_fixed_point",
    "EXPERIMENTS",
    "run_experiment",
]


# ----------------------------------------------------------------------
# T1 — platform characteristics
# ----------------------------------------------------------------------
def t1_platforms() -> Table:
    """Machine-park characteristics table."""
    table = Table(
        "T1: platform characteristics (model parameters)",
        ["platform", "cores", "clock_ghz", "simd", "peak_gflops", "mem_bw_gbps"],
    )
    for p in all_platforms():
        d = p.describe()
        table.add_row(d["platform"], d.get("cores", 1), d.get("clock_ghz", 0.0),
                      d.get("simd", "-"), d["peak_gflops"], d["mem_bw_gbps"])
    table.notes.append("Cell local store: 256 KB/SPE; FPGA line buffer: 192 KB; "
                       "GPU host link: PCIe 5 GB/s.")
    return table


# ----------------------------------------------------------------------
# T2 — sequential profile (host-measured)
# ----------------------------------------------------------------------
def t2_sequential_profile(res: str = "720p", method: str = "bilinear") -> Table:
    """Wall-clock stage breakdown of one correction on this host."""
    w, h = resolution(res)
    t0 = time.perf_counter()
    field = standard_field(w, h)
    map_build = time.perf_counter() - t0
    frame = synth.urban(w, h)
    _, prof = remap_profiled(frame, field, method=method)
    prof.map_build = map_build
    table = Table(
        f"T2: sequential stage profile ({res}, {method}, host-measured)",
        ["stage", "ms", "pct_of_frame"],
    )
    per_frame = prof.total - prof.map_build - prof.lut_build
    for stage, seconds in prof.as_dict().items():
        if stage == "total":
            continue
        pct = 100.0 * seconds / per_frame if stage in ("gather", "interpolate", "store") else float("nan")
        table.add_row(stage, seconds * 1e3, pct)
    table.add_row("per_frame_total", per_frame * 1e3, 100.0)
    table.notes.append("map_build and lut_build amortize across a stream; "
                       "per-frame work is gather+interpolate+store.")
    return table


# ----------------------------------------------------------------------
# F1 — multicore speedup vs threads
# ----------------------------------------------------------------------
def f1_multicore_scaling(resolutions=("VGA", "720p", "1080p"),
                         mode: str = "otf") -> Table:
    """Speedup over the 1-thread scalar run, per resolution."""
    smp = xeon_modern()
    table = Table(
        f"F1: SMP speedup vs threads ({mode} kernel, {smp.name})",
        ["resolution", "threads", "fps", "speedup", "efficiency", "bottleneck"],
    )
    for res in resolutions:
        workload = standard_workload(res, mode=mode)
        base = smp.estimate_frame(workload, threads=1)
        for rep in smp.scaling(workload):
            t = rep.notes["threads"]
            s = rep.speedup_over(base)
            table.add_row(res, t, rep.fps, s, s / t, rep.bottleneck)
    table.notes.append("Scaling saturates where the kernel turns memory-bound; "
                       "the knee moves left for the LUT kernel (see F7).")
    return table


# ----------------------------------------------------------------------
# F2 — Cell speedup vs SPEs, single vs double buffering
# ----------------------------------------------------------------------
def f2_cell_scaling(res: str = "720p", method: str = "bilinear",
                    mode: str = "otf") -> Table:
    """SPE scaling with and without DMA double buffering."""
    cell = cell_ps3()
    workload = standard_workload(res, method=method, mode=mode)
    table = Table(
        f"F2: Cell scaling ({res}, {method}/{mode})",
        ["spes", "buffering", "fps", "speedup", "bus_util", "bottleneck"],
    )
    base = cell.simulate(workload, spes=1, double_buffering=False)
    for db in (False, True):
        for rep in cell.scaling(workload, double_buffering=db):
            table.add_row(rep.notes["spes"], "double" if db else "single",
                          rep.fps, rep.speedup_over(base),
                          rep.notes["bus_utilization"], rep.bottleneck)
    table.notes.append("Double buffering halves the usable local store but "
                       "overlaps DMA with compute.")
    return table


# ----------------------------------------------------------------------
# F3 — GPU block-size / occupancy sweep
# ----------------------------------------------------------------------
def f3_gpu_block_sweep(res: str = "720p", method: str = "bilinear") -> Table:
    """Launch-configuration sweep at two register pressures."""
    gpu = gtx280()
    workload = standard_workload(res, method=method, mode="lut")
    table = Table(
        f"F3: GPU block-size sweep ({res}, {method}/lut)",
        ["block", "regs/thread", "occupancy", "limiter", "kernel_ms", "fps", "bottleneck"],
    )
    for regs in (16, 32):
        for rep in gpu.block_size_sweep(workload, registers_per_thread=regs):
            table.add_row(rep.notes["block_size"], regs, rep.notes["occupancy"],
                          rep.notes["occupancy_limiter"],
                          rep.notes["kernel_ns"] / 1e6, rep.fps, rep.bottleneck)
    table.notes.append("fps is end-to-end including PCIe; kernel_ms is device-only.")
    return table


# ----------------------------------------------------------------------
# F4 — headline cross-platform comparison
# ----------------------------------------------------------------------
def _best_estimate(platform, res: str, method: str):
    """Best (mode-tuned) report for a platform at a resolution."""
    best = None
    for mode in ("lut", "otf"):
        workload = standard_workload(res, method=method, mode=mode)
        try:
            if hasattr(platform, "simulate"):
                rep = platform.simulate(workload)
            elif hasattr(platform, "block_size_sweep"):
                rep = platform.estimate_frame(workload, overlap_transfers=True)
            else:
                rep = platform.estimate_frame(workload)
        except CapacityError:
            continue
        rep.notes["mode"] = mode
        if best is None or rep.frame_ns < best.frame_ns:
            best = rep
    if best is None:
        raise BenchmarkError(f"no feasible configuration for {platform.name} at {res}")
    return best


def f4_platform_fps(resolutions=None, method: str = "bilinear") -> Table:
    """Frames/s of every platform at every resolution (mode-tuned)."""
    if resolutions is None:
        resolutions = list(STANDARD_RESOLUTIONS)
    table = Table(
        f"F4: corrected frames per second ({method}, best of lut/otf per platform)",
        ["resolution", "platform", "mode", "fps", "speedup_vs_seq", "bottleneck"],
    )
    for res in resolutions:
        seq = _best_estimate(sequential_reference(), res, method)
        for platform in all_platforms():
            rep = _best_estimate(platform, res, method)
            table.add_row(res, platform.name, rep.notes["mode"], rep.fps,
                          rep.speedup_over(seq), rep.bottleneck)
    table.notes.append("speedup_vs_seq is against the tuned single-core scalar run.")
    return table


# ----------------------------------------------------------------------
# F5 — Cell DMA/compute overlap vs tile size
# ----------------------------------------------------------------------
def f5_dma_overlap(res: str = "720p", method: str = "bicubic",
                   mode: str = "otf") -> Table:
    """Tile-size sweep on Cell: overlap efficiency of double buffering."""
    cell = cell_ps3()
    workload = standard_workload(res, method=method, mode=mode)
    table = Table(
        f"F5: Cell DMA/compute overlap vs tile size ({res}, {method}/{mode})",
        ["tile_rows", "buffering", "frame_ms", "compute_ms", "dma_exposed_ms",
         "bus_util", "overlap_gain"],
    )
    max_single = cell.max_tile_rows(workload, double_buffering=False)
    max_double = cell.max_tile_rows(workload, double_buffering=True)
    candidates = sorted({1, 2, 4, 8, max_double, max_single})
    for rows in candidates:
        reps = {}
        for db in (False, True):
            limit = max_double if db else max_single
            if rows > limit:
                continue
            reps[db] = cell.simulate(workload, double_buffering=db, tile_rows=rows)
        gain = (reps[False].frame_ns / reps[True].frame_ns
                if False in reps and True in reps else float("nan"))
        for db, rep in sorted(reps.items()):
            table.add_row(rows, "double" if db else "single",
                          rep.frame_ns / 1e6,
                          rep.breakdown.phases.get("compute", 0) / 1e6,
                          rep.breakdown.phases.get("dma_exposed", 0) / 1e6,
                          rep.notes["bus_utilization"],
                          gain if db else float("nan"))
    table.notes.append(f"local-store limits: {max_single} rows single-buffered, "
                       f"{max_double} double-buffered.")
    return table


# ----------------------------------------------------------------------
# F6 — tile size vs gather locality (cache replay)
# ----------------------------------------------------------------------
def f6_tile_size_cache(res: str = "720p", cache_kb=(2, 4, 8, 16, 32, 64),
                       band_rows: int = 96, block: int = 48,
                       pixel_bytes: int = 4) -> Table:
    """Gather locality: cache-size sweep, row-major vs blocked traversal.

    Replays the *actual* source-gather address trace of the frame's top
    band (where the fisheye arcs are widest and locality is worst)
    through a set-associative LRU cache, once in row-major output order
    (the naive loop) and once restructured into ``block x block``
    tiles.  Blocking reaches the hit-rate plateau with a ~4x smaller
    cache — the paper's justification for tiled decomposition on
    cache-based multicores.
    """
    from ..parallel.partition import Tile
    w, h = resolution(res)
    field = standard_field(w, h)
    lut = RemapLUT(field, method="nearest")  # 1 tap/pixel: the address stream
    band = [Tile(0, band_rows, 0, w)]
    tiles = [Tile(t.row0, t.row1, t.col0, t.col1)
             for t in blocks(band_rows, w, block, block)]
    trace_row = np.concatenate(
        [tile_gather_trace(lut, t, pixel_bytes=pixel_bytes) for t in band])
    trace_blk = np.concatenate(
        [tile_gather_trace(lut, t, pixel_bytes=pixel_bytes) for t in tiles])
    table = Table(
        f"F6: gather locality, row-major vs {block}x{block} blocked "
        f"({res} top {band_rows} rows, {pixel_bytes} B/px)",
        ["cache_kb", "traversal", "hit_rate", "miss_bytes_per_px"],
    )
    for kb in cache_kb:
        cache = CacheSim(CacheConfig(size_bytes=kb * 1024, line_bytes=64, ways=4))
        for label, trace in (("row-major", trace_row), ("blocked", trace_blk)):
            stats = cache.replay(trace)
            table.add_row(kb, label, stats.hit_rate,
                          stats.miss_bytes(64) / stats.accesses)
    table.notes.append("Blocked traversal reaches its plateau with a ~4x "
                       "smaller cache than the row-major loop.")
    return table


# ----------------------------------------------------------------------
# F7 — LUT vs on-the-fly
# ----------------------------------------------------------------------
def f7_lut_vs_otf(res: str = "720p", method: str = "bilinear") -> Table:
    """The central ablation: precomputed table vs recomputation."""
    platforms = [sequential_reference(), xeon_2010(), xeon_modern(), cell_ps3(), gtx280()]
    table = Table(
        f"F7: LUT vs on-the-fly mapping ({res}, {method})",
        ["platform", "fps_lut", "fps_otf", "lut_advantage", "lut_bound", "otf_bound"],
    )
    wl_lut = standard_workload(res, method=method, mode="lut")
    wl_otf = standard_workload(res, method=method, mode="otf")
    for p in platforms:
        if hasattr(p, "simulate"):
            r_lut = p.simulate(wl_lut)
            r_otf = p.simulate(wl_otf)
        else:
            r_lut = p.estimate_frame(wl_lut)
            r_otf = p.estimate_frame(wl_otf)
        table.add_row(p.name, r_lut.fps, r_otf.fps, r_lut.fps / r_otf.fps,
                      r_lut.bottleneck, r_otf.bottleneck)

    # Cell priced with the host library's compact int32 table layout
    # (e.g. 25 B/entry bilinear vs the 49 B float64 layout): how much of
    # the Cell's LUT handicap is entry size rather than architecture.
    cell = cell_ps3()
    wl_host_layout = standard_workload(
        res, method=method, mode="lut",
        lut_entry_bytes=RemapLUT.entry_bytes_for(method))
    r_compact = cell.simulate(wl_host_layout)
    r_cell_otf = cell.simulate(wl_otf)
    table.add_row("cell(hostlut)", r_compact.fps, r_cell_otf.fps,
                  r_compact.fps / r_cell_otf.fps, r_compact.bottleneck,
                  r_cell_otf.bottleneck)

    # Host measurement: LUT apply vs full on-the-fly remap.  One warmup
    # apply first — the per-tap weight rows are derived lazily from the
    # compact per-axis fractions on first use and then cached, a
    # per-stream (not per-frame) cost in the steady state we are timing.
    w, h = resolution(res)
    field = standard_field(w, h)
    frame = synth.urban(w, h)
    lut = RemapLUT(field, method=method)
    lut.apply(frame)
    t0 = time.perf_counter()
    lut.apply(frame)
    t_lut = time.perf_counter() - t0
    t0 = time.perf_counter()
    remap(frame, field, method=method)
    t_otf = time.perf_counter() - t0
    table.add_row("host(numpy)", 1.0 / t_lut, 1.0 / t_otf, t_otf / t_lut, "-", "-")
    table.notes.append("Bandwidth-rich platforms favour the LUT; "
                       "bandwidth-starved ones (Cell) favour recomputation.")
    table.notes.append("cell(hostlut) re-prices the Cell with the host "
                       "kernel's compact int32+fraction entries "
                       f"({RemapLUT.entry_bytes_for(method):.0f} B/px "
                       f"{method}) instead of the deployed packed layout.")
    return table


# ----------------------------------------------------------------------
# F8 — interpolation cost/quality
# ----------------------------------------------------------------------
def f8_interpolation(res: str = "VGA") -> Table:
    """nearest/bilinear/bicubic: host cost, model fps, PSNR vs reference."""
    w, h = resolution(res)
    sensor, lens = standard_sensor(w, h)
    field = standard_field(w, h)

    # Ground truth: a scene rendered through the lens, then corrected.
    from scipy import ndimage

    from ..video.distort import FisheyeRenderer, scene_camera_for_sensor
    scene_cam = scene_camera_for_sensor(sensor, lens, w, h)
    # Band-limit the scene: interpolation quality is only well defined on
    # signals below Nyquist (raw step edges alias under every kernel).
    scene = ndimage.gaussian_filter(
        synth.urban(w, h, seed=11).astype(np.float64), 1.2)
    scene = np.clip(np.rint(scene), 0, 255).astype(np.uint8)
    renderer = FisheyeRenderer(scene_cam, lens, sensor)
    fisheye_frame = renderer.render(scene)

    # Reference: sample the scene through the *composed exact* map.
    focal_out = float(lens.magnification(1e-4)) * 0.5
    out_cam = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=(w - 1) / 2.0,
                               cy=(h - 1) / 2.0, width=w, height=h)
    exp_x, exp_y = perspective_reference_coords(out_cam, scene_cam)
    reference = sample(scene, exp_x, exp_y, method="bicubic")
    valid = field.valid_mask() & np.isfinite(exp_x)
    # Quality is only defined where the scene plane covers the FOV.
    inside_scene = (exp_x >= 0) & (exp_x <= w - 1) & (exp_y >= 0) & (exp_y <= h - 1)
    valid &= inside_scene

    smp = xeon_2010()
    table = Table(
        f"F8: interpolation method cost vs quality ({res})",
        ["method", "taps", "host_ms", "model_fps_smp", "psnr_db"],
    )
    for method in ("nearest", "bilinear", "bicubic"):
        lut = RemapLUT(field, method=method)
        t0 = time.perf_counter()
        corrected = lut.apply(fisheye_frame)
        host_ms = (time.perf_counter() - t0) * 1e3
        rep = smp.estimate_frame(standard_workload(res, method=method))
        q = psnr(reference.astype(np.float64), corrected.astype(np.float64),
                 peak=255.0, mask=valid)
        table.add_row(method, lut.taps, host_ms, rep.fps, q)
    table.notes.append("PSNR against the scene sampled through the exact "
                       "composed map, inside the valid FOV only.")
    return table


# ----------------------------------------------------------------------
# F9 — roofline
# ----------------------------------------------------------------------
def f9_roofline(pixel_bytes: int = 1) -> Table:
    """Arithmetic-intensity placement of both kernel modes, all platforms."""
    table = Table(
        "F9: roofline placement (flops/DRAM-byte vs attainable GFLOP/s)",
        ["platform", "kernel", "intensity", "ridge", "attainable", "peak", "bound"],
    )
    specs = [kernel_spec("bilinear", "lut", pixel_bytes),
             kernel_spec("bilinear", "otf", pixel_bytes),
             kernel_spec("bicubic", "otf", pixel_bytes)]
    for p in all_platforms():
        for spec in specs:
            pt = place(p, spec)
            table.add_row(pt.platform, pt.kernel, pt.intensity,
                          p.peak_gflops / p.mem_bw_gbps,
                          pt.attainable_gflops, pt.peak_gflops, pt.bound)
    table.notes.append("The LUT kernel sits left of every cached platform's "
                       "ridge point (all bandwidth-bound on it); only the "
                       "line-buffered FPGA pipeline escapes.")
    return table


# ----------------------------------------------------------------------
# F10 — correction-model quality (exact vs Brown–Conrady)
# ----------------------------------------------------------------------
def f10_model_quality(size: int = 512) -> Table:
    """Geometric error of exact trigonometric vs polynomial correction."""
    sensor, lens = standard_sensor(size, size)
    from ..core.mapping import fisheye_forward_map
    from ..core.quality import fov_retention
    scene_cam = CameraIntrinsics.from_fov(size, size, np.deg2rad(150.0))
    rendering = fisheye_forward_map(scene_cam, lens, sensor)

    focal_out = float(lens.magnification(1e-4)) * 0.5
    out_cam = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=(size - 1) / 2.0,
                               cy=(size - 1) / 2.0, width=size, height=size)
    exp_x, exp_y = perspective_reference_coords(out_cam, scene_cam)

    from ..core.kannala import fit_kannala_brandt

    models = [("exact(equidistant)", lens)]
    for order in (1, 2, 3):
        models.append((f"brown_conrady(k{order})",
                       fit_brown_conrady(lens, max_theta=np.deg2rad(70.0), order=order)))
    # the modern comparator: same idea (polynomial), right variable (theta)
    models.append(("kannala_brandt(k4)", fit_kannala_brandt(lens, order=4)))

    table = Table(
        f"F10: correction-model geometric quality ({size}x{size}, 180-deg lens)",
        ["model", "rms_err_interior_px", "median_err_px", "p90_err_px",
         "frac_gt2px", "fov_retention"],
        float_fmt="{:.3f}",
    )
    # Error is only meaningful where ground truth exists: the expected
    # scene coordinate must lie on the scene plane.
    truth = ((exp_x >= 0) & (exp_x <= size - 1)
             & (exp_y >= 0) & (exp_y <= size - 1))
    # Interior = field angles up to 45 degrees in the output view.
    rad = np.hypot(*np.meshgrid(np.arange(size) - out_cam.cx,
                                np.arange(size) - out_cam.cy))
    interior = rad <= out_cam.fx * np.tan(np.pi / 4.0)
    for name, model in models:
        correction = perspective_map(sensor, model, out_cam)
        err = warp_composition_error(correction, rendering, exp_x, exp_y)
        ok = truth & np.isfinite(err)
        finite = err[ok]
        if finite.size == 0:
            raise BenchmarkError(f"model {name} produced no valid pixels")
        inner = err[ok & interior]
        table.add_row(name,
                      float(np.sqrt(np.mean(inner ** 2))) if inner.size else float("nan"),
                      float(np.median(finite)),
                      float(np.percentile(finite, 90)),
                      float((finite > 2.0).mean()),
                      fov_retention(correction, lens, sensor))
    table.notes.append("Brown-Conrady (polynomial in tan(theta)) cannot "
                       "represent a 180-deg lens: error explodes toward the "
                       "periphery. Kannala-Brandt (polynomial in theta) is "
                       "sub-pixel over the full field -- the failure was the "
                       "expansion variable, not polynomials.")
    return table


# ----------------------------------------------------------------------
# F11 — strong-scaling efficiency + Amdahl fit
# ----------------------------------------------------------------------
def f11_scaling_efficiency(res: str = "1080p", mode: str = "otf",
                           pitch_deg: float = 55.0) -> Table:
    """Parallel efficiency and the fitted serial fraction per schedule.

    Uses a tilted (virtual-PTZ) view: ~10 % of the output falls outside
    the hemisphere and is nearly free, so contiguous static chunks are
    unbalanced and the schedules separate — the load-imbalance effect
    the paper's scheduling section discusses.
    """
    smp = xeon_modern()
    workload = standard_workload(res, mode=mode, pitch=np.deg2rad(pitch_deg))
    table = Table(
        f"F11: strong-scaling efficiency and Amdahl fit "
        f"({res}, {mode}, pitch {pitch_deg:.0f} deg, {smp.name})",
        ["schedule", "threads", "speedup", "efficiency", "serial_fraction_fit"],
        float_fmt="{:.3f}",
    )
    for schedule in ("static", "dynamic", "guided"):
        smp.schedule = schedule
        base = smp.estimate_frame(workload, threads=1)
        threads, speedups = [], []
        for rep in smp.scaling(workload):
            t = rep.notes["threads"]
            s = rep.speedup_over(base)
            threads.append(t)
            speedups.append(s)
        serial, _ = amdahl_fit(threads, speedups)
        for t, s in zip(threads, speedups):
            table.add_row(schedule, t, s, s / t, serial)
    table.notes.append("The serial fraction is fitted from the curve; static "
                       "scheduling inflates it via load imbalance.")
    return table


# ----------------------------------------------------------------------
# F12 — fixed-point LUT precision
# ----------------------------------------------------------------------
def f12_fixed_point(res: str = "VGA", frac_bits=(2, 4, 6, 8, 10)) -> Table:
    """Weight-precision sweep: quality vs table size vs Cell throughput."""
    w, h = resolution(res)
    field = standard_field(w, h)
    frame = synth.urban(w, h, seed=3)
    float_lut = RemapLUT(field, method="bilinear")
    reference = float_lut.apply(frame).astype(np.float64)
    mask = field.valid_mask()
    cell = cell_ps3()
    table = Table(
        f"F12: fixed-point LUT precision sweep ({res}, bilinear)",
        ["frac_bits", "packed_entry_bytes", "psnr_vs_float_db", "max_abs_err", "cell_fps"],
    )
    for bits in frac_bits:
        fp = FixedPointLUT(field, method="bilinear", frac_bits=bits)
        out = fp.apply(frame).astype(np.float64)
        q = psnr(reference, out, peak=255.0, mask=mask)
        err = float(np.abs(out - reference)[mask].max())
        workload = Workload.from_field(field, method="bilinear", mode="lut",
                                       lut_entry_bytes=fp.packed_entry_bytes())
        rep = cell.simulate(workload)
        table.add_row(bits, fp.packed_entry_bytes(), q, err, rep.fps)
    table.notes.append("PSNR gains ~6 dB per extra fraction bit pair; the "
                       "DMA-bound Cell fps tracks the packed entry size.")
    return table


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _ablation(name):
    """Late import breaks the experiments <-> ablations cycle."""
    from . import ablations

    return getattr(ablations, name)


EXPERIMENTS = {
    "A1": lambda **kw: _ablation("a1_energy")(**kw),
    "A2": lambda **kw: _ablation("a2_antialias")(**kw),
    "A3": lambda **kw: _ablation("a3_prefetch")(**kw),
    "A4": lambda **kw: _ablation("a4_application")(**kw),
    "A5": lambda **kw: _ablation("a5_map_construction")(**kw),
    "H1": lambda **kw: _ablation("h1_host_scaling")(**kw),
    "H2": lambda **kw: _ablation("h2_model_validation")(**kw),
    "T1": t1_platforms,
    "T2": t2_sequential_profile,
    "F1": f1_multicore_scaling,
    "F2": f2_cell_scaling,
    "F3": f3_gpu_block_sweep,
    "F4": f4_platform_fps,
    "F5": f5_dma_overlap,
    "F6": f6_tile_size_cache,
    "F7": f7_lut_vs_otf,
    "F8": f8_interpolation,
    "F9": f9_roofline,
    "F10": f10_model_quality,
    "F11": f11_scaling_efficiency,
    "F12": f12_fixed_point,
}


def run_experiment(exp_id: str) -> Table:
    """Run one experiment by id (``T1``, ``F4``, ...)."""
    try:
        fn = EXPERIMENTS[exp_id.upper()]
    except KeyError:
        raise BenchmarkError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}") from None
    return fn()
