"""Benchmark harness: experiment registry, workload cache, reporting."""

from .experiments import EXPERIMENTS, run_experiment
from .harness import amdahl_fit, resolution, standard_field, standard_sensor, standard_workload
from .report import Table, ascii_series, format_value

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "Table",
    "ascii_series",
    "format_value",
    "standard_sensor",
    "standard_field",
    "standard_workload",
    "resolution",
    "amdahl_fit",
]
