"""Robust statistics for host-measured benchmark rows.

Wall-clock timings on a shared machine are contaminated by scheduler
noise; single-shot numbers (and means) mislead.  The helpers here are
the standard robust kit:

- :func:`repeat_timing` — run a thunk ``n`` times, return all samples,
- :func:`robust_summary` — median + MAD-derived spread + a
  percentile-bootstrap confidence interval for the median.

Bootstrap resampling uses an explicit seed: the *analysis* is
deterministic even though the timings are not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import BenchmarkError

__all__ = ["TimingSummary", "repeat_timing", "robust_summary"]


@dataclass(frozen=True)
class TimingSummary:
    """Robust summary of one timing sample set (seconds)."""

    samples: int
    median: float
    mad: float              # median absolute deviation (raw, not scaled)
    ci_low: float           # bootstrap 95% CI for the median
    ci_high: float

    @property
    def spread_normalized(self) -> float:
        """MAD / median — the robust coefficient of variation."""
        return self.mad / self.median if self.median > 0 else float("inf")

    def format_ms(self) -> str:
        return (f"{self.median * 1e3:.2f} ms "
                f"[{self.ci_low * 1e3:.2f}, {self.ci_high * 1e3:.2f}]")


def repeat_timing(thunk, repeats: int = 7, warmup: int = 1) -> np.ndarray:
    """Time ``thunk()`` ``repeats`` times after ``warmup`` discarded runs."""
    if repeats < 1 or warmup < 0:
        raise BenchmarkError(f"need repeats >= 1 and warmup >= 0, got "
                             f"{repeats}/{warmup}")
    for _ in range(warmup):
        thunk()
    out = np.empty(repeats)
    for i in range(repeats):
        t0 = time.perf_counter()
        thunk()
        out[i] = time.perf_counter() - t0
    return out


def robust_summary(samples, confidence: float = 0.95,
                   bootstrap: int = 2000, seed: int = 0) -> TimingSummary:
    """Median / MAD / bootstrap CI of a sample set."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise BenchmarkError(f"need a non-empty 1-D sample array, got {samples.shape}")
    if not 0.5 < confidence < 1.0:
        raise BenchmarkError(f"confidence must be in (0.5, 1), got {confidence}")
    if bootstrap < 10:
        raise BenchmarkError(f"bootstrap must be >= 10, got {bootstrap}")
    med = float(np.median(samples))
    mad = float(np.median(np.abs(samples - med)))
    rng = np.random.default_rng(seed)
    resamples = rng.choice(samples, size=(bootstrap, samples.size), replace=True)
    medians = np.median(resamples, axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(medians, [alpha, 1.0 - alpha])
    return TimingSummary(samples=samples.size, median=med, mad=mad,
                         ci_low=float(lo), ci_high=float(hi))
