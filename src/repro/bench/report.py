"""Plain-text table/series rendering for the benchmark harness.

Every experiment ends in a :class:`Table`; ``str(table)`` is the
artifact EXPERIMENTS.md quotes.  Rendering rules: columns auto-sized,
floats shown with a per-column format, a separator under the header —
boring on purpose, so diffs between runs are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BenchmarkError

__all__ = ["Table", "format_value", "ascii_series"]


def format_value(value, float_fmt: str = "{:.2f}") -> str:
    """Render one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if value == float("inf"):
            return "inf"
        return float_fmt.format(value)
    return str(value)


@dataclass
class Table:
    """A titled result table.

    Attributes
    ----------
    title:
        Experiment id + description ("F1: speedup vs threads ...").
    headers:
        Column names.
    rows:
        Lists matching ``headers`` in length.
    notes:
        Free-form caption lines printed under the table.
    """

    title: str
    headers: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    float_fmt: str = "{:.2f}"

    def add_row(self, *values):
        if len(values) != len(self.headers):
            raise BenchmarkError(
                f"row has {len(values)} cells but table has {len(self.headers)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise BenchmarkError(f"no column {name!r} in {self.headers}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[format_value(v, self.float_fmt) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(parts):
            return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

        out = [self.title, line(self.headers), line(["-" * w for w in widths])]
        out.extend(line(row) for row in cells)
        out.extend(f"  {note}" for note in self.notes)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def ascii_series(xs, ys, width: int = 48, label: str = "") -> str:
    """A one-line-per-point ASCII bar series (quick visual for figures)."""
    if len(xs) != len(ys) or not xs:
        raise BenchmarkError("series needs matching, non-empty x/y sequences")
    peak = max(ys)
    scale = (width / peak) if peak > 0 else 0.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(0, int(round(y * scale)))
        lines.append(f"{str(x):>10} | {bar} {format_value(float(y))}")
    return "\n".join(lines)
