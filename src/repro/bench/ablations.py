"""Ablation experiments beyond the reconstructed core set (A1..A3).

A1 — energy per corrected frame across the machine park (the era's
     performance-per-watt argument).
A2 — output supersampling: peripheral aliasing vs cost.
A3 — does a hardware stream prefetcher rescue the row-major gather
     traversal that F6 showed needs a 4x bigger cache?
"""

from __future__ import annotations

import time

import numpy as np

from ..accel.energy import energy_report
from ..accel.presets import all_platforms
from ..core.intrinsics import CameraIntrinsics
from ..core.antialias import SupersampledLUT, minification_map
from ..core.quality import psnr
from ..core.remap import RemapLUT
from ..parallel.partition import Tile
from ..sim.cache import CacheConfig, CacheSim
from ..sim.prefetch import PrefetchConfig, PrefetchingCache
from ..sim.trace import tile_gather_trace
from ..video import synth
from .harness import resolution, standard_field, standard_sensor
from .report import Table

__all__ = ["a1_energy", "a2_antialias", "a3_prefetch", "a4_application",
           "a5_map_construction", "h1_host_scaling", "h2_model_validation"]


def a1_energy(res: str = "720p", method: str = "bilinear") -> Table:
    """Joules per frame and Mpx/J for every platform (mode-tuned)."""
    from .experiments import _best_estimate

    table = Table(
        f"A1: energy per corrected frame ({res}, {method}, best mode per platform)",
        ["platform", "mode", "fps", "watts_avg", "mJ_per_frame", "mpx_per_joule"],
    )
    for platform in all_platforms():
        try:
            rep = _best_estimate(platform, res, method)
        except Exception:
            continue
        e = energy_report(rep)
        table.add_row(platform.name, rep.notes.get("mode", "-"), rep.fps,
                      e.watts_average, e.joules_per_frame * 1e3,
                      e.mpixels_per_joule)
    table.notes.append("Idle power is charged during exposed DMA/PCIe/memory "
                       "stalls; active power during compute.")
    return table


def a2_antialias(res: str = "VGA", factors=(1, 2, 3)) -> Table:
    """Output supersampling: quality on a fine texture vs cost.

    Renders a fine checkerboard through the lens, corrects it at
    several supersampling factors, and scores each against the heavily
    supersampled reference (factor 4), alongside host cost and the
    measured peak minification of the map (the aliasing driver).
    """
    w, h = resolution(res)
    sensor, lens = standard_sensor(w, h)
    zoom = 0.5
    focal_out = float(lens.magnification(1e-4)) * zoom

    def builder(xs, ys):
        from ..core import geometry

        rays = geometry.rays_from_pixels(xs, ys, focal_out, focal_out,
                                         (w - 1) / 2.0, (h - 1) / 2.0)
        theta, phi = geometry.angles_from_rays(rays)
        with np.errstate(invalid="ignore"):
            r = lens.angle_to_radius(theta)
        return (sensor.cx + r * np.cos(phi), sensor.cy + r * np.sin(phi),
                sensor.width, sensor.height)

    # fine-texture workload rendered through the lens
    from ..video.distort import FisheyeRenderer, scene_camera_for_sensor

    scene_cam = scene_camera_for_sensor(sensor, lens, w, h)
    scene = synth.checkerboard(w, h, square=3)
    frame = FisheyeRenderer(scene_cam, lens, sensor).render(scene)

    field = standard_field(w, h, zoom)
    peak_minification = float(np.nanmax(minification_map(field)))

    reference = SupersampledLUT.from_builder(builder, w, h, factor=4).apply(frame)
    mask = field.valid_mask()

    table = Table(
        f"A2: output supersampling ({res}, fine checkerboard, zoom {zoom})",
        ["factor", "taps_per_px", "host_ms", "psnr_vs_ssaa4_db"],
    )
    for factor in factors:
        lut = SupersampledLUT.from_builder(builder, w, h, factor=factor)
        t0 = time.perf_counter()
        out = lut.apply(frame)
        host_ms = (time.perf_counter() - t0) * 1e3
        q = psnr(reference.astype(float), out.astype(float), peak=255.0, mask=mask)
        table.add_row(factor, lut.taps, host_ms, q)
    table.notes.append(f"peak map minification {peak_minification:.2f} source "
                       "px/output px — the aliasing driver; cost grows with "
                       "factor^2.")
    return table


def a3_prefetch(res: str = "720p", cache_kb=(4, 8, 16, 32), depth: int = 4,
                band_rows: int = 96) -> Table:
    """Stream prefetcher vs blocking for the row-major gather traversal.

    Replays the F6 row-major trace through a plain cache and through
    the same cache with a tagged stream prefetcher, reporting hit rate
    and total DRAM traffic (prefetchers trade traffic for latency).
    """
    w, h = resolution(res)
    field = standard_field(w, h)
    lut = RemapLUT(field, method="nearest")
    trace = tile_gather_trace(lut, Tile(0, band_rows, 0, w), pixel_bytes=4)

    table = Table(
        f"A3: stream prefetcher on the row-major gather trace "
        f"({res} top {band_rows} rows, depth {depth})",
        ["cache_kb", "config", "hit_rate", "prefetch_accuracy",
         "dram_bytes_per_px"],
    )
    n_px = band_rows * w
    for kb in cache_kb:
        cfg = CacheConfig(size_bytes=kb * 1024, line_bytes=64, ways=4)
        plain = CacheSim(cfg).replay(trace)
        table.add_row(kb, "no prefetch", plain.hit_rate, float("nan"),
                      plain.miss_bytes(64) / n_px)
        pf = PrefetchingCache(cfg, PrefetchConfig(depth=depth)).replay(trace)
        table.add_row(kb, f"stream(d{depth})", pf.hit_rate, pf.accuracy,
                      pf.traffic_bytes(64) / n_px)
    table.notes.append("Negative result: the gather stream follows curved "
                       "arcs, not sequential lines — accuracy stays below "
                       "~0.2, hit rate barely moves (and drops where "
                       "pollution bites), and traffic inflates ~30%. "
                       "Blocking (F6), not prefetching, is the fix.")
    return table


def a4_application(res: str = "720p", method: str = "bilinear",
                   decode_ns_per_mpx: int = 2_500_000,
                   encode_ns_per_mpx: int = 4_000_000) -> Table:
    """End-to-end application throughput: kernel speedup vs app speedup.

    Wraps every platform's tuned kernel in the full capture->decode->
    correct->encode pipeline (codec stages run on the host and scale
    with frame pixels; discrete accelerators also pay their transfer
    stages).  The figure the 2010 literature closes on: accelerating
    the kernel 15x does not accelerate the *application* 15x.
    """
    from ..accel.hetero import PipelineModel, Stage
    from ..accel.presets import all_platforms
    from .experiments import _best_estimate

    w, h = resolution(res)
    mpx = w * h / 1e6
    decode_ns = int(decode_ns_per_mpx * mpx)
    encode_ns = int(encode_ns_per_mpx * mpx)

    table = Table(
        f"A4: end-to-end application pipeline ({res}, {method}; host codec "
        f"{decode_ns / 1e6:.1f}+{encode_ns / 1e6:.1f} ms/frame)",
        ["platform", "kernel_fps", "app_fps", "kernel_speedup", "app_speedup",
         "app_bottleneck"],
    )
    seq_kernel = None
    seq_app = None
    for platform in all_platforms():
        try:
            rep = _best_estimate(platform, res, method)
        except Exception:
            continue
        stages = [Stage("decode", decode_ns, "host")]
        if platform.name.startswith("gtx"):
            stages.append(Stage("h2d", rep.notes.get("h2d_ns", 0), "pcie"))
            stages.append(Stage("correct", rep.notes.get("kernel_ns", rep.frame_ns),
                                "device"))
            stages.append(Stage("d2h", rep.notes.get("d2h_ns", 0), "pcie"))
        elif platform.name in ("cell", "fpga"):
            stages.append(Stage("correct", rep.frame_ns, "device"))
        else:
            # SMP platforms correct on the host itself: the codec and the
            # kernel contend for the same cores
            stages.append(Stage("correct", rep.frame_ns, "host"))
        stages.append(Stage("encode", encode_ns, "host"))
        pipe = PipelineModel(stages)
        if seq_kernel is None:
            seq_kernel = rep.fps
            seq_app = pipe.fps
        table.add_row(platform.name, rep.fps, pipe.fps, rep.fps / seq_kernel,
                      pipe.fps / seq_app, pipe.bottleneck)
    table.notes.append("Once the kernel leaves the host, the codec stages cap "
                       "the application: kernel speedups compress toward the "
                       "pipeline's host-bound ceiling (system-level Amdahl).")
    return table


def a5_map_construction(res: str = "720p", sample_counts=(64, 256, 1024, 4096)) -> Table:
    """Map construction: exact trigonometric builder vs radial LUT.

    The sequential-optimization rung: measures host build time and the
    worst-case geometric error of the radial-profile approximation as
    its table grows.
    """
    from ..core.intrinsics import CameraIntrinsics
    from ..core.mapfast import radial_perspective_map
    from ..core.mapping import perspective_map

    w, h = resolution(res)
    sensor, lens = standard_sensor(w, h)
    focal_out = float(lens.magnification(1e-4)) * 0.5
    out = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=(w - 1) / 2.0,
                           cy=(h - 1) / 2.0, width=w, height=h)

    t0 = time.perf_counter()
    exact = perspective_map(sensor, lens, out)
    exact_ms = (time.perf_counter() - t0) * 1e3

    table = Table(
        f"A5: map construction, exact vs radial LUT ({res})",
        ["builder", "samples", "build_ms", "speedup", "max_err_px"],
        float_fmt="{:.4f}",
    )
    table.add_row("exact", "-", exact_ms, 1.0, 0.0)
    mask = exact.valid_mask()
    for n in sample_counts:
        t0 = time.perf_counter()
        approx = radial_perspective_map(sensor, lens, out, samples=n)
        ms = (time.perf_counter() - t0) * 1e3
        err = np.hypot(approx.map_x - exact.map_x, approx.map_y - exact.map_y)
        table.add_row("radial", n, ms, exact_ms / ms, float(np.nanmax(err[mask])))
    table.notes.append("A few hundred profile samples reach sub-0.01 px error "
                       "at ~5x lower build cost; rotated PTZ views still "
                       "need the exact builder.")
    return table


def h1_host_scaling(res: str = "VGA", workers=(1, 2, 4), repeats: int = 5) -> Table:
    """Host wall-clock scaling of the real threaded executor.

    On a multicore host this reproduces F1 with real threads (numpy
    releases the GIL inside the tile kernels); on the 1-core CI
    container it documents honestly that no speedup is physically
    available.  Timings come with bootstrap confidence intervals.
    """
    from ..core.remap import RemapLUT
    from ..parallel.threadpool import ThreadedExecutor
    from .stats import repeat_timing, robust_summary

    import os

    w, h = resolution(res)
    field = standard_field(w, h)
    lut = RemapLUT(field, method="bilinear")
    frame = synth.urban(w, h, seed=13)
    out = np.empty(lut.out_shape, dtype=frame.dtype)

    table = Table(
        f"H1: host threaded-executor scaling ({res}, bilinear/lut, "
        f"{os.cpu_count()} host cpu(s))",
        ["workers", "median_ms", "ci_low_ms", "ci_high_ms", "speedup"],
    )
    base = None
    for n in workers:
        with ThreadedExecutor(workers=n, bands_per_worker=4) as ex:
            samples = repeat_timing(lambda: ex.run(lut, frame, out=out),
                                    repeats=repeats, warmup=1)
        summary = robust_summary(samples)
        if base is None:
            base = summary.median
        table.add_row(n, summary.median * 1e3, summary.ci_low * 1e3,
                      summary.ci_high * 1e3, base / summary.median)
    table.notes.append("Real wall clock: meaningful on multicore hosts; the "
                       "deterministic scaling study lives in F1/F11.")
    return table


def h2_model_validation(res: str = "VGA", repeats: int = 5) -> Table:
    """Model-vs-host validation of the kernel's cost ratios (H2)."""
    from ..accel.validation import validate_kernel_ratios

    w, h = resolution(res)
    field = standard_field(w, h)
    frame = synth.urban(w, h, seed=21)
    cases = validate_kernel_ratios(field, frame, repeats=repeats)
    table = Table(
        f"H2: model-vs-host kernel cost ratios ({res}, sequential model vs "
        f"this host's numpy kernels)",
        ["ratio", "model", "host", "agreement_factor", "same_direction"],
    )
    for c in cases:
        table.add_row(c.name, c.predicted, c.measured, c.agreement,
                      c.same_direction)
    table.notes.append("The bar is directional + order-of-magnitude "
                       "agreement: absolute constants differ between a "
                       "compiled kernel (the model's subject) and numpy.")
    return table
