"""Shared experiment plumbing: standard workloads, sweep helpers.

Each experiment in :mod:`repro.bench.experiments` needs the same
setup: a fisheye sensor at some resolution, its correction field, and
a :class:`~repro.accel.platform.Workload` around them.  Building a
1080p field takes a second or two, so the harness memoizes by
configuration — benchmarks that share a workload pay once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..errors import BenchmarkError
from ..core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from ..core.lens import make_lens
from ..core.mapping import RemapField, perspective_map
from ..accel.platform import STANDARD_RESOLUTIONS, Workload

__all__ = [
    "standard_sensor",
    "standard_field",
    "standard_workload",
    "resolution",
    "amdahl_fit",
    "capture_metrics",
]


def capture_metrics(fn, *args, **kwargs):
    """Run ``fn`` under a fresh scoped telemetry registry.

    Returns ``(result, snapshot)`` where ``snapshot`` is the JSON-able
    :meth:`~repro.obs.telemetry.Telemetry.snapshot` of everything the
    call recorded — the way an experiment row carries its own metrics
    without touching the global registry::

        table, metrics = capture_metrics(run_experiment, "F7")
    """
    from ..obs.telemetry import Telemetry, scoped

    tel = Telemetry()
    with scoped(tel):
        result = fn(*args, **kwargs)
    return result, tel.snapshot()


def resolution(name: str):
    """Resolve a standard resolution name to ``(width, height)``."""
    try:
        return STANDARD_RESOLUTIONS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown resolution {name!r}; known: {sorted(STANDARD_RESOLUTIONS)}") from None


@lru_cache(maxsize=32)
def standard_sensor(width: int, height: int, lens_name: str = "equidistant"):
    """The evaluation's canonical camera: a 180-degree fisheye.

    The image circle is inscribed in the shorter side, so the full
    180-degree FOV is captured along that axis.

    Returns ``(sensor, lens)``.
    """
    circle = min(width, height) / 2.0 - 1.0
    focal = circle / (np.pi / 2.0)  # equidistant: r = f * theta
    sensor = FisheyeIntrinsics.centered(width, height, focal=focal)
    lens = make_lens(lens_name, focal)
    return sensor, lens


@lru_cache(maxsize=32)
def standard_field(width: int, height: int, zoom: float = 0.5,
                   lens_name: str = "equidistant",
                   pitch: float = 0.0, yaw: float = 0.0) -> RemapField:
    """The canonical correction field at a given resolution.

    ``zoom = 0.5`` trades half the central resolution for a wide
    recovered FOV — the balanced setting the application chapter of
    the study runs everywhere.  ``pitch``/``yaw`` build tilted/panned
    virtual-PTZ views, whose out-of-FOV regions create the tile-cost
    imbalance the scheduling experiments need.
    """
    sensor, lens = standard_sensor(width, height, lens_name)
    focal_out = float(lens.magnification(1e-4)) * zoom
    out = CameraIntrinsics(fx=focal_out, fy=focal_out,
                           cx=(width - 1) / 2.0, cy=(height - 1) / 2.0,
                           width=width, height=height)
    return perspective_map(sensor, lens, out, yaw=yaw, pitch=pitch)


def standard_workload(res: str = "1080p", method: str = "bilinear",
                      mode: str = "lut", pixel_bytes: int = 1,
                      zoom: float = 0.5, pitch: float = 0.0,
                      yaw: float = 0.0,
                      lut_entry_bytes: float | None = None) -> Workload:
    """A fully-measured workload at a named standard resolution.

    ``lut_entry_bytes`` optionally overrides the table-entry size the
    models price (e.g. ``RemapLUT.entry_bytes_for(method)`` to bill the
    host library's materialized compact int32 layout instead of the
    default deployed packed layout).
    """
    w, h = resolution(res)
    field = standard_field(w, h, zoom, pitch=pitch, yaw=yaw)
    return Workload.from_field(field, method=method, mode=mode,
                               pixel_bytes=pixel_bytes,
                               lut_entry_bytes=lut_entry_bytes)


def amdahl_fit(threads, speedups):
    """Least-squares serial fraction from a measured speedup curve.

    Fits Amdahl's law ``S(n) = 1 / (s + (1 - s) / n)`` by linear
    regression on ``1/S = s + (1-s)/n``.  Returns ``(serial_fraction,
    r_squared)``.
    """
    threads = np.asarray(threads, dtype=np.float64)
    speedups = np.asarray(speedups, dtype=np.float64)
    if threads.shape != speedups.shape or threads.size < 2:
        raise BenchmarkError("need >= 2 matching (threads, speedup) points")
    if np.any(speedups <= 0) or np.any(threads <= 0):
        raise BenchmarkError("threads and speedups must be positive")
    y = 1.0 / speedups          # = s + (1-s) * x,  x = 1/n
    x = 1.0 / threads
    slope, intercept = np.polyfit(x, y, 1)
    serial = float(np.clip(intercept, 0.0, 1.0))
    pred = intercept + slope * x
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return serial, r2
