"""Legacy shim so editable installs work offline (no `wheel` package
available in this environment; metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
