"""H2 — model-vs-host validation of kernel cost ratios."""

from repro.bench.ablations import h2_model_validation

from conftest import run_once


def test_h2_model_validation(benchmark, record_table):
    table = run_once(benchmark, h2_model_validation, res="VGA")
    record_table("H2", table)
    for direction, agreement in zip(table.column("same_direction"),
                                    table.column("agreement_factor")):
        assert direction is True          # model and host agree who wins
        assert agreement < 5.0            # and on the order of magnitude
