"""H1 — real host scaling of the threaded executor (with CIs)."""

from repro.bench.ablations import h1_host_scaling

from conftest import run_once


def test_h1_host_scaling(benchmark, record_table):
    table = run_once(benchmark, h1_host_scaling, res="VGA")
    record_table("H1", table)
    medians = table.column("median_ms")
    # sanity only: timings are positive and CIs bracket the medians
    # (speedup asserts live in the deterministic F1; this host may have
    # any core count)
    for med, lo, hi in zip(medians, table.column("ci_low_ms"),
                           table.column("ci_high_ms")):
        assert 0 < lo <= med <= hi
