"""F3 — GPU block-size / occupancy sweep."""

from repro.bench.experiments import f3_gpu_block_sweep

from conftest import run_once


def test_f3_gpu_block_sweep(benchmark, record_table):
    table = run_once(benchmark, f3_gpu_block_sweep, res="720p")
    record_table("F3", table)
    rows = list(zip(table.column("block"), table.column("regs/thread"),
                    table.column("occupancy"), table.column("kernel_ms")))
    # tiny blocks starve the SMs
    k32 = [k for b, r, o, k in rows if b == 32 and r == 16][0]
    k256 = [k for b, r, o, k in rows if b == 256 and r == 16][0]
    assert k32 > k256
    # register pressure lowers occupancy
    occ16 = [o for b, r, o, k in rows if b == 256 and r == 16][0]
    occ32 = [o for b, r, o, k in rows if b == 256 and r == 32][0]
    assert occ32 < occ16
