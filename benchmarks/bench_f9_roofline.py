"""F9 — roofline placement of the kernel variants."""

from repro.bench.experiments import f9_roofline

from conftest import run_once


def test_f9_roofline(benchmark, record_table):
    table = run_once(benchmark, f9_roofline)
    record_table("F9", table)
    for platform, kernel, bound in zip(table.column("platform"),
                                       table.column("kernel"),
                                       table.column("bound")):
        if kernel == "bilinear/lut" and platform != "fpga":
            assert bound == "memory"
