"""F6 — gather locality: cache-size sweep, row-major vs blocked."""

from repro.bench.experiments import f6_tile_size_cache

from conftest import run_once


def test_f6_tile_size_cache(benchmark, record_table):
    table = run_once(benchmark, f6_tile_size_cache, res="720p")
    record_table("F6", table)
    rows = list(zip(table.column("cache_kb"), table.column("traversal"),
                    table.column("hit_rate")))
    blocked = {kb: hr for kb, tv, hr in rows if tv == "blocked"}
    rowmajor = {kb: hr for kb, tv, hr in rows if tv == "row-major"}
    # blocking reaches the plateau with a smaller cache
    assert blocked[16] > rowmajor[16]
    # both converge once the cache swallows the working set
    assert abs(blocked[64] - rowmajor[64]) < 0.05
