"""T2 — sequential stage profile (host-measured)."""

from repro.bench.experiments import t2_sequential_profile

from conftest import run_once


def test_t2_sequential_profile(benchmark, record_table):
    table = run_once(benchmark, t2_sequential_profile, res="720p")
    record_table("T2", table)
    ms = dict(zip(table.column("stage"), table.column("ms")))
    # the gather is the dominant per-frame stage of the LUT kernel
    assert ms["gather"] > ms["store"]
