"""A2 — output supersampling quality/cost ablation."""

from repro.bench.ablations import a2_antialias

from conftest import run_once


def test_a2_antialias(benchmark, record_table):
    table = run_once(benchmark, a2_antialias, res="VGA")
    record_table("A2", table)
    psnrs = table.column("psnr_vs_ssaa4_db")
    costs = table.column("host_ms")
    assert psnrs[0] < psnrs[1] < psnrs[2]   # quality rises with factor
    assert costs[0] < costs[1] < costs[2]   # and so does cost
    assert psnrs[1] - psnrs[0] > 5.0        # 2x2 buys a big step
