"""F8 — interpolation method cost vs quality."""

from repro.bench.experiments import f8_interpolation

from conftest import run_once


def test_f8_interpolation(benchmark, record_table):
    table = run_once(benchmark, f8_interpolation, res="VGA")
    record_table("F8", table)
    rows = {m: (c, q) for m, t, c, f, q in zip(
        table.column("method"), table.column("taps"), table.column("host_ms"),
        table.column("model_fps_smp"), table.column("psnr_db"))}
    # cost ladder: nearest < bilinear < bicubic
    assert rows["nearest"][0] < rows["bilinear"][0] < rows["bicubic"][0]
    # quality ladder: bilinear clearly beats nearest; bicubic >= bilinear
    assert rows["bilinear"][1] > rows["nearest"][1] + 1.0
    assert rows["bicubic"][1] >= rows["bilinear"][1] - 0.2
