"""F5 — Cell DMA/compute overlap vs tile size."""

from repro.bench.experiments import f5_dma_overlap

from conftest import run_once


def test_f5_dma_overlap(benchmark, record_table):
    table = run_once(benchmark, f5_dma_overlap, res="720p")
    record_table("F5", table)
    rows = list(zip(table.column("tile_rows"), table.column("buffering"),
                    table.column("frame_ms"), table.column("overlap_gain")))
    gains = [g for _, b, _, g in rows if b == "double" and g == g]
    # somewhere in the sweep double buffering actually overlaps
    assert max(gains) > 1.05
    # one-row tiles drown in DMA setup: the worst configuration
    t1 = min(t for r, b, t, _ in rows if r == 1)
    best = min(t for _, _, t, _ in rows)
    assert t1 > best
