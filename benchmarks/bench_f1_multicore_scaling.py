"""F1 — SMP speedup vs thread count, per resolution."""

from repro.bench.experiments import f1_multicore_scaling

from conftest import run_once


def test_f1_multicore_scaling(benchmark, record_table):
    table = run_once(benchmark, f1_multicore_scaling,
                     resolutions=("VGA", "720p", "1080p"))
    record_table("F1", table)
    speedups = table.column("speedup")
    threads = table.column("threads")
    # monotone within each resolution block
    for i in range(1, len(speedups)):
        if threads[i] > threads[i - 1]:
            assert speedups[i] >= speedups[i - 1] - 1e-9
    # larger frames scale better (serial fraction amortizes)
    per_res = {}
    for res, t, s in zip(table.column("resolution"), threads, speedups):
        if t == max(threads):
            per_res[res] = s
    assert per_res["1080p"] >= per_res["VGA"]
