"""F4 — headline cross-platform frames-per-second comparison."""

from repro.bench.experiments import f4_platform_fps

from conftest import run_once


def test_f4_platform_fps(benchmark, record_table):
    table = run_once(benchmark, f4_platform_fps,
                     resolutions=["VGA", "720p", "1080p"])
    record_table("F4", table)
    at_1080 = {p: f for r, p, m, f, s, b in table.rows if r == "1080p"
               for p, f in [(p, f)]}
    # the paper's ordering: accelerators and SMP beat sequential...
    assert at_1080["xeon4"] > at_1080["sequential"]
    assert at_1080["cell"] > at_1080["xeon4"]
    assert at_1080["gtx280"] > at_1080["xeon4"]
    # ...and everything clears real-time (30 fps) at 1080p except
    # the fallback-mode FPGA
    assert at_1080["fpga"] < at_1080["sequential"]
