"""F12 — fixed-point LUT precision sweep."""

from repro.bench.experiments import f12_fixed_point

from conftest import run_once


def test_f12_fixed_point(benchmark, record_table):
    table = run_once(benchmark, f12_fixed_point, res="VGA")
    record_table("F12", table)
    psnrs = table.column("psnr_vs_float_db")
    fps = table.column("cell_fps")
    assert all(a < b for a, b in zip(psnrs, psnrs[1:]))   # quality up with bits
    assert all(a >= b for a, b in zip(fps, fps[1:]))      # throughput down
