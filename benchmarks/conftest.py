"""Benchmark-suite plumbing.

Each benchmark runs its experiment once (the experiments are
deterministic model evaluations or single host-kernel timings — there
is no run-to-run noise worth averaging away) and writes the rendered
table to ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can quote
the artifact.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Return a writer: record_table(exp_id, table) -> table."""

    def _write(exp_id, table):
        path = os.path.join(results_dir, f"{exp_id.lower()}.txt")
        with open(path, "w") as fh:
            fh.write(table.render() + "\n")
        return table

    return _write


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
