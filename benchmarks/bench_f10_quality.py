"""F10 — correction-model geometric quality (exact vs Brown-Conrady)."""

from repro.bench.experiments import f10_model_quality

from conftest import run_once


def test_f10_model_quality(benchmark, record_table):
    table = run_once(benchmark, f10_model_quality, size=512)
    record_table("F10", table)
    med = dict(zip(table.column("model"), table.column("median_err_px")))
    assert med["exact(equidistant)"] < 0.05
    assert all(v > 1.0 for k, v in med.items() if k.startswith("brown"))
    # the angle-polynomial comparator recovers sub-pixel accuracy
    assert med["kannala_brandt(k4)"] < 0.1
