#!/usr/bin/env python
"""Fast perf-regression gate for the fused LUT kernel.

Smoke-runs the two experiments most sensitive to the remap hot path
(F7 LUT-vs-OTF and F1 multicore scaling) at VGA so their invariants
still hold, then times the fused bilinear apply on a 1080p frame and
compares it against the pre-compact-layout baseline recorded in
``BENCH_baseline.json`` at the repo root.  The same measurement doubles
as the telemetry overhead gate: with the global registry disabled (the
default), ``apply_into`` must stay within ``overhead_tolerance`` (5%)
of the pre-telemetry ``fused_apply_into_s`` baseline.

As a side effect the gate writes ``BENCH_metrics.json`` next to the
baseline: a telemetry snapshot of an instrumented VGA correction run,
so CI archives the counter/histogram shape alongside the timings.

The kernel-tier gate times the numpy/fixed/compiled ladder on the same
bilinear uint8 workload and enforces the Q-format quality floor
(``KERNEL_PSNR_MIN`` dB vs the float oracle) everywhere; the
``COMPILED_SPEEDUP_MIN`` (2x) compiled-vs-fused gate is enforced only
on hosts with numba installed and enough cores, auto-skipping
elsewhere.  Measurements land in ``BENCH_kernels.json`` with the host
core count and numba version in the metadata.

The streaming gate runs the same 1080p bilinear workload through the
fork-join :class:`SharedMemoryExecutor` and the persistent-worker
:class:`RingEngine` and requires the ring to win by
``STREAM_SPEEDUP_MIN`` (1.3x).  That ratio is only meaningful with
real cores, so the full gate is enforced when ``os.cpu_count() >= 4``
(the CI reference machine); on smaller hosts — and always under
``--smoke`` — a reduced configuration runs instead, enforcing only
correctness and a conservative fps floor.  Either way the measured
numbers land in ``BENCH_stream.json`` (with a ``mode`` field saying
which gate ran) so CI archives the streaming trend alongside the
kernel timings.

The multi-stream serve gate drives 4 and 16 concurrent sessions of
value-encoded VGA frames through one shared :mod:`repro.serve` worker
fleet and compares the aggregate throughput against a single
sequentially-multiplexed stream over the same frames.  Full mode
(>= 4 cores) enforces ``SERVE_SPEEDUP_MIN`` (1.5x); the reduced smoke
enforces strict per-stream in-order delivery plus a conservative
aggregate fps floor.  Numbers land in ``BENCH_serve.json``.

The fused correct+downscale gate builds the composed single-pass table
for a 4K -> 1080p delivery (VGA -> QVGA under ``--smoke``) and races
it against the naive correct-then-downscale pipeline: the composed
table must gather ``FUSED_BYTES_RATIO_MIN`` (1.8x) fewer bytes and —
on the CI reference machine — win the wall clock by
``FUSED_SPEEDUP_MIN`` (1.5x), while staying above the
``FUSED_PSNR_MIN`` (40 dB) quality floor against the two-pass
reference (or within 1 dB of it when both are scored against the
float-precision gold render).  Numbers land in ``BENCH_fused.json``.

The live-surface gate runs a small instrumented ring stream with the
stall watchdog armed and scrapes its ``/metrics`` and ``/health``
endpoints over HTTP mid-run: the exposition must parse, the per-frame
e2e latency histogram must be populated, and ``stream.stalls`` must
stay 0.  It is a separate leg so the timing gates above keep measuring
the uninstrumented hot path.

Exit status 0 = no regression; 1 = the fused kernel has become slower
than the old per-tap kernel it replaced, telemetry leaked overhead
into the disabled hot path, the ring lost its streaming advantage, or
an invariant broke.

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.experiments import f1_multicore_scaling, f7_lut_vs_otf  # noqa: E402
from repro.bench.harness import capture_metrics, standard_field, resolution  # noqa: E402
from repro.core.remap import RemapLUT                            # noqa: E402
from repro.obs import write_metrics                              # noqa: E402
from repro.video import synth                                    # noqa: E402

BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_baseline.json")
METRICS_PATH = os.path.join(REPO_ROOT, "BENCH_metrics.json")
STREAM_PATH = os.path.join(REPO_ROOT, "BENCH_stream.json")
KERNELS_PATH = os.path.join(REPO_ROOT, "BENCH_kernels.json")
SERVE_PATH = os.path.join(REPO_ROOT, "BENCH_serve.json")
YUV_PATH = os.path.join(REPO_ROOT, "BENCH_yuv.json")
FUSED_PATH = os.path.join(REPO_ROOT, "BENCH_fused.json")
REPEATS = 5

#: compiled tier must beat the fused numpy kernel by this factor on
#: 1080p bilinear uint8 (enforced only where numba is installed and the
#: full configuration runs; the smoke fallback records without gating).
COMPILED_SPEEDUP_MIN = 2.0
#: quality floor for the Q-format tiers vs the float oracle (dB).
KERNEL_PSNR_MIN = 40.0

#: full streaming gate: ring must beat fork-join by this factor on the
#: CI reference machine (1080p bilinear, 64 frames, 4 workers).
STREAM_SPEEDUP_MIN = 1.3
#: cores needed for the speedup ratio to mean anything; below this the
#: reduced smoke configuration runs instead.
STREAM_FULL_MIN_CORES = 4
#: conservative end-to-end floor for the reduced smoke (VGA, 2 workers)
STREAM_SMOKE_FPS_FLOOR = 2.0

#: full multi-stream gate: the broker's aggregate throughput must beat
#: a single sequentially-multiplexed stream by this factor on the CI
#: reference machine (VGA bilinear, shared calibration).
SERVE_SPEEDUP_MIN = 1.5
#: conservative aggregate floor for the reduced smoke (1-core CI).
SERVE_SMOKE_FPS_FLOOR = 2.0

#: planar YUV420 gate: bytes actually touched per frame (gather traffic
#: plus output stores) must shrink by this factor vs correcting the
#: same content as packed RGB — the zero-copy no-conversion payoff.
YUV_BYTES_RATIO_MIN = 1.7
#: reconciliation gate: the measured per-frame DMA ledger (actual LUT
#: index spans per band, table bytes, output bytes) must land within
#: this relative error of ``CellModel.planar_dma_profile``.
YUV_DMA_TOLERANCE = 0.15

#: fused correct+downscale gate: the composed single-pass table must
#: gather this many times fewer bytes than correct-then-downscale on
#: the same content (enforced in both full and smoke modes — the ratio
#: is a property of the tables, not the host).
FUSED_BYTES_RATIO_MIN = 1.8
#: full fused gate: single-pass wall clock must beat the two-pass
#: pipeline by this factor on the CI reference machine (4K -> 1080p).
FUSED_SPEEDUP_MIN = 1.5
#: conservative wall-clock floor for the reduced smoke configuration.
FUSED_SMOKE_SPEEDUP_FLOOR = 1.2
#: quality floor: fused output vs the two-pass reference (dB).  A
#: fused result that misses the absolute floor still passes if it sits
#: within ``FUSED_PSNR_DELTA_MAX`` dB of the two-pass pipeline when
#: both are scored against the float-precision gold render.
FUSED_PSNR_MIN = 40.0
FUSED_PSNR_DELTA_MAX = 1.0


def _check(label: str, ok: bool, detail: str) -> bool:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}: {detail}")
    return ok


def smoke_experiments() -> bool:
    """The cheap invariant sweep: both experiments still tell their story."""
    print("== smoke: F7 LUT vs on-the-fly (VGA) ==")
    t7 = f7_lut_vs_otf(res="VGA")
    adv = dict(zip(t7.column("platform"), t7.column("lut_advantage")))
    ok = _check("sequential favours LUT", adv["sequential"] > 1.5,
                f"advantage {adv['sequential']:.2f}")
    ok &= _check("host(numpy) favours LUT", adv["host(numpy)"] > 1.5,
                 f"advantage {adv['host(numpy)']:.2f}")

    print("== smoke: F1 multicore scaling (VGA) ==")
    t1 = f1_multicore_scaling(resolutions=("VGA",))
    speedups = t1.column("speedup")
    ok &= _check("parallel speedup positive", all(s > 0 for s in speedups),
                 f"min speedup {min(speedups):.2f}")
    return ok


def time_fused_apply() -> float:
    """Best-of-N fused bilinear apply on a 1080p frame (steady state)."""
    w, h = resolution("1080p")
    field = standard_field(w, h)
    frame = synth.urban(w, h)
    lut = RemapLUT(field, method="bilinear")
    out = np.empty(lut.out_shape, dtype=frame.dtype)
    lut.apply_into(frame, out)  # warmup: derive + cache the weight table
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        lut.apply_into(frame, out)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_stream(full: bool) -> dict:
    """Time fork-join vs ring on the same streaming workload.

    Both engines see an identical frame source (panning crops of an
    urban world — a stand-in decode step with real per-frame cost) and
    the same prebuilt LUT, so the measured ratio isolates the engine:
    per-frame fork-join barriers vs persistent workers with frame-level
    overlap.
    """
    from repro.parallel.procpool import SharedMemoryExecutor
    from repro.parallel.ring import RingEngine
    from repro.video.stream import panning_crops

    if full:
        res, frames_n, workers, depth = "1080p", 64, 4, 4
    else:
        res, frames_n, workers, depth = "VGA", 12, 2, 2
    w, h = resolution(res)
    field = standard_field(w, h)
    lut = RemapLUT(field, method="bilinear")
    world = synth.urban(w + 128, h + 128)

    def source():
        return panning_crops(world, w, h, frames_n, step=16)

    reference = lut.apply(next(source()))

    ex = SharedMemoryExecutor(lut, (h, w), np.uint8, workers=workers)
    try:
        out = np.empty(lut.out_shape, dtype=np.uint8)
        ex.run(lut, next(source()), out=out)  # warmup (workers attach)
        t0 = time.perf_counter()
        for frame in source():
            ex.run(lut, frame, out=out)
        forkjoin_s = time.perf_counter() - t0
    finally:
        ex.close()

    engine = RingEngine(lut, (h, w), np.uint8, workers=workers, depth=depth,
                        schedule="dynamic")
    try:
        first = None
        delivered = 0
        t0 = time.perf_counter()
        for corrected in engine.stream(source()):
            if first is None:
                first = corrected.copy()
            delivered += 1
        ring_s = time.perf_counter() - t0
    finally:
        engine.close()

    return {
        "mode": "full" if full else "smoke",
        "cpu_count": os.cpu_count(),
        "resolution": res,
        "frames": frames_n,
        "workers": workers,
        "depth": depth,
        "schedule": "dynamic",
        "method": "bilinear",
        "forkjoin_fps": frames_n / forkjoin_s,
        "ring_fps": delivered / ring_s,
        "ring_speedup": forkjoin_s / ring_s,
        "ring_max_in_flight": engine.max_in_flight,
        "delivered": delivered,
        "first_frame_exact": bool(np.array_equal(first, reference)),
        "speedup_gate": STREAM_SPEEDUP_MIN if full else None,
        "fps_floor": None if full else STREAM_SMOKE_FPS_FLOOR,
    }


def bench_kernels(full: bool) -> dict:
    """Time the kernel-tier ladder on one bilinear uint8 workload.

    Measures every tier executable on this host (numpy always, fixed
    always, compiled when numba imports) on the same LUT and frame,
    plus the fixed-tier PSNR against the float oracle — the number the
    quality gate enforces.  Full mode uses the 1080p gate workload;
    smoke drops to VGA.
    """
    from repro.core.kernel_tiers import (
        DEFAULT_FRAC_BITS, available_tiers, kernel_tier, numba_available,
        numba_version)
    from repro.core.quality import psnr

    res = "1080p" if full else "VGA"
    w, h = resolution(res)
    field = standard_field(w, h)
    frame = synth.urban(w, h)
    base = RemapLUT(field, method="bilinear")

    # float oracle: the numpy tier run at float precision, rounded the
    # way the integer epilogue rounds
    oracle_f = base.apply(frame.astype(np.float32))
    oracle = np.clip(np.rint(oracle_f), 0, 255).astype(np.uint8)

    timings = {}
    outputs = {}
    for tier in available_tiers():
        lut = base.with_tier(tier)
        out = np.empty(lut.out_shape, dtype=frame.dtype)
        lut.apply_into(frame, out)  # warmup (derive tables / JIT)
        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            lut.apply_into(frame, out)
            best = min(best, time.perf_counter() - t0)
        timings[tier] = best
        outputs[tier] = out.copy()

    result = {
        "mode": "full" if full else "smoke",
        "resolution": res,
        "method": "bilinear",
        "dtype": "uint8",
        "frac_bits": DEFAULT_FRAC_BITS,
        "cpu_count": os.cpu_count(),
        "numba_available": numba_available(),
        "numba_version": numba_version(),
        "best_tier": kernel_tier(),
        "tiers_measured": sorted(timings),
        "tier_seconds": {t: timings[t] for t in sorted(timings)},
        "psnr_fixed_db": float(psnr(oracle, outputs["fixed"])),
        "fixed_vs_numpy_exact": bool(
            np.abs(outputs["fixed"].astype(np.int16)
                   - outputs["numpy"].astype(np.int16)).max() <= 1),
    }
    if "compiled" in timings:
        result["compiled_speedup_vs_numpy"] = timings["numpy"] / timings["compiled"]
        result["psnr_compiled_db"] = float(psnr(oracle, outputs["compiled"]))
        result["compiled_matches_fixed"] = bool(
            np.array_equal(outputs["compiled"], outputs["fixed"]))
    return result


def check_kernels(smoke: bool) -> bool:
    """The kernel-tier ladder gate; writes ``BENCH_kernels.json``.

    The PSNR floor is enforced everywhere (the fixed tier runs on any
    host and is bit-exact with the compiled tier).  The compiled
    speedup gate is enforced only in full mode on a host with numba —
    elsewhere it auto-skips (recorded, not gated), matching the
    CI legs that run without the ``[speed]`` extra.
    """
    from repro.core.kernel_tiers import numba_available

    full = not smoke and (os.cpu_count() or 1) >= STREAM_FULL_MIN_CORES
    print(f"== kernel tiers: numpy / fixed / compiled "
          f"({'full gate' if full else 'reduced smoke'}) ==")
    result = bench_kernels(full)
    with open(KERNELS_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    ok = _check(f"fixed tier PSNR >= {KERNEL_PSNR_MIN} dB vs float oracle",
                result["psnr_fixed_db"] >= KERNEL_PSNR_MIN,
                f"{result['psnr_fixed_db']:.1f} dB at Q{result['frac_bits']}")
    ok &= _check("fixed tier within 1 LSB of numpy tier",
                 result["fixed_vs_numpy_exact"], "max |delta| <= 1")
    if numba_available():
        ok &= _check("compiled tier bit-exact with fixed tier",
                     result["compiled_matches_fixed"], "identical outputs")
        detail = (f"compiled {result['tier_seconds']['compiled'] * 1e3:.1f} ms "
                  f"vs numpy {result['tier_seconds']['numpy'] * 1e3:.1f} ms "
                  f"({result['compiled_speedup_vs_numpy']:.2f}x)")
        if full:
            ok &= _check(f"compiled beats fused numpy by {COMPILED_SPEEDUP_MIN}x",
                         result["compiled_speedup_vs_numpy"] >= COMPILED_SPEEDUP_MIN,
                         detail)
        else:
            _check("compiled speedup (recorded, not gated)", True, detail)
    else:
        print("  [skip] compiled tier: numba not installed "
              "(pip install repro[speed])")
    print(f"  -> {os.path.relpath(KERNELS_PATH, REPO_ROOT)} "
          f"(mode={result['mode']})")
    return ok


def check_stream(smoke: bool) -> bool:
    """The streaming throughput gate; writes ``BENCH_stream.json``."""
    full = not smoke and (os.cpu_count() or 1) >= STREAM_FULL_MIN_CORES
    print(f"== streaming: ring vs fork-join "
          f"({'full gate' if full else 'reduced smoke'}) ==")
    result = bench_stream(full)
    with open(STREAM_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    ok = _check("ring delivered every frame",
                result["delivered"] == result["frames"],
                f"{result['delivered']}/{result['frames']}")
    ok &= _check("ring output matches sequential kernel",
                 result["first_frame_exact"], "first frame exact")
    ok &= _check("ring kept frames in flight",
                 result["ring_max_in_flight"] >= 2,
                 f"max in flight {result['ring_max_in_flight']} "
                 f"(depth {result['depth']})")
    detail = (f"ring {result['ring_fps']:.1f} fps vs fork-join "
              f"{result['forkjoin_fps']:.1f} fps "
              f"({result['ring_speedup']:.2f}x)")
    if full:
        ok &= _check(f"ring beats fork-join by {STREAM_SPEEDUP_MIN}x",
                     result["ring_speedup"] >= STREAM_SPEEDUP_MIN, detail)
    else:
        ok &= _check(f"ring above {STREAM_SMOKE_FPS_FLOOR} fps floor",
                     result["ring_fps"] >= STREAM_SMOKE_FPS_FLOOR, detail)
    print(f"  -> {os.path.relpath(STREAM_PATH, REPO_ROOT)} "
          f"(mode={result['mode']})")
    return ok


def bench_serve(full: bool) -> dict:
    """Time the multi-stream broker against sequential multiplexing.

    Both sides correct the identical set of frames (N streams of
    value-encoded constant VGA frames, one shared calibration).  The
    baseline drains the streams round-robin through one inline fused
    kernel — what a host without :mod:`repro.serve` would do — while
    the broker multiplexes all N sessions onto one shared worker
    fleet.  Strict per-stream ordering is verified on every delivered
    frame (the centre pixel encodes ``(stream, index)``), so the gate
    is a correctness check even where the speedup is not enforced.
    """
    from repro.serve import MultiStreamCorrector

    res = "VGA"
    w, h = resolution(res)
    field = standard_field(w, h)
    lut = RemapLUT(field, method="bilinear")
    workers = 4 if full else 2
    per_stream = {4: 16, 16: 4} if full else {4: 3, 16: 2}

    def value(sid, k):
        return (sid * 29 + k) % 251

    def const_frames(sid, n):
        for k in range(n):
            yield np.full((h, w), value(sid, k), dtype=np.uint8)

    lut.apply_into(np.full((h, w), 7, dtype=np.uint8),
                   np.empty(lut.out_shape, dtype=np.uint8))  # warmup
    cy, cx = lut.out_shape[0] // 2, lut.out_shape[1] // 2
    runs = []
    for streams in (4, 16):
        n = per_stream[streams]
        total = streams * n

        # baseline: one thread, one kernel, streams drained round-robin
        out = np.empty(lut.out_shape, dtype=np.uint8)
        t0 = time.perf_counter()
        for k in range(n):
            for sid in range(streams):
                lut.apply_into(np.full((h, w), value(sid, k), dtype=np.uint8),
                               out)
        seq_s = time.perf_counter() - t0

        order_ok = True
        with MultiStreamCorrector(workers=workers,
                                  slot_budget=2 * streams) as svc:
            sessions = [svc.open_stream(const_frames(i, n), field,
                                        name=f"s{i}")
                        for i in range(streams)]
            seen = {s.name: [] for s in sessions}
            t0 = time.perf_counter()
            for name, frame in svc.merged(sessions):
                seen[name].append(int(frame[cy, cx]))
            serve_s = time.perf_counter() - t0
        for i in range(streams):
            if seen[f"s{i}"] != [value(i, k) for k in range(n)]:
                order_ok = False
        runs.append({
            "streams": streams,
            "frames_per_stream": n,
            "total_frames": total,
            "sequential_fps": total / seq_s,
            "aggregate_fps": total / serve_s,
            "speedup_vs_sequential": seq_s / serve_s,
            "in_order": order_ok,
        })

    return {
        "mode": "full" if full else "smoke",
        "cpu_count": os.cpu_count(),
        "resolution": res,
        "method": "bilinear",
        "workers": workers,
        "runs": runs,
        "speedup_gate": SERVE_SPEEDUP_MIN if full else None,
        "fps_floor": None if full else SERVE_SMOKE_FPS_FLOOR,
    }


def check_serve(smoke: bool) -> bool:
    """The multi-stream service gate; writes ``BENCH_serve.json``.

    Full mode (>= ``STREAM_FULL_MIN_CORES`` cores, no ``--smoke``)
    enforces ``SERVE_SPEEDUP_MIN`` aggregate speedup over sequential
    multiplexing at 4 and 16 concurrent streams; the reduced smoke
    enforces strict per-stream ordering plus a conservative aggregate
    fps floor, so 1-core CI still catches a broken or glacial broker.
    """
    full = not smoke and (os.cpu_count() or 1) >= STREAM_FULL_MIN_CORES
    print(f"== multi-stream serve: broker vs sequential multiplex "
          f"({'full gate' if full else 'reduced smoke'}) ==")
    result = bench_serve(full)
    with open(SERVE_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    ok = True
    for run in result["runs"]:
        streams = run["streams"]
        ok &= _check(f"{streams} streams strictly in order per stream",
                     run["in_order"],
                     f"{run['total_frames']} frames through "
                     f"{result['workers']} workers")
        detail = (f"aggregate {run['aggregate_fps']:.1f} fps vs sequential "
                  f"{run['sequential_fps']:.1f} fps "
                  f"({run['speedup_vs_sequential']:.2f}x)")
        if full:
            ok &= _check(
                f"{streams} streams beat sequential by {SERVE_SPEEDUP_MIN}x",
                run["speedup_vs_sequential"] >= SERVE_SPEEDUP_MIN, detail)
        else:
            ok &= _check(
                f"{streams} streams above {SERVE_SMOKE_FPS_FLOOR} fps floor",
                run["aggregate_fps"] >= SERVE_SMOKE_FPS_FLOOR, detail)
    print(f"  -> {os.path.relpath(SERVE_PATH, REPO_ROOT)} "
          f"(mode={result['mode']})")
    return ok


def _measured_dma_ledger(lut, tile_rows: int, pixel_bytes: int = 1) -> dict:
    """Per-frame DMA bytes a banded engine actually needs, from the LUT.

    Walks the concrete gather table in ``tile_rows`` output bands: each
    band's source traffic is the byte span of the source bounding box
    its taps really address (what a DMA engine would fetch), plus the
    band's share of the table itself and its output stores.  This is
    the measured side of the reconciliation against
    :meth:`CellModel.planar_dma_profile`, which computes the same
    ledger analytically from the coordinate field.
    """
    oh, ow = lut.out_shape
    sw = lut.src_shape[1]
    idx = lut.indices
    mask = None if lut.mask is None else np.asarray(lut.mask).reshape(-1)
    src_bytes = 0
    tiles = 0
    for r0 in range(0, oh, tile_rows):
        r1 = min(oh, r0 + tile_rows)
        sel = idx[r0 * ow:r1 * ow]
        if mask is not None:
            sel = sel[mask[r0 * ow:r1 * ow]]
        tiles += 1
        if sel.size == 0:
            continue
        rows = sel // sw
        cols = sel % sw
        src_bytes += (int(rows.max()) - int(rows.min()) + 1) \
            * (int(cols.max()) - int(cols.min()) + 1) * pixel_bytes
    n = idx.shape[0]
    lut_bytes = n * lut.entry_bytes()
    out_bytes = n * pixel_bytes
    return {
        "tiles": tiles,
        "src_bytes": src_bytes,
        "lut_bytes": lut_bytes,
        "out_bytes": out_bytes,
        "total_bytes": src_bytes + lut_bytes + out_bytes,
    }


def bench_yuv(full: bool) -> dict:
    """Measure the planar YUV420 fast path against the packed baseline.

    Four independent facts go into ``BENCH_yuv.json``: per-plane
    bit-exactness against the single-plane oracle, the bytes-touched
    ratio vs packed RGB on identical content, in-order delivery of
    per-plane bands under both the ring engine and a broker session,
    and the measured-vs-modeled DMA ledger reconciliation.
    """
    from repro.accel.cellbe import CellModel
    from repro.accel.platform import Workload
    from repro.serve.broker import StreamBroker
    from repro.video.stream import corrected_stream
    from repro.video.yuv import YUV420Frame, YUVCorrector

    res = "1080p" if full else "VGA"
    w, h = resolution(res)
    field = standard_field(w, h)
    corr = YUVCorrector.from_field(field)
    oh, ow = corr.luma_lut.out_shape

    y = synth.urban(w, h)
    u = np.linspace(96, 160, w // 2, dtype=np.float64)[None, :] \
        * np.ones((h // 2, 1))
    v = np.linspace(160, 96, h // 2, dtype=np.float64)[:, None] \
        * np.ones((1, w // 2))
    frame = YUV420Frame(y, u.astype(np.uint8), v.astype(np.uint8))

    # per-plane result vs the single-plane oracle (same LUTs, one
    # plane at a time through the public apply)
    out = corr.correct(frame, copy=True)
    plane_exact = (np.array_equal(out.y, corr.luma_lut.apply(frame.y))
                   and np.array_equal(out.u, corr.chroma_lut.apply(frame.u))
                   and np.array_equal(out.v, corr.chroma_lut.apply(frame.v)))

    # bytes actually touched: gather traffic + output stores, planar
    # vs the same content corrected as packed RGB through one LUT
    _, snap_yuv = capture_metrics(corr.correct, frame)
    yuv_bytes = (snap_yuv["counters"]["remap.bytes_gathered"]
                 + out.y.nbytes + out.u.nbytes + out.v.nbytes)
    rgb = frame.to_rgb()
    rgb_out = np.empty((oh, ow, 3), dtype=np.uint8)
    _, snap_rgb = capture_metrics(corr.luma_lut.apply_into, rgb, rgb_out)
    rgb_bytes = (snap_rgb["counters"]["remap.bytes_gathered"]
                 + rgb_out.nbytes)
    bytes_ratio = rgb_bytes / yuv_bytes

    # in-order delivery of per-plane bands: value-encoded frames
    # through the planar ring engine and a planar broker session
    n_frames = 8 if full else 6

    def value(k):
        return (k * 37 + 11) % 251

    def frames_src():
        for k in range(n_frames):
            yield YUV420Frame(
                np.full((h, w), value(k), dtype=np.uint8),
                np.full((h // 2, w // 2), 90, dtype=np.uint8),
                np.full((h // 2, w // 2), 170, dtype=np.uint8))

    expected = [corr.correct(f, copy=True) for f in frames_src()]

    def in_order(got):
        if len(got) != n_frames:
            return False
        return all(
            np.array_equal(g.y, e.y) and np.array_equal(g.u, e.u)
            and np.array_equal(g.v, e.v)
            for g, e in zip(got, expected))

    ring_got = list(corrected_stream(frames_src(), field, pixfmt="yuv420",
                                     engine="ring", workers=2, depth=2,
                                     copy=True))
    ring_in_order = in_order(ring_got)

    with StreamBroker(workers=2, slot_budget=4) as broker:
        serve_got = list(broker.open(frames_src(), field, name="yuv-gate",
                                     pixfmt="yuv420", depth=2))
    serve_in_order = in_order(serve_got)

    # measured-vs-modeled DMA ledger, identical tiling on both sides
    tile_rows = 64
    model = CellModel()
    wl_y = Workload.from_field(field,
                               lut_entry_bytes=corr.luma_lut.entry_bytes())
    wl_c = Workload.from_field(corr.chroma_field,
                               lut_entry_bytes=corr.chroma_lut.entry_bytes())
    modeled = model.planar_dma_profile({"y": wl_y, "u": wl_c, "v": wl_c},
                                       tile_rows=tile_rows)
    meas_y = _measured_dma_ledger(corr.luma_lut, tile_rows)
    meas_c = _measured_dma_ledger(corr.chroma_lut, max(1, tile_rows // 2))
    measured_total = meas_y["total_bytes"] + 2 * meas_c["total_bytes"]
    dma_rel_err = abs(measured_total - modeled["total_bytes"]) \
        / modeled["total_bytes"]

    return {
        "mode": "full" if full else "smoke",
        "cpu_count": os.cpu_count(),
        "resolution": res,
        "frames": n_frames,
        "method": "bilinear",
        "plane_exact": plane_exact,
        "yuv_bytes_per_frame": int(yuv_bytes),
        "rgb_bytes_per_frame": int(rgb_bytes),
        "bytes_ratio": bytes_ratio,
        "bytes_ratio_gate": YUV_BYTES_RATIO_MIN,
        "ring_in_order": ring_in_order,
        "serve_in_order": serve_in_order,
        "tile_rows": tile_rows,
        "measured_dma_bytes": int(measured_total),
        "modeled_dma_bytes": int(modeled["total_bytes"]),
        "dma_rel_err": dma_rel_err,
        "dma_tolerance": YUV_DMA_TOLERANCE,
        "measured_planes": {"y": meas_y, "u": meas_c, "v": meas_c},
        "modeled_planes": {k: {kk: vv for kk, vv in p.items()}
                           for k, p in modeled["planes"].items()},
    }


def check_yuv(smoke: bool) -> bool:
    """The planar YUV420 gate; writes ``BENCH_yuv.json``."""
    full = not smoke and (os.cpu_count() or 1) >= STREAM_FULL_MIN_CORES
    print(f"== planar yuv420: bytes touched, ordering, DMA ledger "
          f"({'full 1080p' if full else 'reduced smoke VGA'}) ==")
    result = bench_yuv(full)
    with open(YUV_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    ok = _check("per-plane output bit-exact vs single-plane oracle",
                result["plane_exact"], "y, u, v all equal")
    ok &= _check(
        f"planar touches {YUV_BYTES_RATIO_MIN}x fewer bytes than RGB",
        result["bytes_ratio"] >= YUV_BYTES_RATIO_MIN,
        f"rgb {result['rgb_bytes_per_frame'] / 1e6:.1f} MB vs yuv "
        f"{result['yuv_bytes_per_frame'] / 1e6:.1f} MB per frame "
        f"({result['bytes_ratio']:.2f}x)")
    ok &= _check("ring delivers planar frames in order",
                 result["ring_in_order"],
                 f"{result['frames']} frames, per-plane bands")
    ok &= _check("broker session delivers planar frames in order",
                 result["serve_in_order"],
                 f"{result['frames']} frames through the shared fleet")
    ok &= _check(
        f"measured DMA within {YUV_DMA_TOLERANCE:.0%} of Cell model",
        result["dma_rel_err"] <= YUV_DMA_TOLERANCE,
        f"measured {result['measured_dma_bytes'] / 1e6:.2f} MB vs modeled "
        f"{result['modeled_dma_bytes'] / 1e6:.2f} MB "
        f"({result['dma_rel_err']:.1%} off)")
    print(f"  -> {os.path.relpath(YUV_PATH, REPO_ROOT)} "
          f"(mode={result['mode']})")
    return ok


def bench_fused(full: bool) -> dict:
    """Fused correct+downscale vs the two-pass pipeline on one frame.

    Builds the composed correct-then-downscale table (one gather at the
    delivered resolution) and races it against the naive pipeline that
    corrects at full resolution and then resamples the intermediate.
    Three facts go into ``BENCH_fused.json``: the bytes-gathered ratio
    (the fused table reads the source once at output density; the
    two-pass reads full-res gathers plus the intermediate), the
    wall-clock speedup, and the quality of the fused output against
    the two-pass reference and the float-precision gold render.  The
    modeled counterpart (``CellModel.fused_dma_profile``) is recorded
    alongside for the accelerator narrative.
    """
    from repro.accel.cellbe import CellModel
    from repro.accel.platform import Workload
    from repro.core.compose import compose_fields, downscale_field
    from repro.core.quality import psnr

    if full:
        w, h, ow, oh = 3840, 2160, 1920, 1080
        res = "4K->1080p"
    else:
        w, h, ow, oh = 640, 480, 320, 240
        res = "VGA->QVGA"
    # zoom=1.0: the composed map stays well-sampled everywhere, so the
    # fused single gather tracks the two-pass reference above the
    # absolute PSNR floor (heavy rim compression at wider zooms costs
    # ~3 dB and is covered by the gold-delta fallback instead).
    field = standard_field(w, h, zoom=1.0)
    frame = synth.urban(w, h)
    outer = downscale_field(ow, oh, w, h, prefilter=False)

    lut_corr = RemapLUT(field, method="bilinear")
    lut_down = RemapLUT(outer, method="bilinear")
    fused_field = compose_fields(outer, field)
    lut_fused = RemapLUT(fused_field, method="bilinear")

    mid = np.empty(lut_corr.out_shape, dtype=np.uint8)
    out_two = np.empty(lut_down.out_shape, dtype=np.uint8)
    out_fused = np.empty(lut_fused.out_shape, dtype=np.uint8)

    def two_pass():
        lut_corr.apply_into(frame, mid)
        lut_down.apply_into(mid, out_two)

    # bytes actually gathered by each side (instrumented single run)
    _, snap_two = capture_metrics(two_pass)
    two_bytes = snap_two["counters"]["remap.bytes_gathered"]
    _, snap_fused = capture_metrics(lut_fused.apply_into, frame, out_fused)
    fused_bytes = snap_fused["counters"]["remap.bytes_gathered"]
    bytes_ratio = two_bytes / fused_bytes

    # steady-state wall clock, best of REPEATS
    two_s = fused_s = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        two_pass()
        two_s = min(two_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        lut_fused.apply_into(frame, out_fused)
        fused_s = min(fused_s, time.perf_counter() - t0)

    # quality: fused vs the two-pass reference, plus both sides scored
    # against the float-precision gold render (no intermediate
    # quantization) for the delta fallback
    gold_f = lut_down.apply(lut_corr.apply(frame.astype(np.float32)))
    gold = np.clip(np.rint(gold_f), 0, 255).astype(np.uint8)
    psnr_vs_two = float(psnr(out_two, out_fused))
    psnr_two_gold = float(psnr(gold, out_two))
    psnr_fused_gold = float(psnr(gold, out_fused))

    # modeled DMA ledger of the same trade for the Cell narrative
    model = CellModel().fused_dma_profile(
        Workload.from_field(fused_field,
                            lut_entry_bytes=lut_fused.entry_bytes()),
        {"correct": Workload.from_field(
            field, lut_entry_bytes=lut_corr.entry_bytes()),
         "downscale": Workload.from_field(
             outer, lut_entry_bytes=lut_down.entry_bytes())})

    return {
        "mode": "full" if full else "smoke",
        "cpu_count": os.cpu_count(),
        "resolution": res,
        "src_size": [w, h],
        "out_size": [ow, oh],
        "method": "bilinear",
        "zoom": 1.0,
        "two_pass_s": two_s,
        "fused_s": fused_s,
        "speedup": two_s / fused_s,
        "two_pass_bytes_gathered": int(two_bytes),
        "fused_bytes_gathered": int(fused_bytes),
        "bytes_ratio": bytes_ratio,
        "psnr_fused_vs_two_pass_db": psnr_vs_two,
        "psnr_two_pass_gold_db": psnr_two_gold,
        "psnr_fused_gold_db": psnr_fused_gold,
        "modeled_savings_ratio": model["savings_ratio"],
        "modeled_fused_bytes": int(model["fused"]["total_bytes"]),
        "modeled_staged_bytes": int(model["staged_total_bytes"]),
        "bytes_ratio_gate": FUSED_BYTES_RATIO_MIN,
        "speedup_gate": FUSED_SPEEDUP_MIN if full
        else FUSED_SMOKE_SPEEDUP_FLOOR,
        "psnr_gate": FUSED_PSNR_MIN,
    }


def check_fused(smoke: bool) -> bool:
    """The fused correct+downscale gate; writes ``BENCH_fused.json``.

    The bytes-gathered ratio and the quality floor are enforced in
    both modes (they are properties of the tables, not the host); the
    ``FUSED_SPEEDUP_MIN`` wall-clock gate runs at 4K -> 1080p on the
    CI reference machine, with a conservative
    ``FUSED_SMOKE_SPEEDUP_FLOOR`` on the reduced configuration.
    """
    full = not smoke and (os.cpu_count() or 1) >= STREAM_FULL_MIN_CORES
    print(f"== fused correct+downscale vs two-pass "
          f"({'full 4K->1080p' if full else 'reduced smoke VGA->QVGA'}) ==")
    result = bench_fused(full)
    with open(FUSED_PATH, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    ok = _check(
        f"fused gathers {FUSED_BYTES_RATIO_MIN}x fewer bytes",
        result["bytes_ratio"] >= FUSED_BYTES_RATIO_MIN,
        f"two-pass {result['two_pass_bytes_gathered'] / 1e6:.1f} MB vs "
        f"fused {result['fused_bytes_gathered'] / 1e6:.1f} MB "
        f"({result['bytes_ratio']:.2f}x)")
    gate = FUSED_SPEEDUP_MIN if full else FUSED_SMOKE_SPEEDUP_FLOOR
    ok &= _check(
        f"fused beats two-pass wall clock by {gate}x",
        result["speedup"] >= gate,
        f"two-pass {result['two_pass_s'] * 1e3:.1f} ms vs fused "
        f"{result['fused_s'] * 1e3:.1f} ms ({result['speedup']:.2f}x)")
    quality_ok = (result["psnr_fused_vs_two_pass_db"] >= FUSED_PSNR_MIN
                  or result["psnr_fused_gold_db"]
                  >= result["psnr_two_pass_gold_db"] - FUSED_PSNR_DELTA_MAX)
    ok &= _check(
        f"fused within {FUSED_PSNR_MIN} dB floor or "
        f"{FUSED_PSNR_DELTA_MAX} dB of two-pass vs gold",
        quality_ok,
        f"{result['psnr_fused_vs_two_pass_db']:.1f} dB vs two-pass "
        f"(gold: fused {result['psnr_fused_gold_db']:.1f} dB, "
        f"two-pass {result['psnr_two_pass_gold_db']:.1f} dB)")
    _check("modeled DMA savings (recorded, not gated)", True,
           f"staged {result['modeled_staged_bytes'] / 1e6:.1f} MB vs fused "
           f"{result['modeled_fused_bytes'] / 1e6:.1f} MB "
           f"({result['modeled_savings_ratio']:.2f}x)")
    print(f"  -> {os.path.relpath(FUSED_PATH, REPO_ROOT)} "
          f"(mode={result['mode']})")
    return ok


def check_live_surface() -> bool:
    """The live observability gate: scrape a streaming run in-process.

    Runs a small ring stream (VGA, endless-safe frame count) with the
    stall watchdog armed and a :class:`MetricsServer` pinned to the
    run's registry, scrapes ``/metrics`` and ``/health`` over real HTTP
    mid-run, and checks the exposition parses, the e2e latency
    histogram is populated, and the watchdog never fired
    (``stream.stalls == 0``).  Deliberately separate from the timing
    legs above so the 5% disabled-overhead budget and the 1.3x
    ring-vs-forkjoin gate measure the uninstrumented hot path.
    """
    import json as _json
    import urllib.request

    from repro.obs import MetricsServer, parse_prometheus_text
    from repro.obs.telemetry import Telemetry, scoped
    from repro.video.stream import corrected_stream, panning_crops

    print("== live observability surface (ring + /metrics + /health) ==")
    w, h = resolution("VGA")
    field = standard_field(w, h)
    world = synth.urban(w + 64, h + 64)
    frames = panning_crops(world, w, h, 8, step=16)

    with scoped(Telemetry()) as tel, \
            MetricsServer(telemetry=tel, port=0) as server:
        delivered = 0
        metrics_text = health = None
        for _ in corrected_stream(frames, field, engine="ring", workers=2,
                                  depth=2, stall_timeout_s=30.0):
            delivered += 1
            if delivered == 4:  # scrape mid-stream, frames in flight
                with urllib.request.urlopen(server.url + "/metrics") as r:
                    metrics_text = r.read().decode()
                with urllib.request.urlopen(server.url + "/health") as r:
                    health = _json.loads(r.read().decode())
        snap = tel.snapshot()

    series = parse_prometheus_text(metrics_text)
    ok = _check("ring delivered every frame", delivered == 8,
                f"{delivered}/8")
    ok &= _check("/metrics parses and carries e2e latency",
                 "repro_frame_e2e_latency_seconds_count" in series,
                 f"{len(series)} series at scrape time")
    ok &= _check("/health reports ok", health is not None
                 and health.get("status") == "ok",
                 f"status={health.get('status') if health else '<none>'}")
    stalls = snap["counters"].get("stream.stalls", 0)
    ok &= _check("no watchdog fires", stalls == 0,
                 f"stream.stalls={stalls}")
    e2e = snap["histograms"].get("frame.e2e_latency_seconds", {})
    ok &= _check("e2e histogram complete", e2e.get("count") == 8,
                 f"count={e2e.get('count')}")
    return ok


def emit_metrics_snapshot() -> dict:
    """Instrumented VGA correction run -> telemetry snapshot on disk."""
    w, h = resolution("VGA")
    field = standard_field(w, h)
    frame = synth.urban(w, h)
    lut = RemapLUT(field, method="bilinear")
    out = np.empty(lut.out_shape, dtype=frame.dtype)

    def run():
        for _ in range(3):
            lut.apply_into(frame, out)

    _, snap = capture_metrics(run)
    write_metrics(snap, METRICS_PATH)
    return snap


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="force the reduced streaming configuration "
                             "(small frames, fps floor instead of the 1.3x "
                             "gate) regardless of core count")
    args = parser.parse_args()
    with open(BASELINE_PATH) as fh:
        base = json.load(fh)

    ok = smoke_experiments()

    print("== fused apply vs seed baseline (1080p bilinear) ==")
    measured = time_fused_apply()
    seed = float(base["seed_apply_s"])
    ok &= _check("fused apply beats seed kernel", measured < seed,
                 f"measured {measured * 1e3:.1f} ms vs seed {seed * 1e3:.1f} ms "
                 f"({seed / measured:.2f}x)")

    print("== disabled-telemetry overhead vs pre-telemetry baseline ==")
    into_base = float(base["fused_apply_into_s"])
    tol = float(base.get("overhead_tolerance", 0.05))
    budget = into_base * (1.0 + tol)
    ok &= _check("disabled telemetry within budget", measured <= budget,
                 f"measured {measured * 1e3:.1f} ms vs budget {budget * 1e3:.1f} ms "
                 f"(baseline {into_base * 1e3:.1f} ms + {tol * 100:.0f}%)")

    print("== compact LUT entry sizes vs seed layout ==")
    for method in ("nearest", "bilinear", "bicubic"):
        entry = RemapLUT.entry_bytes_for(method)
        seed_entry = float(base["entry_bytes_seed"][method])
        ok &= _check(f"{method} entry >= 40% smaller", entry <= 0.6 * seed_entry,
                     f"{entry} B vs seed {seed_entry:.0f} B")

    ok &= check_kernels(smoke=args.smoke)

    ok &= check_stream(smoke=args.smoke)

    ok &= check_serve(smoke=args.smoke)

    ok &= check_yuv(smoke=args.smoke)

    ok &= check_fused(smoke=args.smoke)

    ok &= check_live_surface()

    print("== metrics snapshot ==")
    snap = emit_metrics_snapshot()
    frames = snap["counters"].get("remap.frames", 0)
    ok &= _check("snapshot recorded frames", frames > 0,
                 f"remap.frames={frames} -> {os.path.relpath(METRICS_PATH, REPO_ROOT)}")

    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
