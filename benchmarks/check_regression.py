#!/usr/bin/env python
"""Fast perf-regression gate for the fused LUT kernel.

Smoke-runs the two experiments most sensitive to the remap hot path
(F7 LUT-vs-OTF and F1 multicore scaling) at VGA so their invariants
still hold, then times the fused bilinear apply on a 1080p frame and
compares it against the pre-compact-layout baseline recorded in
``BENCH_baseline.json`` at the repo root.  The same measurement doubles
as the telemetry overhead gate: with the global registry disabled (the
default), ``apply_into`` must stay within ``overhead_tolerance`` (5%)
of the pre-telemetry ``fused_apply_into_s`` baseline.

As a side effect the gate writes ``BENCH_metrics.json`` next to the
baseline: a telemetry snapshot of an instrumented VGA correction run,
so CI archives the counter/histogram shape alongside the timings.

Exit status 0 = no regression; 1 = the fused kernel has become slower
than the old per-tap kernel it replaced, telemetry leaked overhead
into the disabled hot path, or an invariant broke.

Run from the repo root::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.experiments import f1_multicore_scaling, f7_lut_vs_otf  # noqa: E402
from repro.bench.harness import capture_metrics, standard_field, resolution  # noqa: E402
from repro.core.remap import RemapLUT                            # noqa: E402
from repro.obs import write_metrics                              # noqa: E402
from repro.video import synth                                    # noqa: E402

BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_baseline.json")
METRICS_PATH = os.path.join(REPO_ROOT, "BENCH_metrics.json")
REPEATS = 5


def _check(label: str, ok: bool, detail: str) -> bool:
    print(f"  [{'ok' if ok else 'FAIL'}] {label}: {detail}")
    return ok


def smoke_experiments() -> bool:
    """The cheap invariant sweep: both experiments still tell their story."""
    print("== smoke: F7 LUT vs on-the-fly (VGA) ==")
    t7 = f7_lut_vs_otf(res="VGA")
    adv = dict(zip(t7.column("platform"), t7.column("lut_advantage")))
    ok = _check("sequential favours LUT", adv["sequential"] > 1.5,
                f"advantage {adv['sequential']:.2f}")
    ok &= _check("host(numpy) favours LUT", adv["host(numpy)"] > 1.5,
                 f"advantage {adv['host(numpy)']:.2f}")

    print("== smoke: F1 multicore scaling (VGA) ==")
    t1 = f1_multicore_scaling(resolutions=("VGA",))
    speedups = t1.column("speedup")
    ok &= _check("parallel speedup positive", all(s > 0 for s in speedups),
                 f"min speedup {min(speedups):.2f}")
    return ok


def time_fused_apply() -> float:
    """Best-of-N fused bilinear apply on a 1080p frame (steady state)."""
    w, h = resolution("1080p")
    field = standard_field(w, h)
    frame = synth.urban(w, h)
    lut = RemapLUT(field, method="bilinear")
    out = np.empty(lut.out_shape, dtype=frame.dtype)
    lut.apply_into(frame, out)  # warmup: derive + cache the weight table
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        lut.apply_into(frame, out)
        best = min(best, time.perf_counter() - t0)
    return best


def emit_metrics_snapshot() -> dict:
    """Instrumented VGA correction run -> telemetry snapshot on disk."""
    w, h = resolution("VGA")
    field = standard_field(w, h)
    frame = synth.urban(w, h)
    lut = RemapLUT(field, method="bilinear")
    out = np.empty(lut.out_shape, dtype=frame.dtype)

    def run():
        for _ in range(3):
            lut.apply_into(frame, out)

    _, snap = capture_metrics(run)
    write_metrics(snap, METRICS_PATH)
    return snap


def main() -> int:
    with open(BASELINE_PATH) as fh:
        base = json.load(fh)

    ok = smoke_experiments()

    print("== fused apply vs seed baseline (1080p bilinear) ==")
    measured = time_fused_apply()
    seed = float(base["seed_apply_s"])
    ok &= _check("fused apply beats seed kernel", measured < seed,
                 f"measured {measured * 1e3:.1f} ms vs seed {seed * 1e3:.1f} ms "
                 f"({seed / measured:.2f}x)")

    print("== disabled-telemetry overhead vs pre-telemetry baseline ==")
    into_base = float(base["fused_apply_into_s"])
    tol = float(base.get("overhead_tolerance", 0.05))
    budget = into_base * (1.0 + tol)
    ok &= _check("disabled telemetry within budget", measured <= budget,
                 f"measured {measured * 1e3:.1f} ms vs budget {budget * 1e3:.1f} ms "
                 f"(baseline {into_base * 1e3:.1f} ms + {tol * 100:.0f}%)")

    entry = RemapLUT.entry_bytes_for("bilinear")
    seed_entry = float(base["entry_bytes_seed"]["bilinear"])
    ok &= _check("bilinear entry >= 40% smaller", entry <= 0.6 * seed_entry,
                 f"{entry} B vs seed {seed_entry:.0f} B")

    print("== metrics snapshot ==")
    snap = emit_metrics_snapshot()
    frames = snap["counters"].get("remap.frames", 0)
    ok &= _check("snapshot recorded frames", frames > 0,
                 f"remap.frames={frames} -> {os.path.relpath(METRICS_PATH, REPO_ROOT)}")

    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
