"""A4 — end-to-end application pipeline: kernel vs app speedup."""

from repro.bench.ablations import a4_application

from conftest import run_once


def test_a4_application(benchmark, record_table):
    table = run_once(benchmark, a4_application, res="720p")
    record_table("A4", table)
    rows = {p: (ks, as_) for p, kf, af, ks, as_, b in zip(
        table.column("platform"), table.column("kernel_fps"),
        table.column("app_fps"), table.column("kernel_speedup"),
        table.column("app_speedup"), table.column("app_bottleneck"))}
    # app speedup compresses below kernel speedup for every accelerator
    for name in ("cell", "gtx280"):
        kernel_s, app_s = rows[name]
        assert app_s < kernel_s
    # but acceleration still helps end-to-end
    assert rows["gtx280"][1] > 1.5
