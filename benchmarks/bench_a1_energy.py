"""A1 — energy per corrected frame across the machine park."""

from repro.bench.ablations import a1_energy

from conftest import run_once


def test_a1_energy(benchmark, record_table):
    table = run_once(benchmark, a1_energy, res="720p")
    record_table("A1", table)
    eff = dict(zip(table.column("platform"), table.column("mpx_per_joule")))
    watts = dict(zip(table.column("platform"), table.column("watts_avg")))
    # accelerators beat CPUs of their era on energy efficiency
    assert eff["cell"] > eff["xeon4"] > eff["sequential"]
    # the FPGA draws an order of magnitude less power than the GPU
    assert watts["fpga"] * 4 < watts["gtx280"]
