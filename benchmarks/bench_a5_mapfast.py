"""A5 — map construction: exact vs radial-LUT builder."""

from repro.bench.ablations import a5_map_construction

from conftest import run_once


def test_a5_map_construction(benchmark, record_table):
    table = run_once(benchmark, a5_map_construction, res="720p")
    record_table("A5", table)
    rows = list(zip(table.column("builder"), table.column("samples"),
                    table.column("speedup"), table.column("max_err_px")))
    radial = [(n, s, e) for b, n, s, e in rows if b == "radial"]
    # the radial builder is faster at every table size...
    assert all(s > 1.5 for _, s, _ in radial)
    # ...and error falls below 0.01 px from 256 samples on
    assert all(e < 0.01 for n, _, e in radial if n >= 256)
