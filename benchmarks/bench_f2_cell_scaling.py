"""F2 — Cell speedup vs SPE count, single vs double buffering."""

from repro.bench.experiments import f2_cell_scaling

from conftest import run_once


def test_f2_cell_scaling(benchmark, record_table):
    table = run_once(benchmark, f2_cell_scaling, res="720p", mode="otf")
    record_table("F2", table)
    rows = list(zip(table.column("spes"), table.column("buffering"),
                    table.column("fps")))
    single = {s: f for s, b, f in rows if b == "single"}
    double = {s: f for s, b, f in rows if b == "double"}
    # compute-bound OTF kernel: double buffering wins at full SPE count
    top = max(single)
    assert double[top] > single[top]
    # and scaling is close to linear for the first doubling
    assert single[2] / single[1] > 1.6
