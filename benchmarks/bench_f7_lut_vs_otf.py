"""F7 — LUT vs on-the-fly mapping, all platforms + host measurement."""

from repro.bench.experiments import f7_lut_vs_otf

from conftest import run_once


def test_f7_lut_vs_otf(benchmark, record_table):
    table = run_once(benchmark, f7_lut_vs_otf, res="720p")
    record_table("F7", table)
    adv = dict(zip(table.column("platform"), table.column("lut_advantage")))
    # single-core hosts love the LUT (it amortizes the trigonometry)...
    assert adv["sequential"] > 1.5
    assert adv["host(numpy)"] > 1.5
    # ...while the bandwidth-rich many-core prefers recomputation
    assert adv["xeon16"] < 1.0
