"""A3 — stream prefetcher vs blocked traversal (negative result)."""

from repro.bench.ablations import a3_prefetch

from conftest import run_once


def test_a3_prefetch(benchmark, record_table):
    table = run_once(benchmark, a3_prefetch, res="720p")
    record_table("A3", table)
    rows = list(zip(table.column("cache_kb"), table.column("config"),
                    table.column("hit_rate"), table.column("dram_bytes_per_px")))
    for kb in (4, 8, 16, 32):
        plain = next(r for r in rows if r[0] == kb and r[1] == "no prefetch")
        pf = next(r for r in rows if r[0] == kb and r[1] != "no prefetch")
        # the prefetcher never transforms the hit rate...
        assert abs(pf[2] - plain[2]) < 0.06
        # ...but always inflates traffic
        assert pf[3] > plain[3]
