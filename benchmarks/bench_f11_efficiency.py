"""F11 — strong-scaling efficiency and Amdahl serial-fraction fit."""

from repro.bench.experiments import f11_scaling_efficiency

from conftest import run_once


def test_f11_scaling_efficiency(benchmark, record_table):
    table = run_once(benchmark, f11_scaling_efficiency, res="1080p")
    record_table("F11", table)
    rows = list(zip(table.column("schedule"), table.column("threads"),
                    table.column("speedup")))
    top = max(t for _, t, _ in rows)
    static = [s for sched, t, s in rows if sched == "static" and t == top][0]
    dynamic = [s for sched, t, s in rows if sched == "dynamic" and t == top][0]
    # dynamic scheduling absorbs the tilted view's imbalance
    assert dynamic > static
