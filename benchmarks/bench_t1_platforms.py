"""T1 — platform characteristics table."""

from repro.bench.experiments import t1_platforms

from conftest import run_once


def test_t1_platforms(benchmark, record_table):
    table = run_once(benchmark, t1_platforms)
    record_table("T1", table)
    assert len(table.rows) == 6
