"""Camera/fisheye intrinsics tests."""

import numpy as np
import pytest

from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from repro.errors import GeometryError


class TestCameraIntrinsics:
    def test_matrix_layout(self):
        k = CameraIntrinsics(fx=2.0, fy=3.0, cx=4.0, cy=5.0, width=10, height=10,
                             skew=0.5).matrix
        assert k[0, 0] == 2.0 and k[1, 1] == 3.0
        assert k[0, 2] == 4.0 and k[1, 2] == 5.0
        assert k[0, 1] == 0.5 and k[2, 2] == 1.0

    def test_rejects_bad_focal(self):
        with pytest.raises(GeometryError):
            CameraIntrinsics(fx=0, fy=1, cx=0, cy=0, width=4, height=4)

    def test_rejects_bad_size(self):
        with pytest.raises(GeometryError):
            CameraIntrinsics(fx=1, fy=1, cx=0, cy=0, width=0, height=4)

    def test_from_fov_roundtrip(self):
        cam = CameraIntrinsics.from_fov(640, 480, np.deg2rad(90.0))
        assert cam.hfov == pytest.approx(np.deg2rad(90.0))

    def test_from_fov_rejects_180(self):
        with pytest.raises(GeometryError):
            CameraIntrinsics.from_fov(640, 480, np.pi)

    def test_normalize_denormalize_roundtrip(self):
        cam = CameraIntrinsics(fx=100, fy=120, cx=31.5, cy=23.5, width=64, height=48,
                               skew=0.7)
        xs = np.array([0.0, 10.0, 63.0])
        ys = np.array([0.0, 20.0, 47.0])
        xn, yn = cam.normalize(xs, ys)
        bx, by = cam.denormalize(xn, yn)
        np.testing.assert_allclose(bx, xs, atol=1e-10)
        np.testing.assert_allclose(by, ys, atol=1e-10)

    def test_principal_point_normalizes_to_zero(self):
        cam = CameraIntrinsics(fx=10, fy=10, cx=5.0, cy=6.0, width=12, height=12)
        xn, yn = cam.normalize(5.0, 6.0)
        assert float(xn) == 0.0 and float(yn) == 0.0

    def test_scaled_preserves_fov(self):
        cam = CameraIntrinsics.from_fov(640, 480, np.deg2rad(70.0))
        big = cam.scaled(2.0)
        assert big.width == 1280
        assert big.hfov == pytest.approx(cam.hfov, rel=1e-3)

    def test_scaled_rejects_nonpositive(self):
        cam = CameraIntrinsics.from_fov(64, 64, 1.0)
        with pytest.raises(GeometryError):
            cam.scaled(0.0)

    def test_vfov_smaller_for_wide_frames(self):
        cam = CameraIntrinsics.from_fov(640, 480, np.deg2rad(90.0))
        assert cam.vfov < cam.hfov


class TestFisheyeIntrinsics:
    def test_centered_principal_point(self):
        s = FisheyeIntrinsics.centered(64, 48, focal=20.0)
        assert s.cx == pytest.approx(31.5)
        assert s.cy == pytest.approx(23.5)

    def test_r0_convention(self):
        s = FisheyeIntrinsics.centered(64, 64, focal=100.0)
        assert s.r0 == pytest.approx(100.0 * np.pi / 4)
        assert s.image_circle_radius_180 == pytest.approx(2 * s.r0)

    def test_from_image_circle_equidistant(self):
        s = FisheyeIntrinsics.from_image_circle(512, 512, circle_radius=200.0)
        # equidistant: r(pi/2) = f * pi/2 = 200
        assert s.focal * np.pi / 2 == pytest.approx(200.0)

    def test_from_image_circle_custom_model(self):
        s = FisheyeIntrinsics.from_image_circle(
            512, 512, circle_radius=200.0,
            model_radius_at=lambda t: 2.0 * np.sin(t / 2.0))  # equisolid, f=1
        assert 2.0 * s.focal * np.sin(np.pi / 4) == pytest.approx(200.0)

    def test_from_image_circle_rejects_bad_args(self):
        with pytest.raises(GeometryError):
            FisheyeIntrinsics.from_image_circle(64, 64, circle_radius=0.0)
        with pytest.raises(GeometryError):
            FisheyeIntrinsics.from_image_circle(64, 64, 10.0, max_angle=4.0)

    def test_max_inscribed_radius(self):
        s = FisheyeIntrinsics(width=100, height=60, cx=49.5, cy=29.5, focal=10.0)
        assert s.max_inscribed_radius == pytest.approx(29.5)

    def test_contains(self):
        s = FisheyeIntrinsics.centered(10, 10, focal=5.0)
        assert bool(s.contains(0, 0)) and bool(s.contains(9, 9))
        assert not bool(s.contains(-0.1, 5)) and not bool(s.contains(5, 9.5))

    def test_rejects_nonpositive_focal(self):
        with pytest.raises(GeometryError):
            FisheyeIntrinsics.centered(10, 10, focal=0.0)
