"""Tests: the multi-stream correction service (:mod:`repro.serve`).

The broker's contract is concurrency-shaped, so these tests pin the
parts that only break under interleaving: strict per-stream ordering
across a shared fleet, weighted round-robin fairness, per-stream
backpressure, admission control against the slot budget, one shared
LUT build/publication per calibration, labelled telemetry, and the
teardown guarantees (budget returned, segments unlinked, fleet dead).
"""

import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.image import GRAY8, Frame
from repro.core.lutcache import LUTCache
from repro.core.remap import RemapLUT
from repro.errors import AdmissionError, ScheduleError, StreamError
from repro.obs.export import parse_prometheus_text, prometheus_text
from repro.obs.telemetry import Telemetry, scoped
from repro.serve import DEFAULT_SLOT_BUDGET, MultiStreamCorrector, StreamBroker
from repro.serve.broker import _FairScheduler

pytestmark = pytest.mark.tier1

SIZE = 64


def _assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _const_frames(value0, n):
    """n frames whose centre pixel encodes the frame index."""
    for k in range(n):
        yield np.full((SIZE, SIZE), (value0 + k) % 251, dtype=np.uint8)


def _centre(frame):
    return int(np.asarray(frame)[SIZE // 2, SIZE // 2])


# ----------------------------------------------------------------------
# the scheduler data structure
# ----------------------------------------------------------------------
class TestFairScheduler:
    def test_round_robin_alternates(self):
        s = _FairScheduler()
        s.add_stream("a")
        s.add_stream("b")
        for k in range(3):
            s.push("a", f"a{k}")
            s.push("b", f"b{k}")
        order = [s.pop() for _ in range(6)]
        assert [sid for sid, _ in order] == ["a", "b", "a", "b", "a", "b"]
        assert s.pop() is None

    def test_weights_give_proportional_turns(self):
        s = _FairScheduler()
        s.add_stream("a", weight=2)
        s.add_stream("b", weight=1)
        for k in range(4):
            s.push("a", k)
        for k in range(2):
            s.push("b", k)
        picked = [s.pop()[0] for _ in range(6)]
        assert picked == ["a", "a", "b", "a", "a", "b"]

    def test_idle_stream_is_skipped_not_waited_for(self):
        s = _FairScheduler()
        s.add_stream("idle")
        s.add_stream("busy")
        s.push("busy", 1)
        s.push("busy", 2)
        assert [s.pop()[0] for _ in range(2)] == ["busy", "busy"]

    def test_remove_stream_drops_queue_and_rebalances(self):
        s = _FairScheduler()
        s.add_stream("a")
        s.add_stream("b")
        s.push("a", 1)
        s.push("b", 2)
        s.remove_stream("a")
        assert len(s) == 1
        assert s.pop() == ("b", 2)
        s.remove_stream("ghost")  # unknown sid: no-op

    def test_weight_validated(self):
        s = _FairScheduler()
        with pytest.raises(ScheduleError):
            s.add_stream("a", weight=0)


# ----------------------------------------------------------------------
# in-order delivery through one shared fleet
# ----------------------------------------------------------------------
class TestInOrderDelivery:
    def test_four_concurrent_streams_stay_in_order(self, small_field):
        """The tentpole acceptance check at test scale: four streams,
        one fleet, every stream's frames arrive strictly in input
        order with correct content."""
        n_frames = 8
        cache = LUTCache()
        with MultiStreamCorrector(workers=2, slot_budget=16,
                                  lut_cache=cache) as svc:
            sessions = [
                svc.open_stream(_const_frames(i * 60, n_frames), small_field,
                                name=f"s{i}")
                for i in range(4)
            ]
            got = {f"s{i}": [] for i in range(4)}
            for name, frame in svc.merged(sessions):
                got[name].append(_centre(frame))
        lut = RemapLUT(small_field, method="bilinear")
        for i in range(4):
            expected = [
                _centre(lut.apply(np.full((SIZE, SIZE), (i * 60 + k) % 251,
                                          dtype=np.uint8)))
                for k in range(n_frames)
            ]
            assert got[f"s{i}"] == expected

    def test_single_session_matches_sync_kernel(self, small_field,
                                                random_image):
        lut = RemapLUT(small_field, method="bilinear")
        frames = [random_image, random_image[::-1].copy()]
        with StreamBroker(workers=2) as broker:
            out = list(broker.open(iter(frames), small_field, name="one"))
        assert len(out) == 2
        for got, src in zip(out, frames):
            np.testing.assert_array_equal(got, lut.apply(src))

    def test_frame_objects_keep_metadata(self, small_field, random_image):
        frames = [Frame(random_image, GRAY8, index=7, timestamp=0.25)]
        with StreamBroker(workers=1) as broker:
            out = list(broker.open(iter(frames), small_field))
        assert isinstance(out[0], Frame)
        assert out[0].index == 7
        assert out[0].timestamp == 0.25

    def test_empty_stream_yields_nothing(self, small_field):
        with StreamBroker(workers=1) as broker:
            session = broker.open(iter(()), small_field, name="empty")
            assert list(session) == []
            assert session.closed
            # budget returned immediately
            assert broker.slots_used == 0

    def test_copy_false_views_recycle(self, small_field):
        with StreamBroker(workers=1) as broker:
            session = broker.open(_const_frames(10, 4), small_field,
                                  copy=False, depth=2)
            seen = [_centre(f) for f in session]
        lut = RemapLUT(small_field, method="bilinear")
        expected = [_centre(lut.apply(np.full((SIZE, SIZE), 10 + k,
                                              dtype=np.uint8)))
                    for k in range(4)]
        assert seen == expected


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_budget_exhaustion_raises(self, small_field):
        with StreamBroker(workers=1, slot_budget=4) as broker:
            a = broker.open(_const_frames(0, 2), small_field, depth=2)
            broker.open(_const_frames(0, 2), small_field, depth=2)
            with pytest.raises(AdmissionError):
                broker.open(_const_frames(0, 2), small_field, depth=2)
            assert broker.admission_rejects == 1
            # closing a session returns its slots: admission succeeds now
            a.close()
            c = broker.open(_const_frames(50, 2), small_field, depth=2)
            assert [f is not None for f in c] == [True, True]

    def test_slots_accounting(self, small_field):
        with StreamBroker(workers=1, slot_budget=8) as broker:
            s = broker.open(_const_frames(0, 1), small_field, depth=3)
            assert broker.slots_used == 3
            assert broker.active_streams == 1
            s.close()
            assert broker.slots_used == 0
            assert broker.active_streams == 0

    def test_failed_open_rolls_back_reservation(self, small_field):
        with StreamBroker(workers=1, slot_budget=4) as broker:
            bad = np.zeros((SIZE // 2, SIZE // 2), dtype=np.uint8)
            with pytest.raises(ScheduleError):
                broker.open(iter([bad]), small_field)
            assert broker.slots_used == 0

    def test_default_budget_exported(self):
        assert DEFAULT_SLOT_BUDGET == 16

    def test_parameter_validation(self, small_field):
        with pytest.raises(ScheduleError):
            StreamBroker(workers=0)
        with pytest.raises(ScheduleError):
            StreamBroker(workers=1, slot_budget=0)
        with StreamBroker(workers=1) as broker:
            with pytest.raises(ScheduleError):
                broker.open(_const_frames(0, 1), small_field, depth=0)


# ----------------------------------------------------------------------
# backpressure + fairness under a stalled consumer
# ----------------------------------------------------------------------
class TestBackpressureAndFairness:
    def test_unconsumed_session_pulls_at_most_depth_plus_one(self,
                                                            small_field):
        pulled = []

        def counting_source():
            for k in range(100):
                pulled.append(k)
                yield np.zeros((SIZE, SIZE), dtype=np.uint8)

        with StreamBroker(workers=1, slot_budget=8) as broker:
            session = broker.open(counting_source(), small_field, depth=2)
            time.sleep(1.0)  # nobody consumes: the feeder must stall
            assert len(pulled) <= session.depth + 2
            session.close()

    def test_stalled_stream_does_not_starve_the_other(self, small_field):
        """Session A is never consumed (backpressure holds its feeder);
        session B must still stream through the shared fleet."""
        with StreamBroker(workers=2, slot_budget=8) as broker:
            a = broker.open(_const_frames(0, 50), small_field, name="stalled",
                            depth=2)
            b = broker.open(_const_frames(100, 6), small_field, name="live",
                            depth=2)
            t0 = time.monotonic()
            out = [_centre(f) for f in b]
            elapsed = time.monotonic() - t0
            assert len(out) == 6
            assert elapsed < 20.0
            a.close()

    def test_closed_session_next_raises_stream_error(self, small_field):
        with StreamBroker(workers=1) as broker:
            session = broker.open(_const_frames(0, 4), small_field)
            next(iter(session))
            session.close()
            with pytest.raises(StreamError):
                next(session)

    def test_exhausted_session_keeps_raising_stop_iteration(self,
                                                            small_field):
        with StreamBroker(workers=1) as broker:
            session = broker.open(_const_frames(0, 1), small_field)
            it = iter(session)
            next(it)
            with pytest.raises(StopIteration):
                next(it)
            with pytest.raises(StopIteration):
                next(it)

    def test_geometry_mismatch_from_feeder_surfaces_to_consumer(
            self, small_field, random_image):
        def source():
            yield random_image
            yield np.zeros((SIZE // 2, SIZE), dtype=np.uint8)  # wrong shape

        with StreamBroker(workers=1) as broker:
            session = broker.open(source(), small_field)
            with pytest.raises(ScheduleError):
                list(session)


# ----------------------------------------------------------------------
# shared calibration
# ----------------------------------------------------------------------
class TestSharedCalibration:
    def test_sessions_share_one_build_and_one_publication(self, small_field):
        cache = LUTCache()
        with StreamBroker(workers=1, slot_budget=16,
                          lut_cache=cache) as broker:
            sessions = [broker.open(_const_frames(i, 2), small_field,
                                    name=f"cam{i}") for i in range(3)]
            for s in sessions:
                assert len(list(s)) == 2
            assert cache.misses == 1          # one LUT build
            assert len(broker._tables) == 1   # one shared-memory publication

    def test_distinct_calibrations_get_distinct_tables(self, small_field,
                                                       tilted_field):
        cache = LUTCache()
        with StreamBroker(workers=1, lut_cache=cache) as broker:
            list(broker.open(_const_frames(0, 1), small_field))
            list(broker.open(_const_frames(0, 1), tilted_field))
            assert cache.misses == 2
            assert len(broker._tables) == 2


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestServeTelemetry:
    def test_per_stream_labelled_series(self, small_field):
        tel = Telemetry()
        with scoped(tel):
            with MultiStreamCorrector(workers=1) as svc:
                sessions = [svc.open_stream(_const_frames(i, 3), small_field,
                                            name=f"cam{i}")
                            for i in range(2)]
                for _ in svc.merged(sessions):
                    pass
        snap = tel.snapshot()
        assert snap["counters"]['stream.frames{stream="cam0"}'] == 3
        assert snap["counters"]['stream.frames{stream="cam1"}'] == 3
        assert snap["counters"]["stream.frames"] == 6
        assert snap["counters"]["serve.bands"] >= 6
        hists = snap["histograms"]
        assert 'frame.e2e_latency_seconds{stream="cam0"}' in hists
        # the labelled series render as one metric family per base name
        series = parse_prometheus_text(prometheus_text(snap))
        frames = series["repro_stream_frames"]
        assert ({"stream": "cam0"}, 3.0) in frames
        assert ({"stream": "cam1"}, 3.0) in frames
        assert ({}, 6.0) in frames

    def test_deadline_miss_counted_per_stream(self, small_field):
        tel = Telemetry()
        with scoped(tel):
            with StreamBroker(workers=1) as broker:
                session = broker.open(_const_frames(0, 2), small_field,
                                      name="slo", deadline_s=1e-9)
                assert len(list(session)) == 2
        snap = tel.snapshot()
        assert snap["counters"]['stream.deadline_miss{stream="slo"}'] == 2
        assert snap["counters"]["stream.deadline_miss"] == 2

    def test_fleet_gauges(self, small_field):
        tel = Telemetry()
        with scoped(tel):
            with StreamBroker(workers=2, slot_budget=8) as broker:
                broker.open(_const_frames(0, 1), small_field, depth=2)
                snap = tel.snapshot()
                assert snap["gauges"]["serve.workers"] == 2
                assert snap["gauges"]["serve.slot_budget"] == 8
                assert snap["gauges"]["serve.slots_used"] == 2
        snap = tel.snapshot()
        assert snap["gauges"]["serve.active_streams"] == 0
        assert snap["gauges"]["serve.slots_used"] == 0


# ----------------------------------------------------------------------
# teardown guarantees
# ----------------------------------------------------------------------
class TestTeardown:
    def test_broker_close_unlinks_everything_and_stops_fleet(self,
                                                             small_field):
        broker = StreamBroker(workers=2)
        session = broker.open(_const_frames(0, 3), small_field, depth=2)
        names = [shm.name for seg in session._slots for shm in seg._shms]
        for tables, _ in broker._tables.values():
            names += [shm.name for shm in tables._shms]
        assert len(list(session)) == 3
        procs = list(broker._procs)
        broker.close()
        _assert_unlinked(names)
        for p in procs:
            assert not p.is_alive()
        broker.close()  # idempotent

    def test_session_close_unlinks_its_slots(self, small_field):
        with StreamBroker(workers=1) as broker:
            session = broker.open(_const_frames(0, 2), small_field, depth=2)
            names = [shm.name for seg in session._slots for shm in seg._shms]
            session.close()
            _assert_unlinked(names)

    def test_merged_early_close_releases_all_sessions(self, small_field):
        with MultiStreamCorrector(workers=1, slot_budget=8) as svc:
            sessions = [svc.open_stream(_const_frames(i, 10), small_field,
                                        name=f"s{i}") for i in range(2)]
            drain = svc.merged(sessions)
            next(drain)
            drain.close()  # early consumer break
            assert all(s.closed for s in sessions)
            assert svc.broker.slots_used == 0

    def test_worker_death_surfaces_stream_error(self, small_field):
        with StreamBroker(workers=1) as broker:
            def endless():
                while True:
                    yield np.zeros((SIZE, SIZE), dtype=np.uint8)

            session = broker.open(endless(), small_field)
            next(iter(session))
            broker._procs[0].terminate()
            with pytest.raises(StreamError, match="serve-worker-0"):
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    next(session)

    def test_open_after_close_raises(self, small_field):
        broker = StreamBroker(workers=1)
        broker.close()
        with pytest.raises(ScheduleError):
            broker.open(_const_frames(0, 1), small_field)


# ----------------------------------------------------------------------
# service facade
# ----------------------------------------------------------------------
class TestServiceFacade:
    def test_metrics_url_none_without_server(self):
        with MultiStreamCorrector(workers=1) as svc:
            assert svc.metrics_url is None

    def test_stats_shape(self, small_field):
        with MultiStreamCorrector(workers=1) as svc:
            svc.open_stream(_const_frames(0, 1), small_field, name="x")
            stats = svc.stats()
            assert stats["workers"] == 1
            assert stats["active_streams"] == 1
            assert stats["streams"][0]["name"] == "x"
            assert "lut_cache" in stats

    def test_merged_propagates_session_error(self, small_field,
                                             random_image):
        def source():
            yield random_image
            raise RuntimeError("decoder fell over")

        with MultiStreamCorrector(workers=1) as svc:
            session = svc.open_stream(source(), small_field)
            with pytest.raises(RuntimeError, match="decoder fell over"):
                for _ in svc.merged([session]):
                    pass
