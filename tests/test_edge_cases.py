"""Edge-case and failure-injection tests across module boundaries.

Small frames, degenerate views, extreme parameters, and hostile inputs
— the situations a production library meets that the happy-path tests
don't.
"""

import numpy as np
import pytest

from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from repro.core.lens import EquidistantLens, StereographicLens
from repro.core.mapping import RemapField, perspective_map
from repro.core.remap import RemapLUT, remap
from repro.errors import CapacityError, MappingError, ReproError


class TestTinyFrames:
    def test_3x3_correction(self):
        sensor = FisheyeIntrinsics.centered(3, 3, focal=1.0)
        lens = EquidistantLens(1.0)
        out = CameraIntrinsics(fx=1.0, fy=1.0, cx=1.0, cy=1.0, width=3, height=3)
        field = perspective_map(sensor, lens, out)
        img = np.arange(9, dtype=np.uint8).reshape(3, 3)
        assert remap(img, field).shape == (3, 3)

    def test_1x1_source(self):
        field = RemapField(np.zeros((4, 4)), np.zeros((4, 4)), 1, 1)
        img = np.array([[77]], dtype=np.uint8)
        out = RemapLUT(field).apply(img)
        np.testing.assert_array_equal(out, 77)

    def test_single_row_output(self):
        field = RemapField(np.linspace(0, 7, 8)[None, :],
                           np.zeros((1, 8)), 8, 8)
        img = np.arange(64, dtype=np.uint8).reshape(8, 8)
        assert RemapLUT(field).apply(img).shape == (1, 8)

    def test_non_square_everything(self):
        sensor = FisheyeIntrinsics.centered(40, 24, focal=7.0)
        lens = EquidistantLens(7.0)
        out = CameraIntrinsics(fx=5.0, fy=5.0, cx=10.0, cy=30.0,
                               width=64, height=16)
        field = perspective_map(sensor, lens, out)
        img = np.zeros((24, 40), dtype=np.uint8)
        assert remap(img, field).shape == (16, 64)


class TestDegenerateViews:
    def test_fully_out_of_fov_view(self, small_sensor, small_lens):
        """A view pointing straight backwards sees nothing."""
        out = CameraIntrinsics(fx=40.0, fy=40.0, cx=31.5, cy=31.5,
                               width=64, height=64)
        field = perspective_map(small_sensor, small_lens, out, pitch=np.pi)
        assert field.coverage() == 0.0
        img = np.full((64, 64), 99, dtype=np.uint8)
        corrected = RemapLUT(field, fill=5).apply(img)
        np.testing.assert_array_equal(corrected, 5)

    def test_extreme_zoom_in(self, small_sensor, small_lens):
        out = CameraIntrinsics(fx=1e6, fy=1e6, cx=31.5, cy=31.5,
                               width=64, height=64)
        field = perspective_map(small_sensor, small_lens, out)
        # the whole output looks at (essentially) one source point
        assert np.nanmax(field.map_x) - np.nanmin(field.map_x) < 0.1

    def test_stereographic_near_180(self):
        """Stereographic radius explodes near 180 degrees but stays finite
        inside the domain."""
        lens = StereographicLens(10.0)
        r = lens.angle_to_radius(np.pi * 0.99)
        assert np.isfinite(r) and r > 1000.0

    def test_roll_only_view_is_rotation(self, small_sensor, small_lens,
                                        small_out):
        """Pure roll permutes the map without changing sampled radii."""
        plain = perspective_map(small_sensor, small_lens, small_out)
        rolled = perspective_map(small_sensor, small_lens, small_out,
                                 roll=np.pi / 2)
        r_plain = np.hypot(plain.map_x - small_sensor.cx,
                           plain.map_y - small_sensor.cy)
        r_rolled = np.hypot(rolled.map_x - small_sensor.cx,
                            rolled.map_y - small_sensor.cy)
        assert np.nanmax(r_plain) == pytest.approx(np.nanmax(r_rolled), rel=1e-6)


class TestHostileMapInputs:
    def test_all_nan_field_fills_everything(self, random_image):
        field = RemapField(np.full((8, 8), np.nan), np.full((8, 8), np.nan),
                           64, 64)
        out = RemapLUT(field, fill=200).apply(random_image)
        np.testing.assert_array_equal(out, 200)

    def test_inf_coordinates_treated_as_invalid(self, random_image):
        mx = np.full((4, 4), np.inf)
        my = np.zeros((4, 4))
        field = RemapField(mx, my, 64, 64)
        out = RemapLUT(field, fill=3).apply(random_image)
        np.testing.assert_array_equal(out, 3)

    def test_huge_negative_coordinates(self, random_image):
        field = RemapField(np.full((4, 4), -1e12), np.zeros((4, 4)), 64, 64)
        out = RemapLUT(field, fill=1).apply(random_image)
        np.testing.assert_array_equal(out, 1)


class TestCapacityCliffs:
    def test_cell_rejects_giant_pixelformat(self, small_field):
        """RGB at 3 bytes/px can push the working set past the store."""
        from repro.accel.cellbe import CellModel
        from repro.accel.platform import Workload

        tiny = CellModel(local_store_bytes=49 * 1024, code_bytes=48 * 1024)
        workload = Workload.from_field(small_field, pixel_bytes=3, mode="lut")
        with pytest.raises(CapacityError):
            tiny.max_tile_rows(workload)

    def test_fpga_feasibility_flips_with_buffer_size(self, small_field):
        from repro.accel.fpga import FPGAModel
        from repro.accel.platform import Workload

        workload = Workload.from_field(small_field)
        big = FPGAModel(line_buffer_bytes=1 << 20)
        small = FPGAModel(line_buffer_bytes=128)
        assert big.streaming_feasible(workload)
        assert not small.streaming_feasible(workload)


class TestErrorHierarchyInPractice:
    def test_one_except_clause_covers_the_library(self, small_sensor, small_lens):
        """Every failure below surfaces as ReproError."""
        failures = [
            lambda: perspective_map(small_sensor, small_lens,
                                    CameraIntrinsics(fx=-1, fy=1, cx=0, cy=0,
                                                     width=4, height=4)),
            lambda: RemapField(np.zeros((2, 2)), np.zeros((3, 3)), 4, 4),
            lambda: EquidistantLens(-5.0),
        ]
        for fail in failures:
            with pytest.raises(ReproError):
                fail()

    def test_mapping_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            RemapField(np.zeros((2, 2)), np.zeros((3, 3)), 4, 4)


class TestDtypeMatrix:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.float32, np.float64])
    def test_remap_preserves_dtype(self, small_field, dtype):
        img = np.zeros((64, 64), dtype=dtype)
        assert remap(img, small_field).dtype == dtype
        assert RemapLUT(small_field).apply(img).dtype == dtype

    def test_integer_saturation_on_bicubic_overshoot(self, small_field):
        """Catmull-Rom can overshoot; uint8 output must clip, not wrap."""
        img = np.zeros((64, 64), dtype=np.uint8)
        img[::2] = 255  # maximal-contrast stripes
        out = remap(img, small_field, method="bicubic")
        assert out.min() >= 0 and out.max() <= 255
