"""Address-trace extraction and simulation-counter tests."""

import numpy as np
import pytest

from repro.core.mapping import identity_map
from repro.core.remap import RemapLUT
from repro.parallel.partition import Tile
from repro.sim.stats import Breakdown, Counters
from repro.sim.trace import gather_trace, output_trace, tile_gather_trace
from repro.errors import SimulationError


class TestGatherTrace:
    def test_identity_nearest_is_sequential(self):
        lut = RemapLUT(identity_map(8, 8), method="nearest")
        trace = gather_trace(lut, pixel_bytes=1)
        np.testing.assert_array_equal(trace, np.arange(64))

    def test_pixel_bytes_scale(self):
        lut = RemapLUT(identity_map(4, 4), method="nearest")
        trace = gather_trace(lut, pixel_bytes=4)
        np.testing.assert_array_equal(trace, np.arange(16) * 4)

    def test_base_offset(self):
        lut = RemapLUT(identity_map(2, 2), method="nearest")
        trace = gather_trace(lut, base=1000)
        assert trace.min() == 1000

    def test_taps_expand_trace(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        trace = gather_trace(lut)
        assert trace.size == 64 * 64 * 4

    def test_validation(self, small_field):
        lut = RemapLUT(small_field)
        with pytest.raises(SimulationError):
            gather_trace(lut, pixel_bytes=0)


class TestTileGatherTrace:
    def test_tile_subset_of_full(self, small_field):
        lut = RemapLUT(small_field, method="nearest")
        tile = Tile(4, 8, 8, 16)
        trace = tile_gather_trace(lut, tile)
        assert trace.size == tile.pixels
        full = gather_trace(lut).reshape(64, 64)
        np.testing.assert_array_equal(trace.reshape(4, 8), full[4:8, 8:16])

    def test_out_of_range_tile_rejected(self, small_field):
        lut = RemapLUT(small_field)
        with pytest.raises(SimulationError):
            tile_gather_trace(lut, Tile(0, 100, 0, 8))


class TestOutputTrace:
    def test_sequential(self):
        trace = output_trace(2, 3, pixel_bytes=2)
        np.testing.assert_array_equal(trace, [0, 2, 4, 6, 8, 10])

    def test_validation(self):
        with pytest.raises(SimulationError):
            output_trace(0, 5)


class TestCounters:
    def test_add_and_read(self):
        c = Counters()
        c.add("hits", 3)
        c.add("hits")
        assert c["hits"] == 4
        assert c["absent"] == 0

    def test_as_dict(self):
        c = Counters()
        c.add("a", 2)
        assert c.as_dict() == {"a": 2}

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Counters().add("x", -1)

    def test_repr_sorted(self):
        c = Counters()
        c.add("b", 1)
        c.add("a", 2)
        assert repr(c) == "Counters(a=2, b=1)"


class TestBreakdown:
    def test_accumulates(self):
        b = Breakdown()
        b.add("compute", 100)
        b.add("compute", 50)
        b.add("dma", 30)
        assert b.total_ns == 180
        assert b.fraction("compute") == pytest.approx(150 / 180)

    def test_empty_fraction_zero(self):
        assert Breakdown().fraction("x") == 0.0

    def test_merge(self):
        a = Breakdown({"compute": 10})
        b = Breakdown({"compute": 5, "dma": 7})
        merged = a.merged(b)
        assert merged.as_dict() == {"compute": 15, "dma": 7}
        # originals untouched
        assert a.as_dict() == {"compute": 10}

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Breakdown().add("x", -1)
