"""Domain decomposition tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.partition import (
    Tile,
    blocks,
    row_bands,
    row_bands_weighted,
    tile_weights,
)
from repro.errors import PartitionError


def covers_exactly(tiles, height, width):
    """Every output pixel belongs to exactly one tile."""
    count = np.zeros((height, width), dtype=int)
    for t in tiles:
        count[t.row0:t.row1, t.col0:t.col1] += 1
    return (count == 1).all()


class TestTile:
    def test_properties(self):
        t = Tile(2, 5, 1, 7)
        assert t.height == 3 and t.width == 6 and t.pixels == 18

    def test_degenerate_rejected(self):
        with pytest.raises(PartitionError):
            Tile(5, 5, 0, 2)
        with pytest.raises(PartitionError):
            Tile(0, 2, 3, 3)
        with pytest.raises(PartitionError):
            Tile(-1, 2, 0, 2)


class TestRowBands:
    def test_exact_cover(self):
        assert covers_exactly(row_bands(17, 9, 4), 17, 9)

    def test_sizes_differ_by_at_most_one(self):
        tiles = row_bands(17, 9, 4)
        heights = [t.height for t in tiles]
        assert max(heights) - min(heights) <= 1

    def test_more_bands_than_rows(self):
        tiles = row_bands(3, 5, 10)
        assert len(tiles) == 3
        assert covers_exactly(tiles, 3, 5)

    def test_validation(self):
        with pytest.raises(PartitionError):
            row_bands(0, 5, 2)
        with pytest.raises(PartitionError):
            row_bands(5, 5, 0)


class TestBlocks:
    def test_exact_cover(self):
        assert covers_exactly(blocks(10, 13, 4, 5), 10, 13)

    def test_tile_count(self):
        tiles = blocks(10, 13, 4, 5)
        assert len(tiles) == 3 * 3  # ceil(10/4) x ceil(13/5)

    def test_edge_tiles_clipped(self):
        tiles = blocks(10, 13, 4, 5)
        assert max(t.row1 for t in tiles) == 10
        assert max(t.col1 for t in tiles) == 13

    def test_validation(self):
        with pytest.raises(PartitionError):
            blocks(4, 4, 0, 2)


class TestTileWeights:
    def test_all_valid_weighs_pixels(self):
        mask = np.ones((8, 8), dtype=bool)
        tiles = blocks(8, 8, 4, 4)
        w = tile_weights(mask, tiles)
        np.testing.assert_allclose(w, 16.0)

    def test_invalid_tiles_cheap(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4] = True
        tiles = row_bands(8, 8, 2)
        w = tile_weights(mask, tiles, base_cost=0.1)
        assert w[0] == pytest.approx(32.0)
        assert w[1] == pytest.approx(3.2)

    def test_base_cost_validation(self):
        with pytest.raises(PartitionError):
            tile_weights(np.ones((4, 4), dtype=bool), row_bands(4, 4, 2),
                         base_cost=2.0)


class TestRowBandsWeighted:
    def test_exact_cover(self, tilted_field):
        tiles = row_bands_weighted(tilted_field.valid_mask(), 5)
        assert covers_exactly(tiles, 64, 64)

    def test_band_count(self, tilted_field):
        assert len(row_bands_weighted(tilted_field.valid_mask(), 5)) == 5

    def test_balances_cost_better_than_uniform(self, tilted_field):
        mask = tilted_field.valid_mask()
        n = 4
        uniform = row_bands(64, 64, n)
        weighted = row_bands_weighted(mask, n)

        def imbalance(tiles):
            w = tile_weights(mask, tiles)
            return w.max() / w.mean()

        assert imbalance(weighted) <= imbalance(uniform) + 1e-9

    def test_count_capped_by_rows(self):
        mask = np.ones((3, 4), dtype=bool)
        tiles = row_bands_weighted(mask, 9)
        assert len(tiles) == 3

    def test_validation(self):
        with pytest.raises(PartitionError):
            row_bands_weighted(np.ones(4, dtype=bool), 2)
        with pytest.raises(PartitionError):
            row_bands_weighted(np.ones((4, 4), dtype=bool), 0)


@given(height=st.integers(1, 50), width=st.integers(1, 50),
       count=st.integers(1, 20))
@settings(max_examples=80, deadline=None)
def test_property_row_bands_always_cover(height, width, count):
    assert covers_exactly(row_bands(height, width, count), height, width)


@given(height=st.integers(1, 40), width=st.integers(1, 40),
       th=st.integers(1, 20), tw=st.integers(1, 20))
@settings(max_examples=80, deadline=None)
def test_property_blocks_always_cover(height, width, th, tw):
    assert covers_exactly(blocks(height, width, th, tw), height, width)


@given(height=st.integers(2, 30), count=st.integers(1, 10), seed=st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_property_weighted_bands_cover(height, count, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random((height, 8)) > 0.5
    tiles = row_bands_weighted(mask, count)
    assert covers_exactly(tiles, height, 8)
    assert len(tiles) == min(count, height)
