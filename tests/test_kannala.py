"""Kannala–Brandt model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kannala import KannalaBrandtLens, fit_kannala_brandt
from repro.core.lens import EquidistantLens, EquisolidLens, StereographicLens
from repro.errors import CalibrationError, LensModelError


class TestForwardModel:
    def test_zero_coefficients_is_equidistant(self):
        kb = KannalaBrandtLens(100.0)
        eq = EquidistantLens(100.0)
        theta = np.linspace(0.01, np.pi / 2 - 0.01, 20)
        np.testing.assert_allclose(np.asarray(kb.angle_to_radius(theta)),
                                   np.asarray(eq.angle_to_radius(theta)),
                                   rtol=1e-12)

    def test_polynomial_value(self):
        kb = KannalaBrandtLens(10.0, k1=0.1)
        theta = 0.5
        assert float(kb.angle_to_radius(theta)) == pytest.approx(
            10.0 * (0.5 + 0.1 * 0.5 ** 3))

    def test_nonmonotone_coefficients_rejected(self):
        with pytest.raises(LensModelError):
            KannalaBrandtLens(10.0, k1=-2.0)

    def test_domain_respected(self):
        kb = KannalaBrandtLens(10.0, max_theta=1.0)
        assert np.isnan(kb.angle_to_radius(1.2))


class TestInverse:
    def test_roundtrip(self):
        kb = KannalaBrandtLens(80.0, k1=0.05, k2=-0.01, k3=0.002)
        theta = np.linspace(0.01, kb.max_theta * 0.99, 40)
        r = np.asarray(kb.angle_to_radius(theta))
        back = np.asarray(kb.radius_to_angle(r))
        np.testing.assert_allclose(back, theta, rtol=1e-9, atol=1e-10)

    def test_radius_beyond_range_is_nan(self):
        kb = KannalaBrandtLens(10.0, max_theta=1.0)
        r_max = float(kb.angle_to_radius(1.0))
        assert np.isnan(kb.radius_to_angle(r_max * 1.1))


class TestFit:
    @pytest.mark.parametrize("lens_cls", [EquidistantLens, EquisolidLens,
                                          StereographicLens])
    def test_fits_classical_families_over_full_hemisphere(self, lens_cls):
        lens = lens_cls(150.0)
        kb = fit_kannala_brandt(lens, order=4)
        theta = np.linspace(0.02, kb.max_theta * 0.999, 100)
        exact = np.asarray(lens.angle_to_radius(theta))
        approx = np.asarray(kb.angle_to_radius(theta))
        # sub-0.1-pixel everywhere including the rim — what Brown-Conrady
        # structurally cannot do
        assert np.abs(approx - exact).max() < 0.1

    def test_equidistant_fit_is_exact(self):
        kb = fit_kannala_brandt(EquidistantLens(99.0), order=4)
        assert np.allclose(kb.coeffs, 0.0, atol=1e-12)

    def test_preserves_focal(self):
        kb = fit_kannala_brandt(EquisolidLens(42.0))
        assert kb.focal == 42.0

    def test_higher_order_fits_better(self):
        lens = StereographicLens(100.0)
        theta = np.linspace(0.02, np.pi / 2 * 0.99, 100)
        exact = np.asarray(lens.angle_to_radius(theta))
        errs = []
        for order in (1, 2, 4):
            kb = fit_kannala_brandt(lens, order=order)
            errs.append(np.abs(np.asarray(kb.angle_to_radius(theta)) - exact).max())
        assert errs[0] > errs[1] > errs[2]

    def test_validation(self):
        lens = EquidistantLens(10.0)
        with pytest.raises(CalibrationError):
            fit_kannala_brandt(lens, order=5)
        with pytest.raises(CalibrationError):
            fit_kannala_brandt(lens, samples=2, order=4)
        with pytest.raises(CalibrationError):
            fit_kannala_brandt(lens, max_theta=5.0)


class TestAsCorrectionModel:
    def test_corrects_like_the_exact_model(self, small_sensor, small_lens,
                                           small_out, random_image):
        from repro.core.mapping import perspective_map
        from repro.core.remap import RemapLUT

        kb = fit_kannala_brandt(small_lens, order=4)
        exact_field = perspective_map(small_sensor, small_lens, small_out)
        kb_field = perspective_map(small_sensor, kb, small_out)
        a = RemapLUT(exact_field).apply(random_image)
        b = RemapLUT(kb_field).apply(random_image)
        # pixel-identical output (the fit is exact for equidistant)
        np.testing.assert_array_equal(a, b)


@given(k1=st.floats(-0.05, 0.2), k2=st.floats(-0.02, 0.02),
       theta=st.floats(0.01, 1.5))
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_random_coefficients(k1, k2, theta):
    try:
        kb = KannalaBrandtLens(50.0, k1=k1, k2=k2, max_theta=np.pi / 2)
    except LensModelError:
        return  # non-monotone draw: correctly rejected
    r = float(kb.angle_to_radius(theta))
    if not np.isfinite(r):
        return
    assert float(kb.radius_to_angle(r)) == pytest.approx(theta, rel=1e-7,
                                                         abs=1e-9)
