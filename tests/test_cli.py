"""CLI tests (driven in-process through repro.cli.main)."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.video.io import read_pgm, write_pgm


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestSynth:
    def test_writes_scene(self, tmp_path, capsys):
        out = str(tmp_path / "scene.pgm")
        assert main(["synth", out, "--scene", "checkerboard",
                     "--width", "64", "--height", "64"]) == 0
        img = read_pgm(out)
        assert img.shape == (64, 64)
        assert "wrote" in capsys.readouterr().out

    def test_distorted_scene(self, tmp_path, capsys):
        out = str(tmp_path / "fish.pgm")
        assert main(["synth", out, "--scene", "circles", "--distort",
                     "--width", "64", "--height", "64"]) == 0
        img = read_pgm(out)
        # distorted frame has black out-of-scene corners
        assert img[0, 0] == 0

    def test_all_scene_kinds(self, tmp_path):
        for scene in ("checkerboard", "circles", "urban", "gradient", "grid"):
            out = str(tmp_path / f"{scene}.pgm")
            assert main(["synth", out, "--scene", scene,
                         "--width", "48", "--height", "48"]) == 0


class TestCorrect:
    def test_roundtrip(self, tmp_path, capsys):
        fish = str(tmp_path / "fish.pgm")
        assert main(["synth", fish, "--scene", "checkerboard", "--distort",
                     "--width", "96", "--height", "96"]) == 0
        out = str(tmp_path / "corrected.pgm")
        assert main(["correct", fish, out, "--zoom", "0.6",
                     "--method", "bilinear"]) == 0
        img = read_pgm(out)
        assert img.shape == (96, 96)
        assert "coverage" in capsys.readouterr().out

    def test_tilted_view_and_size(self, tmp_path):
        fish = str(tmp_path / "fish.pgm")
        main(["synth", fish, "--distort", "--width", "64", "--height", "64"])
        out = str(tmp_path / "view.pgm")
        assert main(["correct", fish, out, "--pitch", "30", "--yaw", "-10",
                     "--out-width", "48", "--out-height", "32"]) == 0
        assert read_pgm(out).shape == (32, 48)

    def test_missing_input_is_error(self, tmp_path, capsys):
        out = str(tmp_path / "x.pgm")
        assert main(["correct", str(tmp_path / "nope.pgm"), out]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_pgm_is_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.pgm"
        bad.write_bytes(b"not a pgm")
        assert main(["correct", str(bad), str(tmp_path / "o.pgm")]) == 1


class TestCalibrate:
    def test_recovers_from_rendered_grid(self, tmp_path, capsys):
        target = str(tmp_path / "target.pgm")
        assert main(["synth", target, "--scene", "grid", "--distort",
                     "--width", "256", "--height", "256"]) == 0
        assert main(["calibrate", target]) == 0
        out = capsys.readouterr().out
        assert "model:  equidistant" in out
        assert "focal:" in out

    def test_marker_count_mismatch_reported(self, tmp_path, capsys):
        target = str(tmp_path / "target.pgm")
        main(["synth", target, "--scene", "grid", "--distort",
              "--width", "256", "--height", "256"])
        assert main(["calibrate", target, "--rings", "2"]) == 1
        assert "detected" in capsys.readouterr().out


class TestBenchInfo:
    def test_bench_t1(self, capsys):
        assert main(["bench", "t1"]) == 0
        assert "platform characteristics" in capsys.readouterr().out

    def test_bench_unknown_id(self, capsys):
        assert main(["bench", "F99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "equidistant" in out
        assert "gtx280" in out


class TestStream:
    ARGS = ["--frames", "4", "--width", "64", "--height", "64"]

    def test_seq_engine(self, capsys):
        assert main(["stream", "--engine", "seq"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "engine=seq" in out
        assert "4 frames" in out
        assert "fps" in out

    def test_pipelined_engine(self, capsys):
        assert main(["stream", "--engine", "pipelined", "--depth", "2"]
                    + self.ARGS) == 0
        assert "engine=pipelined depth=2" in capsys.readouterr().out

    def test_ring_engine(self, capsys):
        assert main(["stream", "--engine", "ring", "--workers", "1",
                     "--depth", "2", "--schedule", "guided"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "engine=ring workers=1 depth=2 schedule=guided" in out

    def test_ring_trace_has_overlapping_tracks(self, tmp_path, capsys):
        trace = str(tmp_path / "ring.trace.json")
        assert main(["--trace", trace, "stream", "--engine", "ring",
                     "--workers", "1", "--depth", "2", "--frames", "6",
                     "--width", "64", "--height", "64"]) == 0
        capsys.readouterr()
        import json

        events = json.load(open(trace))
        if isinstance(events, dict):
            events = events["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert {"ring.decode", "ring.deliver"} <= names
        # band spans carry the kernel tier in their rendered name
        assert any(n.startswith("ring.band [") for n in names)

    def test_ring_depth_overflow_is_clean_error(self, capsys):
        assert main(["stream", "--engine", "ring", "--depth", "99"]
                    + self.ARGS) == 1
        assert "MAX_RING_DEPTH" in capsys.readouterr().err

    def test_serve_metrics_enables_live_surface(self, capsys):
        """--serve-metrics with no --metrics/--trace self-enables
        telemetry, announces the URL and prints the SLO digest."""
        assert main(["stream", "--engine", "ring", "--workers", "1",
                     "--serve-metrics", "0"] + self.ARGS) == 0
        captured = capsys.readouterr()
        assert "serving metrics on http://127.0.0.1:" in captured.err
        assert "/metrics /health /snapshot" in captured.err
        assert "slo: e2e p50" in captured.out
        assert "stalls 0" in captured.out
        # the self-enabled registry is torn down with the stream
        from repro.obs import get_telemetry
        assert not get_telemetry().enabled

    def test_deadline_flag_counts_misses(self, tmp_path, capsys):
        snap_path = str(tmp_path / "m.json")
        assert main(["--metrics", snap_path, "stream", "--engine", "ring",
                     "--workers", "1", "--deadline-ms", "0.000001"]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "deadline miss 4/4 (100.0%)" in out
        import json

        snap = json.load(open(snap_path))
        assert snap["counters"]["stream.deadline_miss"] == 4
        assert snap["histograms"]["frame.e2e_latency_seconds"]["count"] == 4

    def test_stall_timeout_flag_accepted(self, capsys):
        assert main(["stream", "--engine", "ring", "--workers", "1",
                     "--stall-timeout", "30"] + self.ARGS) == 0
        assert "4 frames" in capsys.readouterr().out


class TestServe:
    ARGS = ["--frames", "3", "--width", "64", "--height", "64",
            "--workers", "1"]

    def test_multiplexes_streams_through_one_fleet(self, capsys):
        assert main(["serve", "--streams", "2"] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "serve: 2 streams x 3 frames" in out
        assert "fps aggregate" in out
        assert "s0: 3 frames" in out
        assert "s1: 3 frames" in out

    def test_weights_csv_pads_with_ones(self, capsys):
        assert main(["serve", "--streams", "3", "--weights", "2"]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "(weight 2" in out
        assert out.count("(weight 1") == 2

    def test_serve_metrics_self_enables_and_tears_down(self, capsys):
        assert main(["serve", "--streams", "2", "--serve-metrics", "0"]
                    + self.ARGS) == 0
        captured = capsys.readouterr()
        assert "serving metrics on http://127.0.0.1:" in captured.err
        assert "slo: e2e p50" in captured.out
        from repro.obs import get_telemetry
        assert not get_telemetry().enabled

    def test_admission_overflow_is_clean_error(self, capsys):
        # 5 streams x 4 slots > budget 16: the fifth is refused
        assert main(["serve", "--streams", "5", "--depth", "4",
                     "--slot-budget", "16"] + self.ARGS) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "slots" in err


class TestMetricsBindConflict:
    """A busy port must exit 1 with a message, never a traceback, and
    must not leave the self-enabled registry behind."""

    @pytest.mark.parametrize("command", ["stream", "serve"])
    def test_bound_port_clean_error(self, command, capsys):
        from repro.obs import get_telemetry
        from repro.obs.live import MetricsServer
        from repro.obs.telemetry import Telemetry

        with MetricsServer(telemetry=Telemetry(), port=0) as holder:
            args = [command, "--serve-metrics", str(holder.port),
                    "--frames", "3", "--width", "64", "--height", "64",
                    "--workers", "1"]
            assert main(args) == 1
            err = capsys.readouterr().err
            assert "error: cannot serve metrics on" in err
            assert "Traceback" not in err
        assert not get_telemetry().enabled


class TestStats:
    def _snapshot(self, tmp_path, name, frames):
        path = str(tmp_path / name)
        assert main(["--metrics", path, "stream", "--engine", "seq",
                     "--frames", str(frames), "--width", "64",
                     "--height", "64"]) == 0
        return path

    def test_pretty_print(self, tmp_path, capsys):
        path = self._snapshot(tmp_path, "a.json", 4)
        capsys.readouterr()
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "pipeline.frames" in out
        assert "p50" in out and "p95" in out and "p99" in out

    def test_diff_two_snapshots(self, tmp_path, capsys):
        a = self._snapshot(tmp_path, "a.json", 2)
        b = self._snapshot(tmp_path, "b.json", 6)
        capsys.readouterr()
        assert main(["stats", "--diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "counters (B - A):" in out
        assert "+4" in out  # stream.frames 2 -> 6
        assert "histograms (A -> B):" in out
        assert "count 2 -> 6 (+4)" in out

    def test_no_arguments_is_error(self, capsys):
        assert main(["stats"]) == 1
        assert "give a snapshot file or --diff" in capsys.readouterr().err


class TestMapInfo:
    def test_prints_measured_properties(self, capsys):
        assert main(["map-info", "--width", "128", "--height", "96"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "gather lines/warp" in out
        assert "minification" in out

    def test_tilted_map_reports_partial_coverage(self, capsys):
        assert main(["map-info", "--width", "128", "--height", "96",
                     "--pitch", "55"]) == 0
        out = capsys.readouterr().out
        # a 55-degree tilt must lose part of the FOV
        coverage_line = [l for l in out.splitlines() if "coverage" in l][0]
        assert "100.0%" not in coverage_line
