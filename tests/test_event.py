"""Discrete-event engine tests."""

import pytest

from repro.sim.event import EventQueue, ms, ns, ns_to_seconds, seconds_to_ns, us
from repro.errors import SimulationError


class TestTimeHelpers:
    def test_conversions(self):
        assert us(1.5) == 1500
        assert ms(2.0) == 2_000_000
        assert seconds_to_ns(0.001) == 1_000_000
        assert ns_to_seconds(1_000_000_000) == 1.0
        assert ns(3.6) == 4


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(30, lambda: log.append("c"))
        q.schedule(10, lambda: log.append("a"))
        q.schedule(20, lambda: log.append("b"))
        q.run()
        assert log == ["a", "b", "c"]
        assert q.now == 30

    def test_tie_break_by_priority_then_seq(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda: log.append("low"), priority=5)
        q.schedule(10, lambda: log.append("hi"), priority=0)
        q.schedule(10, lambda: log.append("low2"), priority=5)
        q.run()
        assert log == ["hi", "low", "low2"]

    def test_events_can_schedule_events(self):
        q = EventQueue()
        log = []

        def first():
            log.append(q.now)
            q.schedule(5, lambda: log.append(q.now))

        q.schedule(10, first)
        q.run()
        assert log == [10, 15]

    def test_cancel(self):
        q = EventQueue()
        log = []
        ev = q.schedule(10, lambda: log.append("x"))
        q.cancel(ev)
        q.run()
        assert log == []
        assert q.processed == 0

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1, lambda: None)

    def test_schedule_at(self):
        q = EventQueue()
        log = []
        q.schedule_at(42, lambda: log.append(q.now))
        q.run()
        assert log == [42]

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(5, lambda: None)

    def test_run_until_partial(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda: log.append("a"))
        q.schedule(30, lambda: log.append("b"))
        q.run_until(20)
        assert log == ["a"]
        assert q.now == 20
        q.run()
        assert log == ["a", "b"]

    def test_run_until_backwards_rejected(self):
        q = EventQueue()
        q.run_until(50)
        with pytest.raises(SimulationError):
            q.run_until(10)

    def test_event_budget(self):
        q = EventQueue()

        def loop():
            q.schedule(1, loop)

        q.schedule(1, loop)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_step_returns_false_when_idle(self):
        assert EventQueue().step() is False
