"""Telemetry wired through the pipeline: kernels, executors, CLI.

Covers the cross-process aggregation path (fork *and* spawn), the
disabled-registry overhead budget, the cache hardening against corrupt
disk entries, and the ``--metrics``/``--trace``/``stats`` CLI surface.
"""

import json
import logging
import os
import time

import numpy as np
import pytest

from repro.cli import main
from repro.core.lutcache import LUTCache
from repro.core.pipeline import FisheyeCorrector
from repro.core.remap import RemapLUT, remap_profiled
from repro.obs.logsetup import LOG_LEVELS, configure_logging, get_logger
from repro.obs.telemetry import Telemetry, disable, enable, get_telemetry, scoped
from repro.parallel.procpool import SharedMemoryExecutor
from repro.video.io import read_pgm

pytestmark = pytest.mark.tier1


@pytest.fixture(autouse=True)
def _null_registry():
    disable()
    yield
    disable()


class TestKernelInstrumentation:
    def test_apply_records_frame_metrics(self, small_field, gradient_image):
        lut = RemapLUT(small_field, method="bilinear")
        tel = Telemetry()
        with scoped(tel):
            out = lut.apply(gradient_image)
        snap = tel.snapshot()
        assert snap["counters"]["remap.frames"] == 1
        assert snap["counters"]["remap.pixels"] == out.shape[0] * out.shape[1]
        assert snap["counters"]["remap.bytes_gathered"] > 0
        h = snap["histograms"]["remap.apply_seconds"]
        assert h["count"] == 1 and h["sum"] > 0

    def test_band_apply_counts_bands_not_frames(self, small_field, gradient_image):
        lut = RemapLUT(small_field, method="bilinear")
        out = np.empty(lut.out_shape, dtype=gradient_image.dtype)
        tel = Telemetry()
        with scoped(tel):
            lut.apply_rows_into(gradient_image, 0, 16, out[0:16])
        snap = tel.snapshot()
        assert snap["counters"]["remap.bands"] == 1
        assert "remap.frames" not in snap["counters"]

    def test_disabled_registry_identical_output(self, small_field, gradient_image):
        lut = RemapLUT(small_field, method="bilinear")
        baseline = lut.apply(gradient_image)
        with scoped(Telemetry(stage_detail=True)):
            instrumented = lut.apply(gradient_image)
        np.testing.assert_array_equal(baseline, instrumented)

    def test_remap_profiled_shape_and_stages(self, small_field, gradient_image):
        out, prof = remap_profiled(gradient_image, small_field, method="bilinear")
        np.testing.assert_array_equal(
            out, RemapLUT(small_field, method="bilinear").apply(gradient_image))
        # the shipping kernel emitted the stage spans the profile sums
        assert prof.lut_build > 0
        assert prof.gather > 0
        assert prof.interpolate > 0
        assert prof.store > 0
        assert prof.map_build == 0.0  # owned by the caller
        # profiling is scoped: the global registry saw nothing
        assert not get_telemetry().enabled

    def test_stage_detail_off_by_default(self, small_field, gradient_image):
        lut = RemapLUT(small_field, method="bilinear")
        tel = Telemetry()  # stage_detail=False
        with scoped(tel):
            lut.apply(gradient_image)
        # per-stage spans stay off; only the frame-level tier-labelled
        # remap.apply span is recorded
        stage_spans = [s for s in tel.spans
                       if s["name"].startswith("remap.") and s["name"] != "remap.apply"]
        assert stage_spans == []
        apply_spans = [s for s in tel.spans if s["name"] == "remap.apply"]
        assert len(apply_spans) == 1
        assert apply_spans[0]["args"]["tier"] == "numpy"


class TestDisabledOverhead:
    def test_disabled_path_within_budget(self, small_field, gradient_image):
        """Structural bound: the per-frame cost telemetry adds with the
        registry disabled (one ``get_telemetry`` + ``enabled`` branch
        per instrumentation site) must be <5% of a frame's apply time —
        with wide margin, since the real frame here is a tiny 64x64.
        The full-resolution wall-clock gate lives in
        ``benchmarks/check_regression.py``.
        """
        lut = RemapLUT(small_field, method="bilinear")
        out = np.empty(lut.out_shape, dtype=gradient_image.dtype)
        lut.apply_into(gradient_image, out)  # warm scratch + weights
        frame_time = min(
            _timed(lambda: lut.apply_into(gradient_image, out))
            for _ in range(5))

        n = 20000
        t0 = time.perf_counter()
        for _ in range(n):
            get_telemetry().enabled
        per_site = (time.perf_counter() - t0) / n

        sites_per_frame = 4  # generous: apply_into has 1 disabled-branch site
        assert per_site * sites_per_frame < 0.05 * frame_time, (
            f"disabled telemetry costs {per_site * 1e9:.0f} ns/site "
            f"vs frame {frame_time * 1e6:.0f} us")


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


class TestCrossProcessMerge:
    @pytest.mark.parametrize("context", ["fork", "spawn"])
    def test_worker_deltas_merge_into_parent(self, context, small_field,
                                             gradient_image):
        lut = RemapLUT(small_field, method="bilinear")
        tel = enable()
        try:
            with SharedMemoryExecutor(lut, gradient_image.shape,
                                      gradient_image.dtype, workers=2,
                                      context=context) as ex:
                expected = lut.apply(gradient_image)
                for _ in range(2):
                    result = ex.run(lut, gradient_image)
                np.testing.assert_array_equal(result, expected)
                snap = tel.snapshot()
        finally:
            disable()
        assert snap["counters"]["executor.frames"] == 2
        bands = snap["counters"]["executor.bands"]
        assert bands >= 2
        # the per-band timings were recorded in the *workers* and
        # shipped back as drain() deltas — their total count proves the
        # merge happened (works identically under fork and spawn)
        assert snap["histograms"]["executor.band_seconds"]["count"] == bands
        assert snap["histograms"]["executor.frame_seconds"]["count"] == 2
        assert snap["histograms"]["executor.fanout_seconds"]["count"] == 2
        frame_spans = [s for s in snap["spans"] if s["name"] == "executor.frame"]
        assert len(frame_spans) == 2

    def test_disabled_executor_records_nothing(self, small_field, gradient_image):
        lut = RemapLUT(small_field, method="bilinear")
        with SharedMemoryExecutor(lut, gradient_image.shape,
                                  gradient_image.dtype, workers=2) as ex:
            ex.run(lut, gradient_image)
        assert get_telemetry().snapshot() == {}


class TestCorrectorStats:
    def test_hit_miss_accounting(self, small_sensor, small_lens, gradient_image):
        cache = LUTCache()
        corrector = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64,
                                                lut_cache=cache)
        corrector.correct(gradient_image)
        corrector.correct(gradient_image)
        stats = corrector.stats()
        assert stats["frames_corrected"] == 2
        # the LUT is built lazily once and memoized on the corrector, so
        # this corrector's share of cache traffic is one build miss
        assert stats["cache_misses"] == 1
        assert stats["cache_hits"] == 0
        assert stats["cache"]["entries"] == 1
        # a second corrector over the same field hits the shared cache
        other = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64,
                                            lut_cache=cache)
        other.correct(gradient_image)
        assert other.stats()["cache_hits"] == 1
        assert other.stats()["cache_misses"] == 0

    def test_stats_without_cache(self, small_sensor, small_lens, gradient_image):
        corrector = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64)
        corrector.correct(gradient_image)
        stats = corrector.stats()
        assert stats["frames_corrected"] == 1
        assert stats["lut_built"] is True
        assert stats["cache"] is None

    def test_pipeline_counters(self, small_sensor, small_lens, gradient_image):
        corrector = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64)
        tel = Telemetry()
        with scoped(tel):
            corrector.correct(gradient_image)
        snap = tel.snapshot()
        assert snap["counters"]["pipeline.frames"] == 1
        assert snap["histograms"]["pipeline.frame_seconds"]["count"] == 1


class TestLUTCacheCorruption:
    def _cache_with_entry(self, tmp_path, field):
        cache_dir = str(tmp_path / "luts")
        cache = LUTCache(cache_dir=cache_dir)
        cache.get(field, method="bilinear")
        entries = os.listdir(cache_dir)
        assert len(entries) == 1
        return cache_dir, os.path.join(cache_dir, entries[0])

    def test_truncated_table_is_miss_not_error(self, tmp_path, small_field,
                                               gradient_image):
        cache_dir, entry = self._cache_with_entry(tmp_path, small_field)
        with open(os.path.join(entry, "indices.npy"), "r+b") as fh:
            fh.truncate(16)  # partial mmap source: header survives, data gone
        fresh = LUTCache(cache_dir=cache_dir)
        tel = Telemetry()
        with scoped(tel):
            lut = fresh.get(small_field, method="bilinear")
        assert fresh.corrupt_reads == 1
        assert fresh.stats()["corrupt_reads"] == 1
        assert fresh.disk_hits == 0
        assert tel.snapshot()["counters"]["lutcache.disk.corrupt"] == 1
        # the rebuilt table still corrects frames
        assert lut.apply(gradient_image).shape == lut.out_shape

    def test_garbled_meta_is_miss_not_error(self, tmp_path, small_field):
        cache_dir, entry = self._cache_with_entry(tmp_path, small_field)
        with open(os.path.join(entry, "meta.json"), "w") as fh:
            fh.write("{not json")
        fresh = LUTCache(cache_dir=cache_dir)
        fresh.get(small_field, method="bilinear")
        assert fresh.corrupt_reads == 1

    def test_missing_fracs_for_bilinear_is_corrupt(self, tmp_path, small_field):
        cache_dir, entry = self._cache_with_entry(tmp_path, small_field)
        os.remove(os.path.join(entry, "fracs.npy"))
        fresh = LUTCache(cache_dir=cache_dir)
        fresh.get(small_field, method="bilinear")
        assert fresh.corrupt_reads == 1

    def test_intact_entry_still_disk_hits(self, tmp_path, small_field):
        cache_dir, _ = self._cache_with_entry(tmp_path, small_field)
        fresh = LUTCache(cache_dir=cache_dir)
        fresh.get(small_field, method="bilinear")
        assert fresh.disk_hits == 1
        assert fresh.corrupt_reads == 0


class TestCLI:
    def test_metrics_and_trace_outputs(self, tmp_path, capsys):
        fish = str(tmp_path / "fish.pgm")
        assert main(["synth", fish, "--scene", "checkerboard", "--distort",
                     "--width", "96", "--height", "96"]) == 0
        out = str(tmp_path / "corrected.pgm")
        metrics = str(tmp_path / "metrics.json")
        trace = str(tmp_path / "out.trace.json")
        assert main(["--metrics", metrics, "--trace", trace,
                     "correct", fish, out]) == 0
        assert read_pgm(out).shape == (96, 96)
        # telemetry was torn down after the run
        assert not get_telemetry().enabled

        with open(metrics) as fh:
            snap = json.load(fh)
        assert snap["counters"]["remap.frames"] >= 1
        assert snap["counters"]["pipeline.frames"] >= 1
        assert snap["histograms"]["remap.apply_seconds"]["count"] >= 1
        assert snap["histograms"]["remap.apply_seconds"]["sum"] > 0

        with open(trace) as fh:
            events = json.load(fh)
        assert isinstance(events, list)
        xs = [e for e in events if e.get("ph") == "X"]
        assert any(e["name"] == "cli.correct" for e in xs)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in xs)
        err = capsys.readouterr().err
        assert "metrics snapshot" in err and "perfetto" in err

    def test_stats_pretty_prints(self, tmp_path, capsys):
        fish = str(tmp_path / "fish.pgm")
        main(["synth", fish, "--scene", "gradient",
              "--width", "64", "--height", "64"])
        metrics = str(tmp_path / "m.json")
        assert main(["--metrics", metrics, "correct", fish,
                     str(tmp_path / "o.pgm")]) == 0
        capsys.readouterr()
        assert main(["stats", metrics]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out and "remap.frames" in out

    def test_log_level_flag(self, tmp_path, capsys):
        fish = str(tmp_path / "fish.pgm")
        assert main(["--log-level", "debug", "synth", fish, "--scene",
                     "gradient", "--width", "32", "--height", "32"]) == 0


class TestLogging:
    def test_configure_is_idempotent(self):
        logger = configure_logging("info", force=True)
        again = configure_logging("debug")
        assert logger is again
        assert len(logger.handlers) == 1
        assert logger.level == logging.DEBUG

    def test_get_logger_namespaced(self):
        log = get_logger("repro.parallel.procpool")
        assert log.name == "repro.parallel.procpool"
        assert get_logger("custom").name == "repro.custom"

    def test_levels_cover_argparse_choices(self):
        assert LOG_LEVELS == ("debug", "info", "warning", "error", "critical")
