"""GPU and FPGA platform model tests."""

import numpy as np
import pytest

from repro.accel.fpga import FPGAModel
from repro.accel.gpu import GPUModel
from repro.accel.platform import Workload
from repro.accel.presets import fpga_midrange, gtx280
from repro.errors import CapacityError, PlatformError


@pytest.fixture()
def workload(small_field):
    return Workload.from_field(small_field, mode="lut")


class TestOccupancy:
    def test_full_occupancy_config(self):
        gpu = gtx280()
        occ = gpu.occupancy(block_size=256, registers_per_thread=16,
                            shared_per_block=2048)
        assert occ.value == pytest.approx(1.0)

    def test_register_pressure_limits(self):
        gpu = gtx280()
        light = gpu.occupancy(256, registers_per_thread=16)
        heavy = gpu.occupancy(256, registers_per_thread=32)
        assert heavy.value < light.value
        assert heavy.limiter == "registers"

    def test_small_blocks_limited_by_block_slots(self):
        gpu = gtx280()
        occ = gpu.occupancy(32, registers_per_thread=8, shared_per_block=0)
        assert occ.limiter == "blocks"
        assert occ.value == pytest.approx(8 / 32)

    def test_shared_memory_limit(self):
        gpu = gtx280()
        occ = gpu.occupancy(64, registers_per_thread=8, shared_per_block=8192)
        assert occ.limiter == "shared"

    def test_validation(self):
        gpu = gtx280()
        with pytest.raises(PlatformError):
            gpu.occupancy(0)
        with pytest.raises(PlatformError):
            gpu.occupancy(1024)
        with pytest.raises(PlatformError):
            gpu.occupancy(64, registers_per_thread=0)


class TestGPUEstimate:
    def test_end_to_end_includes_pcie(self, workload):
        gpu = gtx280()
        rep = gpu.estimate_frame(workload)
        assert rep.notes["h2d_ns"] > 0
        assert rep.notes["d2h_ns"] > 0
        assert rep.frame_ns >= rep.notes["kernel_ns"]

    def test_overlap_hides_transfers(self, workload):
        gpu = gtx280()
        plain = gpu.estimate_frame(workload)
        overlapped = gpu.estimate_frame(workload, overlap_transfers=True)
        assert overlapped.frame_ns <= plain.frame_ns

    def test_low_occupancy_slows_kernel(self, workload):
        gpu = gtx280()
        fast = gpu.estimate_frame(workload, block_size=256)
        slow = gpu.estimate_frame(workload, block_size=32)
        assert slow.notes["kernel_ns"] > fast.notes["kernel_ns"]

    def test_infeasible_launch_rejected(self, workload):
        gpu = gtx280()
        with pytest.raises(PlatformError):
            gpu.estimate_frame(workload, block_size=512,
                               registers_per_thread=64)

    def test_coalescing_measured_from_field(self, workload):
        assert workload.gather_lines_per_warp > 1.0
        gpu = gtx280()
        rep = gpu.estimate_frame(workload)
        assert rep.notes["lines_per_warp"] == pytest.approx(
            workload.gather_lines_per_warp, abs=0.01)

    def test_block_sweep_helper(self, workload):
        reports = gtx280().block_size_sweep(workload, block_sizes=(64, 256))
        assert [r.notes["block_size"] for r in reports] == [64, 256]

    def test_validation(self):
        with pytest.raises(PlatformError):
            GPUModel(sms=0)
        with pytest.raises(PlatformError):
            GPUModel(latency_hiding_occupancy=0.0)


class TestFPGA:
    def test_streaming_when_window_fits(self, workload):
        fpga = FPGAModel(line_buffer_bytes=10 * 1024 * 1024)
        rep = fpga.estimate_frame(workload)
        assert rep.notes["mode"] == "streaming"

    def test_random_access_fallback(self, workload):
        fpga = FPGAModel(line_buffer_bytes=64)
        rep = fpga.estimate_frame(workload)
        assert rep.notes["mode"] == "random_access"
        fpga.streaming_feasible(workload) is False

    def test_fallback_much_slower(self, workload):
        fast = FPGAModel(line_buffer_bytes=10 * 1024 * 1024).estimate_frame(workload)
        slow = FPGAModel(line_buffer_bytes=64).estimate_frame(workload)
        assert slow.frame_ns > fast.frame_ns

    def test_required_rows_from_real_map(self, workload):
        fpga = fpga_midrange()
        rows = fpga.required_line_buffer_rows(workload)
        span = workload.field.row_span().max()
        assert rows == int(np.ceil(span)) + fpga.interp_margin_rows

    def test_throughput_independent_of_map_when_streaming(self, small_field,
                                                          tilted_field):
        fpga = FPGAModel(line_buffer_bytes=10 * 1024 * 1024, frame_sync_ns=0)
        a = fpga.estimate_frame(Workload.from_field(small_field))
        b = fpga.estimate_frame(Workload.from_field(tilted_field))
        # same pixel count -> same pipeline time (DDR streaming equal too)
        assert a.frame_ns == pytest.approx(b.frame_ns, rel=0.05)

    def test_require_streaming_raises(self, workload):
        fpga = FPGAModel(line_buffer_bytes=64)
        with pytest.raises(CapacityError):
            fpga.require_streaming(workload)

    def test_ii_scales_throughput(self, workload):
        f1 = FPGAModel(initiation_interval=1, line_buffer_bytes=10 * 1024 * 1024,
                       ddr_bw_gbps=1000.0, frame_sync_ns=0)
        f2 = FPGAModel(initiation_interval=2, line_buffer_bytes=10 * 1024 * 1024,
                       ddr_bw_gbps=1000.0, frame_sync_ns=0)
        assert f2.estimate_frame(workload).frame_ns == pytest.approx(
            2 * f1.estimate_frame(workload).frame_ns, rel=0.01)

    def test_validation(self):
        with pytest.raises(PlatformError):
            FPGAModel(clock_mhz=0.0)
        with pytest.raises(PlatformError):
            FPGAModel(initiation_interval=0)
        with pytest.raises(PlatformError):
            FPGAModel(line_buffer_bytes=0)


class TestRoofline:
    def test_placement(self):
        from repro.accel.kernels import kernel_spec
        from repro.accel.roofline import attainable_gflops, place, ridge_point

        gpu = gtx280()
        lut = place(gpu, kernel_spec("bilinear", "lut"))
        otf = place(gpu, kernel_spec("bilinear", "otf"))
        assert lut.bound == "memory"
        assert otf.attainable_gflops >= lut.attainable_gflops
        assert ridge_point(100.0, 10.0) == pytest.approx(10.0)
        assert attainable_gflops(100.0, 10.0, 5.0) == pytest.approx(50.0)
        assert attainable_gflops(100.0, 10.0, 50.0) == pytest.approx(100.0)

    def test_validation(self):
        from repro.accel.roofline import attainable_gflops, ridge_point
        from repro.errors import PlatformError as PE

        with pytest.raises(PE):
            attainable_gflops(0.0, 1.0, 1.0)
        with pytest.raises(PE):
            attainable_gflops(1.0, 1.0, -1.0)
        with pytest.raises(PE):
            ridge_point(1.0, 0.0)
