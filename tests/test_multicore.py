"""SMP platform model tests."""

import numpy as np
import pytest

from repro.accel.multicore import SMPModel
from repro.accel.platform import Workload
from repro.accel.presets import sequential_reference, xeon_2010, xeon_modern
from repro.parallel.simd import SSE2
from repro.errors import PlatformError


@pytest.fixture()
def workload_otf(small_field):
    return Workload.from_field(small_field, mode="otf")


@pytest.fixture()
def workload_lut(small_field):
    return Workload.from_field(small_field, mode="lut")


class TestConstruction:
    def test_validation(self):
        with pytest.raises(PlatformError):
            SMPModel(cores=0)
        with pytest.raises(PlatformError):
            SMPModel(clock_ghz=0.0)
        with pytest.raises(PlatformError):
            SMPModel(serial_ns=-1)

    def test_peak_gflops_includes_simd(self):
        scalar = SMPModel(cores=4, clock_ghz=2.0, flops_per_cycle=2.0, isa=None)
        simd = SMPModel(cores=4, clock_ghz=2.0, flops_per_cycle=2.0, isa=SSE2)
        assert simd.peak_gflops == 4 * scalar.peak_gflops

    def test_describe_row(self):
        d = xeon_2010().describe()
        assert d["cores"] == 4 and d["simd"] == "sse2"


class TestEstimate:
    def test_more_threads_never_slower(self, workload_otf):
        smp = xeon_modern()
        times = [smp.estimate_frame(workload_otf, threads=t).frame_ns
                 for t in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_compute_bound_scales_nearly_linearly(self, workload_otf):
        smp = SMPModel(cores=8, clock_ghz=3.0, mem_bw_gbps=1000.0,
                       serial_ns=0, sync_ns=0)
        t1 = smp.estimate_frame(workload_otf, threads=1).frame_ns
        t8 = smp.estimate_frame(workload_otf, threads=8).frame_ns
        assert t1 / t8 == pytest.approx(8.0, rel=0.05)

    def test_bandwidth_ceiling_binds(self, workload_lut):
        smp = SMPModel(cores=16, clock_ghz=3.0, mem_bw_gbps=0.5,
                       serial_ns=0, sync_ns=0)
        rep = smp.estimate_frame(workload_lut, threads=16)
        assert rep.bottleneck == "memory"
        # frame time is at least traffic / bandwidth
        traffic = rep.notes["traffic_bytes"]
        assert rep.frame_ns >= traffic / 0.5 - 1

    def test_serial_floor(self, workload_otf):
        smp = SMPModel(cores=4, serial_ns=10_000_000)
        rep = smp.estimate_frame(workload_otf)
        assert rep.frame_ns >= 10_000_000

    def test_simd_speeds_up_compute(self, workload_otf):
        base = dict(cores=1, clock_ghz=3.0, mem_bw_gbps=100.0, serial_ns=0,
                    sync_ns=0)
        scalar = SMPModel(isa=None, **base).estimate_frame(workload_otf).frame_ns
        simd = SMPModel(isa=SSE2, **base).estimate_frame(workload_otf).frame_ns
        assert simd < scalar

    def test_thread_bounds_checked(self, workload_otf):
        smp = xeon_2010()
        with pytest.raises(PlatformError):
            smp.estimate_frame(workload_otf, threads=0)
        with pytest.raises(PlatformError):
            smp.estimate_frame(workload_otf, threads=5)

    def test_breakdown_sums_sensibly(self, workload_otf):
        rep = xeon_2010().estimate_frame(workload_otf)
        assert rep.breakdown.total_ns >= rep.frame_ns * 0.5

    def test_scaling_helper(self, workload_otf):
        reports = xeon_2010().scaling(workload_otf)
        assert [r.notes["threads"] for r in reports] == [1, 2, 4]


class TestImbalance:
    def test_tilted_field_creates_static_imbalance(self, tilted_field):
        workload = Workload.from_field(tilted_field, mode="otf")
        smp = SMPModel(cores=8, schedule="static")
        factor, assignment = smp.imbalance_factor(workload, threads=8)
        assert factor > 1.0
        assert assignment is not None

    def test_dynamic_less_imbalanced_than_static(self, tilted_field):
        workload = Workload.from_field(tilted_field, mode="otf")
        static = SMPModel(cores=8, schedule="static")
        dynamic = SMPModel(cores=8, schedule="dynamic")
        f_static, _ = static.imbalance_factor(workload, threads=8)
        f_dynamic, _ = dynamic.imbalance_factor(workload, threads=8)
        assert f_dynamic <= f_static

    def test_single_thread_no_imbalance(self, tilted_field):
        workload = Workload.from_field(tilted_field)
        factor, assignment = SMPModel(cores=4).imbalance_factor(workload, 1)
        assert factor == 1.0 and assignment is None

    def test_no_field_no_imbalance(self):
        from repro.accel.kernels import kernel_spec

        w = Workload(out_width=64, out_height=64, src_width=64, src_height=64,
                     spec=kernel_spec())
        factor, _ = SMPModel(cores=4).imbalance_factor(w, 4)
        assert factor == 1.0


class TestPresets:
    def test_sequential_is_single_core(self):
        assert sequential_reference().cores == 1

    def test_modern_beats_2010(self, workload_otf):
        old = xeon_2010().estimate_frame(workload_otf)
        new = xeon_modern().estimate_frame(workload_otf)
        assert new.fps > old.fps
