"""Benchmark harness tests: reporting, workload cache, Amdahl fit."""

import numpy as np
import pytest

from repro.bench.harness import (
    amdahl_fit,
    resolution,
    standard_field,
    standard_sensor,
    standard_workload,
)
from repro.bench.report import Table, ascii_series, format_value
from repro.errors import BenchmarkError


class TestFormatValue:
    def test_floats(self):
        assert format_value(1.234) == "1.23"
        assert format_value(float("nan")) == "-"
        assert format_value(float("inf")) == "inf"

    def test_bools_and_ints(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(42) == "42"

    def test_custom_float_format(self):
        assert format_value(1.23456, "{:.4f}") == "1.2346"


class TestTable:
    def test_add_and_render(self):
        t = Table("T: demo", ["a", "bb"])
        t.add_row(1, 2.5)
        t.add_row(10, 0.25)
        text = t.render()
        assert "T: demo" in text
        lines = text.splitlines()
        assert lines[1].strip().startswith("a")
        assert "10" in text and "2.50" in text

    def test_wrong_arity_rejected(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(BenchmarkError):
            t.add_row(1)

    def test_column_extraction(self):
        t = Table("x", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]
        with pytest.raises(BenchmarkError):
            t.column("c")

    def test_notes_rendered(self):
        t = Table("x", ["a"])
        t.add_row(1)
        t.notes.append("hello note")
        assert "hello note" in str(t)


class TestAsciiSeries:
    def test_renders_bars(self):
        text = ascii_series([1, 2], [1.0, 2.0], width=10, label="demo")
        assert "demo" in text
        assert text.count("#") == 5 + 10

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            ascii_series([], [])
        with pytest.raises(BenchmarkError):
            ascii_series([1], [1, 2])


class TestHarness:
    def test_resolution_lookup(self):
        assert resolution("VGA") == (640, 480)
        with pytest.raises(BenchmarkError):
            resolution("8K")

    def test_standard_sensor_180deg(self):
        sensor, lens = standard_sensor(640, 480)
        # inscribed circle: radius at 90 deg equals half the short side - 1
        assert float(lens.angle_to_radius(np.pi / 2)) == pytest.approx(239.0)

    def test_standard_field_cached(self):
        a = standard_field(64, 64)
        b = standard_field(64, 64)
        assert a is b

    def test_standard_workload_measured(self):
        w = standard_workload("VGA", method="nearest", mode="otf")
        assert w.pixels == 640 * 480
        assert w.spec.taps == 1
        assert w.field is not None

    def test_tilted_workload(self):
        w = standard_workload("VGA", pitch=np.deg2rad(60.0))
        assert w.coverage < 1.0


class TestAmdahlFit:
    def test_recovers_known_serial_fraction(self):
        s = 0.1
        threads = np.array([1, 2, 4, 8, 16])
        speedups = 1.0 / (s + (1 - s) / threads)
        serial, r2 = amdahl_fit(threads, speedups)
        assert serial == pytest.approx(s, abs=1e-6)
        assert r2 == pytest.approx(1.0, abs=1e-9)

    def test_perfect_scaling_zero_serial(self):
        threads = np.array([1, 2, 4, 8])
        serial, _ = amdahl_fit(threads, threads.astype(float))
        assert serial == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            amdahl_fit([1], [1.0])
        with pytest.raises(BenchmarkError):
            amdahl_fit([1, 2], [1.0, -2.0])
