"""LUT cache tests: keying, LRU behaviour, and the persistent tier."""

import numpy as np
import pytest

from repro.core.lutcache import LUTCache, field_fingerprint
from repro.core.mapping import identity_map
from repro.core.remap import RemapLUT
from repro.errors import MappingError


class TestFingerprint:
    def test_stable_for_equal_fields(self, small_field):
        assert field_fingerprint(small_field) == field_fingerprint(small_field)

    def test_differs_for_different_fields(self, small_field, tilted_field):
        assert field_fingerprint(small_field) != field_fingerprint(tilted_field)

    def test_key_includes_parameters(self, small_field):
        k1 = LUTCache.key_for(small_field, method="bilinear")
        k2 = LUTCache.key_for(small_field, method="bicubic")
        k3 = LUTCache.key_for(small_field, method="bilinear", fill=9.0)
        assert len({k1, k2, k3}) == 3


class TestMemoryTier:
    def test_hit_and_miss_counters(self, small_field):
        cache = LUTCache()
        a = cache.get(small_field, method="bilinear")
        b = cache.get(small_field, method="bilinear")
        assert a is b
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_configs_dont_collide(self, small_field, random_image):
        cache = LUTCache()
        bl = cache.get(small_field, method="bilinear")
        nn = cache.get(small_field, method="nearest")
        assert bl.taps == 4 and nn.taps == 1
        assert cache.misses == 2

    def test_lru_eviction(self, small_field, tilted_field):
        cache = LUTCache(capacity=1)
        cache.get(small_field)
        cache.get(tilted_field)
        assert len(cache) == 1
        cache.get(small_field)  # evicted above, so a fresh miss
        assert cache.misses == 3

    def test_clear(self, small_field):
        cache = LUTCache()
        cache.get(small_field)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(MappingError):
            LUTCache(capacity=0)


class TestDiskTier:
    def test_round_trip_skips_rebuild(self, small_field, random_image, tmp_path):
        warm = LUTCache(cache_dir=str(tmp_path))
        built = warm.get(small_field, method="bilinear")

        cold = LUTCache(cache_dir=str(tmp_path))  # fresh process stand-in
        loaded = cold.get(small_field, method="bilinear")
        assert cold.disk_hits == 1
        assert cold.misses == 1  # memory tier missed, disk tier answered
        np.testing.assert_array_equal(np.asarray(loaded.indices),
                                      np.asarray(built.indices))
        np.testing.assert_array_equal(loaded.apply(random_image),
                                      built.apply(random_image))

    def test_loaded_lut_is_memory_mapped(self, small_field, tmp_path):
        LUTCache(cache_dir=str(tmp_path)).get(small_field)
        loaded = LUTCache(cache_dir=str(tmp_path)).get(small_field)
        assert isinstance(loaded.indices, np.memmap)

    def test_all_methods_round_trip(self, small_field, random_image, tmp_path):
        for method in ("nearest", "bilinear", "bicubic"):
            warm = LUTCache(cache_dir=str(tmp_path))
            built = warm.get(small_field, method=method)
            loaded = LUTCache(cache_dir=str(tmp_path)).get(small_field, method=method)
            np.testing.assert_array_equal(loaded.apply(random_image),
                                          built.apply(random_image))

    def test_corrupt_entry_falls_back_to_build(self, small_field, tmp_path):
        cache = LUTCache(cache_dir=str(tmp_path))
        key = cache.key_for(small_field)
        cache.get(small_field)
        (tmp_path / key / "meta.json").write_text("not json")
        fresh = LUTCache(cache_dir=str(tmp_path))
        lut = fresh.get(small_field)  # must rebuild, not crash
        assert fresh.disk_hits == 0
        assert isinstance(lut, RemapLUT)


class TestStreamIntegration:
    def test_corrected_stream_uses_cache(self, small_field, rng):
        from repro.video.stream import corrected_stream

        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8)
                  for _ in range(3)]
        cache = LUTCache()
        direct = list(corrected_stream(iter(frames), small_field, copy=True))
        cached = list(corrected_stream(iter(frames), small_field,
                                       lut_cache=cache, copy=True))
        assert cache.misses == 1
        for a, b in zip(direct, cached):
            np.testing.assert_array_equal(a, b)

    def test_corrector_pipeline_shares_cache(self, small_field, random_image):
        from repro.core.pipeline import FisheyeCorrector

        cache = LUTCache()
        c1 = FisheyeCorrector(small_field, lut_cache=cache)
        c2 = FisheyeCorrector(small_field, lut_cache=cache)
        np.testing.assert_array_equal(c1.correct(random_image),
                                      c2.correct(random_image))
        assert cache.misses == 1
        assert cache.hits >= 1


class TestSingleFlight:
    """Concurrent misses on one key must build exactly once.

    Regression test for the get() race: two threads could both miss,
    both build the (expensive) table, and the loser's work was thrown
    away — or worse, the disk tier wrote the same file twice
    concurrently.  The per-key build lock funnels all concurrent
    missers through a single build.
    """

    def test_concurrent_get_builds_exactly_once(self, small_field,
                                                monkeypatch):
        import threading
        import time

        import repro.core.lutcache as lutcache_mod

        builds = []
        real = lutcache_mod.RemapLUT

        def slow_build(*args, **kwargs):
            builds.append(threading.get_ident())
            time.sleep(0.1)  # widen the race window
            return real(*args, **kwargs)

        monkeypatch.setattr(lutcache_mod, "RemapLUT", slow_build)
        cache = LUTCache()
        n = 4
        barrier = threading.Barrier(n)
        results = [None] * n
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = cache.get(small_field, method="bilinear")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(builds) == 1, f"expected 1 build, got {len(builds)}"
        assert all(r is results[0] for r in results)
        assert cache.misses == n
        assert cache.coalesced == n - 1
        assert cache.stats()["coalesced"] == n - 1

    def test_single_flight_releases_key_lock(self, small_field):
        cache = LUTCache()
        cache.get(small_field)
        assert cache._builds == {}  # no per-key locks retained after build
