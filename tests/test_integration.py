"""Cross-module integration tests: the full application workflows."""

import numpy as np
import pytest

from repro.core.calibration import calibrate, detect_blobs
from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from repro.core.lens import EquidistantLens, make_lens
from repro.core.mapping import cylindrical_map, perspective_map
from repro.core.pipeline import FisheyeCorrector
from repro.core.quality import line_straightness
from repro.core.remap import RemapLUT, remap
from repro.accel.platform import Workload
from repro.accel.presets import cell_ps3, gtx280, sequential_reference, xeon_2010
from repro.video.distort import FisheyeRenderer, scene_camera_for_sensor
from repro.video.synth import checkerboard, circle_grid


SIZE = 96


@pytest.fixture(scope="module")
def rig():
    """A mid-size rig: sensor, lens, scene camera, renderer."""
    circle = SIZE / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SIZE, SIZE, focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)
    scene_cam = scene_camera_for_sensor(sensor, lens, SIZE, SIZE,
                                        scene_hfov=np.deg2rad(130.0))
    renderer = FisheyeRenderer(scene_cam, lens, sensor)
    return sensor, lens, scene_cam, renderer


class TestCalibrationLoop:
    """Render a known target through a known lens, recover the lens."""

    def test_full_calibration_from_rendered_target(self, rig):
        sensor, lens, scene_cam, renderer = rig
        # a circle-grid target in scene space, rendered through the lens
        target, scene_points = circle_grid(SIZE, SIZE, rings=3, spokes=8,
                                           dot_radius=2, margin=0.7)
        fisheye_img = renderer.render(target)

        # each marker's true field angle follows from scene geometry
        xn, yn = scene_cam.normalize(scene_points[:, 0], scene_points[:, 1])
        true_thetas = np.arctan(np.hypot(xn, yn))

        blobs = detect_blobs(fisheye_img.astype(float), min_area=2)
        assert len(blobs) == len(scene_points)

        # associate blobs to markers by angle ordering (both radial grids)
        blob_pts = np.array([[b.x, b.y] for b in blobs])
        blob_r = np.hypot(blob_pts[:, 0] - sensor.cx, blob_pts[:, 1] - sensor.cy)
        order_b = np.argsort(blob_r)
        order_t = np.argsort(true_thetas)
        pts = blob_pts[order_b][1:]            # drop centre dot (theta=0)
        thetas = true_thetas[order_t][1:]

        result = calibrate(pts, thetas, center_guess=(sensor.cx, sensor.cy))
        assert result.model == "equidistant"
        assert result.focal == pytest.approx(sensor.focal, rel=0.05)

        # and the calibrated corrector actually straightens the image
        corrector = FisheyeCorrector.for_sensor(
            sensor, result.lens(), SIZE, SIZE, zoom=0.8)
        assert corrector.coverage() > 0.9


class TestStraightening:
    def test_checkerboard_edges_straight_after_correction(self, rig):
        sensor, lens, scene_cam, renderer = rig
        scene = checkerboard(SIZE, SIZE, square=16)
        fisheye_img = renderer.render(scene)
        corrector = FisheyeCorrector.for_sensor(sensor, lens, SIZE, SIZE,
                                                zoom=1.0, method="bilinear")
        corrected = corrector.correct(fisheye_img)

        # trace one vertical checker edge across rows via the luminance jump
        def edge_columns(img, approx_col, rows):
            cols = []
            for r in rows:
                row = img[r].astype(int)
                window = row[approx_col - 6: approx_col + 6]
                jump = np.abs(np.diff(window))
                if jump.max() > 40:
                    cols.append(approx_col - 6 + int(jump.argmax()))
            return cols

        rows = range(30, 66, 6)
        # the scene edge at x=64 maps near the output centre-right
        cols_corrected = edge_columns(corrected, 64, rows)
        cols_distorted = edge_columns(fisheye_img, 64, rows)
        assert len(cols_corrected) >= 4
        pts_c = np.array([[c, r] for c, r in zip(cols_corrected, rows)], float)
        rms_c, _ = line_straightness(pts_c)
        if len(cols_distorted) >= 4:
            pts_d = np.array([[c, r] for c, r in zip(cols_distorted, rows)], float)
            rms_d, _ = line_straightness(pts_d)
            assert rms_c <= rms_d + 0.5
        assert rms_c < 1.5  # sub-1.5-pixel straightness after correction


class TestCrossPlatformConsistency:
    """All platform models price the same workload coherently."""

    def test_accelerators_beat_sequential(self, rig):
        sensor, lens, _, _ = rig
        focal_out = float(lens.magnification(1e-4)) * 0.5
        out = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=(SIZE - 1) / 2.0,
                               cy=(SIZE - 1) / 2.0, width=SIZE, height=SIZE)
        field = perspective_map(sensor, lens, out)
        workload = Workload.from_field(field, mode="otf")
        seq = sequential_reference().estimate_frame(workload)
        for platform in (xeon_2010(), cell_ps3()):
            rep = (platform.simulate(workload) if hasattr(platform, "simulate")
                   else platform.estimate_frame(workload))
            assert rep.fps > seq.fps

    def test_gpu_kernel_fast_but_pcie_capped(self, rig):
        sensor, lens, _, _ = rig
        focal_out = float(lens.magnification(1e-4)) * 0.5
        out = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=(SIZE - 1) / 2.0,
                               cy=(SIZE - 1) / 2.0, width=SIZE, height=SIZE)
        field = perspective_map(sensor, lens, out)
        workload = Workload.from_field(field, mode="lut")
        rep = gtx280().estimate_frame(workload)
        transfers = rep.notes["h2d_ns"] + rep.notes["d2h_ns"]
        assert transfers > rep.notes["kernel_ns"]  # classic small-frame regime


class TestPanorama:
    def test_cylindrical_unwrap_end_to_end(self, rig):
        sensor, lens, _, renderer = rig
        scene = checkerboard(SIZE, SIZE, square=12)
        fisheye_img = renderer.render(scene)
        field = cylindrical_map(sensor, lens, 128, 48,
                                hfov=np.deg2rad(160.0), vfov=np.deg2rad(60.0))
        pano = remap(fisheye_img, field, method="bilinear")
        assert pano.shape == (48, 128)
        assert field.coverage() > 0.9
        assert pano.std() > 10  # actual content, not fill

    def test_panorama_lut_streaming(self, rig):
        sensor, lens, _, renderer = rig
        field = cylindrical_map(sensor, lens, 96, 32)
        lut = RemapLUT(field, method="nearest")
        frame = renderer.render(checkerboard(SIZE, SIZE, square=8))
        out = lut.apply(frame)
        assert out.shape == (32, 96)


class TestLensFamilies:
    @pytest.mark.parametrize("name", ["equidistant", "equisolid", "stereographic"])
    def test_each_family_corrects_its_own_distortion(self, name):
        circle = SIZE / 2.0 - 1.0
        lens = make_lens(name, circle / float(make_lens(name, 1.0).angle_to_radius(np.pi / 2)))
        sensor = FisheyeIntrinsics.centered(SIZE, SIZE, focal=lens.focal)
        scene_cam = scene_camera_for_sensor(sensor, lens, SIZE, SIZE,
                                            scene_hfov=np.deg2rad(120.0))
        renderer = FisheyeRenderer(scene_cam, lens, sensor)
        fisheye_img = renderer.render(checkerboard(SIZE, SIZE, square=16))
        corrector = FisheyeCorrector.for_sensor(sensor, lens, SIZE, SIZE, zoom=1.0)
        corrected = corrector.correct(fisheye_img)
        assert corrected.shape == (SIZE, SIZE)
        # centre content survives the roundtrip
        assert corrected[40:56, 40:56].std() > 20
