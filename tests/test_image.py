"""Frame/PixelFormat container tests."""

import numpy as np
import pytest

from repro.core.image import GRAY8, GRAY16, RGB8, RGBF32, Frame, PixelFormat
from repro.errors import ImageFormatError


class TestPixelFormat:
    def test_bytes_per_pixel(self):
        assert GRAY8.bytes_per_pixel == 1
        assert GRAY16.bytes_per_pixel == 2
        assert RGB8.bytes_per_pixel == 3
        assert RGBF32.bytes_per_pixel == 12

    def test_rejects_bad_channels(self):
        with pytest.raises(ImageFormatError):
            PixelFormat("x", 2, np.uint8, "gray")

    def test_rejects_bad_colorspace(self):
        with pytest.raises(ImageFormatError):
            PixelFormat("x", 1, np.uint8, "cmyk")


class TestFrame:
    def test_zeros(self):
        f = Frame.zeros(4, 6)
        assert f.height == 4 and f.width == 6
        assert f.data.dtype == np.uint8
        assert f.nbytes == 24

    def test_zeros_rgb(self):
        f = Frame.zeros(4, 6, RGB8)
        assert f.data.shape == (4, 6, 3)

    def test_zeros_rejects_bad_size(self):
        with pytest.raises(ImageFormatError):
            Frame.zeros(0, 5)

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ImageFormatError):
            Frame(np.zeros((4, 4), dtype=np.float32), GRAY8)

    def test_ndim_mismatch_rejected(self):
        with pytest.raises(ImageFormatError):
            Frame(np.zeros((4, 4), dtype=np.uint8), RGB8)

    def test_channel_count_mismatch_rejected(self):
        with pytest.raises(ImageFormatError):
            Frame(np.zeros((4, 4, 4), dtype=np.uint8), RGB8)

    def test_with_data_keeps_metadata(self):
        f = Frame.zeros(4, 4, GRAY8, index=7, timestamp=0.25)
        g = f.with_data(np.ones((8, 8), dtype=np.uint8))
        assert g.index == 7 and g.timestamp == 0.25
        assert g.height == 8

    def test_format_by_name(self):
        assert Frame.format_by_name("rgb8") is RGB8
        with pytest.raises(ImageFormatError):
            Frame.format_by_name("yuv999")
