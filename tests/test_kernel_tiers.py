"""Kernel-tier ladder tests: selection, execution, and plumbing.

Covers the tier registry (:mod:`repro.core.kernel_tiers`), the
``RemapLUT`` tier dispatch, the integration seams (pipeline, stream,
shared-memory workers, CLI, telemetry), and the compiled tier where
numba is installed (those tests self-skip elsewhere — the no-numba CI
leg runs everything else).
"""

import numpy as np
import pytest

from repro.core import kernel_tiers
from repro.core.fixedpoint import FixedPointLUT
from repro.core.pipeline import FisheyeCorrector
from repro.core.remap import RemapLUT
from repro.errors import KernelTierError

pytestmark = pytest.mark.tier1

HAS_NUMBA = kernel_tiers.numba_available()
needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")


class TestRegistry:
    def test_choices_superset_of_tiers(self):
        assert set(kernel_tiers.KERNEL_TIERS) < set(kernel_tiers.KERNEL_CHOICES)
        assert "auto" in kernel_tiers.KERNEL_CHOICES

    def test_available_tiers_ladder_order(self):
        tiers = kernel_tiers.available_tiers()
        assert tiers[:2] == ("numpy", "fixed")
        assert ("compiled" in tiers) == HAS_NUMBA

    def test_probe_matches_auto(self):
        assert kernel_tiers.kernel_tier() == kernel_tiers.resolve_tier("auto")

    def test_identity_tiers(self):
        assert kernel_tiers.resolve_tier("numpy") == "numpy"
        assert kernel_tiers.resolve_tier("fixed") == "fixed"

    def test_auto_never_picks_fixed(self):
        assert kernel_tiers.resolve_tier("auto") in ("numpy", "compiled")

    def test_unknown_tier_raises(self):
        with pytest.raises(KernelTierError):
            kernel_tiers.resolve_tier("cuda")

    @staticmethod
    def _capture_warnings():
        import logging

        class _ListHandler(logging.Handler):
            def __init__(self):
                super().__init__(logging.WARNING)
                self.records = []

            def emit(self, record):
                self.records.append(record)

        return logging.getLogger("repro.core.kernel_tiers"), _ListHandler()

    def test_compiled_fallback_warns_once(self):
        if HAS_NUMBA:
            pytest.skip("fallback path only exists without numba")
        kernel_tiers._warned_fallback = False
        logger, handler = self._capture_warnings()
        logger.addHandler(handler)
        try:
            assert kernel_tiers.resolve_tier("compiled") == "numpy"
            assert kernel_tiers.resolve_tier("compiled") == "numpy"
        finally:
            logger.removeHandler(handler)
        warned = [r for r in handler.records if "falling back" in r.getMessage()]
        assert len(warned) == 1

    def test_quiet_resolve_does_not_warn(self):
        if HAS_NUMBA:
            pytest.skip("fallback path only exists without numba")
        kernel_tiers._warned_fallback = False
        logger, handler = self._capture_warnings()
        logger.addHandler(handler)
        try:
            kernel_tiers.resolve_tier("compiled", quiet=True)
        finally:
            logger.removeHandler(handler)
        assert not [r for r in handler.records if "falling back" in r.getMessage()]


class TestRemapTierDispatch:
    def test_fixed_tier_bit_exact_with_fixedpoint(self, tilted_field, random_image):
        fixed = RemapLUT(tilted_field, fill=5).with_tier("fixed")
        model = FixedPointLUT(tilted_field, frac_bits=fixed.frac_bits, fill=5)
        np.testing.assert_array_equal(fixed.apply(random_image),
                                      model.apply(random_image))

    def test_with_tier_shares_tables(self, small_field):
        base = RemapLUT(small_field)
        fixed = base.with_tier("fixed")
        assert fixed is not base
        assert fixed.indices is base.indices
        assert fixed.fracs is base.fracs
        assert base.tier == "numpy" and fixed.tier == "fixed"

    def test_with_tier_same_tier_is_identity(self, small_field):
        base = RemapLUT(small_field)
        assert base.with_tier("numpy") is base
        fixed = base.with_tier("fixed")
        assert fixed.with_tier("fixed") is fixed

    def test_with_tier_bad_bits(self, small_field):
        with pytest.raises(KernelTierError):
            RemapLUT(small_field).with_tier("fixed", frac_bits=15)

    def test_float_frames_fall_back_to_numpy(self, small_field, random_image):
        base = RemapLUT(small_field)
        fixed = base.with_tier("fixed")
        frame = random_image.astype(np.float32)
        np.testing.assert_array_equal(fixed.apply(frame), base.apply(frame))

    def test_all_methods_and_dtypes(self, small_field, rng):
        for method in ("nearest", "bilinear", "bicubic"):
            base = RemapLUT(small_field, method=method)
            fixed = base.with_tier("fixed")
            for dtype, hi in ((np.uint8, 256), (np.uint16, 65536)):
                frame = rng.integers(0, hi, size=(64, 64), dtype=dtype)
                a = base.apply(frame).astype(np.int64)
                b = fixed.apply(frame).astype(np.int64)
                tol = 1 if dtype == np.uint8 else hi // 256
                assert np.abs(a - b).max() <= max(1, tol)

    def test_rgb_frames(self, small_field, rgb_image):
        out = RemapLUT(small_field).with_tier("fixed").apply(rgb_image)
        assert out.shape == rgb_image.shape[:2] + (3,)

    def test_pickle_roundtrip_keeps_tier(self, small_field, random_image):
        import pickle
        fixed = RemapLUT(small_field).with_tier("fixed")
        clone = pickle.loads(pickle.dumps(fixed))
        assert clone.tier == "fixed"
        np.testing.assert_array_equal(clone.apply(random_image),
                                      fixed.apply(random_image))

    def test_tier_counter_recorded(self, small_field, random_image):
        from repro.obs.telemetry import Telemetry, set_telemetry
        tel = Telemetry()
        set_telemetry(tel)
        try:
            RemapLUT(small_field).with_tier("fixed").apply(random_image)
            snap = tel.snapshot()
        finally:
            set_telemetry(None)
        assert snap["counters"].get("kernel.tier.fixed") == 1
        spans = [s for s in snap["spans"] if s["name"] == "remap.apply"]
        assert spans and spans[0]["args"]["tier"] == "fixed"


class TestPipelineIntegration:
    def _corrector(self, kernel):
        from repro.core.intrinsics import FisheyeIntrinsics
        from repro.core.lens import make_lens
        w = h = 64
        focal = (min(w, h) / 2 - 1) / (np.pi / 2)
        sensor = FisheyeIntrinsics.centered(w, h, focal=focal)
        lens = make_lens("equidistant", focal)
        return FisheyeCorrector.for_sensor(sensor, lens, w, h, zoom=0.5,
                                           kernel=kernel)

    def test_corrector_kernel_resolved_and_reported(self, random_image):
        c = self._corrector("fixed")
        assert c.kernel == "fixed"
        assert c.stats()["kernel"] == "fixed"
        c.correct(random_image)
        assert c.lut.tier == "fixed"

    def test_corrector_outputs_match_tiers(self, random_image):
        a = self._corrector("numpy").correct(random_image).astype(np.int16)
        b = self._corrector("fixed").correct(random_image).astype(np.int16)
        assert np.abs(a - b).max() <= 1

    def test_corrector_rejects_unknown_kernel(self):
        with pytest.raises(KernelTierError):
            self._corrector("sse2")

    def test_corrected_stream_kernel(self, small_field, random_image):
        from repro.video.stream import corrected_stream
        ref = RemapLUT(small_field).with_tier("fixed").apply(random_image)
        outs = [f.copy() for f in corrected_stream(
            [random_image] * 2, small_field, kernel="fixed")]
        assert len(outs) == 2
        np.testing.assert_array_equal(outs[0], ref)

    def test_shared_tables_carry_tier(self, small_field, random_image):
        from repro.parallel.shmseg import SharedTables, attach_tables
        lut = RemapLUT(small_field).with_tier("fixed")
        st = SharedTables(lut)
        try:
            assert "qwtab" in st.spec
            assert st.meta["tier"] == "fixed"
            assert st.meta["frac_bits"] == lut.frac_bits
            segments, _, worker_lut = attach_tables(st.spec, st.meta)
            try:
                assert worker_lut.tier == "fixed"
                np.testing.assert_array_equal(worker_lut.apply(random_image),
                                              lut.apply(random_image))
            finally:
                for shm in segments:
                    shm.close()
        finally:
            st.release()

    def test_shared_tables_numpy_tier_skips_qwtab(self, small_field):
        from repro.parallel.shmseg import SharedTables
        st = SharedTables(RemapLUT(small_field))
        try:
            assert "qwtab" not in st.spec
            assert st.meta["tier"] == "numpy"
        finally:
            st.release()

    def test_cli_correct_kernel_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.video.io import read_pgm, write_pgm
        rng = np.random.default_rng(0)
        src = str(tmp_path / "in.pgm")
        write_pgm(src, rng.integers(0, 256, (64, 64), dtype=np.uint8))
        for kernel, label in (("numpy", "kernel numpy"),
                              ("fixed", "kernel fixed")):
            dst = str(tmp_path / f"out_{kernel}.pgm")
            assert main(["correct", src, dst, "--kernel", kernel]) == 0
            assert label in capsys.readouterr().out
            assert read_pgm(dst).shape == (64, 64)

    def test_cli_rejects_unknown_kernel(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["correct", "a.pgm", "b.pgm", "--kernel", "gpu"])

    def test_trace_spans_labelled_with_tier(self, small_field, random_image):
        from repro.obs.export import chrome_trace, format_snapshot
        from repro.obs.telemetry import Telemetry, set_telemetry
        tel = Telemetry()
        set_telemetry(tel)
        try:
            RemapLUT(small_field).with_tier("fixed").apply(random_image)
            snap = tel.snapshot()
        finally:
            set_telemetry(None)
        names = [e["name"] for e in chrome_trace(snap) if e.get("ph") == "X"]
        assert "remap.apply [fixed]" in names
        assert "remap.apply [fixed]" in format_snapshot(snap)


@needs_numba
class TestCompiledTier:
    def test_compiled_resolves(self):
        assert kernel_tiers.resolve_tier("compiled") == "compiled"
        assert kernel_tiers.kernel_tier() == "compiled"

    def test_compiled_bit_exact_with_fixed(self, tilted_field, random_image):
        base = RemapLUT(tilted_field, fill=4)
        a = base.with_tier("fixed").apply(random_image)
        b = base.with_tier("compiled").apply(random_image)
        np.testing.assert_array_equal(a, b)

    def test_compiled_rgb_and_uint16(self, small_field, rng):
        base = RemapLUT(small_field)
        rgb = rng.integers(0, 256, (64, 64, 3), dtype=np.uint8)
        np.testing.assert_array_equal(base.with_tier("fixed").apply(rgb),
                                      base.with_tier("compiled").apply(rgb))
        wide = rng.integers(0, 65536, (64, 64), dtype=np.uint16)
        np.testing.assert_array_equal(base.with_tier("fixed").apply(wide),
                                      base.with_tier("compiled").apply(wide))

    def test_compiled_rows_into(self, small_field, random_image):
        lut = RemapLUT(small_field).with_tier("compiled")
        full = lut.apply(random_image)
        out = np.zeros_like(full)
        h = lut.out_shape[0]
        lut.apply_rows_into(random_image, 0, h // 2, out[: h // 2])
        lut.apply_rows_into(random_image, h // 2, h, out[h // 2:])
        np.testing.assert_array_equal(out, full)
