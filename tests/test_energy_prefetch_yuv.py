"""Tests for the extension subsystems: energy model, stream prefetcher,
YUV420 pipeline."""

import numpy as np
import pytest

from repro.accel.energy import POWER_SPECS, PowerSpec, energy_report
from repro.accel.platform import Workload
from repro.accel.presets import cell_ps3, fpga_midrange, gtx280, xeon_2010
from repro.sim.cache import CacheConfig, CacheSim
from repro.sim.prefetch import PrefetchConfig, PrefetchingCache
from repro.video.yuv import YUV420Frame, YUVCorrector
from repro.errors import ImageFormatError, MappingError, PlatformError, SimulationError


# ----------------------------------------------------------------------
# Energy model
# ----------------------------------------------------------------------
class TestEnergy:
    @pytest.fixture()
    def workload(self, small_field):
        return Workload.from_field(small_field, mode="otf")

    def test_report_fields_consistent(self, workload):
        rep = xeon_2010().estimate_frame(workload)
        e = energy_report(rep)
        assert e.joules_per_frame > 0
        assert e.watts_average <= POWER_SPECS["xeon4"].active_w + 1e-9
        assert e.watts_average >= POWER_SPECS["xeon4"].idle_w - 1e-9
        assert e.frames_per_joule == pytest.approx(1.0 / e.joules_per_frame)

    def test_platform_name_prefix_resolution(self, workload):
        rep = cell_ps3().simulate(workload)
        e = energy_report(rep)  # platform string is "cell[6spe+db]"
        assert e.platform.startswith("cell")

    def test_unknown_platform_rejected(self, workload):
        rep = xeon_2010().estimate_frame(workload)
        rep.platform = "mystery[1]"
        with pytest.raises(PlatformError):
            energy_report(rep)

    def test_explicit_spec(self, workload):
        rep = xeon_2010().estimate_frame(workload)
        e = energy_report(rep, spec=PowerSpec("custom", active_w=10.0, idle_w=1.0))
        assert e.watts_average <= 10.0

    def test_fpga_most_efficient(self, workload):
        """The era's headline: FPGAs win performance-per-watt."""
        reports = {}
        for platform in (xeon_2010(), gtx280(), fpga_midrange()):
            rep = platform.estimate_frame(workload)
            reports[platform.name] = energy_report(rep).mpixels_per_joule
        assert reports["fpga"] > reports["xeon4"]
        assert reports["fpga"] > reports["gtx280"]

    def test_spec_validation(self):
        with pytest.raises(PlatformError):
            PowerSpec("x", active_w=0.0, idle_w=0.0)
        with pytest.raises(PlatformError):
            PowerSpec("x", active_w=5.0, idle_w=9.0)


# ----------------------------------------------------------------------
# Stream prefetcher
# ----------------------------------------------------------------------
class TestPrefetcher:
    def cfg(self):
        return CacheConfig(size_bytes=1024, line_bytes=64, ways=2)

    def test_sequential_stream_mostly_prefetched(self):
        pf = PrefetchingCache(self.cfg(), PrefetchConfig(depth=4))
        trace = np.arange(0, 64 * 64, 64)  # one access per line, ascending
        stats = pf.replay(trace)
        plain = CacheSim(self.cfg()).replay(trace)
        assert stats.hit_rate > plain.hit_rate
        assert stats.prefetch_hits > 0

    def test_descending_stream_detected(self):
        pf = PrefetchingCache(self.cfg(), PrefetchConfig(depth=4))
        trace = np.arange(64 * 63, -1, -64)
        stats = pf.replay(trace)
        assert stats.hit_rate > 0.5

    def test_random_trace_low_accuracy(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 1 << 20, size=400) * 64
        pf = PrefetchingCache(self.cfg(), PrefetchConfig(depth=2))
        stats = pf.replay(trace)
        # no streams to confirm: very few prefetches fire, and almost
        # none of those are used
        assert stats.accuracy < 0.2

    def test_demand_accounting_excludes_prefetches(self):
        pf = PrefetchingCache(self.cfg())
        trace = np.arange(0, 64 * 16, 64)
        stats = pf.replay(trace)
        assert stats.accesses == 16

    def test_traffic_includes_prefetches(self):
        pf = PrefetchingCache(self.cfg(), PrefetchConfig(depth=4))
        trace = np.arange(0, 64 * 32, 64)
        stats = pf.replay(trace)
        assert stats.traffic_bytes(64) >= stats.misses * 64

    def test_validation(self):
        with pytest.raises(SimulationError):
            PrefetchConfig(streams=0)
        pf = PrefetchingCache(self.cfg())
        with pytest.raises(SimulationError):
            pf.access(np.array([-1]))

    def test_helps_row_major_gather_trace(self, small_field):
        """The A3 question, in miniature."""
        from repro.core.remap import RemapLUT
        from repro.sim.trace import gather_trace

        lut = RemapLUT(small_field, method="nearest")
        trace = gather_trace(lut, pixel_bytes=4)
        cfg = CacheConfig(size_bytes=2048, line_bytes=64, ways=4)
        plain = CacheSim(cfg).replay(trace)
        pf = PrefetchingCache(cfg, PrefetchConfig(depth=2)).replay(trace)
        assert pf.hit_rate >= plain.hit_rate - 1e-9


# ----------------------------------------------------------------------
# YUV 4:2:0 pipeline
# ----------------------------------------------------------------------
class TestYUV420Frame:
    def test_from_rgb_roundtrip_flat(self):
        rgb = np.full((16, 16, 3), 120, dtype=np.uint8)
        frame = YUV420Frame.from_rgb(rgb)
        back = frame.to_rgb()
        assert np.abs(back.astype(int) - 120).max() <= 2

    def test_plane_shapes(self, rgb_image):
        frame = YUV420Frame.from_rgb(rgb_image)
        assert frame.y.shape == (64, 64)
        assert frame.u.shape == (32, 32)
        assert frame.nbytes == 64 * 64 + 2 * 32 * 32

    def test_validation(self):
        with pytest.raises(ImageFormatError):
            YUV420Frame(np.zeros((5, 4)), np.zeros((2, 2)), np.zeros((2, 2)))
        with pytest.raises(ImageFormatError):
            YUV420Frame(np.zeros((4, 4)), np.zeros((3, 2)), np.zeros((2, 2)))


class TestYUVCorrector:
    @pytest.fixture()
    def corrector(self, small_sensor, small_lens):
        return YUVCorrector(small_sensor, small_lens, 64, 64, zoom=0.6)

    def test_output_planes(self, corrector, rgb_image):
        frame = YUV420Frame.from_rgb(rgb_image)
        out = corrector.correct(frame)
        assert out.y.shape == (64, 64)
        assert out.u.shape == (32, 32)

    def test_luma_matches_gray_pipeline(self, corrector, small_sensor,
                                        small_lens, rgb_image):
        """The Y plane must be corrected with the same geometry as a
        grayscale correction of the same view."""
        from repro.core.pipeline import FisheyeCorrector

        frame = YUV420Frame.from_rgb(rgb_image)
        gray = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64,
                                           zoom=0.6)
        out_y = corrector.correct(frame).y
        ref_y = gray.correct(frame.y)
        assert np.abs(out_y.astype(int) - ref_y.astype(int)).max() <= 1

    def test_chroma_geometry_consistent(self, corrector):
        """The chroma map must be the luma map at exactly half scale."""
        lx = corrector.luma_field.map_x
        cx = corrector.chroma_field.map_x
        # luma coordinate of chroma sample (i, j) is 2 * c + 0.5
        sampled = cx * 2.0 + 0.5
        np.testing.assert_allclose(sampled[8, 8], lx[16:18, 16:18].mean(),
                                   atol=0.6)

    def test_neutral_chroma_preserved(self, corrector, small_sensor):
        gray_rgb = np.full((64, 64, 3), 90, dtype=np.uint8)
        out = corrector.correct(YUV420Frame.from_rgb(gray_rgb))
        assert np.abs(out.u.astype(int) - 128).max() <= 1
        assert np.abs(out.v.astype(int) - 128).max() <= 1

    def test_work_pixels_ratio(self, corrector):
        assert corrector.work_pixels() == 64 * 64 + 2 * 32 * 32
        # 1.5x luma, vs 3x for RGB
        assert corrector.work_pixels() / (64 * 64) == pytest.approx(1.5)

    def test_validation(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            YUVCorrector(small_sensor, small_lens, 63, 64)
        with pytest.raises(MappingError):
            YUVCorrector(small_sensor, small_lens, 64, 64, zoom=0.0)

    def test_frame_size_checked(self, corrector):
        bad = YUV420Frame(np.zeros((32, 32), np.uint8),
                          np.zeros((16, 16), np.uint8),
                          np.zeros((16, 16), np.uint8))
        with pytest.raises(MappingError):
            corrector.correct(bad)

    def test_end_to_end_color_scene(self, small_sensor, small_lens):
        """Correct a coloured scene and check hue survives in the centre."""
        rgb = np.zeros((64, 64, 3), dtype=np.uint8)
        rgb[:, :, 0] = 200  # red-dominant scene
        rgb[:, :, 2] = 40
        corrector = YUVCorrector(small_sensor, small_lens, 64, 64, zoom=1.0)
        out = corrector.correct(YUV420Frame.from_rgb(rgb)).to_rgb()
        centre = out[28:36, 28:36].reshape(-1, 3).mean(axis=0)
        assert centre[0] > centre[2] + 50  # still red-dominant
