"""Tests: the persistent-worker shared-memory frame ring."""

import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.pipeline import FisheyeCorrector, StreamStats
from repro.core.remap import RemapLUT
from repro.errors import ScheduleError, StreamError
from repro.core.image import GRAY8, Frame
from repro.obs.telemetry import Telemetry, scoped
from repro.parallel.ring import (
    MAX_RING_DEPTH,
    RING_SCHEDULES,
    RingEngine,
    plan_bands,
    ring_stream,
)

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def lut(small_field):
    return RemapLUT(small_field, method="bilinear")


def _frames(rng, n, shape=(64, 64)):
    return [rng.integers(0, 255, shape, dtype=np.uint8) for _ in range(n)]


class TestPlanBands:
    def test_static_one_band_per_worker(self):
        bands = plan_bands(64, 4, "static")
        assert len(bands) == 4
        assert bands[0] == (0, 16)
        assert bands[-1] == (48, 64)

    def test_dynamic_fixed_chunks_cover_height(self):
        bands = plan_bands(64, 2, "dynamic", chunk=5)
        assert bands[0] == (0, 5)
        assert bands[-1][1] == 64
        rows = sum(r1 - r0 for r0, r1 in bands)
        assert rows == 64

    def test_guided_bands_shrink(self):
        bands = plan_bands(256, 2, "guided", chunk=4)
        sizes = [r1 - r0 for r0, r1 in bands]
        assert sizes == sorted(sizes, reverse=True)
        assert all(s >= 4 for s in sizes[:-1])  # tail clamps to what's left
        assert sum(sizes) == 256

    def test_guided_matches_schedule_formula(self):
        # same shrink rule schedule.simulate replays
        import math
        bands = plan_bands(100, 2, "guided", chunk=1)
        remaining = 100
        for r0, r1 in bands:
            expect = min(max(1, math.ceil(remaining / 4)), remaining)
            assert r1 - r0 == expect
            remaining -= r1 - r0

    def test_validation(self):
        with pytest.raises(ScheduleError):
            plan_bands(0, 2)
        with pytest.raises(ScheduleError):
            plan_bands(64, 0)
        with pytest.raises(ScheduleError):
            plan_bands(64, 2, "cyclic")
        with pytest.raises(ScheduleError):
            plan_bands(64, 2, "dynamic", chunk=0)

    def test_all_schedules_cover_all_rows(self):
        for sched in RING_SCHEDULES:
            bands = plan_bands(97, 3, sched)
            covered = np.zeros(97, dtype=bool)
            for r0, r1 in bands:
                assert not covered[r0:r1].any()  # no overlap
                covered[r0:r1] = True
            assert covered.all()


class TestRingEngine:
    def test_matches_sequential_kernel(self, lut, rng):
        frames = _frames(rng, 8)
        expected = [lut.apply(f) for f in frames]
        with RingEngine(lut, (64, 64), workers=2, depth=3) as engine:
            got = [f.copy() for f in engine.stream(frames)]
        assert len(got) == 8
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_in_order_despite_out_of_order_bands(self, lut, rng):
        """Tiny dynamic chunks scatter each frame's bands across both
        workers, so completion order is effectively arbitrary — the
        consumer must still see strictly increasing sequence numbers."""
        frames = [np.full((64, 64), 10 * k, dtype=np.uint8) for k in range(10)]
        expected = [lut.apply(f) for f in frames]
        with RingEngine(lut, (64, 64), workers=2, depth=4,
                        schedule="dynamic", chunk=3) as engine:
            got = [f.copy() for f in engine.stream(frames)]
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_copy_true_yields_owned_buffers(self, lut, rng):
        frames = _frames(rng, 4)
        with RingEngine(lut, (64, 64), workers=1, depth=2) as engine:
            got = list(engine.stream(frames, copy=True))
        assert len({id(g) for g in got}) == 4
        # all still valid after the engine is closed
        for g in got:
            assert g.shape == lut.out_shape

    def test_frame_objects_pass_through(self, lut, random_image):
        frames = [Frame(random_image, GRAY8, index=i, timestamp=i / 30.0)
                  for i in range(3)]
        with RingEngine(lut, (64, 64), workers=1, depth=2) as engine:
            outs = list(engine.stream(frames, copy=True))
        assert [f.index for f in outs] == [0, 1, 2]
        assert all(isinstance(f, Frame) for f in outs)

    def test_engine_reuse_across_streams(self, lut, rng):
        frames = _frames(rng, 3)
        expected = [lut.apply(f) for f in frames]
        with RingEngine(lut, (64, 64), workers=1, depth=2) as engine:
            first = [f.copy() for f in engine.stream(frames)]
            second = [f.copy() for f in engine.stream(frames)]
        for e, a, b in zip(expected, first, second):
            np.testing.assert_array_equal(e, a)
            np.testing.assert_array_equal(e, b)

    def test_backpressure_bounds_in_flight(self, lut, rng):
        """A slow consumer must not let the producer run ahead of the
        ring: in-flight frames stay <= depth even for a long stream."""
        frames = _frames(rng, 12)
        with RingEngine(lut, (64, 64), workers=2, depth=2,
                        schedule="dynamic", chunk=8) as engine:
            n = 0
            for _ in engine.stream(frames):
                time.sleep(0.01)  # consumer slower than the workers
                n += 1
        assert n == 12
        assert 1 <= engine.max_in_flight <= 2

    def test_generator_source_and_empty_stream(self, lut, rng):
        with RingEngine(lut, (64, 64), workers=1, depth=2) as engine:
            assert list(engine.stream(iter([]))) == []
            frames = _frames(rng, 2)
            got = list(engine.stream((f for f in frames), copy=True))
        assert len(got) == 2

    def test_worker_crash_raises_and_releases_segments(self, lut, rng):
        """SIGKILL a worker mid-stream: the consumer gets a StreamError
        and every shared segment of the ring is unlinked."""
        engine = RingEngine(lut, (64, 64), workers=2, depth=2)
        names = [s.src_shm.name for s in engine._slots]
        names += [s.dst_shm.name for s in engine._slots]

        def source():
            k = 0
            while True:  # endless: only the crash can end this stream
                if k == 2:
                    engine._procs[0].terminate()
                yield np.full((64, 64), k % 251, dtype=np.uint8)
                k += 1

        with pytest.raises(StreamError, match="died with exit code"):
            for _ in engine.stream(source()):
                pass
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_geometry_mismatch_raises(self, lut):
        with RingEngine(lut, (64, 64), workers=1, depth=2) as engine:
            with pytest.raises(ScheduleError, match="geometry"):
                list(engine.stream([np.zeros((10, 10), dtype=np.uint8)]))

    def test_validation(self, lut):
        with pytest.raises(ScheduleError):
            RingEngine(lut, (64, 64), workers=0)
        with pytest.raises(ScheduleError):
            RingEngine(lut, (64, 64), depth=0)
        with pytest.raises(ScheduleError):
            RingEngine(lut, (64, 64), depth=MAX_RING_DEPTH + 1)
        with pytest.raises(ScheduleError):
            RingEngine(lut, (32, 32))  # does not match LUT source

    def test_closed_engine_rejects_streams(self, lut, rng):
        engine = RingEngine(lut, (64, 64), workers=1, depth=2)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ScheduleError, match="closed"):
            list(engine.stream(_frames(rng, 1)))

    def test_abandoned_stream_closes_engine(self, lut, rng):
        engine = RingEngine(lut, (64, 64), workers=1, depth=2)
        stream = engine.stream(_frames(rng, 6))
        next(stream)
        stream.close()  # consumer walks away mid-stream
        assert engine._closed

    @pytest.mark.parametrize("schedule", RING_SCHEDULES)
    def test_every_schedule_is_exact(self, lut, rng, schedule):
        frames = _frames(rng, 4)
        expected = [lut.apply(f) for f in frames]
        with RingEngine(lut, (64, 64), workers=2, depth=2,
                        schedule=schedule) as engine:
            got = [f.copy() for f in engine.stream(frames)]
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_rgb_frames(self, small_field, rng):
        lut = RemapLUT(small_field, method="bilinear")
        frames = [rng.integers(0, 255, (64, 64, 3), dtype=np.uint8)
                  for _ in range(3)]
        expected = [lut.apply(f) for f in frames]
        with RingEngine(lut, (64, 64, 3), workers=2, depth=2) as engine:
            got = [f.copy() for f in engine.stream(frames)]
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_spawn_context(self, lut, rng):
        frames = _frames(rng, 3)
        expected = [lut.apply(f) for f in frames]
        with RingEngine(lut, (64, 64), workers=1, depth=2,
                        context="spawn") as engine:
            got = [f.copy() for f in engine.stream(frames)]
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_telemetry_counters_and_tracks(self, lut, rng):
        frames = _frames(rng, 4)
        tel = Telemetry()
        with scoped(tel):
            with RingEngine(lut, (64, 64), workers=1, depth=2,
                            schedule="dynamic", chunk=16) as engine:
                list(engine.stream(frames, copy=True))
        snap = tel.snapshot()
        assert snap["counters"]["ring.frames"] == 4
        assert snap["counters"]["ring.bands"] == 4 * len(engine.bands)
        assert snap["counters"]["ring.worker.0.busy_seconds"] > 0
        assert snap["gauges"]["ring.depth"] == 2.0
        assert snap["histograms"]["ring.band_seconds"]["count"] == 16
        assert snap["histograms"]["frame.e2e_latency_seconds"]["count"] == 4
        tracks = {s["tid"] for s in tel.spans}
        assert {"ring-decode", "ring-deliver", "ring-worker-0",
                "ring-frames"} <= tracks
        # lineage: every ring span names the frame it belongs to
        for s in tel.spans:
            if s["name"].startswith(("ring.", "frame.")):
                assert "frame_id" in s["args"]


class TestRingStream:
    def test_one_shot_helper(self, lut, rng):
        frames = _frames(rng, 5)
        expected = [lut.apply(f) for f in frames]
        got = list(ring_stream(lut, (f for f in frames), copy=True,
                               workers=2, depth=2))
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_empty_source(self, lut):
        assert list(ring_stream(lut, [])) == []

    def test_corrector_engine_param(self, small_field, rng):
        corrector = FisheyeCorrector(small_field)
        frames = _frames(rng, 4)
        expected = [corrector.correct(f) for f in frames]
        stats = StreamStats()
        got = list(corrector.correct_stream(frames, stats=stats, engine="ring",
                                            workers=1, depth=2, copy=True))
        assert stats.frames == 4
        assert stats.fps > 0
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_corrector_rejects_unknown_engine(self, small_field, rng):
        corrector = FisheyeCorrector(small_field)
        with pytest.raises(ScheduleError, match="unknown stream engine"):
            list(corrector.correct_stream(_frames(rng, 1), engine="warp9"))
        with pytest.raises(ScheduleError, match="takes no options"):
            list(corrector.correct_stream(_frames(rng, 1), depth=2))

    def test_corrected_stream_ring_engine(self, small_field, rng):
        from repro.video.stream import corrected_stream

        lut = RemapLUT(small_field, method="bilinear")
        frames = _frames(rng, 4)
        expected = [lut.apply(f) for f in frames]
        tel = Telemetry()
        with scoped(tel):
            got = list(corrected_stream(frames, small_field, copy=True,
                                        engine="ring", workers=1, depth=2))
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)
        snap = tel.snapshot()
        assert snap["counters"]["stream.frames"] == 4
        assert snap["gauges"]["stream.fps"] > 0
