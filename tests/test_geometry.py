"""Geometry helper tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import geometry
from repro.errors import GeometryError


class TestPixelGrid:
    def test_shapes_and_values(self):
        xs, ys = geometry.pixel_grid(3, 4)
        assert xs.shape == (3, 4) and ys.shape == (3, 4)
        assert xs[0, 2] == 2.0 and ys[2, 0] == 2.0

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            geometry.pixel_grid(0, 5)
        with pytest.raises(GeometryError):
            geometry.pixel_grid(5, -1)

    def test_dtype_respected(self):
        xs, _ = geometry.pixel_grid(2, 2, dtype=np.float32)
        assert xs.dtype == np.float32


class TestPolar:
    def test_roundtrip(self):
        xs = np.array([3.0, -1.0, 0.0])
        ys = np.array([4.0, 2.0, -5.0])
        r, phi = geometry.polar_from_cartesian(xs, ys, cx=1.0, cy=-1.0)
        bx, by = geometry.cartesian_from_polar(r, phi, cx=1.0, cy=-1.0)
        np.testing.assert_allclose(bx, xs, atol=1e-12)
        np.testing.assert_allclose(by, ys, atol=1e-12)

    def test_radius_from_center_matches_hypot(self):
        r = geometry.radius_from_center(3.0, 4.0, 0.0, 0.0)
        assert r == pytest.approx(5.0)


class TestRotation:
    def test_identity(self):
        np.testing.assert_allclose(geometry.rotation_matrix_ypr(), np.eye(3), atol=1e-15)

    def test_orthonormal(self):
        m = geometry.rotation_matrix_ypr(0.3, -0.7, 1.1)
        np.testing.assert_allclose(m @ m.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(m) == pytest.approx(1.0)

    def test_yaw_rotates_forward_to_side(self):
        m = geometry.rotation_matrix_ypr(yaw=np.pi / 2)
        fwd = m @ np.array([0.0, 0.0, 1.0])
        np.testing.assert_allclose(fwd, [1.0, 0.0, 0.0], atol=1e-12)

    def test_pitch_rotates_forward_up(self):
        m = geometry.rotation_matrix_ypr(pitch=np.pi / 2)
        fwd = m @ np.array([0.0, 0.0, 1.0])
        np.testing.assert_allclose(fwd, [0.0, -1.0, 0.0], atol=1e-12)


class TestRays:
    def test_center_pixel_points_forward(self):
        rays = geometry.rays_from_pixels(10.0, 10.0, fx=5.0, fy=5.0, cx=10.0, cy=10.0)
        np.testing.assert_allclose(rays, [0.0, 0.0, 1.0], atol=1e-12)

    def test_unit_length(self):
        xs, ys = geometry.pixel_grid(8, 8)
        rays = geometry.rays_from_pixels(xs, ys, 4.0, 4.0, 3.5, 3.5)
        np.testing.assert_allclose(np.linalg.norm(rays, axis=-1), 1.0, atol=1e-12)

    def test_rejects_nonpositive_focal(self):
        with pytest.raises(GeometryError):
            geometry.rays_from_pixels(0.0, 0.0, fx=0.0, fy=1.0, cx=0, cy=0)

    def test_rejects_bad_rotation_shape(self):
        with pytest.raises(GeometryError):
            geometry.rays_from_pixels(0.0, 0.0, 1.0, 1.0, 0.0, 0.0,
                                      rotation=np.eye(2))

    def test_angles_from_rays_axis(self):
        theta, _ = geometry.angles_from_rays(np.array([0.0, 0.0, 1.0]))
        assert float(theta) == pytest.approx(0.0)

    def test_angles_from_rays_90deg(self):
        theta, phi = geometry.angles_from_rays(np.array([1.0, 0.0, 0.0]))
        assert float(theta) == pytest.approx(np.pi / 2)
        assert float(phi) == pytest.approx(0.0)

    def test_angles_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            geometry.angles_from_rays(np.zeros((4, 2)))


class TestNormalizeRows:
    def test_zero_rows_stay_zero(self):
        out = geometry.normalize_rows(np.zeros((3, 3)))
        np.testing.assert_array_equal(out, 0.0)

    def test_normalizes(self):
        out = geometry.normalize_rows(np.array([[3.0, 4.0, 0.0]]))
        np.testing.assert_allclose(out, [[0.6, 0.8, 0.0]])


@given(yaw=st.floats(-np.pi, np.pi), pitch=st.floats(-1.5, 1.5),
       roll=st.floats(-np.pi, np.pi))
@settings(max_examples=80, deadline=None)
def test_property_rotation_preserves_length(yaw, pitch, roll):
    m = geometry.rotation_matrix_ypr(yaw, pitch, roll)
    v = np.array([0.2, -0.5, 0.7])
    assert np.linalg.norm(m @ v) == pytest.approx(np.linalg.norm(v), rel=1e-10)


@given(x=st.floats(-100, 100), y=st.floats(-100, 100))
@settings(max_examples=80, deadline=None)
def test_property_polar_roundtrip(x, y):
    r, phi = geometry.polar_from_cartesian(x, y)
    bx, by = geometry.cartesian_from_polar(r, phi)
    assert float(bx) == pytest.approx(x, abs=1e-9)
    assert float(by) == pytest.approx(y, abs=1e-9)
