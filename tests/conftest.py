"""Shared fixtures: a small camera rig every test can afford."""

import numpy as np
import pytest

from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from repro.core.lens import EquidistantLens
from repro.core.mapping import perspective_map


SIZE = 64  # canonical tiny frame edge


@pytest.fixture(scope="session")
def small_sensor():
    """64x64 fisheye sensor with a 180-degree inscribed image circle."""
    circle = SIZE / 2.0 - 1.0
    return FisheyeIntrinsics.centered(SIZE, SIZE, focal=circle / (np.pi / 2.0))


@pytest.fixture(scope="session")
def small_lens(small_sensor):
    return EquidistantLens(small_sensor.focal)


@pytest.fixture(scope="session")
def small_out():
    """Perspective output intrinsics matching the small sensor at zoom 0.5."""
    circle = SIZE / 2.0 - 1.0
    focal = circle / (np.pi / 2.0) * 0.5
    return CameraIntrinsics(fx=focal, fy=focal, cx=(SIZE - 1) / 2.0,
                            cy=(SIZE - 1) / 2.0, width=SIZE, height=SIZE)


@pytest.fixture(scope="session")
def small_field(small_sensor, small_lens, small_out):
    """The canonical tiny correction field (fully covered output)."""
    return perspective_map(small_sensor, small_lens, small_out)


@pytest.fixture(scope="session")
def tilted_field(small_sensor, small_lens, small_out):
    """A tilted view with a genuine out-of-FOV region (coverage < 1)."""
    return perspective_map(small_sensor, small_lens, small_out,
                           pitch=np.deg2rad(60.0))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def gradient_image():
    """Smooth deterministic test frame (uint8)."""
    ys, xs = np.indices((SIZE, SIZE), dtype=np.float64)
    return np.clip(np.rint(2.0 * xs + 1.5 * ys), 0, 255).astype(np.uint8)


@pytest.fixture()
def random_image(rng):
    return rng.integers(0, 256, size=(SIZE, SIZE), dtype=np.uint8)


@pytest.fixture()
def rgb_image(rng):
    return rng.integers(0, 256, size=(SIZE, SIZE, 3), dtype=np.uint8)
