"""Colour conversion tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.color import (
    rgb_to_gray,
    rgb_to_yuv,
    subsample_420,
    upsample_420,
    yuv_to_rgb,
)
from repro.errors import ImageFormatError


class TestGray:
    def test_weights_sum_to_one(self):
        white = np.full((2, 2, 3), 255, dtype=np.uint8)
        np.testing.assert_array_equal(rgb_to_gray(white), 255)

    def test_pure_green_heaviest(self):
        def luma(channel):
            img = np.zeros((1, 1, 3), dtype=np.uint8)
            img[..., channel] = 255
            return int(rgb_to_gray(img)[0, 0])
        assert luma(1) > luma(0) > luma(2)

    def test_rejects_gray_input(self):
        with pytest.raises(ImageFormatError):
            rgb_to_gray(np.zeros((4, 4), dtype=np.uint8))


class TestYUVRoundtrip:
    def test_roundtrip_uint8(self, rgb_image):
        yuv = rgb_to_yuv(rgb_image)
        back = yuv_to_rgb(yuv, dtype=np.uint8)
        assert np.abs(back.astype(int) - rgb_image.astype(int)).max() <= 1

    def test_gray_input_has_zero_chroma(self):
        img = np.full((3, 3, 3), 100, dtype=np.uint8)
        yuv = rgb_to_yuv(img)
        np.testing.assert_allclose(yuv[..., 1:], 0.0, atol=1e-9)
        np.testing.assert_allclose(yuv[..., 0], 100.0)

    def test_shape_validation(self):
        with pytest.raises(ImageFormatError):
            rgb_to_yuv(np.zeros((4, 4)))
        with pytest.raises(ImageFormatError):
            yuv_to_rgb(np.zeros((4, 4, 2)))


class TestChroma420:
    def test_subsample_averages(self):
        plane = np.array([[0.0, 4.0], [8.0, 12.0]])
        out = subsample_420(plane)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(6.0)

    def test_rejects_odd_dimensions(self):
        with pytest.raises(ImageFormatError):
            subsample_420(np.zeros((3, 4)))

    def test_up_then_down_is_identity(self, rng):
        small = rng.uniform(0, 255, size=(8, 8))
        np.testing.assert_allclose(subsample_420(upsample_420(small)), small)

    def test_upsample_shape(self):
        out = upsample_420(np.zeros((3, 5)))
        assert out.shape == (6, 10)

    def test_ndim_validation(self):
        with pytest.raises(ImageFormatError):
            upsample_420(np.zeros((2, 2, 2)))


@given(r=st.integers(0, 255), g=st.integers(0, 255), b=st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_property_yuv_roundtrip_every_color(r, g, b):
    img = np.array([[[r, g, b]]], dtype=np.uint8)
    back = yuv_to_rgb(rgb_to_yuv(img), dtype=np.uint8)
    assert np.abs(back.astype(int) - img.astype(int)).max() <= 1
