"""Thread/process executor tests: parallel result == sequential result."""

import numpy as np
import pytest

from repro.core.remap import RemapLUT
from repro.parallel.simd import AVX2, SPU, SSE2, apply_lanewise, simd_speedup
from repro.parallel.threadpool import ThreadedExecutor
from repro.errors import PlatformError, ScheduleError


class TestThreadedExecutor:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_sequential(self, workers, small_field, random_image):
        lut = RemapLUT(small_field, method="bilinear")
        expected = lut.apply(random_image)
        with ThreadedExecutor(workers=workers, bands_per_worker=3) as ex:
            out = ex.run(lut, random_image)
        np.testing.assert_array_equal(out, expected)

    def test_weighted_bands(self, tilted_field, random_image):
        lut = RemapLUT(tilted_field)
        expected = lut.apply(random_image)
        with ThreadedExecutor(workers=2, weighted=True) as ex:
            np.testing.assert_array_equal(ex.run(lut, random_image), expected)

    def test_rgb(self, small_field, rgb_image):
        lut = RemapLUT(small_field)
        with ThreadedExecutor(workers=2) as ex:
            out = ex.run(lut, rgb_image)
        np.testing.assert_array_equal(out, lut.apply(rgb_image))

    def test_out_buffer(self, small_field, random_image):
        lut = RemapLUT(small_field)
        buf = np.empty((64, 64), dtype=np.uint8)
        with ThreadedExecutor(workers=2) as ex:
            out = ex.run(lut, random_image, out=buf)
        assert out is buf

    def test_bad_out_buffer(self, small_field, random_image):
        lut = RemapLUT(small_field)
        with ThreadedExecutor(workers=2) as ex:
            with pytest.raises(ScheduleError):
                ex.run(lut, random_image, out=np.empty((5, 5), dtype=np.uint8))

    def test_close_idempotent(self, small_field):
        ex = ThreadedExecutor(workers=2)
        ex.close()
        ex.close()

    def test_validation(self):
        with pytest.raises(ScheduleError):
            ThreadedExecutor(workers=0)
        with pytest.raises(ScheduleError):
            ThreadedExecutor(bands_per_worker=0)

    def test_streaming_via_corrector(self, small_field, rng):
        from repro.core.pipeline import FisheyeCorrector

        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8) for _ in range(3)]
        seq = FisheyeCorrector(small_field)
        with ThreadedExecutor(workers=2) as ex:
            par = FisheyeCorrector(small_field, executor=ex)
            for f in frames:
                np.testing.assert_array_equal(par.correct(f), seq.correct(f))


class TestProcessExecutor:
    def test_matches_sequential(self, small_field, random_image):
        from repro.parallel.procpool import ProcessExecutor

        lut = RemapLUT(small_field)
        expected = lut.apply(random_image)
        with ProcessExecutor(lut, random_image.shape, np.uint8, workers=2) as ex:
            out = ex.run(lut, random_image)
        np.testing.assert_array_equal(out, expected)

    def test_multiple_frames(self, small_field, rng):
        from repro.parallel.procpool import ProcessExecutor

        lut = RemapLUT(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8) for _ in range(3)]
        with ProcessExecutor(lut, (64, 64), np.uint8, workers=2) as ex:
            for f in frames:
                np.testing.assert_array_equal(ex.run(lut, f), lut.apply(f))

    def test_wrong_lut_rejected(self, small_field, tilted_field, random_image):
        from repro.parallel.procpool import ProcessExecutor

        lut = RemapLUT(small_field)
        other = RemapLUT(tilted_field)
        with ProcessExecutor(lut, (64, 64), np.uint8, workers=1) as ex:
            with pytest.raises(ScheduleError):
                ex.run(other, random_image)

    def test_wrong_frame_rejected(self, small_field):
        from repro.parallel.procpool import ProcessExecutor

        lut = RemapLUT(small_field)
        with ProcessExecutor(lut, (64, 64), np.uint8, workers=1) as ex:
            with pytest.raises(ScheduleError):
                ex.run(lut, np.zeros((64, 64), dtype=np.float32))

    def test_closed_executor_rejects_work(self, small_field, random_image):
        from repro.parallel.procpool import ProcessExecutor

        lut = RemapLUT(small_field)
        ex = ProcessExecutor(lut, (64, 64), np.uint8, workers=1)
        ex.close()
        with pytest.raises(ScheduleError):
            ex.run(lut, random_image)


class TestSharedMemoryExecutor:
    @pytest.mark.parametrize("method", ["nearest", "bilinear", "bicubic"])
    def test_matches_sequential(self, method, small_field, random_image):
        from repro.parallel.procpool import SharedMemoryExecutor

        lut = RemapLUT(small_field, method=method)
        expected = lut.apply(random_image)
        with SharedMemoryExecutor(lut, random_image.shape, np.uint8,
                                  workers=2) as ex:
            out = ex.run(lut, random_image)
        np.testing.assert_array_equal(out, expected)

    def test_matches_threaded(self, tilted_field, random_image):
        from repro.parallel.procpool import SharedMemoryExecutor

        lut = RemapLUT(tilted_field, fill=33.0)
        with ThreadedExecutor(workers=2) as tex:
            want = tex.run(lut, random_image)
        with SharedMemoryExecutor(lut, (64, 64), np.uint8, workers=2) as ex:
            got = ex.run(lut, random_image)
        np.testing.assert_array_equal(got, want)

    def test_rgb_and_out_buffer(self, small_field, rgb_image):
        from repro.parallel.procpool import SharedMemoryExecutor

        lut = RemapLUT(small_field)
        buf = np.empty((64, 64, 3), dtype=np.uint8)
        with SharedMemoryExecutor(lut, rgb_image.shape, np.uint8,
                                  workers=2) as ex:
            out = ex.run(lut, rgb_image, out=buf)
        assert out is buf
        np.testing.assert_array_equal(buf, lut.apply(rgb_image))

    def test_multiple_frames_reuse_segments(self, small_field, rng):
        from repro.parallel.procpool import SharedMemoryExecutor

        lut = RemapLUT(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8)
                  for _ in range(3)]
        with SharedMemoryExecutor(lut, (64, 64), np.uint8, workers=2) as ex:
            for f in frames:
                np.testing.assert_array_equal(ex.run(lut, f), lut.apply(f))

    def test_spawn_context(self, small_field, random_image):
        from repro.parallel.procpool import SharedMemoryExecutor

        lut = RemapLUT(small_field)
        with SharedMemoryExecutor(lut, (64, 64), np.uint8, workers=1,
                                  context="spawn") as ex:
            out = ex.run(lut, random_image)
        np.testing.assert_array_equal(out, lut.apply(random_image))

    def test_close_idempotent_and_rejects_work(self, small_field, random_image):
        from repro.parallel.procpool import SharedMemoryExecutor

        lut = RemapLUT(small_field)
        ex = SharedMemoryExecutor(lut, (64, 64), np.uint8, workers=1)
        ex.close()
        ex.close()
        with pytest.raises(ScheduleError):
            ex.run(lut, random_image)


class TestSIMDModel:
    def test_lanewise_matches_whole_array(self):
        values = np.linspace(0, 10, 37)
        for lanes in (1, 4, 8):
            out = apply_lanewise(np.sin, values, lanes)
            np.testing.assert_allclose(out, np.sin(values), rtol=1e-12)

    def test_lanewise_empty(self):
        out = apply_lanewise(lambda x: x * 2, np.array([]), 4)
        assert out.size == 0

    def test_lanewise_validation(self):
        with pytest.raises(PlatformError):
            apply_lanewise(np.sin, np.zeros(4), 0)
        with pytest.raises(PlatformError):
            apply_lanewise(np.sin, np.zeros((2, 2)), 4)

    def test_gather_limits_speedup(self):
        # with gathers, a gather-less ISA cannot reach its lane count
        s = simd_speedup(SSE2, arith_ops=11.0, gather_ops=4.0)
        assert 1.0 < s < SSE2.lanes

    def test_hardware_gather_helps(self):
        no_gather = simd_speedup(SSE2, 11.0, 4.0)
        hw_gather = simd_speedup(AVX2, 11.0, 4.0)
        assert hw_gather > no_gather

    def test_pure_arithmetic_reaches_lanes(self):
        s = simd_speedup(SSE2, arith_ops=100.0, gather_ops=0.0)
        assert s == pytest.approx(SSE2.lanes, rel=0.01)

    def test_fma_counts(self):
        assert simd_speedup(SPU, 20.0, 0.0) > simd_speedup(SSE2, 20.0, 0.0)

    def test_zero_ops_neutral(self):
        assert simd_speedup(SSE2, 0.0, 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(PlatformError):
            simd_speedup(SSE2, -1.0, 0.0)
