"""Lens model tests: forward/inverse consistency, domains, registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lens import (
    LENS_MODELS,
    EquidistantLens,
    EquisolidLens,
    OrthographicLens,
    PerspectiveLens,
    StereographicLens,
    make_lens,
)
from repro.errors import LensModelError

ALL_MODELS = [EquidistantLens, EquisolidLens, OrthographicLens,
              StereographicLens, PerspectiveLens]


@pytest.mark.parametrize("cls", ALL_MODELS)
class TestCommonProperties:
    def test_zero_angle_maps_to_zero_radius(self, cls):
        lens = cls(100.0)
        assert lens.angle_to_radius(0.0) == pytest.approx(0.0)

    def test_zero_radius_maps_to_zero_angle(self, cls):
        lens = cls(100.0)
        assert lens.radius_to_angle(0.0) == pytest.approx(0.0)

    def test_roundtrip_inside_domain(self, cls):
        lens = cls(123.0)
        theta = np.linspace(0.01, min(lens.max_theta * 0.95, np.pi / 2 * 0.95), 50)
        r = lens.angle_to_radius(theta)
        back = lens.radius_to_angle(r)
        np.testing.assert_allclose(back, theta, rtol=1e-10, atol=1e-12)

    def test_monotonic_in_domain(self, cls):
        lens = cls(77.0)
        theta = np.linspace(0.0, min(lens.max_theta * 0.99, 1.5), 200)
        r = np.asarray(lens.angle_to_radius(theta))
        assert np.all(np.diff(r) > 0)

    def test_small_angle_behaviour_matches_focal(self, cls):
        # all models share r ~ f * theta near the axis
        lens = cls(200.0)
        theta = 1e-6
        assert lens.angle_to_radius(theta) == pytest.approx(200.0 * theta, rel=1e-4)

    def test_out_of_domain_angle_gives_nan(self, cls):
        lens = cls(50.0)
        assert np.isnan(lens.angle_to_radius(lens.max_theta + 0.2)) or \
            lens.max_theta >= np.pi

    def test_negative_angle_gives_nan(self, cls):
        lens = cls(50.0)
        assert np.isnan(lens.angle_to_radius(-0.1))

    def test_negative_radius_gives_nan(self, cls):
        lens = cls(50.0)
        assert np.isnan(lens.radius_to_angle(-1.0))

    def test_focal_must_be_positive(self, cls):
        with pytest.raises(LensModelError):
            cls(0.0)
        with pytest.raises(LensModelError):
            cls(-3.0)

    def test_scalar_and_array_agree(self, cls):
        lens = cls(64.0)
        thetas = np.array([0.1, 0.5, 1.0])
        arr = np.asarray(lens.angle_to_radius(thetas))
        for i, t in enumerate(thetas):
            assert arr[i] == pytest.approx(float(lens.angle_to_radius(t)))

    def test_magnification_positive_near_axis(self, cls):
        lens = cls(90.0)
        assert float(lens.magnification(0.1)) > 0

    def test_repr_mentions_focal(self, cls):
        assert "focal" in repr(cls(12.0))


class TestSpecificValues:
    def test_equidistant_linear(self):
        lens = EquidistantLens(100.0)
        assert lens.angle_to_radius(np.pi / 4) == pytest.approx(100.0 * np.pi / 4)
        assert lens.angle_to_radius(np.pi / 2) == pytest.approx(100.0 * np.pi / 2)

    def test_equisolid_at_90deg(self):
        lens = EquisolidLens(100.0)
        assert lens.angle_to_radius(np.pi / 2) == pytest.approx(
            2 * 100.0 * np.sin(np.pi / 4))

    def test_orthographic_saturates_at_focal(self):
        lens = OrthographicLens(100.0)
        assert lens.angle_to_radius(np.pi / 2) == pytest.approx(100.0)
        assert lens.max_theta == pytest.approx(np.pi / 2)

    def test_stereographic_at_90deg(self):
        lens = StereographicLens(100.0)
        assert lens.angle_to_radius(np.pi / 2) == pytest.approx(200.0 * np.tan(np.pi / 4))

    def test_perspective_tan(self):
        lens = PerspectiveLens(100.0)
        assert lens.angle_to_radius(np.pi / 4) == pytest.approx(100.0)

    def test_perspective_domain_excludes_90deg(self):
        lens = PerspectiveLens(100.0)
        assert np.isnan(lens.angle_to_radius(np.pi / 2))

    def test_compression_ordering_at_wide_angle(self):
        # at 90 deg: orthographic <= equisolid <= equidistant <= stereographic
        f = 100.0
        theta = np.pi / 2 * 0.999
        radii = [OrthographicLens(f).angle_to_radius(theta),
                 EquisolidLens(f).angle_to_radius(theta),
                 EquidistantLens(f).angle_to_radius(theta),
                 StereographicLens(f).angle_to_radius(theta)]
        radii = [float(r) for r in radii]
        assert radii == sorted(radii)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in LENS_MODELS:
            lens = make_lens(name, 42.0)
            assert lens.name == name
            assert lens.focal == 42.0

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(LensModelError, match="equidistant"):
            make_lens("bogus", 10.0)

    def test_registry_covers_five_families(self):
        assert len(LENS_MODELS) == 5


@given(theta=st.floats(min_value=1e-4, max_value=np.pi / 2 - 1e-3),
       focal=st.floats(min_value=1.0, max_value=1e4))
@settings(max_examples=100, deadline=None)
def test_property_roundtrip_all_models(theta, focal):
    """f^-1(f(theta)) == theta for every family, any focal."""
    for name in LENS_MODELS:
        lens = make_lens(name, focal)
        if theta >= lens.max_theta:
            continue
        r = float(lens.angle_to_radius(theta))
        assert np.isfinite(r)
        assert float(lens.radius_to_angle(r)) == pytest.approx(theta, rel=1e-8, abs=1e-10)


@given(focal=st.floats(min_value=0.5, max_value=1e3),
       a=st.floats(min_value=1e-3, max_value=1.4),
       b=st.floats(min_value=1e-3, max_value=1.4))
@settings(max_examples=100, deadline=None)
def test_property_monotone_pairs(focal, a, b):
    """theta_1 < theta_2 implies r_1 < r_2 (strict monotonicity)."""
    lo, hi = sorted((a, b))
    if hi - lo < 1e-9:
        return
    for name in LENS_MODELS:
        lens = make_lens(name, focal)
        if hi >= lens.max_theta:
            continue
        assert float(lens.angle_to_radius(lo)) < float(lens.angle_to_radius(hi))
