"""Kernel cost descriptors and Workload measurement tests."""

import numpy as np
import pytest

from repro.accel.kernels import MODES, TRANSCENDENTAL_FLOPS, kernel_spec
from repro.accel.platform import STANDARD_RESOLUTIONS, PerfReport, Workload
from repro.core.mapping import identity_map
from repro.errors import PlatformError


class TestKernelSpec:
    def test_lut_cheaper_flops_than_otf(self):
        for method in ("nearest", "bilinear", "bicubic"):
            lut = kernel_spec(method, "lut")
            otf = kernel_spec(method, "otf")
            assert lut.flops < otf.flops
            assert lut.lut_bytes > 0
            assert otf.lut_bytes == 0.0

    def test_otf_includes_transcendentals(self):
        spec = kernel_spec("nearest", "otf")
        assert spec.flops > 3 * TRANSCENDENTAL_FLOPS

    def test_taps_follow_method(self):
        assert kernel_spec("nearest").taps == 1
        assert kernel_spec("bilinear").taps == 4
        assert kernel_spec("bicubic").taps == 16

    def test_src_bytes_scale_with_pixel_size(self):
        one = kernel_spec("bilinear", pixel_bytes=1)
        three = kernel_spec("bilinear", pixel_bytes=3)
        assert three.src_bytes == 3 * one.src_bytes
        assert three.out_bytes == 3 * one.out_bytes

    def test_lut_entry_override(self):
        spec = kernel_spec("bilinear", "lut", lut_entry_bytes=25.0)
        assert spec.lut_bytes == 25.0

    def test_arithmetic_intensity_orders(self):
        lut = kernel_spec("bilinear", "lut")
        otf = kernel_spec("bilinear", "otf")
        assert otf.arithmetic_intensity > lut.arithmetic_intensity

    def test_validation(self):
        with pytest.raises(PlatformError):
            kernel_spec("area")
        with pytest.raises(PlatformError):
            kernel_spec("bilinear", "jit")
        with pytest.raises(PlatformError):
            kernel_spec("bilinear", pixel_bytes=0)


class TestWorkload:
    def test_from_field_measures_geometry(self, small_field):
        w = Workload.from_field(small_field)
        assert w.pixels == 64 * 64
        assert w.coverage == pytest.approx(1.0)
        assert 0.0 < w.source_footprint <= 1.0

    def test_tilted_coverage_measured(self, tilted_field):
        w = Workload.from_field(tilted_field)
        assert w.coverage == pytest.approx(tilted_field.coverage())

    def test_identity_footprint_full(self):
        w = Workload.from_field(identity_map(32, 32))
        assert w.source_footprint == pytest.approx(1.0)

    def test_identity_gathers_coalesced(self):
        w = Workload.from_field(identity_map(32, 32))
        assert w.gather_lines_per_warp <= 2.0

    def test_defaults_without_field(self):
        w = Workload(out_width=64, out_height=64, src_width=64, src_height=64,
                     spec=kernel_spec())
        assert w.coverage == 1.0
        assert w.source_footprint == pytest.approx(0.6)

    def test_frame_byte_accounting(self, small_field):
        w = Workload.from_field(small_field, method="bilinear", mode="lut")
        assert w.frame_out_bytes() == 64 * 64
        assert w.frame_lut_bytes() == 64 * 64 * w.spec.lut_bytes
        assert w.frame_src_bytes(reuse=True) <= w.frame_src_bytes(reuse=False)

    def test_field_shape_mismatch_rejected(self, small_field):
        with pytest.raises(PlatformError):
            Workload(out_width=32, out_height=32, src_width=64, src_height=64,
                     spec=kernel_spec(), field=small_field)

    def test_size_validation(self):
        with pytest.raises(PlatformError):
            Workload(out_width=0, out_height=4, src_width=4, src_height=4,
                     spec=kernel_spec())

    def test_flops_scale_with_coverage(self, small_field, tilted_field):
        full = Workload.from_field(small_field)
        tilted = Workload.from_field(tilted_field)
        assert tilted.frame_flops() < full.frame_flops()


class TestPerfReport:
    def _report(self, frame_ns):
        w = Workload(out_width=100, out_height=100, src_width=100, src_height=100,
                     spec=kernel_spec())
        return PerfReport(platform="x", workload=w, frame_ns=frame_ns)

    def test_fps(self):
        assert self._report(1_000_000).fps == pytest.approx(1000.0)

    def test_mpixels(self):
        rep = self._report(1_000_000_000)  # 1 s/frame
        assert rep.mpixels_per_s == pytest.approx(0.01)

    def test_speedup_over(self):
        fast = self._report(1_000)
        slow = self._report(10_000)
        assert fast.speedup_over(slow) == pytest.approx(10.0)


class TestStandardResolutions:
    def test_catalogue(self):
        assert STANDARD_RESOLUTIONS["VGA"] == (640, 480)
        assert STANDARD_RESOLUTIONS["1080p"] == (1920, 1080)
        assert len(STANDARD_RESOLUTIONS) == 5
