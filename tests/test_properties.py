"""Cross-module property-based tests (hypothesis).

These pin down invariants that hold *across* subsystem boundaries —
the contracts the platform models and executors rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from repro.core.lens import EquidistantLens, make_lens
from repro.core.mapping import RemapField, perspective_map
from repro.core.remap import RemapLUT, remap


SIZE = 32


def _rig(zoom=0.5):
    circle = SIZE / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SIZE, SIZE, focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)
    out = CameraIntrinsics(fx=sensor.focal * zoom, fy=sensor.focal * zoom,
                           cx=(SIZE - 1) / 2.0, cy=(SIZE - 1) / 2.0,
                           width=SIZE, height=SIZE)
    return sensor, lens, out


@st.composite
def random_affine_field(draw):
    """A random affine backward map into a 32x32 source (always valid)."""
    scale = draw(st.floats(0.3, 1.5))
    angle = draw(st.floats(-0.5, 0.5))
    ys, xs = np.indices((SIZE, SIZE), dtype=np.float64)
    cx = cy = (SIZE - 1) / 2.0
    ca, sa = np.cos(angle), np.sin(angle)
    mx = cx + scale * (ca * (xs - cx) - sa * (ys - cy))
    my = cy + scale * (sa * (xs - cx) + ca * (ys - cy))
    return RemapField(mx, my, SIZE, SIZE)


class TestLUTLinearity:
    @given(field=random_affine_field(), a=st.floats(-2.0, 2.0),
           b=st.floats(-2.0, 2.0), seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_lut_apply_is_linear_on_float_frames(self, field, a, b, seed):
        """apply(aX + bY) == a apply(X) + b apply(Y) (fill = 0)."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(SIZE, SIZE)).astype(np.float32)
        Y = rng.normal(size=(SIZE, SIZE)).astype(np.float32)
        lut = RemapLUT(field, method="bilinear", fill=0.0)
        lhs = lut.apply((a * X + b * Y).astype(np.float32))
        rhs = a * lut.apply(X) + b * lut.apply(Y)
        np.testing.assert_allclose(lhs, rhs, atol=2e-4)

    @given(field=random_affine_field(), shift=st.floats(-50, 50),
           seed=st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_constant_shift_commutes_inside_valid_region(self, field, shift, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(SIZE, SIZE)).astype(np.float32)
        lut = RemapLUT(field, method="bilinear", fill=0.0)
        mask = field.valid_mask()
        lhs = lut.apply((X + np.float32(shift)).astype(np.float32))
        rhs = lut.apply(X) + np.float32(shift)
        np.testing.assert_allclose(lhs[mask], rhs[mask], atol=2e-3)


class TestLUTvsOnTheFly:
    @given(field=random_affine_field(), seed=st.integers(0, 99),
           method=st.sampled_from(["nearest", "bilinear", "bicubic"]))
    @settings(max_examples=40, deadline=None)
    def test_lut_equals_direct_remap(self, field, seed, method):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, size=(SIZE, SIZE), dtype=np.uint8)
        via_lut = RemapLUT(field, method=method).apply(img)
        direct = remap(img, field, method=method)
        np.testing.assert_allclose(via_lut.astype(int), direct.astype(int),
                                   atol=1)


class TestGeometryMonotonicity:
    @given(z1=st.floats(0.3, 3.0), z2=st.floats(0.3, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_wider_zoom_samples_wider(self, z1, z2):
        """Smaller zoom (wider view) reaches at least as far into the
        fisheye periphery."""
        lo, hi = sorted((z1, z2))
        if hi - lo < 1e-3:
            return
        sensor, lens, _ = _rig()

        def max_radius(zoom):
            _, _, out = _rig(zoom)
            f = perspective_map(sensor, lens, out)
            r = np.hypot(f.map_x - sensor.cx, f.map_y - sensor.cy)
            return float(np.nanmax(r))

        assert max_radius(lo) >= max_radius(hi) - 1e-9

    @given(focal=st.floats(5.0, 500.0),
           name=st.sampled_from(["equidistant", "equisolid", "stereographic"]))
    @settings(max_examples=40, deadline=None)
    def test_center_magnification_equals_focal(self, focal, name):
        """dr/dtheta at 0 == f for every family — the invariant the
        zoom semantics of FisheyeCorrector rest on."""
        lens = make_lens(name, focal)
        assert float(lens.magnification(1e-4)) == pytest.approx(focal, rel=1e-3)


class TestPipelineModelInvariants:
    @given(times=st.lists(st.integers(1, 10_000_000), min_size=1, max_size=6),
           shared=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_utilization_and_bounds(self, times, shared):
        from repro.accel.hetero import PipelineModel, Stage

        stages = [
            Stage(f"s{i}", t, "res" if shared else f"res{i}")
            for i, t in enumerate(times)
        ]
        pipe = PipelineModel(stages)
        util = pipe.utilization()
        assert util[pipe.bottleneck] == pytest.approx(1.0)
        assert all(u <= 1.0 + 1e-12 for u in util.values())
        assert pipe.latency_ns >= pipe.interval_ns
        assert pipe.frames_in_flight >= 1
        if shared:
            assert pipe.interval_ns == sum(times)
        else:
            assert pipe.interval_ns == max(times)


class TestEnergyInvariants:
    @given(threads=st.integers(1, 16), res=st.sampled_from(["VGA", "720p"]))
    @settings(max_examples=20, deadline=None)
    def test_average_power_within_envelope(self, threads, res):
        from repro.accel.energy import POWER_SPECS, energy_report
        from repro.accel.presets import xeon_modern
        from repro.bench.harness import standard_workload

        smp = xeon_modern()
        rep = smp.estimate_frame(standard_workload(res, mode="otf"),
                                 threads=threads)
        e = energy_report(rep)
        spec = POWER_SPECS["xeon16"]
        assert spec.idle_w - 1e-9 <= e.watts_average <= spec.active_w + 1e-9


class TestComposedViewsInvariant:
    @given(split=st.integers(8, 24), seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_mosaic_panes_independent(self, split, seed):
        """Correcting a mosaic == correcting each pane separately."""
        from repro.core.multiview import ViewSpec, compose_views

        sensor, lens, _ = _rig()
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, size=(SIZE, SIZE), dtype=np.uint8)
        views = [ViewSpec(0, 0, split, SIZE, zoom=0.5),
                 ViewSpec(split, 0, SIZE - split, SIZE, zoom=1.0, pitch=0.3)]
        whole = RemapLUT(compose_views(sensor, lens, views, SIZE, SIZE)).apply(img)
        left = RemapLUT(compose_views(sensor, lens,
                                      [ViewSpec(0, 0, split, SIZE, zoom=0.5)],
                                      split, SIZE)).apply(img)
        np.testing.assert_array_equal(whole[:, :split], left)
