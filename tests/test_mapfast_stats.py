"""Tests: radial-LUT map builder and robust timing statistics."""

import numpy as np
import pytest

from repro.core.intrinsics import CameraIntrinsics
from repro.core.mapfast import RadialProfile, radial_perspective_map
from repro.core.mapping import perspective_map
from repro.bench.stats import repeat_timing, robust_summary
from repro.errors import BenchmarkError, MappingError


class TestRadialProfile:
    def test_center_scale_is_focal_ratio(self, small_lens):
        profile = RadialProfile(small_lens, out_focal=small_lens.focal * 0.5,
                                max_radius=40.0)
        assert profile.scale[0] == pytest.approx(2.0)

    def test_evaluate_matches_direct_computation(self, small_lens):
        f_out = small_lens.focal * 0.7
        profile = RadialProfile(small_lens, f_out, max_radius=40.0, samples=2048)
        r_p = np.array([3.0, 11.0, 27.5])
        expected = np.asarray(small_lens.angle_to_radius(np.arctan(r_p / f_out))) / r_p
        np.testing.assert_allclose(profile.evaluate(r_p), expected, rtol=1e-5)

    def test_beyond_table_is_nan(self, small_lens):
        profile = RadialProfile(small_lens, 10.0, max_radius=20.0)
        assert np.isnan(profile.evaluate(np.array([25.0]))).all()

    def test_beyond_fov_is_nan(self):
        # a lens whose domain ends below 90 deg (Brown-Conrady adapter at
        # 60 deg): output radii needing wider angles have no source
        from repro.core.brown_conrady import BrownConrady, BrownConradyLens

        lens = BrownConradyLens(10.0, BrownConrady(),
                                max_theta=np.deg2rad(60.0))
        f_out = 10.0
        profile = RadialProfile(lens, out_focal=f_out, max_radius=100.0,
                                samples=512)
        r_beyond = f_out * np.tan(np.deg2rad(75.0))
        r_inside = f_out * np.tan(np.deg2rad(40.0))
        assert np.isnan(profile.evaluate(np.array([r_beyond]))).all()
        assert np.isfinite(profile.evaluate(np.array([r_inside]))).all()

    def test_validation(self, small_lens):
        with pytest.raises(MappingError):
            RadialProfile(small_lens, 0.0, 10.0)
        with pytest.raises(MappingError):
            RadialProfile(small_lens, 5.0, -1.0)
        with pytest.raises(MappingError):
            RadialProfile(small_lens, 5.0, 10.0, samples=1)


class TestRadialPerspectiveMap:
    def test_matches_exact_builder(self, small_sensor, small_lens, small_out):
        exact = perspective_map(small_sensor, small_lens, small_out)
        approx = radial_perspective_map(small_sensor, small_lens, small_out,
                                        samples=2048)
        mask = exact.valid_mask() & approx.valid_mask()
        err = np.hypot(approx.map_x - exact.map_x, approx.map_y - exact.map_y)
        assert float(np.nanmax(err[mask])) < 0.01

    def test_error_shrinks_with_samples(self, small_sensor, small_lens, small_out):
        exact = perspective_map(small_sensor, small_lens, small_out)
        errs = []
        for n in (8, 64, 512):
            approx = radial_perspective_map(small_sensor, small_lens, small_out,
                                            samples=n)
            err = np.hypot(approx.map_x - exact.map_x, approx.map_y - exact.map_y)
            errs.append(float(np.nanmax(err[exact.valid_mask()])))
        assert errs[0] > errs[1] > errs[2] or errs[2] < 1e-9

    def test_corrected_frames_agree(self, small_sensor, small_lens, small_out,
                                    random_image):
        from repro.core.remap import RemapLUT

        exact = perspective_map(small_sensor, small_lens, small_out)
        approx = radial_perspective_map(small_sensor, small_lens, small_out)
        a = RemapLUT(exact).apply(random_image)
        b = RemapLUT(approx).apply(random_image)
        assert np.abs(a.astype(int) - b.astype(int)).max() <= 1

    def test_rejects_anisotropic_pixels(self, small_sensor, small_lens):
        out = CameraIntrinsics(fx=40.0, fy=41.0, cx=31.5, cy=31.5,
                               width=64, height=64)
        with pytest.raises(MappingError):
            radial_perspective_map(small_sensor, small_lens, out)

    def test_rejects_skew(self, small_sensor, small_lens):
        out = CameraIntrinsics(fx=40.0, fy=40.0, cx=31.5, cy=31.5,
                               width=64, height=64, skew=0.1)
        with pytest.raises(MappingError):
            radial_perspective_map(small_sensor, small_lens, out)


class TestRepeatTiming:
    def test_collects_samples(self):
        samples = repeat_timing(lambda: None, repeats=5, warmup=1)
        assert samples.shape == (5,)
        assert (samples >= 0).all()

    def test_warmup_runs_executed(self):
        calls = []
        repeat_timing(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            repeat_timing(lambda: None, repeats=0)
        with pytest.raises(BenchmarkError):
            repeat_timing(lambda: None, warmup=-1)


class TestRobustSummary:
    def test_median_and_mad(self):
        s = robust_summary([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.median == pytest.approx(3.0)
        assert s.mad == pytest.approx(1.0)

    def test_ci_brackets_median_for_tight_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 0.1, size=50)
        s = robust_summary(data)
        assert s.ci_low <= s.median <= s.ci_high
        assert s.ci_high - s.ci_low < 0.2

    def test_outlier_insensitive(self):
        clean = robust_summary([1.0] * 20)
        dirty = robust_summary([1.0] * 19 + [1000.0])
        assert dirty.median == pytest.approx(clean.median)

    def test_deterministic_bootstrap(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = robust_summary(data, seed=42)
        b = robust_summary(data, seed=42)
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_format(self):
        s = robust_summary([0.001, 0.002, 0.003])
        assert "ms" in s.format_ms()

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            robust_summary([])
        with pytest.raises(BenchmarkError):
            robust_summary([1.0], confidence=0.3)
        with pytest.raises(BenchmarkError):
            robust_summary([1.0], bootstrap=5)
