"""Point-level distortion API tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import perspective_map
from repro.core.points import distort_points, undistort_points
from repro.errors import GeometryError


class TestDistortPoints:
    def test_agrees_with_map_on_grid(self, small_sensor, small_lens, small_out):
        field = perspective_map(small_sensor, small_lens, small_out)
        xs, ys = np.meshgrid(np.arange(0, 64, 7, dtype=float),
                             np.arange(0, 64, 7, dtype=float))
        px, py = distort_points(xs, ys, small_sensor, small_lens, small_out)
        np.testing.assert_allclose(px, field.map_x[::7, ::7], atol=1e-9)
        np.testing.assert_allclose(py, field.map_y[::7, ::7], atol=1e-9)

    def test_agrees_with_tilted_map(self, small_sensor, small_lens, small_out):
        pitch = np.deg2rad(30.0)
        field = perspective_map(small_sensor, small_lens, small_out, pitch=pitch)
        xs = np.array([5.0, 32.0, 60.0])
        ys = np.array([10.0, 32.0, 50.0])
        px, py = distort_points(xs, ys, small_sensor, small_lens, small_out,
                                pitch=pitch)
        for k in range(3):
            assert px[k] == pytest.approx(field.map_x[int(ys[k]), int(xs[k])], abs=1e-9)

    def test_shape_mismatch(self, small_sensor, small_lens, small_out):
        with pytest.raises(GeometryError):
            distort_points(np.zeros(3), np.zeros(4), small_sensor, small_lens,
                           small_out)


class TestUndistortPoints:
    def test_center_fixed_point(self, small_sensor, small_lens, small_out):
        xp, yp = undistort_points(small_sensor.cx, small_sensor.cy,
                                  small_sensor, small_lens, small_out)
        assert float(xp) == pytest.approx(small_out.cx, abs=1e-9)
        assert float(yp) == pytest.approx(small_out.cy, abs=1e-9)

    def test_rim_point_beyond_perspective_is_nan(self, small_sensor, small_lens,
                                                 small_out):
        # a point at exactly 90 deg field angle has no perspective image
        r90 = float(small_lens.angle_to_radius(np.pi / 2.0))
        xp, yp = undistort_points(small_sensor.cx + r90, small_sensor.cy,
                                  small_sensor, small_lens, small_out)
        assert np.isnan(xp) and np.isnan(yp)

    def test_radius_beyond_lens_is_nan(self, small_sensor, small_out):
        from repro.core.lens import OrthographicLens

        lens = OrthographicLens(20.0)
        xp, _ = undistort_points(small_sensor.cx + 25.0, small_sensor.cy,
                                 small_sensor, lens, small_out)
        assert np.isnan(xp)


class TestRoundTrip:
    def test_undistort_inverts_distort(self, small_sensor, small_lens, small_out):
        rng = np.random.default_rng(7)
        xs = rng.uniform(5, 59, size=50)
        ys = rng.uniform(5, 59, size=50)
        sx, sy = distort_points(xs, ys, small_sensor, small_lens, small_out)
        bx, by = undistort_points(sx, sy, small_sensor, small_lens, small_out)
        np.testing.assert_allclose(bx, xs, atol=1e-8)
        np.testing.assert_allclose(by, ys, atol=1e-8)

    def test_roundtrip_with_rotation(self, small_sensor, small_lens, small_out):
        rng = np.random.default_rng(8)
        xs = rng.uniform(10, 54, size=20)
        ys = rng.uniform(10, 54, size=20)
        view = dict(yaw=np.deg2rad(25.0), pitch=np.deg2rad(-15.0),
                    roll=np.deg2rad(10.0))
        sx, sy = distort_points(xs, ys, small_sensor, small_lens, small_out, **view)
        bx, by = undistort_points(sx, sy, small_sensor, small_lens, small_out, **view)
        np.testing.assert_allclose(bx, xs, atol=1e-8)
        np.testing.assert_allclose(by, ys, atol=1e-8)


@given(x=st.floats(2, 62), y=st.floats(2, 62),
       yaw=st.floats(-0.5, 0.5), pitch=st.floats(-0.5, 0.5))
@settings(max_examples=60, deadline=None)
def test_property_point_roundtrip(x, y, yaw, pitch):
    """distort -> undistort is identity for every in-view point."""
    from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
    from repro.core.lens import EquidistantLens

    size = 64
    circle = size / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(size, size, focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)
    out = CameraIntrinsics(fx=sensor.focal * 0.5, fy=sensor.focal * 0.5,
                           cx=31.5, cy=31.5, width=size, height=size)
    sx, sy = distort_points(np.array([x]), np.array([y]), sensor, lens, out,
                            yaw=yaw, pitch=pitch)
    if not (np.isfinite(sx).all() and np.isfinite(sy).all()):
        return
    bx, by = undistort_points(sx, sy, sensor, lens, out, yaw=yaw, pitch=pitch)
    assert bx[0] == pytest.approx(x, abs=1e-6)
    assert by[0] == pytest.approx(y, abs=1e-6)
