"""Core telemetry registry: metrics, spans, scoping, merge semantics."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.obs.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    NullTelemetry,
    Telemetry,
    disable,
    enable,
    get_telemetry,
    histogram_quantile,
    scoped,
    set_telemetry,
    emit_phase_spans,
)

pytestmark = pytest.mark.tier1


@pytest.fixture(autouse=True)
def _null_registry():
    """Every test starts and ends with the disabled global registry."""
    disable()
    yield
    disable()


class TestCounterGauge:
    def test_counter_increments(self):
        tel = Telemetry()
        tel.counter("a").inc()
        tel.counter("a").inc(4)
        assert tel.snapshot()["counters"]["a"] == 5

    def test_counter_rejects_negative(self):
        tel = Telemetry()
        with pytest.raises(TelemetryError):
            tel.counter("a").inc(-1)

    def test_counter_is_get_or_create(self):
        tel = Telemetry()
        assert tel.counter("x") is tel.counter("x")

    def test_gauge_last_write_wins(self):
        tel = Telemetry()
        tel.gauge("fps").set(24)
        tel.gauge("fps").set(30.5)
        assert tel.snapshot()["gauges"]["fps"] == 30.5

    def test_thread_safety(self):
        tel = Telemetry()

        def worker():
            for _ in range(1000):
                tel.counter("n").inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counter("n").value == 4000


class TestHistogram:
    def test_bucket_edges_inclusive(self):
        tel = Telemetry()
        h = tel.histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # == first bound -> first bucket (inclusive)
        h.observe(1.5)   # -> second bucket
        h.observe(2.0)   # == second bound -> second bucket
        h.observe(4.0)   # == last bound -> third bucket
        h.observe(4.01)  # -> overflow
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(1.0 + 1.5 + 2.0 + 4.0 + 4.01)

    def test_default_buckets(self):
        tel = Telemetry()
        h = tel.histogram("lat")
        assert h.bounds == DEFAULT_LATENCY_BUCKETS
        assert len(h.counts) == len(DEFAULT_LATENCY_BUCKETS) + 1

    def test_rejects_bad_bounds(self):
        tel = Telemetry()
        with pytest.raises(TelemetryError):
            tel.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(TelemetryError):
            tel.histogram("flat", buckets=(1.0, 1.0))


class TestSpans:
    def test_nesting_depth_and_order(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("inner"):
                pass
        spans = tel.spans
        # children are recorded on exit, i.e. before their parent
        assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # the parent's interval contains the children's
        outer = spans[-1]
        for inner in spans[:-1]:
            assert inner["ts"] >= outer["ts"] - 1e-6
            assert inner["dur"] <= outer["dur"] + 1e-6

    def test_span_args_recorded(self):
        tel = Telemetry()
        with tel.span("f", cat="exec", bands=4):
            pass
        s = tel.spans[0]
        assert s["cat"] == "exec"
        assert s["args"] == {"bands": 4}

    def test_span_total_sums_by_name(self):
        tel = Telemetry(pid=1)
        tel.add_span("a", 0.0, 0.25)
        tel.add_span("a", 1.0, 0.5)
        tel.add_span("b", 0.0, 9.0)
        assert tel.span_total("a") == pytest.approx(0.75)

    def test_timed_decorator(self):
        tel = Telemetry()

        @tel.timed("work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert [s["name"] for s in tel.spans] == ["work"]

    def test_max_spans_drops_and_counts(self):
        tel = Telemetry(max_spans=2)
        for i in range(5):
            tel.add_span("s", float(i), 0.1)
        assert len(tel.spans) == 2
        assert tel.snapshot()["counters"]["telemetry.spans_dropped"] == 3


class TestGlobalRegistry:
    def test_default_is_null(self):
        tel = get_telemetry()
        assert isinstance(tel, NullTelemetry)
        assert not tel.enabled
        # every operation is a harmless no-op
        tel.counter("x").inc()
        tel.gauge("x").set(1)
        tel.histogram("x").observe(1)
        with tel.span("x"):
            pass
        assert tel.snapshot() == {}

    def test_enable_disable(self):
        tel = enable()
        try:
            assert get_telemetry() is tel
            assert tel.enabled
        finally:
            disable()
        assert not get_telemetry().enabled

    def test_scoped_overrides_and_restores(self):
        inner = Telemetry()
        outer = get_telemetry()
        with scoped(inner) as tel:
            assert tel is inner
            assert get_telemetry() is inner
        assert get_telemetry() is outer

    def test_scoped_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with scoped(Telemetry()):
                raise RuntimeError("boom")
        assert isinstance(get_telemetry(), NullTelemetry)

    def test_set_telemetry_none_disables(self):
        set_telemetry(Telemetry())
        set_telemetry(None)
        assert not get_telemetry().enabled


class TestSnapshotMerge:
    def test_drain_is_pure_delta(self):
        tel = Telemetry()
        tel.counter("n").inc(3)
        first = tel.drain()
        assert first["counters"]["n"] == 3
        assert tel.drain()["counters"] == {}  # reset: nothing left

    def test_merge_counters_histograms_spans(self):
        worker = Telemetry(pid=7)
        worker.counter("n").inc(2)
        worker.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        worker.add_span("band", 10.0, 0.5, tid="w0")
        parent = Telemetry(pid=1)
        parent.counter("n").inc(1)
        parent.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        parent.merge(worker.drain())
        snap = parent.snapshot()
        assert snap["counters"]["n"] == 3
        h = snap["histograms"]["lat"]
        assert h["counts"] == [1, 1, 0]
        assert h["count"] == 2
        assert [s["name"] for s in snap["spans"]] == ["band"]

    def test_merge_bucket_mismatch_raises(self):
        a = Telemetry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1)
        b = Telemetry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(1)
        with pytest.raises(TelemetryError):
            a.merge(b.snapshot())

    def test_merge_empty_is_noop(self):
        tel = Telemetry()
        tel.merge({})
        tel.merge(None)
        assert tel.snapshot()["counters"] == {}

    def test_snapshot_is_json_able(self):
        import json

        tel = Telemetry(pid=42)
        tel.counter("n").inc()
        tel.histogram("h").observe(0.01)
        tel.add_span("s", 0.0, 0.1, tid="model:x", args={"k": 1})
        assert json.loads(json.dumps(tel.snapshot()))["meta"]["pid"] == 42


class TestEmitPhaseSpans:
    def test_sequential_layout(self):
        tel = Telemetry(pid=1)
        end = emit_phase_spans(tel, "tile0", {"dma_in": 1000, "compute": 2000},
                              track="model:spe", start=5.0)
        spans = tel.spans
        assert [s["name"] for s in spans] == ["tile0.dma_in", "tile0.compute"]
        assert spans[0]["ts"] == pytest.approx(5.0)
        assert spans[1]["ts"] == pytest.approx(5.0 + 1000e-9)
        assert end == pytest.approx(5.0 + 3000e-9)
        assert all(s["tid"] == "model:spe" and s["cat"] == "model"
                   for s in spans)

    def test_negative_phase_clamped(self):
        tel = Telemetry(pid=1)
        emit_phase_spans(tel, "p", {"x": -50}, track="t", start=0.0)
        assert tel.spans[0]["dur"] == 0.0


class TestGaugeUnset:
    def test_never_set_is_distinguishable_from_zero(self):
        tel = Telemetry()
        g = tel.gauge("ring.in_flight")
        assert not g.is_set
        assert tel.snapshot()["gauges"]["ring.in_flight"] is None
        g.set(0)
        assert g.is_set
        assert tel.snapshot()["gauges"]["ring.in_flight"] == 0.0

    def test_merge_preserves_unset(self):
        parent, child = Telemetry(), Telemetry()
        child.gauge("a")             # registered, never set
        child.gauge("b").set(0.0)    # explicit zero
        parent.merge(child.snapshot())
        gauges = parent.snapshot()["gauges"]
        assert gauges["a"] is None
        assert gauges["b"] == 0.0


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        tel = Telemetry()
        h = tel.histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (1.0, 1.5, 2.0, 4.0, 4.01):
            h.observe(v)
        # counts [1, 2, 1, 1], total 5: rank 2.5 lands mid-second-bucket
        assert h.quantile(0.5) == pytest.approx(1.75)
        assert histogram_quantile(tel.snapshot()["histograms"]["h"],
                                  0.5) == pytest.approx(1.75)

    def test_edges_and_overflow(self):
        tel = Telemetry()
        h = tel.histogram("h", buckets=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0          # empty histogram
        h.observe(10.0)                        # overflow bucket only
        # every quantile clamps to the last finite bound (the PromQL
        # histogram_quantile overflow rule)
        assert h.quantile(0.0) == 2.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 2.0

    def test_first_bucket_starts_at_zero(self):
        tel = Telemetry()
        h = tel.histogram("h", buckets=(10.0,))
        h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_validation(self):
        tel = Telemetry()
        h = tel.histogram("h")
        with pytest.raises(TelemetryError):
            h.quantile(1.5)
        with pytest.raises(TelemetryError):
            h.quantile(-0.1)
